// FIG-B3 (KDD'96 DBSCAN): quality on noisy mixtures vs k-means, and
// region-query ablation (design choice 4: kd-tree vs brute-force) as n
// grows.
//
// Expected shape: with 10% uniform background noise DBSCAN isolates the
// noise and scores a higher ARI than k-means (which must absorb noise
// into clusters); kd-tree region queries give near-linear total runtime
// vs the brute-force quadratic.
#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "bench_util.h"

#include <cstdio>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "core/check.h"
#include "core/timer.h"
#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace {

const dmt::gen::LabeledPoints& NoisyWorkload(size_t per_cluster) {
  static std::map<size_t, dmt::gen::LabeledPoints> cache;
  auto it = cache.find(per_cluster);
  if (it == cache.end()) {
    dmt::gen::GaussianMixtureParams params;
    params.num_clusters = 10;
    params.points_per_cluster = per_cluster;
    params.cluster_stddev = 0.7;
    params.placement = dmt::gen::CenterPlacement::kGrid;
    params.spread = 12.0;
    params.noise_fraction = 0.10;
    auto data = dmt::gen::GenerateGaussianMixture(params, /*seed=*/1996);
    DMT_CHECK(data.ok());
    it = cache.emplace(per_cluster, std::move(data).value()).first;
  }
  return it->second;
}

void PrintQualitySeries() {
  const auto& data = NoisyWorkload(400);
  // Ground truth with noise as its own class.
  std::vector<uint32_t> truth(data.labels.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = data.labels[i] == dmt::gen::kNoiseLabel
                   ? 10u
                   : data.labels[i];
  }
  std::printf("# FIG-B3: 10 clusters + 10%% uniform noise, %zu points\n",
              data.points.size());
  std::printf("# method, time_ms, ari, noise_flagged\n");
  {
    dmt::cluster::DbscanOptions options;
    options.eps = 1.4;
    options.min_points = 8;
    dmt::core::WallTimer timer;
    auto result = dmt::cluster::Dbscan(data.points, options);
    DMT_CHECK(result.ok());
    std::vector<uint32_t> predicted(result->labels.size());
    size_t noise = 0;
    for (size_t i = 0; i < result->labels.size(); ++i) {
      if (result->labels[i] == dmt::cluster::DbscanResult::kNoise) {
        predicted[i] = 1000;
        ++noise;
      } else {
        predicted[i] = static_cast<uint32_t>(result->labels[i]);
      }
    }
    auto ari = dmt::eval::AdjustedRandIndex(truth, predicted);
    DMT_CHECK(ari.ok());
    std::printf("dbscan,%.1f,%.4f,%zu\n", timer.ElapsedMillis(), *ari,
                noise);
  }
  {
    dmt::cluster::KMeansOptions options;
    options.k = 10;
    options.seed = 9;
    dmt::core::WallTimer timer;
    auto result = dmt::cluster::KMeans(data.points, options);
    DMT_CHECK(result.ok());
    auto ari = dmt::eval::AdjustedRandIndex(truth, result->assignments);
    DMT_CHECK(ari.ok());
    std::printf("kmeans,%.1f,%.4f,0\n\n", timer.ElapsedMillis(), *ari);
  }
}

template <dmt::cluster::DbscanOptions::Neighbors neighbors>
void RunDbscan(benchmark::State& state) {
  const auto& data = NoisyWorkload(static_cast<size_t>(state.range(0)));
  dmt::cluster::DbscanOptions options;
  options.eps = 1.4;
  options.min_points = 8;
  options.neighbors = neighbors;
  options.num_threads = static_cast<size_t>(state.range(1));
  size_t clusters = 0;
  for (auto _ : state) {
    auto result = dmt::cluster::Dbscan(data.points, options);
    DMT_CHECK(result.ok());
    clusters = result->num_clusters;
    benchmark::DoNotOptimize(result);
  }
  state.counters["points"] = static_cast<double>(data.points.size());
  state.counters["clusters"] = static_cast<double>(clusters);
  state.counters["threads"] = static_cast<double>(state.range(1));
}

void BM_DbscanKdTree(benchmark::State& state) {
  RunDbscan<dmt::cluster::DbscanOptions::Neighbors::kKdTree>(state);
}
void BM_DbscanBrute(benchmark::State& state) {
  RunDbscan<dmt::cluster::DbscanOptions::Neighbors::kBruteForce>(state);
}

void Sizes(benchmark::internal::Benchmark* bench) {
  // Second arg = worker threads for the batched region queries (0 =
  // serial); the largest size also runs at 2 and 4 threads for the
  // speedup column.
  for (int64_t per_cluster : {200, 400, 800, 1600}) {
    bench->Args({per_cluster, 0});
  }
  for (int64_t threads : {2, 4}) {
    bench->Args({1600, threads});
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_DbscanKdTree)->Apply(Sizes);
BENCHMARK(BM_DbscanBrute)->Apply(Sizes);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("dbscan", argc, argv, PrintQualitySeries);
}
