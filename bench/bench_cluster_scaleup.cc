// FIG-B2 (BIRCH scale-up): time vs dataset size (10K to 200K points,
// k = 100 grid clusters) for BIRCH and direct k-means++.
//
// Expected shape: BIRCH grows linearly with a small constant (single scan
// into bounded CF summaries, then clustering the summaries); direct
// k-means grows linearly with a much larger constant (k distance
// computations per point per Lloyd iteration), so the gap widens with n.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cluster/birch.h"
#include "cluster/kmeans.h"

namespace {

using dmt::bench::GridWorkload;

constexpr size_t kClusters = 100;

void BM_KMeans(benchmark::State& state) {
  const auto& data =
      GridWorkload(kClusters, static_cast<size_t>(state.range(0)));
  dmt::cluster::KMeansOptions options;
  options.k = kClusters;
  options.seed = 3;
  options.max_iterations = 20;
  options.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto result = dmt::cluster::KMeans(data.points, options);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["points"] =
      static_cast<double>(data.points.size());
  state.counters["threads"] = static_cast<double>(state.range(1));
}

void BM_Birch(benchmark::State& state) {
  const auto& data =
      GridWorkload(kClusters, static_cast<size_t>(state.range(0)));
  dmt::cluster::BirchOptions options;
  options.global_clusters = kClusters;
  options.threshold = 1.5;
  options.max_leaf_entries_total = 4096;
  options.seed = 3;
  for (auto _ : state) {
    auto result = dmt::cluster::Birch(data.points, options);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["points"] =
      static_cast<double>(data.points.size());
}

void KMeansSizes(benchmark::internal::Benchmark* bench) {
  // points per cluster: total = 100 * arg; second arg = worker threads
  // (0 = serial) so the scale-up figure gains a speedup column.
  for (int64_t per_cluster : {100, 200, 500, 1000, 2000}) {
    bench->Args({per_cluster, 0});
  }
  for (int64_t threads : {2, 4}) {
    bench->Args({2000, threads});
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BirchSizes(benchmark::internal::Benchmark* bench) {
  for (int64_t per_cluster : {100, 200, 500, 1000, 2000}) {
    bench->Arg(per_cluster);
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_KMeans)->Apply(KMeansSizes);
BENCHMARK(BM_Birch)->Apply(BirchSizes);

}  // namespace

BENCHMARK_MAIN();
