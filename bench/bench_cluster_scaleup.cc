// FIG-B2 (BIRCH scale-up): time vs dataset size (10K to 200K points,
// k = 100 grid clusters) for BIRCH and direct k-means++.
//
// Expected shape: BIRCH grows linearly with a small constant (single scan
// into bounded CF summaries, then clustering the summaries); direct
// k-means grows linearly with a much larger constant (k distance
// computations per point per Lloyd iteration), so the gap widens with n.
// The assignment column ablates that constant: the Hamerly/Elkan engines
// return bit-identical clusterings while pruning most of the k distances
// per point (dist_comps counter), so pruned k-means scales with cluster
// count instead of n*k.
#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "bench_util.h"
#include "cluster/birch.h"
#include "cluster/kmeans.h"

namespace {

using dmt::bench::GridWorkload;

constexpr size_t kClusters = 100;

dmt::cluster::KMeansOptions::Assignment AssignmentFromArg(int64_t arg) {
  using Assignment = dmt::cluster::KMeansOptions::Assignment;
  switch (arg) {
    case 1: return Assignment::kHamerly;
    case 2: return Assignment::kElkan;
    default: return Assignment::kLloyd;
  }
}

void RunKMeans(benchmark::State& state, size_t clusters,
               size_t per_cluster) {
  const auto& data = GridWorkload(clusters, per_cluster);
  dmt::cluster::KMeansOptions options;
  options.k = clusters;
  options.seed = 3;
  options.max_iterations = 20;
  options.num_threads = static_cast<size_t>(state.range(1));
  options.assignment = AssignmentFromArg(state.range(2));
  double sse = 0.0;
  double dist_comps = 0.0;
  for (auto _ : state) {
    auto result = dmt::cluster::KMeans(data.points, options);
    DMT_CHECK(result.ok());
    sse = result->sse;
    dist_comps = static_cast<double>(result->distance_computations);
    benchmark::DoNotOptimize(result);
  }
  state.counters["points"] = static_cast<double>(data.points.size());
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["assignment"] = static_cast<double>(state.range(2));
  state.counters["sse"] = sse;
  state.counters["dist_comps"] = dist_comps;
}

// args: points per cluster (total = 100 * arg), worker threads,
// assignment engine (0 = Lloyd, 1 = Hamerly, 2 = Elkan).
void BM_KMeans(benchmark::State& state) {
  RunKMeans(state, kClusters, static_cast<size_t>(state.range(0)));
}

// Acceptance sweep at n = 100K, k = 50: args = (threads, assignment).
// Identical SSE across the assignment column with a >= 3x drop in
// dist_comps is the exactness-plus-pruning check.
void BM_KMeansPruning(benchmark::State& state) {
  const auto& data = GridWorkload(50, 2000);
  dmt::cluster::KMeansOptions options;
  options.k = 50;
  options.seed = 3;
  options.max_iterations = 20;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.assignment = AssignmentFromArg(state.range(1));
  double sse = 0.0;
  double dist_comps = 0.0;
  for (auto _ : state) {
    auto result = dmt::cluster::KMeans(data.points, options);
    DMT_CHECK(result.ok());
    sse = result->sse;
    dist_comps = static_cast<double>(result->distance_computations);
    benchmark::DoNotOptimize(result);
  }
  state.counters["points"] = static_cast<double>(data.points.size());
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["assignment"] = static_cast<double>(state.range(1));
  state.counters["sse"] = sse;
  state.counters["dist_comps"] = dist_comps;
}

// EXT-7: instrumentation overhead on the hottest kernel. arg = 0 runs
// with span collection disabled at runtime (registry counters stay on;
// they always are), arg = 1 with in-memory span collection enabled.
// The delta bounds what the observability layer costs a production run
// that never sets DMT_TRACE.
void BM_KMeansObsOverhead(benchmark::State& state) {
  const auto& data = GridWorkload(kClusters, 1000);
  dmt::cluster::KMeansOptions options;
  options.k = kClusters;
  options.seed = 3;
  options.max_iterations = 20;
  dmt::bench::ScopedTraceCollection trace(state.range(0) != 0);
  for (auto _ : state) {
    auto result = dmt::cluster::KMeans(data.points, options);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["tracing"] = static_cast<double>(state.range(0));
  state.counters["points"] = static_cast<double>(data.points.size());
}

void BM_Birch(benchmark::State& state) {
  const auto& data =
      GridWorkload(kClusters, static_cast<size_t>(state.range(0)));
  dmt::cluster::BirchOptions options;
  options.global_clusters = kClusters;
  options.threshold = 1.5;
  options.max_leaf_entries_total = 4096;
  options.seed = 3;
  for (auto _ : state) {
    auto result = dmt::cluster::Birch(data.points, options);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["points"] =
      static_cast<double>(data.points.size());
}

void KMeansSizes(benchmark::internal::Benchmark* bench) {
  // points per cluster: total = 100 * arg; second arg = worker threads
  // (0 = serial) so the scale-up figure gains a speedup column; third
  // arg = assignment engine, ablated on the largest size.
  for (int64_t per_cluster : {100, 200, 500, 1000, 2000}) {
    bench->Args({per_cluster, 0, 0});
  }
  for (int64_t threads : {2, 4}) {
    bench->Args({2000, threads, 0});
  }
  for (int64_t assignment : {1, 2}) {
    bench->Args({2000, 0, assignment});
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

void PruningSweep(benchmark::internal::Benchmark* bench) {
  for (int64_t assignment : {0, 1, 2}) {
    bench->Args({0, assignment});
  }
  // Pruning composes with threading: the bound arrays are chunked
  // through the same deterministic parallel contract.
  bench->Args({4, 1});
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BirchSizes(benchmark::internal::Benchmark* bench) {
  for (int64_t per_cluster : {100, 200, 500, 1000, 2000}) {
    bench->Arg(per_cluster);
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_KMeans)->Apply(KMeansSizes);
BENCHMARK(BM_KMeansPruning)->Apply(PruningSweep);
BENCHMARK(BM_KMeansObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_Birch)->Apply(BirchSizes);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("cluster_scaleup", argc, argv);
}
