// EXT-1 (Toivonen VLDB'96, sampling-based mining): time and verification
// behavior vs sample fraction on T10.I4.D40K at 0.75% support, against
// the full-database FP-Growth baseline.
//
// Expected shape (and an honest 2020s caveat): lowering the sample
// threshold trades verification work (a bigger negative border) for a
// one-scan guarantee — at scaling 0.6 the run provably completes in one
// scan at every fraction. In 1996 that one scan replaced multiple passes
// over DISK-resident data and won outright; against an in-memory
// FP-Growth full mine the border verification dominates, so the sampling
// approach no longer wins wall-clock here. The crossover logic (scan cost
// vs candidate count) is exactly the paper's.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "assoc/fp_growth.h"
#include "assoc/sampling.h"
#include "bench_main.h"
#include "bench_util.h"
#include "core/timer.h"

namespace {

using dmt::bench::QuestWorkload;

dmt::assoc::MiningParams Params() {
  dmt::assoc::MiningParams params;
  params.min_support = 0.0075;
  return params;
}

void PrintSamplingTable() {
  const auto& db = QuestWorkload(10, 4, 40000);
  std::printf("# EXT-1: sampling-based mining, T10.I4.D40K @ 0.75%%\n");
  std::printf(
      "# fraction, time_ms, sample_size, candidates, misses, one_scan\n");
  {
    dmt::core::WallTimer timer;
    auto full = dmt::assoc::MineFpGrowth(db, Params());
    DMT_CHECK(full.ok());
    std::printf("sampling,full_mine,%.1f,%zu,n/a,n/a,n/a\n",
                timer.ElapsedMillis(), db.size());
  }
  for (double scaling : {0.8, 0.6}) {
    for (double fraction : {0.05, 0.1, 0.25}) {
      dmt::assoc::SamplingOptions options;
      options.sample_fraction = fraction;
      options.threshold_scaling = scaling;
      options.seed = 11;
      dmt::assoc::SamplingStats stats;
      dmt::core::WallTimer timer;
      auto result =
          dmt::assoc::MineWithSampling(db, Params(), options, &stats);
      DMT_CHECK(result.ok());
      std::printf("sampling,scale%.1f_frac%.2f,%.1f,%zu,%zu,%zu,%s\n",
                  scaling, fraction, timer.ElapsedMillis(),
                  stats.sample_size, stats.candidates_checked,
                  stats.border_misses, stats.fell_back ? "no" : "yes");
    }
  }
  std::printf("\n");
}

void BM_FullMine(benchmark::State& state) {
  const auto& db = QuestWorkload(10, 4, 40000);
  for (auto _ : state) {
    auto result = dmt::assoc::MineFpGrowth(db, Params());
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}

void BM_SamplingMine(benchmark::State& state) {
  const auto& db = QuestWorkload(10, 4, 40000);
  dmt::assoc::SamplingOptions options;
  options.sample_fraction =
      static_cast<double>(state.range(0)) / 100.0;
  options.seed = 11;
  for (auto _ : state) {
    auto result = dmt::assoc::MineWithSampling(db, Params(), options);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_FullMine)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_SamplingMine)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("assoc_sampling", argc, argv, PrintSamplingTable);
}
