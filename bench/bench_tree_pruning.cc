// FIG-C3 (pruning ablation, design choice 3): tree size and hold-out
// accuracy across the pruning spectrum on noisy Agrawal F2 data —
// pessimistic pruning at several confidence factors vs cost-complexity
// pruning along its alpha path.
//
// Expected shape: unpruned trees overfit the 15% label noise (hundreds of
// leaves, depressed test accuracy); both pruners shrink the tree by an
// order of magnitude while raising test accuracy; over-pruning (huge
// alpha / tiny CF) eventually costs accuracy again.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_main.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/agrawal.h"
#include "tree/builder.h"
#include "tree/pruning.h"

namespace {

using dmt::core::Dataset;

struct Fixture {
  Dataset train;
  Dataset test;
  std::vector<uint32_t> truth;
  dmt::tree::DecisionTree c45;
  dmt::tree::DecisionTree cart;
};

const Fixture& GetFixture() {
  static const Fixture fixture = [] {
    dmt::gen::AgrawalParams params;
    params.function = 2;
    params.num_records = 8000;
    params.label_noise = 0.15;
    auto data = dmt::gen::GenerateAgrawal(params, /*seed=*/77);
    DMT_CHECK(data.ok());
    auto split = dmt::eval::StratifiedTrainTestSplit(data->labels(), 0.3,
                                                     /*seed=*/5);
    DMT_CHECK(split.ok());
    Fixture out;
    dmt::eval::MaterializeSplit(*data, *split, &out.train, &out.test);
    out.truth.assign(out.test.labels().begin(), out.test.labels().end());
    auto c45 = dmt::tree::BuildC45(out.train);
    DMT_CHECK(c45.ok());
    out.c45 = std::move(c45).value();
    auto cart = dmt::tree::BuildCart(out.train);
    DMT_CHECK(cart.ok());
    out.cart = std::move(cart).value();
    return out;
  }();
  return fixture;
}

double AccuracyOf(const dmt::tree::DecisionTree& tree) {
  const Fixture& fixture = GetFixture();
  auto accuracy =
      dmt::eval::Accuracy(fixture.truth, tree.PredictAll(fixture.test));
  DMT_CHECK(accuracy.ok());
  return *accuracy;
}

void PrintSeries() {
  const Fixture& fixture = GetFixture();
  std::printf("# FIG-C3: pruning ablation on F2 with 15%% label noise\n");
  std::printf("# series, parameter, leaves, test_accuracy\n");
  std::printf("pessimistic,unpruned,%zu,%.4f\n", fixture.c45.NumLeaves(),
              AccuracyOf(fixture.c45));
  for (double cf : {0.5, 0.25, 0.1, 0.05, 0.01}) {
    auto tree = fixture.c45;
    dmt::tree::PessimisticPruneOptions options;
    options.confidence = cf;
    DMT_CHECK(dmt::tree::PessimisticPrune(&tree, options).ok());
    std::printf("pessimistic,cf=%.2f,%zu,%.4f\n", cf, tree.NumLeaves(),
                AccuracyOf(tree));
  }
  std::printf("cost_complexity,unpruned,%zu,%.4f\n",
              fixture.cart.NumLeaves(), AccuracyOf(fixture.cart));
  for (double alpha : {0.0001, 0.0005, 0.001, 0.005, 0.02}) {
    auto tree = fixture.cart;
    dmt::tree::CostComplexityPrune(&tree, alpha);
    std::printf("cost_complexity,alpha=%.4f,%zu,%.4f\n", alpha,
                tree.NumLeaves(), AccuracyOf(tree));
  }
  auto best_alpha =
      dmt::tree::SelectAlphaByValidation(fixture.cart, fixture.test);
  DMT_CHECK(best_alpha.ok());
  auto tree = fixture.cart;
  dmt::tree::CostComplexityPrune(&tree, *best_alpha);
  std::printf("cost_complexity,validated_alpha=%.5f,%zu,%.4f\n\n",
              *best_alpha, tree.NumLeaves(), AccuracyOf(tree));
}

/// Growth benchmarks on the same noisy fixture (noise deepens the trees,
/// which is exactly where the split-search engine matters): presorted vs
/// naive, with Arg = worker threads for the presorted rows.
void BM_GrowC45Presorted(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  dmt::tree::TreeOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  dmt::tree::TreeBuildStats stats;
  for (auto _ : state) {
    auto tree = dmt::tree::BuildTree(fixture.train, options, &stats);
    DMT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["split_scan_rows"] =
      static_cast<double>(stats.split_scan_rows);
}

void BM_GrowC45Naive(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  dmt::tree::TreeOptions options;
  options.split_search = dmt::tree::SplitSearch::kNaive;
  dmt::tree::TreeBuildStats stats;
  for (auto _ : state) {
    auto tree = dmt::tree::BuildTree(fixture.train, options, &stats);
    DMT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
  state.counters["threads"] = 0;
  state.counters["split_scan_rows"] =
      static_cast<double>(stats.split_scan_rows);
}

void BM_PessimisticPrune(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto tree = fixture.c45;
    DMT_CHECK(dmt::tree::PessimisticPrune(&tree).ok());
    benchmark::DoNotOptimize(tree);
  }
}

void BM_CostComplexityPrune(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto tree = fixture.cart;
    dmt::tree::CostComplexityPrune(&tree, 0.0005);
    benchmark::DoNotOptimize(tree);
  }
}

BENCHMARK(BM_GrowC45Presorted)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GrowC45Naive)->Arg(0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PessimisticPrune)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CostComplexityPrune)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("tree_pruning", argc, argv, PrintSeries);
}
