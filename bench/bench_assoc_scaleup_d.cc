// FIG-A2 (VLDB'94 scale-up with the number of transactions): time vs |D|
// from 5K to 80K on T10.I4 at a fixed 0.75% support threshold.
//
// Expected shape: all four miners scale linearly in |D|; the ranking
// (FP-Growth < Eclat ~ AprioriTid < Apriori) is preserved at every size.
// The out-of-core row (SON two-phase Apriori over 4 on-disk partitions)
// tracks the in-memory Apriori curve with a constant-factor overhead for
// the extra counting pass.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "assoc/out_of_core.h"
#include "bench_main.h"
#include "bench_util.h"
#include "io/partition.h"

namespace {

using dmt::bench::QuestWorkload;

dmt::assoc::MiningParams Params() {
  dmt::assoc::MiningParams params;
  params.min_support = 0.0075;
  return params;
}

template <typename Runner>
void RunCase(benchmark::State& state, const Runner& runner) {
  const auto& db = QuestWorkload(10, 4, static_cast<size_t>(state.range(0)));
  auto params = Params();
  for (auto _ : state) {
    auto result = runner(db, params);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["transactions"] = static_cast<double>(state.range(0));
}

void BM_Apriori(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineApriori(db, params);
  });
}
void BM_AprioriTid(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineAprioriTid(db, params);
  });
}
void BM_FpGrowth(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineFpGrowth(db, params);
  });
}
void BM_Eclat(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineEclat(db, params);
  });
}

constexpr size_t kOutOfCorePartitions = 4;

// Partitions written once per size and reused across iterations.
const std::vector<std::string>& PartitionPaths(size_t transactions) {
  static std::map<size_t, std::vector<std::string>> cache;
  auto it = cache.find(transactions);
  if (it == cache.end()) {
    const auto& db = QuestWorkload(10, 4, transactions);
    auto paths = dmt::io::WritePartitions(
        db, "/tmp/dmt_bench_scaleup_" + std::to_string(transactions),
        kOutOfCorePartitions);
    DMT_CHECK(paths.ok());
    it = cache.emplace(transactions, std::move(paths).value()).first;
  }
  return it->second;
}

void BM_AprioriOutOfCore(benchmark::State& state) {
  const auto& paths =
      PartitionPaths(static_cast<size_t>(state.range(0)));
  auto params = Params();
  uint64_t bytes_mapped = 0;
  for (auto _ : state) {
    auto result = dmt::assoc::MineAprioriPartitioned(paths, params);
    DMT_CHECK(result.ok());
    bytes_mapped = result->bytes_mapped;
    benchmark::DoNotOptimize(result);
  }
  state.counters["transactions"] = static_cast<double>(state.range(0));
  state.counters["partitions"] =
      static_cast<double>(kOutOfCorePartitions);
  state.counters["bytes_mapped"] = static_cast<double>(bytes_mapped);
}

void Sizes(benchmark::internal::Benchmark* bench) {
  for (int64_t d : {5000, 10000, 20000, 40000, 80000}) bench->Arg(d);
  bench->Unit(benchmark::kMillisecond)->Iterations(2);
}

BENCHMARK(BM_Apriori)->Apply(Sizes);
BENCHMARK(BM_AprioriTid)->Apply(Sizes);
BENCHMARK(BM_FpGrowth)->Apply(Sizes);
BENCHMARK(BM_Eclat)->Apply(Sizes);
BENCHMARK(BM_AprioriOutOfCore)->Apply(Sizes);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("assoc_scaleup_d", argc, argv);
}
