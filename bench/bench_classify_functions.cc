// TAB-C1 (TKDE'93 accuracy table): hold-out accuracy of every classifier
// in the library on the ten Agrawal functions (5% attribute perturbation).
//
// Expected shape: trees dominate (the predicates are axis-aligned
// rectangles and linear cuts); F1-F3 are easy (> 95%), the income
// predicates F6-F10 are harder for the distance/Bayes models; naive Bayes
// suffers on disjunctive predicates; kNN suffers from the irrelevant
// attributes. The timed section covers one representative train per model.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_main.h"
#include "bench_util.h"
#include "classify/knn.h"
#include "classify/naive_bayes.h"
#include "classify/one_r.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "tree/builder.h"
#include "tree/discretize.h"
#include "tree/pruning.h"

namespace {

using dmt::bench::AgrawalWorkload;
using dmt::core::Dataset;

constexpr size_t kRecords = 8000;

struct SplitData {
  Dataset train;
  Dataset test;
  std::vector<uint32_t> truth;
};

SplitData MakeSplit(int function) {
  const Dataset& data = AgrawalWorkload(function, kRecords);
  auto split = dmt::eval::StratifiedTrainTestSplit(data.labels(), 0.3,
                                                   /*seed=*/29);
  DMT_CHECK(split.ok());
  SplitData out;
  dmt::eval::MaterializeSplit(data, *split, &out.train, &out.test);
  out.truth.assign(out.test.labels().begin(), out.test.labels().end());
  return out;
}

double Score(const SplitData& data, const std::vector<uint32_t>& predicted) {
  auto accuracy = dmt::eval::Accuracy(data.truth, predicted);
  DMT_CHECK(accuracy.ok());
  return *accuracy;
}

double RunId3(const SplitData& data) {
  auto train = dmt::tree::EqualWidthDiscretize(data.train, 8);
  auto test = dmt::tree::EqualWidthDiscretize(data.test, 8);
  DMT_CHECK(train.ok());
  DMT_CHECK(test.ok());
  auto tree = dmt::tree::BuildId3(*train);
  DMT_CHECK(tree.ok());
  return Score(data, tree->PredictAll(*test));
}

double RunC45(const SplitData& data) {
  auto tree = dmt::tree::BuildC45(data.train);
  DMT_CHECK(tree.ok());
  DMT_CHECK(dmt::tree::PessimisticPrune(&*tree).ok());
  return Score(data, tree->PredictAll(data.test));
}

double RunCart(const SplitData& data) {
  auto tree = dmt::tree::BuildCart(data.train);
  DMT_CHECK(tree.ok());
  dmt::tree::CostComplexityPrune(&*tree, 0.0005);
  return Score(data, tree->PredictAll(data.test));
}

double RunNaiveBayes(const SplitData& data) {
  dmt::classify::NaiveBayesClassifier nb;
  DMT_CHECK(nb.Fit(data.train).ok());
  auto predicted = nb.PredictAll(data.test);
  DMT_CHECK(predicted.ok());
  return Score(data, *predicted);
}

double RunOneR(const SplitData& data) {
  dmt::classify::OneRClassifier one_r;
  DMT_CHECK(one_r.Fit(data.train).ok());
  auto predicted = one_r.PredictAll(data.test);
  DMT_CHECK(predicted.ok());
  return Score(data, *predicted);
}

double RunKnn(const SplitData& data) {
  dmt::classify::KnnOptions options;
  options.k = 9;
  dmt::classify::KnnClassifier knn(options);
  DMT_CHECK(knn.Fit(data.train).ok());
  auto predicted = knn.PredictAll(data.test);
  DMT_CHECK(predicted.ok());
  return Score(data, *predicted);
}

void PrintAccuracyTable() {
  std::printf("# TAB-C1: hold-out accuracy on Agrawal functions "
              "(%zu records, 5%% perturbation)\n",
              kRecords);
  std::printf("# function, one_r, id3, c45_pruned, cart_pruned, "
              "naive_bayes, knn9\n");
  for (int function = 1; function <= 10; ++function) {
    SplitData data = MakeSplit(function);
    std::printf("accuracy,F%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", function,
                RunOneR(data), RunId3(data), RunC45(data), RunCart(data),
                RunNaiveBayes(data), RunKnn(data));
    std::fflush(stdout);
  }
  std::printf("\n");
}

void BM_TrainC45(benchmark::State& state) {
  SplitData data = MakeSplit(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto tree = dmt::tree::BuildC45(data.train);
    DMT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
}

void BM_TrainCart(benchmark::State& state) {
  SplitData data = MakeSplit(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto tree = dmt::tree::BuildCart(data.train);
    DMT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
}

void BM_TrainNaiveBayes(benchmark::State& state) {
  SplitData data = MakeSplit(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    dmt::classify::NaiveBayesClassifier nb;
    DMT_CHECK(nb.Fit(data.train).ok());
    benchmark::DoNotOptimize(nb);
  }
}

BENCHMARK(BM_TrainC45)->Arg(2)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_TrainCart)->Arg(2)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_TrainNaiveBayes)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("classify_functions", argc, argv, PrintAccuracyTable);
}
