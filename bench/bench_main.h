// Shared entry point for every bench binary: BenchMain parses the
// harness's own flags (--json, --no-table) before google-benchmark sees
// argv and tees every run into a machine-readable JSON record so future
// PRs have a perf trajectory to regress against.
#ifndef DMT_BENCH_BENCH_MAIN_H_
#define DMT_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/check.h"
#include "core/kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::bench {

namespace internal {

/// One benchmark run captured for the JSON record.
struct JsonRun {
  std::string name;
  double real_time = 0.0;
  std::string time_unit;
  std::vector<std::pair<std::string, double>> counters;
};

inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Console reporter that additionally tees every finished run (name,
/// adjusted real time, user counters) into a list for the JSON record.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      JsonRun record;
      record.name = run.benchmark_name();
      record.real_time = run.GetAdjustedRealTime();
      record.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      for (const auto& [key, counter] : run.counters) {
        record.counters.emplace_back(key, counter.value);
      }
      runs_.push_back(std::move(record));
    }
  }

  const std::vector<JsonRun>& runs() const { return runs_; }

 private:
  std::vector<JsonRun> runs_;
};

inline void WriteJsonRecord(const std::string& path,
                            const std::string& bench_name,
                            const std::vector<JsonRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  DMT_CHECK(f != nullptr);
  // The pinned kernel dispatch level makes records from different hosts
  // (or DMT_KERNEL_LEVEL overrides) comparable: a perf delta with a
  // level delta is dispatch, not regression.
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"kernel_level\": \"%s\",\n"
               "  \"runs\": [",
               JsonEscape(bench_name).c_str(),
               core::kernels::KernelLevelName(core::kernels::ActiveLevel()));
  for (size_t i = 0; i < runs.size(); ++i) {
    const JsonRun& run = runs[i];
    std::fprintf(f, "%s\n    {\"name\": \"%s\", \"real_time\": %.17g, "
                 "\"time_unit\": \"%s\", \"counters\": {",
                 i == 0 ? "" : ",", JsonEscape(run.name).c_str(),
                 run.real_time, JsonEscape(run.time_unit).c_str());
    for (size_t c = 0; c < run.counters.size(); ++c) {
      std::fprintf(f, "%s\"%s\": %.17g", c == 0 ? "" : ", ",
                   JsonEscape(run.counters[c].first).c_str(),
                   run.counters[c].second);
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "\n  ],");
  // Span tree collected over the whole binary run: hierarchical phase
  // names with call counts and wall/CPU totals, plus the final metrics
  // registry — the instrumentation layer's view of the same runs.
  std::fprintf(f, "\n  \"spans\": [");
  const std::vector<obs::SpanAggregate> spans =
      obs::TraceSink::Global().Aggregates();
  for (size_t i = 0; i < spans.size(); ++i) {
    std::fprintf(f,
                 "%s\n    {\"name\": \"%s\", \"count\": %llu, "
                 "\"wall_ms\": %.6f, \"cpu_ms\": %.6f}",
                 i == 0 ? "" : ",", JsonEscape(spans[i].name).c_str(),
                 static_cast<unsigned long long>(spans[i].count),
                 spans[i].wall_ms, spans[i].cpu_ms);
  }
  std::fprintf(f, "\n  ],\n  \"registry\": {");
  const auto counters = obs::Registry::Global().CounterSnapshot();
  for (size_t i = 0; i < counters.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                 JsonEscape(counters[i].first).c_str(),
                 static_cast<unsigned long long>(counters[i].second));
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
}

}  // namespace internal

/// Shared entry point for every bench binary. Strips the harness's own
/// flags before google-benchmark parses argv, optionally prints the
/// bench's printf table, runs the registered benchmarks, and finally
/// writes the JSON record if requested. Flags:
///   --json <path>  write a machine-readable record of every run (name,
///                  wall time, user counters such as threads and
///                  dist_comps) to <path>; tools/check.sh collects these
///                  as BENCH_<bench>.json for the perf trajectory.
///   --no-table     skip the prologue table (used by bench smoke runs).
inline int BenchMain(const char* bench_name, int argc, char** argv,
                     const std::function<void()>& prologue = nullptr) {
  std::vector<char*> args;
  std::string json_path;
  bool no_table = false;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--no-table") {
      no_table = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);
  int filtered_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (prologue && !no_table) prologue();
  if (!json_path.empty()) {
    // Collect spans in memory so the record can embed the span tree; no
    // trace file is written unless DMT_TRACE asked for one.
    obs::TraceSink::Global().StartCollection();
  }
  internal::JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) {
    internal::WriteJsonRecord(json_path, bench_name, reporter.runs());
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace dmt::bench

#endif  // DMT_BENCH_BENCH_MAIN_H_
