// Shared helpers for the benchmark harness: cached synthetic workloads so
// repeated benchmark cases do not regenerate data inside the timing loop.
// The shared bench entry point (JSON output, flag parsing) lives in
// bench_main.h so this header stays free of the benchmark-library
// dependency (tests include it for the workload caches).
#ifndef DMT_BENCH_BENCH_UTIL_H_
#define DMT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/check.h"
#include "core/dataset.h"
#include "core/sequence.h"
#include "core/transaction.h"
#include "gen/agrawal.h"
#include "gen/mixture.h"
#include "gen/quest.h"
#include "gen/seqgen.h"
#include "obs/trace.h"

namespace dmt::bench {

/// RAII toggle for runtime trace-span collection. Restores the prior
/// state on scope exit so benchmark cases measuring the instrumentation
/// on/off delta (EXT-7) do not leak the toggle into later cases.
class ScopedTraceCollection {
 public:
  explicit ScopedTraceCollection(bool enabled)
      : was_enabled_(obs::TraceSink::Global().enabled()) {
    obs::TraceSink::Global().set_enabled(enabled);
  }
  ~ScopedTraceCollection() {
    obs::TraceSink::Global().set_enabled(was_enabled_);
  }
  ScopedTraceCollection(const ScopedTraceCollection&) = delete;
  ScopedTraceCollection& operator=(const ScopedTraceCollection&) = delete;

 private:
  bool was_enabled_;
};

// Latency percentiles for benches come from obs::Histogram (metrics.h):
// record microsecond samples into a named histogram and read p50/p99
// through HistogramData::Percentile — the same nearest-rank readout the
// serving telemetry exposes, unit-tested once in
// tests/obs/histogram_test.cc. (This replaced the bench-private
// LatencyRecorder: one implementation, shared with production.)

/// Cached Quest transaction workload (keyed by T, I, D).
inline const core::TransactionDatabase& QuestWorkload(double t, double i,
                                                      size_t d) {
  static std::map<std::tuple<double, double, size_t>,
                  core::TransactionDatabase>
      cache;
  auto key = std::make_tuple(t, i, d);
  auto it = cache.find(key);
  if (it == cache.end()) {
    gen::QuestParams params;
    params.avg_transaction_size = t;
    params.avg_pattern_size = i;
    params.num_transactions = d;
    params.num_items = 1000;
    params.num_patterns = 2000;
    auto db = gen::GenerateQuestTransactions(params, /*seed=*/1996);
    DMT_CHECK(db.ok());
    it = cache.emplace(key, std::move(db).value()).first;
  }
  return it->second;
}

/// Cached Quest sequence workload (keyed by customer count).
inline const core::SequenceDatabase& SequenceWorkload(size_t customers) {
  static std::map<size_t, core::SequenceDatabase> cache;
  auto it = cache.find(customers);
  if (it == cache.end()) {
    gen::SequenceGenParams params;
    params.num_customers = customers;
    params.avg_transactions_per_customer = 10.0;
    params.avg_items_per_transaction = 2.5;
    params.avg_pattern_elements = 4.0;
    params.avg_pattern_itemset_size = 1.25;
    params.num_items = 1000;
    auto db = gen::GenerateSequences(params, /*seed=*/1995);
    DMT_CHECK(db.ok());
    it = cache.emplace(customers, std::move(db).value()).first;
  }
  return it->second;
}

/// Cached Agrawal classification workload (keyed by function and size).
inline const core::Dataset& AgrawalWorkload(int function, size_t records,
                                            double perturbation = 0.05) {
  static std::map<std::tuple<int, size_t, double>, core::Dataset> cache;
  auto key = std::make_tuple(function, records, perturbation);
  auto it = cache.find(key);
  if (it == cache.end()) {
    gen::AgrawalParams params;
    params.function = function;
    params.num_records = records;
    params.perturbation = perturbation;
    auto data = gen::GenerateAgrawal(params, /*seed=*/1993);
    DMT_CHECK(data.ok());
    it = cache.emplace(key, std::move(data).value()).first;
  }
  return it->second;
}

/// Cached BIRCH-style grid mixture (keyed by clusters and points/cluster).
inline const gen::LabeledPoints& GridWorkload(size_t clusters,
                                              size_t per_cluster,
                                              double stddev = 1.0) {
  static std::map<std::tuple<size_t, size_t, double>, gen::LabeledPoints>
      cache;
  auto key = std::make_tuple(clusters, per_cluster, stddev);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto data = gen::GenerateBirchGrid(clusters, per_cluster,
                                       /*spacing=*/10.0, stddev,
                                       /*seed=*/1996);
    DMT_CHECK(data.ok());
    it = cache.emplace(key, std::move(data).value()).first;
  }
  return it->second;
}

}  // namespace dmt::bench

#endif  // DMT_BENCH_BENCH_UTIL_H_
