// FIG-K1 (kNN ablation, design choice 5): accuracy vs k on Agrawal F1,
// and kd-tree vs brute-force query time as the training set grows.
//
// Expected shape: accuracy is fairly flat in k with a mild peak at
// moderate k (noise averaging) and decays for very large k; kd-tree
// queries beat brute force with a widening gap in n (the feature space
// is lowish-dimensional after standardization).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_main.h"
#include "bench_util.h"
#include "classify/knn.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"

namespace {

using dmt::bench::AgrawalWorkload;
using dmt::core::Dataset;

void PrintAccuracySeries() {
  const Dataset& data = AgrawalWorkload(1, 6000);
  auto split =
      dmt::eval::StratifiedTrainTestSplit(data.labels(), 0.3, /*seed=*/13);
  DMT_CHECK(split.ok());
  Dataset train, test;
  dmt::eval::MaterializeSplit(data, *split, &train, &test);
  std::vector<uint32_t> truth(test.labels().begin(), test.labels().end());
  std::printf("# FIG-K1: kNN accuracy vs k on Agrawal F1\n");
  std::printf("# k, accuracy\n");
  for (size_t k : {1u, 3u, 5u, 9u, 17u, 33u, 49u}) {
    dmt::classify::KnnOptions options;
    options.k = k;
    dmt::classify::KnnClassifier knn(options);
    DMT_CHECK(knn.Fit(train).ok());
    auto predicted = knn.PredictAll(test);
    DMT_CHECK(predicted.ok());
    auto accuracy = dmt::eval::Accuracy(truth, *predicted);
    DMT_CHECK(accuracy.ok());
    std::printf("knn_accuracy,%zu,%.4f\n", k, *accuracy);
  }
  std::printf("\n");
}

template <dmt::classify::KnnOptions::Search search>
void RunQueryBench(benchmark::State& state) {
  const Dataset& data =
      AgrawalWorkload(1, static_cast<size_t>(state.range(0)));
  auto split =
      dmt::eval::StratifiedTrainTestSplit(data.labels(), 0.1, /*seed=*/13);
  DMT_CHECK(split.ok());
  Dataset train, test;
  dmt::eval::MaterializeSplit(data, *split, &train, &test);
  dmt::classify::KnnOptions options;
  options.k = 9;
  options.search = search;
  dmt::classify::KnnClassifier knn(options);
  DMT_CHECK(knn.Fit(train).ok());
  for (auto _ : state) {
    auto predicted = knn.PredictAll(test);
    DMT_CHECK(predicted.ok());
    benchmark::DoNotOptimize(predicted);
  }
  state.counters["train_rows"] =
      static_cast<double>(train.num_rows());
  state.counters["queries"] = static_cast<double>(test.num_rows());
}

void BM_KnnKdTree(benchmark::State& state) {
  RunQueryBench<dmt::classify::KnnOptions::Search::kKdTree>(state);
}
void BM_KnnBrute(benchmark::State& state) {
  RunQueryBench<dmt::classify::KnnOptions::Search::kBruteForce>(state);
}

void Sizes(benchmark::internal::Benchmark* bench) {
  for (int64_t n : {2000, 8000, 32000}) bench->Arg(n);
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_KnnKdTree)->Apply(Sizes);
BENCHMARK(BM_KnnBrute)->Apply(Sizes);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("knn_sweep", argc, argv, PrintAccuracySeries);
}
