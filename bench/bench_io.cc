// EXT-8 (persistence layer): serialize / load / mmap throughput for the
// binary container vs the basket-text parser on the same T10.I4 workload.
//
// Expected shape: binary load beats text parse by a wide margin (no
// integer parsing, single structural validation pass) and mmap beats
// binary load (zero-copy; validation only touches the offset array).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_main.h"
#include "bench_util.h"
#include "core/mmap_file.h"
#include "io/serialize.h"

namespace {

using dmt::bench::QuestWorkload;

std::string BenchPath(const char* tag) {
  return "/tmp/dmt_bench_io_" + std::string(tag) + ".dmtb";
}

// Writes the workload once and returns its path; later cases reuse it.
const std::string& WrittenWorkload(size_t transactions) {
  static std::map<size_t, std::string> cache;
  auto it = cache.find(transactions);
  if (it == cache.end()) {
    const auto& db = QuestWorkload(10, 4, transactions);
    std::string path = BenchPath(std::to_string(transactions).c_str());
    DMT_CHECK(dmt::io::WriteTransactionDatabase(db, path).ok());
    it = cache.emplace(transactions, std::move(path)).first;
  }
  return it->second;
}

uint64_t FileBytes(const std::string& path) {
  auto bytes = dmt::core::ReadFileString(path);
  DMT_CHECK(bytes.ok());
  return bytes->size();
}

void BM_WriteBinary(benchmark::State& state) {
  const auto& db = QuestWorkload(10, 4, static_cast<size_t>(state.range(0)));
  const std::string path = BenchPath("write");
  for (auto _ : state) {
    DMT_CHECK(dmt::io::WriteTransactionDatabase(db, path).ok());
  }
  state.counters["bytes"] = static_cast<double>(FileBytes(path));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(FileBytes(path)));
}

void BM_LoadBinary(benchmark::State& state) {
  const std::string& path =
      WrittenWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto db = dmt::io::LoadTransactionDatabase(path);
    DMT_CHECK(db.ok());
    benchmark::DoNotOptimize(db);
  }
  state.counters["bytes"] = static_cast<double>(FileBytes(path));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(FileBytes(path)));
}

void BM_MapBinary(benchmark::State& state) {
  const std::string& path =
      WrittenWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto view = dmt::io::MappedTransactionDatabase::Map(path);
    DMT_CHECK(view.ok());
    benchmark::DoNotOptimize(view);
  }
  state.counters["bytes"] = static_cast<double>(FileBytes(path));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(FileBytes(path)));
}

void BM_ParseText(benchmark::State& state) {
  const auto& db = QuestWorkload(10, 4, static_cast<size_t>(state.range(0)));
  const std::string text = db.ToBasketText();
  for (auto _ : state) {
    auto parsed = dmt::core::TransactionDatabase::FromBasketText(text);
    DMT_CHECK(parsed.ok());
    benchmark::DoNotOptimize(parsed);
  }
  state.counters["bytes"] = static_cast<double>(text.size());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}

void Sizes(benchmark::internal::Benchmark* bench) {
  for (int64_t d : {5000, 20000}) bench->Arg(d);
  bench->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_WriteBinary)->Apply(Sizes);
BENCHMARK(BM_LoadBinary)->Apply(Sizes);
BENCHMARK(BM_MapBinary)->Apply(Sizes);
BENCHMARK(BM_ParseText)->Apply(Sizes);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("io", argc, argv);
}
