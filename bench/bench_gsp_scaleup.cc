// FIG-S2 (ICDE'95 scale-up): GSP time as the customer count grows from
// 2.5K to 20K at a fixed 0.75% support threshold.
//
// Expected shape: near-linear growth in the number of customers — the
// candidate space stays roughly constant (same relative threshold), so
// counting dominates.
#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "bench_util.h"
#include "seq/gsp.h"

namespace {

using dmt::bench::SequenceWorkload;

void BM_Gsp(benchmark::State& state) {
  const auto& db = SequenceWorkload(static_cast<size_t>(state.range(0)));
  dmt::seq::SeqMiningParams params;
  params.min_support = 0.0075;
  for (auto _ : state) {
    auto result = dmt::seq::MineGsp(db, params);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["customers"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_Gsp)
    ->Arg(2500)
    ->Arg(5000)
    ->Arg(10000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("gsp_scaleup", argc, argv);
}
