// FIG-S1 (ICDE'95 Fig. 4, "time vs minimum support"): GSP-style mining on
// the C10.T2.5.S4.I1.25 customer-sequence workload (5K customers) as
// minimum support falls from 1% to 0.25%.
//
// Expected shape: time and pattern count grow sharply as the threshold
// drops — pass 2's candidate set is quadratic in the frequent items, and
// lower thresholds push the frequent frontier to longer sequences.
#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "bench_util.h"
#include "seq/gsp.h"

namespace {

using dmt::bench::SequenceWorkload;

void BM_Gsp(benchmark::State& state) {
  const auto& db = SequenceWorkload(5000);
  dmt::seq::SeqMiningParams params;
  params.min_support = static_cast<double>(state.range(0)) / 10000.0;
  params.num_threads = static_cast<size_t>(state.range(1));
  size_t patterns = 0;
  for (auto _ : state) {
    auto result = dmt::seq::MineGsp(db, params);
    DMT_CHECK(result.ok());
    patterns = result->patterns.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["patterns"] = static_cast<double>(patterns);
  state.counters["threads"] = static_cast<double>(state.range(1));
}

void Cases(benchmark::internal::Benchmark* bench) {
  // Second arg = worker threads for support counting (0 = serial); the
  // two slowest thresholds also run at 2 and 4 threads for the speedup
  // column.
  for (int64_t minsup : {100, 75, 50, 33}) {
    bench->Args({minsup, 0});
  }
  for (int64_t minsup : {50, 33}) {
    for (int64_t threads : {2, 4}) {
      bench->Args({minsup, threads});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Gsp)->Apply(Cases);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("gsp_minsup", argc, argv);
}
