// FIG-S1 (ICDE'95 Fig. 4, "time vs minimum support"): GSP-style mining on
// the C10.T2.5.S4.I1.25 customer-sequence workload (5K customers) as
// minimum support falls from 1% to 0.25%.
//
// Expected shape: time and pattern count grow sharply as the threshold
// drops — pass 2's candidate set is quadratic in the frequent items, and
// lower thresholds push the frequent frontier to longer sequences.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "seq/gsp.h"

namespace {

using dmt::bench::SequenceWorkload;

void BM_Gsp(benchmark::State& state) {
  const auto& db = SequenceWorkload(5000);
  dmt::seq::SeqMiningParams params;
  params.min_support = static_cast<double>(state.range(0)) / 10000.0;
  size_t patterns = 0;
  for (auto _ : state) {
    auto result = dmt::seq::MineGsp(db, params);
    DMT_CHECK(result.ok());
    patterns = result->patterns.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["patterns"] = static_cast<double>(patterns);
}

BENCHMARK(BM_Gsp)
    ->Arg(100)
    ->Arg(75)
    ->Arg(50)
    ->Arg(33)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
