// TAB-B1 (BIRCH SIGMOD'96 Tables 4-6 analogue): clustering quality and
// time on the DS1-style grid dataset (100 Gaussian clusters on a 10x10
// grid, 200 points each) for BIRCH, k-means++ and Forgy-seeded k-means
// (seeding ablation, design choice 2), plus Ward on a subsample.
//
// Expected shape: BIRCH matches direct k-means++ quality (ARI ~1, similar
// SSE) while touching each point once; Forgy seeding loses clusters on
// the 100-center problem (visibly worse SSE/ARI); Ward is accurate but
// only feasible on the subsample.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>

#include "bench_main.h"
#include "bench_util.h"
#include "cluster/agglomerative.h"
#include "cluster/birch.h"
#include "cluster/clarans.h"
#include "cluster/kmeans.h"
#include "core/timer.h"
#include "eval/clustering_metrics.h"

namespace {

using dmt::bench::GridWorkload;

constexpr size_t kClusters = 100;
constexpr size_t kPerCluster = 200;

void PrintQualityTable() {
  const auto& data = GridWorkload(kClusters, kPerCluster);
  std::printf("# TAB-B1: DS1-style grid, %zu points in %zu clusters\n",
              data.points.size(), kClusters);
  std::printf("# method, time_ms, sse, ari, nmi, dist_comps\n");
  auto report = [&](const char* name, double millis, double sse,
                    const std::vector<uint32_t>& assignments,
                    const std::vector<uint32_t>& truth,
                    uint64_t dist_comps) {
    auto ari = dmt::eval::AdjustedRandIndex(truth, assignments);
    auto nmi = dmt::eval::NormalizedMutualInformation(truth, assignments);
    DMT_CHECK(ari.ok());
    DMT_CHECK(nmi.ok());
    std::printf("quality,%s,%.1f,%.1f,%.4f,%.4f,%llu\n", name, millis,
                sse, *ari, *nmi,
                static_cast<unsigned long long>(dist_comps));
  };

  // Assignment-engine ablation: all three rows must report the same SSE
  // and ARI (the pruned engines are exact); only time and dist_comps
  // move.
  {
    using Assignment = dmt::cluster::KMeansOptions::Assignment;
    constexpr struct {
      const char* name;
      Assignment assignment;
    } kEngines[] = {
        {"kmeans++", Assignment::kLloyd},
        {"kmeans++_hamerly", Assignment::kHamerly},
        {"kmeans++_elkan", Assignment::kElkan},
    };
    for (const auto& engine : kEngines) {
      dmt::cluster::KMeansOptions options;
      options.k = kClusters;
      options.init = dmt::cluster::KMeansInit::kPlusPlus;
      options.assignment = engine.assignment;
      options.seed = 17;
      dmt::core::WallTimer timer;
      auto result = dmt::cluster::KMeans(data.points, options);
      DMT_CHECK(result.ok());
      report(engine.name, timer.ElapsedMillis(), result->sse,
             result->assignments, data.labels,
             result->distance_computations);
    }
  }
  {
    dmt::cluster::KMeansOptions options;
    options.k = kClusters;
    options.init = dmt::cluster::KMeansInit::kForgy;
    options.seed = 17;
    dmt::core::WallTimer timer;
    auto result = dmt::cluster::KMeans(data.points, options);
    DMT_CHECK(result.ok());
    report("kmeans_forgy", timer.ElapsedMillis(), result->sse,
           result->assignments, data.labels,
           result->distance_computations);
  }
  {
    dmt::cluster::BirchOptions options;
    options.global_clusters = kClusters;
    options.threshold = 1.5;
    options.max_leaf_entries_total = 4096;
    options.seed = 17;
    dmt::core::WallTimer timer;
    auto result = dmt::cluster::Birch(data.points, options);
    DMT_CHECK(result.ok());
    report("birch", timer.ElapsedMillis(), result->clustering.sse,
           result->clustering.assignments, data.labels,
           result->clustering.distance_computations);
    std::printf("# birch summary: %zu leaf entries, threshold %.2f, "
                "%zu rebuilds\n",
                result->num_leaf_entries, result->final_threshold,
                result->rebuilds);
  }
  {
    // CLARANS on a 4000-point subsample (swap evaluation is O(n) per
    // sampled neighbour; the paper also subsampled for large n).
    std::vector<size_t> rows(4000);
    size_t stride = data.points.size() / rows.size();
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i * stride;
    auto sample = data.points.Subset(rows);
    std::vector<uint32_t> sample_truth(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      sample_truth[i] = data.labels[rows[i]];
    }
    dmt::cluster::ClaransOptions options;
    options.k = kClusters;
    options.num_local = 1;
    options.max_neighbors = 2000;
    options.seed = 17;
    dmt::core::WallTimer timer;
    auto result = dmt::cluster::Clarans(sample, options);
    DMT_CHECK(result.ok());
    auto ari = dmt::eval::AdjustedRandIndex(sample_truth,
                                            result->assignments);
    DMT_CHECK(ari.ok());
    std::printf("quality,clarans_4k_sample,%.1f,n/a,%.4f,n/a\n",
                timer.ElapsedMillis(), *ari);
  }
  {
    // Ward on a 4000-point subsample (dense-matrix method).
    std::vector<size_t> rows(4000);
    size_t stride = data.points.size() / rows.size();
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i * stride;
    auto sample = data.points.Subset(rows);
    std::vector<uint32_t> sample_truth(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      sample_truth[i] = data.labels[rows[i]];
    }
    dmt::core::WallTimer timer;
    auto dendrogram = dmt::cluster::AgglomerativeCluster(
        sample, dmt::cluster::Linkage::kWard);
    DMT_CHECK(dendrogram.ok());
    auto labels = dendrogram->CutAtK(kClusters);
    DMT_CHECK(labels.ok());
    auto ari = dmt::eval::AdjustedRandIndex(sample_truth, *labels);
    DMT_CHECK(ari.ok());
    std::printf("quality,ward_4k_sample,%.1f,n/a,%.4f,n/a\n",
                timer.ElapsedMillis(), *ari);
  }
  std::printf("\n");
}

void BM_KMeansPlusPlus(benchmark::State& state) {
  const auto& data = GridWorkload(kClusters, kPerCluster);
  dmt::cluster::KMeansOptions options;
  options.k = kClusters;
  options.seed = 17;
  double dist_comps = 0.0;
  for (auto _ : state) {
    auto result = dmt::cluster::KMeans(data.points, options);
    DMT_CHECK(result.ok());
    dist_comps = static_cast<double>(result->distance_computations);
    benchmark::DoNotOptimize(result);
  }
  state.counters["dist_comps"] = dist_comps;
}

void BM_Birch(benchmark::State& state) {
  const auto& data = GridWorkload(kClusters, kPerCluster);
  dmt::cluster::BirchOptions options;
  options.global_clusters = kClusters;
  options.threshold = 1.5;
  options.max_leaf_entries_total = 4096;
  options.seed = 17;
  for (auto _ : state) {
    auto result = dmt::cluster::Birch(data.points, options);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_KMeansPlusPlus)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_Birch)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("cluster_quality", argc, argv,
                               PrintQualityTable);
}
