// TAB-A4 (VLDB'94-style itemset census) plus ablation 1 (hash-tree vs
// flat subset-lookup counting in Apriori).
//
// Prints the per-pass candidate/frequent table on T10.I4.D10K at 0.5%
// support — expected shape: candidates peak at pass 2, the downward-
// closure prune collapses later passes, and the census is identical for
// Apriori and FP-Growth (same frequent collection). The timed section
// contrasts the two counting strategies; the hash tree should win, and
// the gap should widen on the long-transaction workload.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "assoc/apriori.h"
#include "assoc/fp_growth.h"
#include "bench_main.h"
#include "bench_util.h"

namespace {

using dmt::bench::QuestWorkload;

dmt::assoc::MiningParams Params() {
  dmt::assoc::MiningParams params;
  params.min_support = 0.005;
  return params;
}

void PrintCensus() {
  const auto& db = QuestWorkload(10, 4, 10000);
  auto apriori = dmt::assoc::MineApriori(db, Params());
  auto fp = dmt::assoc::MineFpGrowth(db, Params());
  DMT_CHECK(apriori.ok());
  DMT_CHECK(fp.ok());
  std::printf("# TAB-A4: itemset census, T10.I4.D10K @ 0.5%% support\n");
  std::printf("# pass, apriori_candidates, apriori_frequent, fp_frequent\n");
  for (size_t p = 0; p < apriori->passes.size(); ++p) {
    size_t fp_frequent =
        p < fp->passes.size() ? fp->passes[p].frequent : 0;
    std::printf("census,%zu,%zu,%zu,%zu\n", apriori->passes[p].pass,
                apriori->passes[p].candidates, apriori->passes[p].frequent,
                fp_frequent);
  }
  DMT_CHECK(apriori->itemsets == fp->itemsets);
  std::printf("# total frequent itemsets: %zu (miners agree)\n\n",
              apriori->itemsets.size());
}

// The counting ablation runs at 1% support on the short- and medium-
// transaction workloads: subset lookup enumerates C(|t|, k) subsets per
// transaction, which is already painful at |t| = 10 and outright
// intractable on T20 at low support — that cliff is the point of the
// hash tree.
dmt::assoc::MiningParams AblationParams() {
  dmt::assoc::MiningParams params;
  params.min_support = 0.01;
  return params;
}

void BM_AprioriHashTree(benchmark::State& state) {
  const auto& db =
      QuestWorkload(static_cast<double>(state.range(0)), 4, 10000);
  dmt::assoc::AprioriOptions options;
  options.counting = dmt::assoc::AprioriOptions::CountingMethod::kHashTree;
  for (auto _ : state) {
    auto result = dmt::assoc::MineApriori(db, AblationParams(), options);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}

void BM_AprioriSubsetLookup(benchmark::State& state) {
  const auto& db =
      QuestWorkload(static_cast<double>(state.range(0)), 4, 10000);
  dmt::assoc::AprioriOptions options;
  options.counting =
      dmt::assoc::AprioriOptions::CountingMethod::kSubsetLookup;
  for (auto _ : state) {
    auto result = dmt::assoc::MineApriori(db, AblationParams(), options);
    DMT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_AprioriHashTree)
    ->Arg(5)
    ->Arg(10)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_AprioriSubsetLookup)
    ->Arg(5)
    ->Arg(10)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("assoc_census", argc, argv, PrintCensus);
}
