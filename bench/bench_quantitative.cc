// EXT-11 (quantitative & streaming rules): quantitative mining over the
// numeric Agrawal dataset — discretization plus rule generation across the
// four miners and thread counts — and sliding-window streaming mining over
// Quest batches at ε = s/10.
//
// Expected shape: quantitative rule sets are identical across miners (the
// table prints one row per miner as evidence); FP-Growth is the fastest
// backend on the densified quantized database. The streaming window mine
// stays cheap because only candidates near the support bar plus their
// negative border are counted exactly; border misses stay 0 on stationary
// batch streams.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "assoc/quantitative.h"
#include "assoc/streaming.h"
#include "bench_main.h"
#include "bench_util.h"
#include "core/check.h"
#include "gen/quest.h"

namespace {

using dmt::bench::AgrawalWorkload;

constexpr int kFunction = 2;
constexpr size_t kRecords = 20000;

dmt::assoc::QuantParams QuantParamsForBench() {
  dmt::assoc::QuantParams params;
  params.min_support = 0.1;
  params.num_bins = 8;
  params.min_confidence = 0.6;
  return params;
}

dmt::core::TransactionDatabase StreamBatch(uint64_t batch) {
  dmt::gen::QuestParams params;
  params.num_transactions = 2000;
  params.avg_transaction_size = 10;
  params.avg_pattern_size = 4;
  params.num_items = 500;
  params.num_patterns = 500;
  auto db = dmt::gen::GenerateQuestTransactions(params, 1996 + batch);
  DMT_CHECK(db.ok());
  return std::move(db).value();
}

const dmt::assoc::StreamingMiner& LoadedStreamingMiner() {
  static const dmt::assoc::StreamingMiner miner = [] {
    dmt::assoc::StreamingParams params;
    params.min_support = 0.02;
    params.window_batches = 4;
    auto built = dmt::assoc::StreamingMiner::Create(params);
    DMT_CHECK(built.ok());
    for (uint64_t b = 0; b < 6; ++b) {
      DMT_CHECK(built->AddBatch(StreamBatch(b)).ok());
    }
    return std::move(built).value();
  }();
  return miner;
}

void PrintQuantTable() {
  const auto& dataset = AgrawalWorkload(kFunction, kRecords);
  std::printf("# EXT-11: quantitative rules on Agrawal F%d, %zu records\n",
              kFunction, kRecords);
  std::printf("# miner, interval_items, itemsets, attribute_distinct, "
              "rules, partial_completeness\n");
  const char* names[] = {"apriori", "apriori_tid", "fp_growth", "eclat"};
  for (auto miner : {dmt::assoc::QuantMiner::kApriori,
                     dmt::assoc::QuantMiner::kAprioriTid,
                     dmt::assoc::QuantMiner::kFpGrowth,
                     dmt::assoc::QuantMiner::kEclat}) {
    auto rule_set =
        dmt::assoc::MineQuantitativeRules(dataset, QuantParamsForBench(),
                                          miner);
    DMT_CHECK(rule_set.ok());
    std::printf("quant,%s,%zu,%zu,%zu,%zu,%.3f\n",
                names[static_cast<int>(miner)], rule_set->items.size(),
                rule_set->itemsets_mined,
                rule_set->itemsets_attribute_distinct,
                rule_set->rules.size(), rule_set->partial_completeness);
  }

  const auto& miner = LoadedStreamingMiner();
  dmt::assoc::StreamingWindowStats stats;
  auto result = miner.MineWindow(&stats);
  DMT_CHECK(result.ok());
  std::printf("# window_transactions, summary_itemsets, candidates, "
              "checked, border_misses, frequent\n");
  std::printf("stream,%zu,%zu,%zu,%zu,%zu,%zu\n", stats.window_transactions,
              stats.summary_itemsets, stats.summary_candidates,
              stats.candidates_checked, stats.border_misses,
              result->itemsets.size());
  std::printf("\n");
}

void BM_QuantitativeMine(benchmark::State& state) {
  const auto& dataset = AgrawalWorkload(kFunction, kRecords);
  dmt::assoc::QuantParams params = QuantParamsForBench();
  params.num_threads = static_cast<size_t>(state.range(0));
  size_t rules = 0, interval_items = 0;
  for (auto _ : state) {
    auto rule_set = dmt::assoc::MineQuantitativeRules(dataset, params);
    DMT_CHECK(rule_set.ok());
    rules = rule_set->rules.size();
    interval_items = rule_set->items.size();
    benchmark::DoNotOptimize(rule_set);
  }
  state.counters["threads"] = static_cast<double>(params.num_threads);
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["interval_items"] = static_cast<double>(interval_items);
}

BENCHMARK(BM_QuantitativeMine)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_StreamingAddBatch(benchmark::State& state) {
  const dmt::core::TransactionDatabase batch = StreamBatch(99);
  dmt::assoc::StreamingParams params;
  params.min_support = 0.02;
  params.window_batches = 4;
  for (auto _ : state) {
    auto miner = dmt::assoc::StreamingMiner::Create(params);
    DMT_CHECK(miner.ok());
    DMT_CHECK(miner->AddBatch(batch).ok());
    benchmark::DoNotOptimize(miner);
  }
  state.counters["batch_transactions"] = static_cast<double>(batch.size());
}

BENCHMARK(BM_StreamingAddBatch)->Unit(benchmark::kMillisecond);

void BM_StreamingMineWindow(benchmark::State& state) {
  const auto& miner = LoadedStreamingMiner();
  dmt::assoc::StreamingWindowStats stats;
  size_t frequent = 0;
  for (auto _ : state) {
    auto result = miner.MineWindow(&stats);
    DMT_CHECK(result.ok());
    frequent = result->itemsets.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["window_transactions"] =
      static_cast<double>(stats.window_transactions);
  state.counters["candidates_checked"] =
      static_cast<double>(stats.candidates_checked);
  state.counters["border_misses"] = static_cast<double>(stats.border_misses);
  state.counters["frequent"] = static_cast<double>(frequent);
}

BENCHMARK(BM_StreamingMineWindow)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("quantitative", argc, argv, PrintQuantTable);
}
