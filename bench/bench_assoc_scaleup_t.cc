// FIG-A3 (VLDB'94 scale-up with transaction size): average transaction
// size T grows from 5 to 25 while D shrinks so that |D| * T (total item
// occurrences) stays constant; fixed absolute support threshold.
//
// Expected shape: time rises super-linearly in T for Apriori (longer
// transactions hit many more hash-tree branches) and mildly for the
// pattern-growth/vertical miners.
#include <benchmark/benchmark.h>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "bench_main.h"
#include "bench_util.h"

namespace {

using dmt::bench::QuestWorkload;

constexpr size_t kTotalItems = 200000;  // |D| * T held constant

dmt::assoc::MiningParams ParamsFor(size_t num_transactions,
                                   int64_t threads) {
  dmt::assoc::MiningParams params;
  // Fixed absolute support of 75 transactions, expressed as a fraction.
  params.min_support = 75.0 / static_cast<double>(num_transactions);
  params.num_threads = static_cast<size_t>(threads);
  return params;
}

template <typename Runner>
void RunCase(benchmark::State& state, const Runner& runner) {
  const auto t = static_cast<double>(state.range(0));
  const size_t d = kTotalItems / static_cast<size_t>(state.range(0));
  const auto& db = QuestWorkload(t, 4, d);
  auto params = ParamsFor(d, state.range(1));
  dmt::assoc::MiningResult last;
  for (auto _ : state) {
    auto result = runner(db, params);
    DMT_CHECK(result.ok());
    last = *std::move(result);
    benchmark::DoNotOptimize(last);
  }
  state.counters["avg_t"] = t;
  state.counters["transactions"] = static_cast<double>(d);
  state.counters["threads"] = static_cast<double>(state.range(1));
  // Thread-invariant work counters (0 for the counting miners).
  state.counters["cond_trees"] =
      static_cast<double>(last.conditional_trees_built);
  state.counters["fp_nodes"] = static_cast<double>(last.fp_nodes_allocated);
  state.counters["intersections"] =
      static_cast<double>(last.tidset_intersections);
}

void BM_Apriori(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineApriori(db, params);
  });
}
void BM_AprioriTid(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineAprioriTid(db, params);
  });
}
void BM_FpGrowth(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineFpGrowth(db, params);
  });
}
void BM_Eclat(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineEclat(db, params);
  });
}

void Sizes(benchmark::internal::Benchmark* bench) {
  for (int64_t t : {5, 10, 15, 20, 25}) bench->Args({t, 0});
  bench->Unit(benchmark::kMillisecond)->Iterations(2);
}

/// Thread column at the largest transaction size (the slowest point on
/// the curve), where parallel task grain is the most favorable.
void ThreadSizes(benchmark::internal::Benchmark* bench) {
  for (int64_t threads : {1, 2, 4}) bench->Args({25, threads});
  bench->Unit(benchmark::kMillisecond)->Iterations(2);
}

BENCHMARK(BM_Apriori)->Apply(Sizes)->Apply(ThreadSizes);
BENCHMARK(BM_AprioriTid)->Apply(Sizes)->Apply(ThreadSizes);
BENCHMARK(BM_FpGrowth)->Apply(Sizes)->Apply(ThreadSizes);
BENCHMARK(BM_Eclat)->Apply(Sizes)->Apply(ThreadSizes);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("assoc_scaleup_t", argc, argv);
}
