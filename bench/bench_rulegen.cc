// TAB-A5 (rule generation): rules produced and generation time on
// T10.I4.D10K (0.5% support) as the confidence threshold sweeps 50%..90%,
// with and without a lift >= 1 filter.
//
// Expected shape: rule count falls monotonically with confidence; the
// lift filter removes negatively-correlated rules without touching the
// high-confidence end; generation time is dominated by the frequent-set
// count, not the confidence threshold.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "assoc/fp_growth.h"
#include "assoc/rules.h"
#include "bench_main.h"
#include "bench_util.h"

namespace {

using dmt::bench::QuestWorkload;

const dmt::assoc::MiningResult& MinedItemsets() {
  static const dmt::assoc::MiningResult result = [] {
    dmt::assoc::MiningParams params;
    params.min_support = 0.005;
    auto mined =
        dmt::assoc::MineFpGrowth(QuestWorkload(10, 4, 10000), params);
    DMT_CHECK(mined.ok());
    return std::move(mined).value();
  }();
  return result;
}

void PrintRuleTable() {
  const auto& mined = MinedItemsets();
  std::printf("# TAB-A5: rules from %zu frequent itemsets\n",
              mined.itemsets.size());
  std::printf("# confidence_pct, rules, rules_with_lift>=1\n");
  for (int conf = 50; conf <= 90; conf += 10) {
    dmt::assoc::RuleParams params;
    params.min_confidence = conf / 100.0;
    auto rules = dmt::assoc::GenerateRules(mined, 10000, params);
    DMT_CHECK(rules.ok());
    params.min_lift = 1.0;
    auto lifted = dmt::assoc::GenerateRules(mined, 10000, params);
    DMT_CHECK(lifted.ok());
    std::printf("rules,%d,%zu,%zu\n", conf, rules->size(), lifted->size());
  }
  std::printf("\n");
}

void BM_GenerateRules(benchmark::State& state) {
  const auto& mined = MinedItemsets();
  dmt::assoc::RuleParams params;
  params.min_confidence = static_cast<double>(state.range(0)) / 100.0;
  size_t rules = 0;
  for (auto _ : state) {
    auto result = dmt::assoc::GenerateRules(mined, 10000, params);
    DMT_CHECK(result.ok());
    rules = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rules"] = static_cast<double>(rules);
}

BENCHMARK(BM_GenerateRules)
    ->Arg(50)
    ->Arg(70)
    ->Arg(90)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("rulegen", argc, argv, PrintRuleTable);
}
