// Microbenchmarks for the runtime-dispatched kernels: every compiled-in
// level runs the same workload (level is the first benchmark arg), so
// one binary reports the scalar baseline next to the AVX2/AVX-512 rows
// and the speedup is read straight off the table.
//
// Expected shape: the fused and+popcount kernels scale with vector
// width on Eclat-sized bitsets (the 1M-bit row is the D100K tidset
// case); the batched distance kernel beats the pairwise loop once dim
// is past the vector width; pairwise squared-euclidean rows are flat
// across levels by design (sequential accumulation is the bit-exactness
// contract, the batched form is where the win lives).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "bench_main.h"
#include "core/kernels/kernels.h"

namespace {

using dmt::core::kernels::AlignedVector;
using dmt::core::kernels::KernelLevel;
using dmt::core::kernels::KernelLevelName;
using dmt::core::kernels::KernelOps;
using dmt::core::kernels::MaxSupportedLevel;
using dmt::core::kernels::OpsForLevel;
using dmt::core::kernels::SoaBlock;

constexpr int64_t kBitsetBits[] = {1 << 10, 1 << 14, 1 << 17, 1 << 20};
constexpr int64_t kDistanceDims[] = {2, 8, 32, 128, 256};
constexpr size_t kBatchCandidates = 1024;

const AlignedVector<uint64_t>& Words(size_t n, uint64_t seed) {
  static std::map<std::pair<size_t, uint64_t>, AlignedVector<uint64_t>>
      cache;
  auto it = cache.find({n, seed});
  if (it == cache.end()) {
    std::mt19937_64 rng(seed);
    AlignedVector<uint64_t> words(n);
    for (auto& w : words) w = rng();
    it = cache.emplace(std::make_pair(n, seed), std::move(words)).first;
  }
  return it->second;
}

const AlignedVector<double>& Doubles(size_t n, uint64_t seed) {
  static std::map<std::pair<size_t, uint64_t>, AlignedVector<double>> cache;
  auto it = cache.find({n, seed});
  if (it == cache.end()) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-10.0, 10.0);
    AlignedVector<double> values(n);
    for (auto& v : values) v = dist(rng);
    it = cache.emplace(std::make_pair(n, seed), std::move(values)).first;
  }
  return it->second;
}

const KernelOps& LevelOps(benchmark::State& state) {
  const auto level = static_cast<KernelLevel>(state.range(0));
  const KernelOps* ops = OpsForLevel(level);
  state.SetLabel(KernelLevelName(level));
  return *ops;
}

/// Registers {level} x {size} rows for every compiled-in level the host
/// supports, so the scalar baseline always appears next to the vector
/// rows in one run.
void LevelAndSizeArgs(benchmark::internal::Benchmark* b,
                      const int64_t* sizes, size_t num_sizes) {
  b->ArgNames({"level", "n"});
  for (int level = 0; level <= static_cast<int>(MaxSupportedLevel());
       ++level) {
    if (OpsForLevel(static_cast<KernelLevel>(level)) == nullptr) continue;
    for (size_t s = 0; s < num_sizes; ++s) b->Args({level, sizes[s]});
  }
}

void BitsetArgs(benchmark::internal::Benchmark* b) {
  LevelAndSizeArgs(b, kBitsetBits, std::size(kBitsetBits));
}

void DistanceArgs(benchmark::internal::Benchmark* b) {
  LevelAndSizeArgs(b, kDistanceDims, std::size(kDistanceDims));
}

// -- bitset kernels ----------------------------------------------------

void BM_BitsetIntersectionCount(benchmark::State& state) {
  const KernelOps& ops = LevelOps(state);
  const size_t words = static_cast<size_t>(state.range(1)) / 64;
  const auto& a = Words(words, 1);
  const auto& b = Words(words, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops.intersection_count(a.data(), b.data(), words));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(words) * 8);
}
BENCHMARK(BM_BitsetIntersectionCount)->Apply(BitsetArgs);

void BM_BitsetIntersectInto(benchmark::State& state) {
  const KernelOps& ops = LevelOps(state);
  const size_t words = static_cast<size_t>(state.range(1)) / 64;
  const auto& a = Words(words, 3);
  const auto& b = Words(words, 4);
  AlignedVector<uint64_t> out(words);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops.intersect_into(out.data(), a.data(), b.data(), words));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 3 *
                          static_cast<int64_t>(words) * 8);
}
BENCHMARK(BM_BitsetIntersectInto)->Apply(BitsetArgs);

void BM_BitsetToIndices(benchmark::State& state) {
  const KernelOps& ops = LevelOps(state);
  const size_t words = static_cast<size_t>(state.range(1)) / 64;
  const auto& a = Words(words, 5);
  std::vector<uint32_t> out(words * 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.to_indices(a.data(), words, out.data()));
  }
}
BENCHMARK(BM_BitsetToIndices)->Apply(BitsetArgs);

void BM_MaskIsSubset(benchmark::State& state) {
  const KernelOps& ops = LevelOps(state);
  const size_t words = static_cast<size_t>(state.range(1)) / 64;
  const auto& super = Words(words, 6);
  // Genuine subset: worst case, the scan cannot early-exit.
  AlignedVector<uint64_t> sub(super);
  for (auto& w : sub) w &= 0x5555555555555555ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops.mask_is_subset(sub.data(), super.data(), words));
  }
}
BENCHMARK(BM_MaskIsSubset)->Apply(BitsetArgs);

// -- distance kernels --------------------------------------------------

void BM_PairwiseSquaredEuclidean(benchmark::State& state) {
  const KernelOps& ops = LevelOps(state);
  const size_t dim = static_cast<size_t>(state.range(1));
  const auto& a = Doubles(dim, 7);
  const auto& b = Doubles(dim, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.squared_euclidean(a.data(), b.data(), dim));
  }
}
BENCHMARK(BM_PairwiseSquaredEuclidean)->Apply(DistanceArgs);

void BM_PairwiseChebyshev(benchmark::State& state) {
  const KernelOps& ops = LevelOps(state);
  const size_t dim = static_cast<size_t>(state.range(1));
  const auto& a = Doubles(dim, 9);
  const auto& b = Doubles(dim, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.chebyshev(a.data(), b.data(), dim));
  }
}
BENCHMARK(BM_PairwiseChebyshev)->Apply(DistanceArgs);

/// The k-means assignment inner loop shape: one query point against
/// kBatchCandidates centers, through the batched kernel.
void BM_DistanceToManyBatched(benchmark::State& state) {
  const KernelOps& ops = LevelOps(state);
  const size_t dim = static_cast<size_t>(state.range(1));
  const auto& point = Doubles(dim, 11);
  const auto& rows = Doubles(kBatchCandidates * dim, 12);
  SoaBlock soa;
  soa.Assign(rows.data(), kBatchCandidates, dim);
  std::vector<double> out(kBatchCandidates);
  for (auto _ : state) {
    ops.squared_euclidean_to_many(point.data(), soa.data(), kBatchCandidates,
                                  kBatchCandidates, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["candidates"] = static_cast<double>(kBatchCandidates);
}
BENCHMARK(BM_DistanceToManyBatched)->Apply(DistanceArgs);

/// Same workload through the pairwise kernel per candidate — what the
/// assignment loop did before the batched kernel existed.
void BM_DistanceToManyPairwise(benchmark::State& state) {
  const KernelOps& ops = LevelOps(state);
  const size_t dim = static_cast<size_t>(state.range(1));
  const auto& point = Doubles(dim, 11);
  const auto& rows = Doubles(kBatchCandidates * dim, 12);
  std::vector<double> out(kBatchCandidates);
  for (auto _ : state) {
    for (size_t c = 0; c < kBatchCandidates; ++c) {
      out[c] =
          ops.squared_euclidean(point.data(), rows.data() + c * dim, dim);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["candidates"] = static_cast<double>(kBatchCandidates);
}
BENCHMARK(BM_DistanceToManyPairwise)->Apply(DistanceArgs);

void PrintDispatchTable() {
  std::printf("kernel dispatch: max_supported=%s active=%s\n",
              KernelLevelName(MaxSupportedLevel()),
              KernelLevelName(dmt::core::kernels::ActiveLevel()));
  std::printf("%-28s%-10s\n", "bench arg", "meaning");
  std::printf("%-28s%-10s\n", "level", "0=scalar 1=avx2 2=avx512");
  std::printf("%-28s%-10s\n", "n", "bits (bitset) or dim (distance)");
}

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("kernels", argc, argv, PrintDispatchTable);
}
