// FIG-A1 (VLDB'94 "time vs minimum support"): execution time of the four
// frequent-itemset miners on the T5.I2, T10.I4, and T20.I6 workloads
// (D = 10K here) as the support threshold drops from 2% to 0.25%.
//
// Expected shape: every curve grows as minsup falls; Apriori degrades
// fastest (candidate explosion), FP-Growth/Eclat stay flattest, AprioriTid
// sits between (its per-transaction candidate lists shrink in later
// passes but balloon in pass 2 at low support).
#include <benchmark/benchmark.h>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "bench_main.h"
#include "bench_util.h"

namespace {

using dmt::bench::QuestWorkload;

// Support thresholds in basis points (100 = 1%).
constexpr int64_t kMinsupBp[] = {200, 150, 100, 75, 50, 33, 25};

struct Workload {
  const char* name;
  double t;
  double i;
  size_t d;
};
constexpr Workload kWorkloads[] = {
    {"T5.I2.D10K", 5, 2, 10000},
    {"T10.I4.D10K", 10, 4, 10000},
    {"T20.I6.D10K", 20, 6, 10000},
    // Thread-scaling workload for the pattern-growth miners (the VLDB'94
    // scale the paper's headline tables use).
    {"T10.I4.D100K", 10, 4, 100000}};

dmt::assoc::MiningParams ParamsFor(int64_t minsup_bp, int64_t threads) {
  dmt::assoc::MiningParams params;
  params.min_support = static_cast<double>(minsup_bp) / 10000.0;
  params.num_threads = static_cast<size_t>(threads);
  return params;
}

template <typename Runner>
void RunCase(benchmark::State& state, const Runner& runner) {
  const Workload& workload = kWorkloads[state.range(0)];
  const auto& db = QuestWorkload(workload.t, workload.i, workload.d);
  auto params = ParamsFor(state.range(1), state.range(2));
  size_t itemsets = 0;
  dmt::assoc::MiningResult last;
  for (auto _ : state) {
    auto result = runner(db, params);
    DMT_CHECK(result.ok());
    itemsets = result->itemsets.size();
    last = *std::move(result);
    benchmark::DoNotOptimize(last);
  }
  state.counters["itemsets"] = static_cast<double>(itemsets);
  state.counters["threads"] = static_cast<double>(state.range(2));
  // Pattern-growth work counters (0 for the counting miners); identical
  // at every thread count by the determinism contract.
  state.counters["cond_trees"] =
      static_cast<double>(last.conditional_trees_built);
  state.counters["fp_nodes"] = static_cast<double>(last.fp_nodes_allocated);
  state.counters["intersections"] =
      static_cast<double>(last.tidset_intersections);
  state.SetLabel(std::string(workload.name) + " minsup=" +
                 std::to_string(state.range(1)) + "bp t=" +
                 std::to_string(state.range(2)));
}

void BM_Apriori(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineApriori(db, params);
  });
}

void BM_AprioriTid(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineAprioriTid(db, params);
  });
}

void BM_FpGrowth(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineFpGrowth(db, params);
  });
}

void BM_Eclat(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    return dmt::assoc::MineEclat(db, params);
  });
}

/// Dense-bitset tidsets: the representation the SIMD bitset kernels
/// accelerate (the default sorted-vector row is unaffected by dispatch
/// level). Compare against BM_Eclat at the same args for the
/// representation trade-off, and across DMT_KERNEL_LEVEL for the
/// kernel speedup (EXT-9).
void BM_EclatBitset(benchmark::State& state) {
  RunCase(state, [](const auto& db, const auto& params) {
    dmt::assoc::EclatOptions options;
    options.representation = dmt::assoc::EclatOptions::TidsetRepr::kBitsets;
    return dmt::assoc::MineEclat(db, params, options);
  });
}

void AllCases(benchmark::internal::Benchmark* bench) {
  for (int64_t workload = 0; workload < 3; ++workload) {
    for (int64_t minsup : kMinsupBp) {
      bench->Args({workload, minsup, 0});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(2);
}

/// Thread-scaling column for the counting miners: the T10.I4.D10K
/// workload at the two lowest (slowest) thresholds, at 1/2/4 worker
/// threads, so the speedup over the t=0 serial rows is visible.
void ThreadCases(benchmark::internal::Benchmark* bench) {
  for (int64_t minsup : {50, 25}) {
    for (int64_t threads : {1, 2, 4}) {
      bench->Args({1, minsup, threads});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(2);
}

/// Thread-scaling column for the pattern-growth miners: T10.I4.D100K at
/// the lowest threshold (their dominant regime), serial plus 1/2/4
/// threads, with the work counters as the thread-invariance signal.
void PatternGrowthThreadCases(benchmark::internal::Benchmark* bench) {
  for (int64_t threads : {0, 1, 2, 4}) {
    bench->Args({3, 25, threads});
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(2);
}

BENCHMARK(BM_Apriori)->Apply(AllCases)->Apply(ThreadCases);
BENCHMARK(BM_AprioriTid)->Apply(AllCases)->Apply(ThreadCases);
BENCHMARK(BM_FpGrowth)->Apply(AllCases)->Apply(PatternGrowthThreadCases);
BENCHMARK(BM_Eclat)->Apply(AllCases)->Apply(PatternGrowthThreadCases);
BENCHMARK(BM_EclatBitset)->Apply(AllCases)->Apply(PatternGrowthThreadCases);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("assoc_minsup", argc, argv);
}
