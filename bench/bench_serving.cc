// EXT-10 (serving layer): Quest traffic replayed against the dmtd
// serving engine at 1-64 concurrent client threads, sweeping the
// micro-batch size and the rule cache. Reported per case: QPS, p50/p99
// request latency, the realized mean batch size, and the cache hit rate.
//
// Expected shape: batch_size 1 serializes every request into its own
// pool task (per-task overhead dominates under concurrency); larger
// batches amortize staging and let the batched distance/containment
// kernels work, and the cache converts the hot-basket mass of the
// replay into sub-scan lookups.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "assoc/apriori.h"
#include "assoc/rules.h"
#include "bench_main.h"
#include "bench_util.h"
#include "core/transaction.h"
#include "gen/quest.h"
#include "serve/batch_queue.h"
#include "serve/model_bundle.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using dmt::serve::BatchQueue;
using dmt::serve::ModelBundle;
using dmt::serve::Request;
using dmt::serve::RequestType;
using dmt::serve::ServeOptions;
using dmt::serve::Server;

/// The replay database: T8.I4.D2K over a 200-item universe (the same
/// dense shape `dmtd --make-demo` serves — the default 1000-item Quest
/// cache is too sparse to yield any rules at 2% support).
const dmt::core::TransactionDatabase& ReplayDatabase() {
  static const dmt::core::TransactionDatabase db = [] {
    dmt::gen::QuestParams params;
    params.num_transactions = 2000;
    params.avg_transaction_size = 8.0;
    params.avg_pattern_size = 4.0;
    params.num_items = 200;
    params.num_patterns = 50;
    auto generated =
        dmt::gen::GenerateQuestTransactions(params, /*seed=*/1996);
    DMT_CHECK(generated.ok());
    return std::move(generated).value();
  }();
  return db;
}

/// Rules mined once from the replay database (~3.3k rules at minsup 2%,
/// minconf 0.5).
std::shared_ptr<const ModelBundle> ServingBundle() {
  static std::shared_ptr<const ModelBundle> bundle = [] {
    const auto& db = ReplayDatabase();
    dmt::assoc::MiningParams mining;
    mining.min_support = 0.02;
    auto mined = dmt::assoc::MineApriori(db, mining);
    DMT_CHECK(mined.ok());
    dmt::assoc::RuleParams params;
    params.min_confidence = 0.5;
    auto rules =
        dmt::assoc::GenerateRules(mined.value(), db.size(), params);
    DMT_CHECK(rules.ok());
    DMT_CHECK(!rules.value().empty());
    auto built = ModelBundle::FromParts(std::nullopt, std::nullopt,
                                        std::nullopt,
                                        std::move(rules).value());
    DMT_CHECK(built.ok());
    return built.value();
  }();
  return bundle;
}

/// Encoded top-8 recommendation requests replaying the mined database's
/// own transactions, with a deterministic hot-basket skew: three of
/// every four requests draw from a 16-transaction hot set (the cacheable
/// mass), the fourth is a unique cold transaction.
const std::vector<std::vector<std::byte>>& ReplayTraffic() {
  static const std::vector<std::vector<std::byte>> frames = [] {
    const auto& db = ReplayDatabase();
    constexpr size_t kRequests = 1024;
    constexpr size_t kHotSet = 16;
    std::vector<std::vector<std::byte>> out;
    out.reserve(kRequests);
    for (size_t i = 0; i < kRequests; ++i) {
      size_t tx = (i % 4 == 0) ? (kHotSet + i) % db.size()
                               : (i * 7) % kHotSet;
      auto items = db.transaction(tx);
      Request request;
      request.id = i + 1;
      request.type = RequestType::kRecommend;
      request.top_k = 8;
      request.count = 1;
      request.baskets.emplace_back(items.begin(), items.end());
      out.push_back(EncodeRequestFrame(request));
    }
    return out;
  }();
  return frames;
}

uint64_t ServeCounter(const char* name) {
  return dmt::obs::Registry::Global().CounterValue(name);
}

// Args: clients, batch_size, cache_capacity, telemetry (the EXT-12
// on/off overhead pair shares the clients=8/batch=8/cache=512 cell).
void BM_ServeReplay(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const uint32_t batch_size = static_cast<uint32_t>(state.range(1));
  const size_t cache_capacity = static_cast<size_t>(state.range(2));
  const bool telemetry = state.range(3) != 0;
  const auto& traffic = ReplayTraffic();

  dmt::obs::Registry::Global().Reset();
  ServeOptions options;
  options.batch_size = batch_size;
  options.batch_timeout_us = 100;
  options.num_threads = 4;
  options.cache_capacity = cache_capacity;
  options.latency_telemetry = telemetry;
  Server server(ServingBundle(), options);

  // Client-observed latency (submit -> response callback), recorded into
  // a registry histogram — atomic buckets, so no mutex in the callback.
  dmt::obs::Histogram latency("bench/serve/client_us");
  size_t total_requests = 0;

  for (auto _ : state) {
    BatchQueue queue(&server);
    std::vector<std::thread> threads;
    const size_t per_client = traffic.size() / clients;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t i = c * per_client; i < (c + 1) * per_client; ++i) {
          const auto start = std::chrono::steady_clock::now();
          queue.Submit(traffic[i], [&, start](std::vector<std::byte>) {
            const double us =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            latency.Record(us <= 0.0 ? 0 : static_cast<uint64_t>(us));
          });
        }
      });
    }
    for (std::thread& t : threads) t.join();
    queue.Flush();
    total_requests += per_client * clients;
  }

  state.SetItemsProcessed(static_cast<int64_t>(total_requests));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  const dmt::obs::HistogramData latency_data = latency.Data();
  state.counters["p50_us"] =
      static_cast<double>(latency_data.Percentile(50.0));
  state.counters["p99_us"] =
      static_cast<double>(latency_data.Percentile(99.0));
  const uint64_t requests = ServeCounter("serve/requests");
  const uint64_t batches = ServeCounter("serve/batches");
  state.counters["mean_batch"] =
      batches == 0 ? 0.0
                   : static_cast<double>(requests) /
                         static_cast<double>(batches);
  const uint64_t lookups = ServeCounter("serve/cache_lookups");
  const uint64_t hits = ServeCounter("serve/cache_hits");
  state.counters["cache_hit_rate"] =
      lookups == 0 ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(lookups);
}

void Configs(benchmark::internal::Benchmark* bench) {
  // The EXT-10 ablation grid: batch 1 vs 8 vs 64, cache off vs on,
  // at light and heavy client concurrency.
  for (int64_t clients : {1, 8, 64}) {
    for (int64_t batch : {1, 8, 64}) {
      for (int64_t cache : {0, 512}) {
        bench->Args({clients, batch, cache, 1});
      }
    }
  }
  // EXT-12: telemetry-off twins of the clients=8/batch=8 cells; each
  // pair bounds the histogram+span recording overhead. cache=0 is the
  // representative hot path (every request scans rules); cache=512 is
  // the worst case for relative overhead (cache hits make the request
  // itself nearly free).
  bench->Args({8, 8, 0, 0});
  bench->Args({8, 8, 512, 0});
  bench->Unit(benchmark::kMillisecond)->UseRealTime();
}

BENCHMARK(BM_ServeReplay)->Apply(Configs);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("serving", argc, argv);
}
