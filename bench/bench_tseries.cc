// EXT-2 (Agrawal, Faloutsos & Swami FODO'93 / Faloutsos et al. SIGMOD'94):
// feature-filtered subsequence similarity search on random walks — filter
// selectivity and query time vs the number of DFT coefficients, against a
// brute-force scan.
//
// Expected shape: random-walk energy concentrates in the first few
// coefficients, so 2-3 of them already eliminate almost all windows
// (the papers' "optimal f is small" result); more coefficients keep
// shrinking the candidate set with diminishing returns while the feature
// index gets slower per node, giving the characteristic U-shaped query
// cost with a shallow minimum around f = 2-4.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "core/check.h"
#include "core/timer.h"
#include "gen/timeseries.h"
#include "tseries/similarity.h"

namespace {

constexpr size_t kWindow = 128;
constexpr double kEpsilon = 4.0;

const std::vector<std::vector<double>>& Walks() {
  static const std::vector<std::vector<double>> walks = [] {
    dmt::gen::RandomWalkParams params;
    params.num_series = 100;
    params.length = 1024;
    params.step_stddev = 1.0;
    auto result = dmt::gen::GenerateRandomWalks(params, /*seed=*/1993);
    DMT_CHECK(result.ok());
    return std::move(result).value();
  }();
  return walks;
}

void PrintSelectivityTable() {
  const auto& walks = Walks();
  std::printf("# EXT-2: DFT-filtered subsequence search, 100 walks x 1024, "
              "window %zu, eps %.1f\n",
              kWindow, kEpsilon);
  std::printf(
      "# coefficients, build_ms, query_ms, candidates, matches, windows\n");
  // Query: a real window from the data (guarantees at least one match).
  std::span<const double> query(walks[42].data() + 500, kWindow);
  for (size_t coefficients : {1u, 2u, 3u, 4u, 6u, 8u}) {
    dmt::tseries::SubsequenceIndexOptions options;
    options.window = kWindow;
    options.num_coefficients = coefficients;
    dmt::core::WallTimer build_timer;
    auto index = dmt::tseries::SubsequenceIndex::Build(walks, options);
    DMT_CHECK(index.ok());
    double build_ms = build_timer.ElapsedMillis();
    dmt::tseries::QueryStats stats;
    dmt::core::WallTimer query_timer;
    auto matches = index->RangeQuery(query, kEpsilon, &stats);
    DMT_CHECK(matches.ok());
    std::printf("selectivity,%zu,%.1f,%.3f,%zu,%zu,%zu\n", coefficients,
                build_ms, query_timer.ElapsedMillis(), stats.candidates,
                stats.matches, stats.windows_indexed);
  }
  // Brute-force reference.
  dmt::tseries::SubsequenceIndexOptions options;
  options.window = kWindow;
  auto index = dmt::tseries::SubsequenceIndex::Build(walks, options);
  DMT_CHECK(index.ok());
  dmt::tseries::QueryStats stats;
  dmt::core::WallTimer timer;
  auto matches = index->RangeQueryBruteForce(query, kEpsilon, &stats);
  DMT_CHECK(matches.ok());
  std::printf("selectivity,brute,n/a,%.3f,%zu,%zu,%zu\n\n",
              timer.ElapsedMillis(), stats.candidates, stats.matches,
              stats.windows_indexed);
}

void BM_IndexedQuery(benchmark::State& state) {
  const auto& walks = Walks();
  dmt::tseries::SubsequenceIndexOptions options;
  options.window = kWindow;
  options.num_coefficients = static_cast<size_t>(state.range(0));
  auto index = dmt::tseries::SubsequenceIndex::Build(walks, options);
  DMT_CHECK(index.ok());
  std::span<const double> query(walks[42].data() + 500, kWindow);
  for (auto _ : state) {
    auto matches = index->RangeQuery(query, kEpsilon);
    DMT_CHECK(matches.ok());
    benchmark::DoNotOptimize(matches);
  }
}

void BM_BruteForceQuery(benchmark::State& state) {
  const auto& walks = Walks();
  dmt::tseries::SubsequenceIndexOptions options;
  options.window = kWindow;
  auto index = dmt::tseries::SubsequenceIndex::Build(walks, options);
  DMT_CHECK(index.ok());
  std::span<const double> query(walks[42].data() + 500, kWindow);
  for (auto _ : state) {
    auto matches = index->RangeQueryBruteForce(query, kEpsilon);
    DMT_CHECK(matches.ok());
    benchmark::DoNotOptimize(matches);
  }
}

BENCHMARK(BM_IndexedQuery)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BruteForceQuery)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("tseries", argc, argv, PrintSelectivityTable);
}
