// FIG-C2 (TKDE'93 scale-up): tree-induction time vs training-set size
// (1K to 50K records of Agrawal F2).
//
// Expected shape: O(n log n)-ish growth for both C4.5 and CART (sorting
// for numeric thresholds dominates); CART's binary categorical scan adds
// a constant factor over C4.5's multiway scan. SLIQ (EDBT'96) presorts
// each attribute once and grows breadth-first, so it pulls ahead of the
// sort-per-node CART as n (and tree depth) grows — the paper's central
// scalability claim.
#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "bench_util.h"
#include "tree/builder.h"
#include "tree/sliq.h"

namespace {

using dmt::bench::AgrawalWorkload;

void BM_C45(benchmark::State& state) {
  const auto& data =
      AgrawalWorkload(2, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto tree = dmt::tree::BuildC45(data);
    DMT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
}

void BM_Cart(benchmark::State& state) {
  const auto& data =
      AgrawalWorkload(2, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto tree = dmt::tree::BuildCart(data);
    DMT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
}

void BM_Sliq(benchmark::State& state) {
  const auto& data =
      AgrawalWorkload(2, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto tree = dmt::tree::BuildSliq(data);
    DMT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
}

void Sizes(benchmark::internal::Benchmark* bench) {
  for (int64_t n : {1000, 2000, 5000, 10000, 20000, 50000}) bench->Arg(n);
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_C45)->Apply(Sizes);
BENCHMARK(BM_Cart)->Apply(Sizes);
BENCHMARK(BM_Sliq)->Apply(Sizes);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("tree_scaleup", argc, argv);
}
