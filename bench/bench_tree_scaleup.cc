// FIG-C2 (TKDE'93 scale-up): tree-induction time vs training-set size
// (1K to 100K records of Agrawal F2), plus the EXT-5 split-search
// ablation: naive re-sorting vs presorted attribute indices vs the
// threaded presorted search.
//
// Expected shape: the naive engine re-sorts every numeric attribute at
// every node — O(depth * attrs * n log n) — while the presorted engine
// sorts once and partitions, so their gap widens with n and tree depth.
// SLIQ (EDBT'96) applies the same presorting breadth-first with a class
// list. Thread rows measure the deterministic chunk-parallel split search
// (bit-identical trees at any thread count); on a single-core host they
// record dispatch overhead, not speedup (EXT-3 caveat).
//
// Each case reports `split_scan_rows` — (row, attribute) visits during
// candidate-split evaluation — which is invariant across engines and
// thread counts: the engines do the same statistical work, only cheaper
// per visit.
#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "bench_util.h"
#include "tree/builder.h"
#include "tree/sliq.h"

namespace {

using dmt::bench::AgrawalWorkload;

/// Runs BuildTree on Agrawal F2 with state.range(0) records and
/// state.range(1) worker threads, exporting the shared counters.
void RunGreedy(benchmark::State& state, dmt::tree::TreeOptions options) {
  const auto& data =
      AgrawalWorkload(2, static_cast<size_t>(state.range(0)));
  options.num_threads = static_cast<size_t>(state.range(1));
  dmt::tree::TreeBuildStats stats;
  for (auto _ : state) {
    auto tree = dmt::tree::BuildTree(data, options, &stats);
    DMT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["split_scan_rows"] =
      static_cast<double>(stats.split_scan_rows);
}

void BM_C45(benchmark::State& state) {
  dmt::tree::TreeOptions options;  // C4.5 defaults: gain ratio, multiway.
  RunGreedy(state, options);
}

void BM_C45Naive(benchmark::State& state) {
  dmt::tree::TreeOptions options;
  options.split_search = dmt::tree::SplitSearch::kNaive;
  RunGreedy(state, options);
}

void BM_Cart(benchmark::State& state) {
  dmt::tree::TreeOptions options;
  options.criterion = dmt::tree::SplitCriterion::kGini;
  options.categorical_style = dmt::tree::CategoricalSplitStyle::kBinary;
  RunGreedy(state, options);
}

void BM_CartNaive(benchmark::State& state) {
  dmt::tree::TreeOptions options;
  options.criterion = dmt::tree::SplitCriterion::kGini;
  options.categorical_style = dmt::tree::CategoricalSplitStyle::kBinary;
  options.split_search = dmt::tree::SplitSearch::kNaive;
  RunGreedy(state, options);
}

void BM_Sliq(benchmark::State& state) {
  const auto& data =
      AgrawalWorkload(2, static_cast<size_t>(state.range(0)));
  dmt::tree::SliqOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  dmt::tree::TreeBuildStats stats;
  for (auto _ : state) {
    auto tree = dmt::tree::BuildSliq(data, options, &stats);
    DMT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["split_scan_rows"] =
      static_cast<double>(stats.split_scan_rows);
}

/// Serial scale-up sweep: {records, 0 threads}.
void Sizes(benchmark::internal::Benchmark* bench) {
  for (int64_t n : {1000, 2000, 5000, 10000, 20000, 50000, 100000}) {
    bench->Args({n, 0});
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

/// Thread sweep at the largest size (deterministic-merge overhead row).
void Threads(benchmark::internal::Benchmark* bench) {
  for (int64_t threads : {2, 4}) bench->Args({100000, threads});
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_C45)->Apply(Sizes)->Apply(Threads);
BENCHMARK(BM_Cart)->Apply(Sizes)->Apply(Threads);
BENCHMARK(BM_Sliq)->Apply(Sizes)->Apply(Threads);
// Ablation baselines: the naive engines only need the endpoints of the
// sweep to expose the widening gap.
void AblationSizes(benchmark::internal::Benchmark* bench) {
  for (int64_t n : {1000, 10000, 100000}) bench->Args({n, 0});
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}
BENCHMARK(BM_C45Naive)->Apply(AblationSizes);
BENCHMARK(BM_CartNaive)->Apply(AblationSizes);

}  // namespace

int main(int argc, char** argv) {
  return dmt::bench::BenchMain("tree_scaleup", argc, argv);
}
