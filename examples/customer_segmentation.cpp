// Clustering walkthrough: segments a synthetic 2-d customer population
// with k-means, BIRCH, DBSCAN, and Ward agglomerative clustering, scoring
// each against the generator's ground truth.
//
//   $ ./build/examples/customer_segmentation [clusters] [points_per_cluster]
#include <cstdio>
#include <cstdlib>

#include "cluster/agglomerative.h"
#include "cluster/birch.h"
#include "cluster/clarans.h"
#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "core/timer.h"
#include "eval/clustering_metrics.h"
#include "gen/mixture.h"

namespace {

void Score(const char* name, double millis,
           const std::vector<uint32_t>& truth,
           const std::vector<uint32_t>& predicted) {
  auto ari = dmt::eval::AdjustedRandIndex(truth, predicted);
  auto nmi = dmt::eval::NormalizedMutualInformation(truth, predicted);
  auto purity = dmt::eval::Purity(truth, predicted);
  if (!ari.ok() || !nmi.ok() || !purity.ok()) {
    std::fprintf(stderr, "%s: scoring failed\n", name);
    return;
  }
  std::printf("%-18s ARI %.4f  NMI %.4f  purity %.4f  (%.1f ms)\n", name,
              *ari, *nmi, *purity, millis);
}

}  // namespace

int main(int argc, char** argv) {
  size_t clusters = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 9;
  size_t per_cluster = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 300;

  auto data = dmt::gen::GenerateBirchGrid(clusters, per_cluster,
                                          /*spacing=*/20.0, /*stddev=*/1.2,
                                          /*seed=*/11);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu customers in %zu planted segments (2-d grid layout)\n\n",
              data->points.size(), clusters);
  const std::vector<uint32_t>& truth = data->labels;

  {
    dmt::cluster::KMeansOptions options;
    options.k = clusters;
    options.seed = 5;
    dmt::core::WallTimer timer;
    auto result = dmt::cluster::KMeans(data->points, options);
    if (result.ok()) {
      Score("k-means++", timer.ElapsedMillis(), truth,
            result->assignments);
      std::printf("  SSE %.1f in %zu iterations\n", result->sse,
                  result->iterations);
    }
  }
  {
    dmt::cluster::BirchOptions options;
    options.global_clusters = clusters;
    options.threshold = 2.5;
    options.seed = 5;
    dmt::core::WallTimer timer;
    auto result = dmt::cluster::Birch(data->points, options);
    if (result.ok()) {
      Score("BIRCH", timer.ElapsedMillis(), truth,
            result->clustering.assignments);
      std::printf("  %zu CF leaf entries summarize %zu points "
                  "(threshold %.2f, %zu rebuilds)\n",
                  result->num_leaf_entries, data->points.size(),
                  result->final_threshold, result->rebuilds);
    }
  }
  {
    dmt::cluster::DbscanOptions options;
    options.eps = 3.0;
    options.min_points = 8;
    dmt::core::WallTimer timer;
    auto result = dmt::cluster::Dbscan(data->points, options);
    if (result.ok()) {
      // Map noise to its own label for scoring.
      std::vector<uint32_t> predicted(result->labels.size());
      size_t noise = 0;
      for (size_t i = 0; i < result->labels.size(); ++i) {
        if (result->labels[i] == dmt::cluster::DbscanResult::kNoise) {
          predicted[i] = static_cast<uint32_t>(result->num_clusters);
          ++noise;
        } else {
          predicted[i] = static_cast<uint32_t>(result->labels[i]);
        }
      }
      Score("DBSCAN", timer.ElapsedMillis(), truth, predicted);
      std::printf("  %zu clusters found, %zu points flagged as noise\n",
                  result->num_clusters, noise);
    }
  }
  {
    dmt::cluster::ClaransOptions options;
    options.k = clusters;
    options.num_local = 2;
    options.max_neighbors = 1000;
    options.seed = 5;
    dmt::core::WallTimer timer;
    auto result = dmt::cluster::Clarans(data->points, options);
    if (result.ok()) {
      Score("CLARANS", timer.ElapsedMillis(), truth, result->assignments);
      std::printf("  medoid cost %.1f after %zu accepted swaps\n",
                  result->total_cost, result->accepted_swaps);
    }
  }
  if (data->points.size() <= 4096) {
    dmt::core::WallTimer timer;
    auto dendrogram = dmt::cluster::AgglomerativeCluster(
        data->points, dmt::cluster::Linkage::kWard);
    if (dendrogram.ok()) {
      auto labels = dendrogram->CutAtK(clusters);
      if (labels.ok()) {
        Score("Ward (NN-chain)", timer.ElapsedMillis(), truth, *labels);
      }
    }
  } else {
    std::printf("Ward (NN-chain)    skipped: > 4096 points "
                "(dense-matrix method)\n");
  }
  return 0;
}
