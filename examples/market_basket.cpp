// Market-basket analysis on a synthetic IBM Quest workload: compares the
// four frequent-itemset miners, summarizes the pattern structure, and
// prints the strongest rules by lift.
//
//   $ ./build/examples/market_basket [num_transactions] [min_support]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "assoc/postprocess.h"
#include "assoc/rules.h"
#include "core/timer.h"
#include "gen/quest.h"

int main(int argc, char** argv) {
  size_t num_transactions = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                     : 20000;
  double min_support = argc > 2 ? std::strtod(argv[2], nullptr) : 0.01;

  dmt::gen::QuestParams workload;
  workload.num_transactions = num_transactions;
  workload.avg_transaction_size = 10.0;
  workload.avg_pattern_size = 4.0;
  workload.num_items = 1000;
  workload.num_patterns = 2000;
  auto db = dmt::gen::GenerateQuestTransactions(workload, /*seed=*/42);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("workload %s: %zu transactions, avg length %.2f, %zu items\n",
              workload.Name().c_str(), db->size(), db->average_length(),
              db->item_universe());

  dmt::assoc::MiningParams params;
  params.min_support = min_support;

  struct Entry {
    const char* name;
    dmt::core::Result<dmt::assoc::MiningResult> (*run)(
        const dmt::core::TransactionDatabase&,
        const dmt::assoc::MiningParams&);
  };
  auto run_apriori = [](const dmt::core::TransactionDatabase& database,
                        const dmt::assoc::MiningParams& mining_params) {
    return dmt::assoc::MineApriori(database, mining_params);
  };
  auto run_tid = [](const dmt::core::TransactionDatabase& database,
                    const dmt::assoc::MiningParams& mining_params) {
    return dmt::assoc::MineAprioriTid(database, mining_params);
  };
  auto run_fp = [](const dmt::core::TransactionDatabase& database,
                   const dmt::assoc::MiningParams& mining_params) {
    return dmt::assoc::MineFpGrowth(database, mining_params,
                                    dmt::assoc::FpGrowthOptions{});
  };
  auto run_eclat = [](const dmt::core::TransactionDatabase& database,
                      const dmt::assoc::MiningParams& mining_params) {
    return dmt::assoc::MineEclat(database, mining_params,
                                 dmt::assoc::EclatOptions{});
  };
  const Entry miners[] = {{"Apriori", run_apriori},
                          {"AprioriTid", run_tid},
                          {"FP-Growth", run_fp},
                          {"Eclat", run_eclat}};

  dmt::assoc::MiningResult reference;
  std::printf("\n%-12s %10s %12s\n", "miner", "itemsets", "time (ms)");
  for (const Entry& miner : miners) {
    dmt::core::WallTimer timer;
    auto result = miner.run(*db, params);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", miner.name,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %10zu %12.1f\n", miner.name,
                result->itemsets.size(), timer.ElapsedMillis());
    reference = std::move(result).value();
  }

  auto maximal = dmt::assoc::FilterMaximal(reference.itemsets);
  auto closed = dmt::assoc::FilterClosed(reference.itemsets);
  std::printf("\npattern structure: %zu frequent, %zu closed, %zu maximal\n",
              reference.itemsets.size(), closed.size(), maximal.size());
  std::printf("per-pass census (k: candidates -> frequent):\n");
  for (const auto& pass : reference.passes) {
    std::printf("  %zu: %zu -> %zu\n", pass.pass, pass.candidates,
                pass.frequent);
  }

  dmt::assoc::RuleParams rule_params;
  rule_params.min_confidence = 0.6;
  rule_params.min_lift = 1.0;
  auto rules = dmt::assoc::GenerateRules(reference, db->size(), rule_params);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%zu rules at confidence >= %.2f; top 10 by lift:\n",
              rules->size(), rule_params.min_confidence);
  std::stable_sort(rules->begin(), rules->end(),
                   [](const dmt::assoc::AssociationRule& a,
                      const dmt::assoc::AssociationRule& b) {
                     return a.lift > b.lift;
                   });
  for (size_t i = 0; i < rules->size() && i < 10; ++i) {
    std::printf("  %s\n", dmt::assoc::FormatRule((*rules)[i]).c_str());
  }
  return 0;
}
