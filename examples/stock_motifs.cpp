// Time-series similarity walkthrough: generates random-walk "price"
// series, plants a noisy copy of a query pattern, and retrieves all
// near-matches with the DFT-filtered subsequence index.
//
//   $ ./build/examples/stock_motifs [num_series] [length]
#include <cstdio>
#include <cstdlib>

#include "core/timer.h"
#include "gen/timeseries.h"
#include "tseries/similarity.h"

int main(int argc, char** argv) {
  size_t num_series = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  size_t length = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1024;

  dmt::gen::RandomWalkParams params;
  params.num_series = num_series;
  params.length = length;
  auto walks = dmt::gen::GenerateRandomWalks(params, /*seed=*/2026);
  if (!walks.ok()) {
    std::fprintf(stderr, "%s\n", walks.status().ToString().c_str());
    return 1;
  }

  // The query: a real window from series 0; plant a noisy copy elsewhere.
  const size_t window = 128;
  if (length < 2 * window) {
    std::fprintf(stderr, "series length must be at least %zu\n",
                 2 * window);
    return 1;
  }
  const size_t query_offset = window / 2;
  const size_t plant_offset = length - window - 1;
  std::vector<double> query(
      walks->at(0).begin() + static_cast<std::ptrdiff_t>(query_offset),
      walks->at(0).begin() +
          static_cast<std::ptrdiff_t>(query_offset + window));
  auto planted =
      dmt::gen::PlantMotif(&*walks, num_series / 2, plant_offset, query,
                           /*noise_stddev=*/0.2, /*seed=*/7);
  if (!planted.ok()) {
    std::fprintf(stderr, "%s\n", planted.ToString().c_str());
    return 1;
  }

  dmt::tseries::SubsequenceIndexOptions options;
  options.window = window;
  options.num_coefficients = 3;
  dmt::core::WallTimer build_timer;
  auto index = dmt::tseries::SubsequenceIndex::Build(*walks, options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu sliding windows of %zu series in %.0f ms "
              "(3 DFT coefficients each)\n",
              index->num_windows(), num_series,
              build_timer.ElapsedMillis());

  dmt::tseries::QueryStats stats;
  dmt::core::WallTimer query_timer;
  auto matches = index->RangeQuery(query, /*epsilon=*/5.0, &stats);
  if (!matches.ok()) {
    std::fprintf(stderr, "%s\n", matches.status().ToString().c_str());
    return 1;
  }
  std::printf("range query (eps 5.0): %zu candidates of %zu windows "
              "passed the DFT filter, %zu verified, %.2f ms\n",
              stats.candidates, stats.windows_indexed, stats.matches,
              query_timer.ElapsedMillis());
  for (const auto& match : *matches) {
    std::printf("  series %u @ offset %u  distance %.3f%s\n", match.series,
                match.offset, match.distance,
                match.series == num_series / 2 &&
                        match.offset == plant_offset
                    ? "   <- the planted motif"
                    : "");
  }

  dmt::core::WallTimer brute_timer;
  auto brute = index->RangeQueryBruteForce(query, 5.0);
  if (brute.ok()) {
    std::printf("brute-force scan finds the same %zu matches in %.2f ms\n",
                brute->size(), brute_timer.ElapsedMillis());
  }
  return 0;
}
