// Sequential-pattern walkthrough: generates a synthetic customer purchase
// history and mines it with GSP, reporting the maximal patterns.
//
//   $ ./build/examples/purchase_sequences [customers] [min_support]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/timer.h"
#include "gen/seqgen.h"
#include "seq/gsp.h"

int main(int argc, char** argv) {
  size_t customers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  double min_support = argc > 2 ? std::strtod(argv[2], nullptr) : 0.01;

  dmt::gen::SequenceGenParams workload;
  workload.num_customers = customers;
  workload.avg_transactions_per_customer = 8.0;
  workload.avg_items_per_transaction = 2.5;
  workload.avg_pattern_elements = 4.0;
  workload.avg_pattern_itemset_size = 1.25;
  workload.num_items = 500;
  auto db = dmt::gen::GenerateSequences(workload, /*seed=*/99);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("workload %s: %zu customers, avg %.1f transactions each\n",
              workload.Name().c_str(), db->size(), db->average_elements());

  dmt::seq::SeqMiningParams params;
  params.min_support = min_support;
  dmt::core::WallTimer timer;
  auto result = dmt::seq::MineGsp(*db, params);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmined %zu frequent sequential patterns in %.1f ms "
              "(min support %.2f%%)\n",
              result->patterns.size(), timer.ElapsedMillis(),
              min_support * 100);
  std::printf("per-pass census (items: candidates -> frequent):\n");
  for (const auto& pass : result->passes) {
    std::printf("  %zu: %zu -> %zu\n", pass.pass, pass.candidates,
                pass.frequent);
  }

  auto maximal = dmt::seq::FilterMaximalSequences(result->patterns);
  std::printf("\n%zu maximal patterns; longest 10:\n", maximal.size());
  std::stable_sort(maximal.begin(), maximal.end(),
                   [](const dmt::seq::SequencePattern& a,
                      const dmt::seq::SequencePattern& b) {
                     return a.sequence.TotalItems() >
                            b.sequence.TotalItems();
                   });
  for (size_t i = 0; i < maximal.size() && i < 10; ++i) {
    std::printf("  %s\n",
                dmt::seq::FormatSequencePattern(maximal[i]).c_str());
  }
  return 0;
}
