// Classification walkthrough on the Agrawal loan-applicant generator:
// trains every classifier in the library on one of the ten published
// predicates, reports hold-out quality, and renders the decision tree.
//
//   $ ./build/examples/loan_screening [function 1..10] [records]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "classify/knn.h"
#include "classify/naive_bayes.h"
#include "classify/one_r.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "gen/agrawal.h"
#include "tree/builder.h"
#include "tree/discretize.h"
#include "tree/pruning.h"

namespace {

void Report(const char* name, const dmt::core::Dataset& test,
            const std::vector<uint32_t>& predictions) {
  std::vector<uint32_t> truth(test.labels().begin(), test.labels().end());
  auto matrix = dmt::eval::ConfusionMatrix::FromPredictions(
      test.num_classes(), truth, predictions);
  if (!matrix.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 matrix.status().ToString().c_str());
    return;
  }
  std::printf("%-22s accuracy %.4f  macro-F1 %.4f\n", name,
              matrix->Accuracy(), matrix->MacroF1());
}

}  // namespace

int main(int argc, char** argv) {
  int function = argc > 1 ? std::atoi(argv[1]) : 2;
  size_t records = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10000;

  dmt::gen::AgrawalParams workload;
  workload.function = function;
  workload.num_records = records;
  workload.perturbation = 0.05;
  auto data = dmt::gen::GenerateAgrawal(workload, /*seed=*/7);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto counts = data->ClassCounts();
  std::printf(
      "Agrawal function F%d, %zu records (groupA %zu / groupB %zu), 5%% "
      "attribute perturbation\n\n",
      function, records, counts[0], counts[1]);

  auto split =
      dmt::eval::StratifiedTrainTestSplit(data->labels(), 0.3, /*seed=*/3);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }
  dmt::core::Dataset train, test;
  dmt::eval::MaterializeSplit(*data, *split, &train, &test);

  // Decision trees.
  auto c45 = dmt::tree::BuildC45(train);
  if (c45.ok()) {
    Report("C4.5 (unpruned)", test, c45->PredictAll(test));
    auto pruned = *c45;
    if (dmt::tree::PessimisticPrune(&pruned).ok()) {
      Report("C4.5 (pessimistic)", test, pruned.PredictAll(test));
      std::printf("  leaves %zu -> %zu after pruning\n", c45->NumLeaves(),
                  pruned.NumLeaves());
    }
  }
  auto cart = dmt::tree::BuildCart(train);
  if (cart.ok()) {
    Report("CART (unpruned)", test, cart->PredictAll(test));
    auto alpha = dmt::tree::SelectAlphaByValidation(*cart, test);
    if (alpha.ok()) {
      auto pruned = *cart;
      dmt::tree::CostComplexityPrune(&pruned, *alpha);
      Report("CART (cost-complexity)", test, pruned.PredictAll(test));
    }
  }
  // ID3 needs categorical data: discretize the numeric attributes.
  auto binned_train = dmt::tree::EqualWidthDiscretize(train, 8);
  auto binned_test = dmt::tree::EqualWidthDiscretize(test, 8);
  if (binned_train.ok() && binned_test.ok()) {
    auto id3 = dmt::tree::BuildId3(*binned_train);
    if (id3.ok()) {
      Report("ID3 (8 equal-width bins)", *binned_test,
             id3->PredictAll(*binned_test));
    }
  }

  // Baseline and statistical classifiers.
  dmt::classify::OneRClassifier one_r;
  if (one_r.Fit(train).ok()) {
    auto predictions = one_r.PredictAll(test);
    if (predictions.ok()) Report("1R baseline", test, *predictions);
    std::printf("  %s", one_r.RuleToString().c_str());
  }
  dmt::classify::NaiveBayesClassifier nb;
  if (nb.Fit(train).ok()) {
    auto predictions = nb.PredictAll(test);
    if (predictions.ok()) Report("naive Bayes", test, *predictions);
  }
  dmt::classify::KnnOptions knn_options;
  knn_options.k = 9;
  dmt::classify::KnnClassifier knn(knn_options);
  if (knn.Fit(train).ok()) {
    auto predictions = knn.PredictAll(test);
    if (predictions.ok()) Report("9-NN (kd-tree)", test, *predictions);
  }

  // Show the top of the pruned C4.5 tree — the interpretability payoff.
  if (c45.ok()) {
    auto pruned = *c45;
    dmt::tree::TreeOptions shallow;
    shallow.max_depth = 3;
    auto display_tree = dmt::tree::BuildC45(train, shallow);
    if (display_tree.ok()) {
      std::printf("\ndepth-3 C4.5 sketch of the learned predicate:\n%s",
                  display_tree->ToText().c_str());
    }
  }
  return 0;
}
