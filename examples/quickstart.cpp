// Quickstart: mine association rules from a small hand-written basket
// database in ~40 lines of API use.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "assoc/fp_growth.h"
#include "assoc/rules.h"
#include "core/item_dictionary.h"
#include "core/transaction.h"

int main() {
  using dmt::core::ItemDictionary;
  using dmt::core::ItemId;
  using dmt::core::TransactionDatabase;

  // 1. Intern item names and build a transaction database.
  ItemDictionary items;
  TransactionDatabase db;
  const char* baskets[][4] = {
      {"bread", "milk", nullptr},
      {"bread", "diapers", "beer", "eggs"},
      {"milk", "diapers", "beer", "cola"},
      {"bread", "milk", "diapers", "beer"},
      {"bread", "milk", "diapers", "cola"},
  };
  for (const auto& basket : baskets) {
    std::vector<ItemId> transaction;
    for (const char* name : basket) {
      if (name == nullptr) break;
      transaction.push_back(items.GetOrAdd(name));
    }
    db.Add(transaction);
  }

  // 2. Mine frequent itemsets (any of the four miners returns identical
  // results; FP-Growth is the fastest default).
  dmt::assoc::MiningParams params;
  params.min_support = 0.4;  // at least 2 of 5 baskets
  auto mined = dmt::assoc::MineFpGrowth(db, params);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  std::printf("frequent itemsets (min support %.0f%%):\n",
              params.min_support * 100);
  for (const auto& itemset : mined->itemsets) {
    std::printf("  %s\n",
                dmt::assoc::FormatItemset(itemset, &items).c_str());
  }

  // 3. Generate association rules.
  dmt::assoc::RuleParams rule_params;
  rule_params.min_confidence = 0.6;
  auto rules = dmt::assoc::GenerateRules(*mined, db.size(), rule_params);
  if (!rules.ok()) {
    std::fprintf(stderr, "rule generation failed: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrules (min confidence %.0f%%):\n",
              rule_params.min_confidence * 100);
  for (const auto& rule : *rules) {
    std::printf("  %s\n", dmt::assoc::FormatRule(rule, &items).c_str());
  }
  return 0;
}
