// Command-line front end for the binary container (io/container.h):
//
//   dmt_pack pack <basket.txt> <out.dmtb>      text -> container
//   dmt_pack unpack <in.dmtb> <basket.txt>     container -> text
//   dmt_pack partition <in> <prefix> <K>       split into K partitions
//                                              (<in> is .dmtb or basket text)
//   dmt_pack info <file.dmtb>                  header + section table
//
// Every malformed input surfaces as a printed Status, exit code 1.
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/mmap_file.h"
#include "core/status.h"
#include "core/transaction.h"
#include "io/container.h"
#include "io/partition.h"
#include "io/serialize.h"
#include "obs/expose.h"

namespace {

using dmt::core::Result;
using dmt::core::Status;
using dmt::core::TransactionDatabase;

int Fail(const Status& status) {
  std::fprintf(stderr, "dmt_pack: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dmt_pack pack <basket.txt> <out.dmtb>\n"
               "       dmt_pack unpack <in.dmtb> <basket.txt>\n"
               "       dmt_pack partition <in> <prefix> <K>\n"
               "       dmt_pack info <file.dmtb>\n");
  return 2;
}

/// Loads a database from either format: container files are recognized by
/// their magic, anything else parses as basket text.
Result<TransactionDatabase> LoadAnyDatabase(const std::string& path) {
  DMT_ASSIGN_OR_RETURN(dmt::core::MappedFile probe,
                       dmt::core::MappedFile::Open(path));
  const bool is_container =
      probe.size() >= sizeof(dmt::io::kMagic) &&
      std::memcmp(probe.data(), dmt::io::kMagic, sizeof(dmt::io::kMagic)) ==
          0;
  if (is_container) return dmt::io::LoadTransactionDatabase(path);
  DMT_ASSIGN_OR_RETURN(std::string text, dmt::core::ReadFileString(path));
  return TransactionDatabase::FromBasketText(text);
}

int Pack(const std::string& in, const std::string& out) {
  auto db = LoadAnyDatabase(in);
  if (!db.ok()) return Fail(db.status());
  Status written = dmt::io::WriteTransactionDatabase(*db, out);
  if (!written.ok()) return Fail(written);
  std::printf("packed %zu transactions (%zu items) into %s\n", db->size(),
              db->total_items(), out.c_str());
  return 0;
}

int Unpack(const std::string& in, const std::string& out) {
  auto db = dmt::io::LoadTransactionDatabase(in);
  if (!db.ok()) return Fail(db.status());
  const std::string text = db->ToBasketText();
  Status written = dmt::core::WriteFileBytes(
      out, std::as_bytes(std::span(text.data(), text.size())));
  if (!written.ok()) return Fail(written);
  std::printf("unpacked %zu transactions into %s\n", db->size(), out.c_str());
  return 0;
}

int Partition(const std::string& in, const std::string& prefix,
              const std::string& count) {
  size_t num_partitions = 0;
  try {
    num_partitions = std::stoul(count);
  } catch (...) {
    return Fail(Status::InvalidArgument("partition count '" + count +
                                        "' is not a number"));
  }
  auto db = LoadAnyDatabase(in);
  if (!db.ok()) return Fail(db.status());
  auto paths = dmt::io::WritePartitions(*db, prefix, num_partitions);
  if (!paths.ok()) return Fail(paths.status());
  for (const std::string& path : *paths) std::printf("%s\n", path.c_str());
  return 0;
}

int Info(const std::string& path) {
  auto file = dmt::core::MappedFile::Open(path);
  if (!file.ok()) return Fail(file.status());
  if (file->size() < sizeof(dmt::io::FileHeader)) {
    return Fail(Status::Corruption(path + ": smaller than a header"));
  }
  dmt::io::FileHeader header;
  std::memcpy(&header, file->data(), sizeof(header));
  const auto type = static_cast<dmt::io::ArtifactType>(header.artifact_type);
  // Validate the envelope with the reader so `info` reports corruption
  // exactly as a loader would.
  auto reader = dmt::io::ContainerReader::Map(path, type);
  if (!reader.ok()) return Fail(reader.status());
  std::printf("%s: %s v%u, %zu section(s), %llu bytes\n", path.c_str(),
              std::string(dmt::io::ArtifactTypeName(type)).c_str(),
              header.format_version, reader->num_sections(),
              static_cast<unsigned long long>(header.file_size));
  for (const dmt::io::SectionEntry& entry : reader->entries()) {
    std::printf("  section %u: offset %llu, length %llu, crc32 %08x\n",
                entry.id, static_cast<unsigned long long>(entry.offset),
                static_cast<unsigned long long>(entry.length), entry.crc32);
  }
  // The io-layer telemetry for this operation (bytes mapped, sections
  // validated, CRC time), in the bench --json registry shape.
  std::printf("registry %s\n", dmt::obs::RenderJsonSnapshot().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 3 && args[0] == "pack") return Pack(args[1], args[2]);
  if (args.size() == 3 && args[0] == "unpack") {
    return Unpack(args[1], args[2]);
  }
  if (args.size() == 4 && args[0] == "partition") {
    return Partition(args[1], args[2], args[3]);
  }
  if (args.size() == 2 && args[0] == "info") return Info(args[1]);
  return Usage();
}
