// Bench regression gate: diffs a bench --json record against a
// checked-in baseline.
//
//   bench_compare <baseline.json> <current.json> [--tolerance <pct>]
//
// Runs are matched by benchmark name. Counters split into two classes:
//
//   - deterministic work counters (cond_trees, intersections,
//     split_scan_rows, ...): exact match required — any difference is an
//     algorithm change that must be acknowledged by regenerating the
//     baseline, and exits 1;
//   - advisory wall-time quantities (real_time, *_us / *_ms counters,
//     qps, *rate*, mean_batch, *_per_s): machine-dependent, so
//     deviations beyond --tolerance (default 50%) only print warnings.
//
// The JSON "registry" section accumulates across every benchmark
// iteration (iteration counts are timing-dependent), and "spans" carry
// wall time — both are skipped. A kernel_level difference is reported as
// advisory context (a perf delta with a level delta is dispatch, not
// regression).
//
// The parser below covers exactly the subset WriteJsonRecord emits
// (objects, arrays, strings, numbers, keywords); a malformed record
// exits 2.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/mmap_file.h"

namespace {

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Vector of pairs, not a map: preserves document order for reporting.
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u':
            // The bench writer only escapes control characters; decode
            // to '?' — names never legitimately contain them.
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;
            out->push_back('?');
            break;
          default: out->push_back(esc);
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    // Number.
    char* end = nullptr;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Comparison.

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True for counters holding wall-clock-derived quantities, which vary
/// machine to machine and only warn.
bool IsAdvisoryCounter(const std::string& name) {
  if (EndsWith(name, "_us") || EndsWith(name, "_ms") ||
      EndsWith(name, "_s") || EndsWith(name, "_per_s") ||
      EndsWith(name, "per_second")) {
    return true;
  }
  if (name == "qps" || name == "mean_batch") return true;
  return name.find("rate") != std::string::npos;
}

struct Gate {
  double tolerance_pct = 50.0;
  int failures = 0;
  int warnings = 0;
  int exact_ok = 0;

  void Deterministic(const std::string& run, const std::string& counter,
                     double baseline, double current) {
    if (baseline == current) {
      ++exact_ok;
      return;
    }
    ++failures;
    std::fprintf(stderr,
                 "FAIL  %s: deterministic counter '%s' changed: baseline "
                 "%.17g, current %.17g\n",
                 run.c_str(), counter.c_str(), baseline, current);
  }

  void Advisory(const std::string& run, const std::string& counter,
                double baseline, double current) {
    if (baseline == current) return;
    const double reference = std::fabs(baseline);
    const double delta_pct =
        reference > 0.0
            ? 100.0 * std::fabs(current - baseline) / reference
            : 100.0;
    if (delta_pct <= tolerance_pct) return;
    ++warnings;
    std::fprintf(stderr,
                 "warn  %s: %s drifted %.1f%% (baseline %.17g, current "
                 "%.17g) — advisory, not gating\n",
                 run.c_str(), counter.c_str(), delta_pct, baseline,
                 current);
  }
};

/// name -> (real_time, counters) for every run in a record.
struct RunData {
  double real_time = 0.0;
  std::map<std::string, double> counters;
};

bool ExtractRuns(const JsonValue& record,
                 std::map<std::string, RunData>* out) {
  const JsonValue* runs = record.Find("runs");
  if (runs == nullptr || runs->kind != JsonValue::Kind::kArray) {
    return false;
  }
  for (const JsonValue& run : runs->array) {
    const JsonValue* name = run.Find("name");
    const JsonValue* real_time = run.Find("real_time");
    const JsonValue* counters = run.Find("counters");
    if (name == nullptr || real_time == nullptr || counters == nullptr) {
      return false;
    }
    RunData data;
    data.real_time = real_time->number;
    for (const auto& [key, value] : counters->object) {
      data.counters[key] = value.number;
    }
    (*out)[name->string] = std::move(data);
  }
  return true;
}

int Compare(const JsonValue& baseline, const JsonValue& current,
            double tolerance_pct) {
  Gate gate;
  gate.tolerance_pct = tolerance_pct;

  const JsonValue* base_level = baseline.Find("kernel_level");
  const JsonValue* cur_level = current.Find("kernel_level");
  if (base_level != nullptr && cur_level != nullptr &&
      base_level->string != cur_level->string) {
    std::fprintf(stderr,
                 "note  kernel_level differs (baseline %s, current %s): "
                 "wall-time drift is expected\n",
                 base_level->string.c_str(), cur_level->string.c_str());
  }

  std::map<std::string, RunData> base_runs;
  std::map<std::string, RunData> cur_runs;
  if (!ExtractRuns(baseline, &base_runs) ||
      !ExtractRuns(current, &cur_runs)) {
    std::fprintf(stderr, "bench_compare: malformed runs section\n");
    return 2;
  }

  for (const auto& [name, base] : base_runs) {
    auto it = cur_runs.find(name);
    if (it == cur_runs.end()) {
      ++gate.failures;
      std::fprintf(stderr, "FAIL  baseline run '%s' missing from current "
                   "record\n",
                   name.c_str());
      continue;
    }
    const RunData& cur = it->second;
    gate.Advisory(name, "real_time", base.real_time, cur.real_time);
    for (const auto& [counter, base_value] : base.counters) {
      auto cit = cur.counters.find(counter);
      if (cit == cur.counters.end()) {
        ++gate.failures;
        std::fprintf(stderr,
                     "FAIL  %s: baseline counter '%s' missing from "
                     "current record\n",
                     name.c_str(), counter.c_str());
        continue;
      }
      if (IsAdvisoryCounter(counter)) {
        gate.Advisory(name, counter, base_value, cit->second);
      } else {
        gate.Deterministic(name, counter, base_value, cit->second);
      }
    }
    for (const auto& [counter, value] : cur.counters) {
      if (base.counters.find(counter) == base.counters.end()) {
        ++gate.warnings;
        std::fprintf(stderr,
                     "warn  %s: counter '%s' is new (not in baseline — "
                     "regenerate to gate it)\n",
                     name.c_str(), counter.c_str());
      }
    }
  }
  for (const auto& [name, cur] : cur_runs) {
    if (base_runs.find(name) == base_runs.end()) {
      ++gate.warnings;
      std::fprintf(stderr,
                   "warn  run '%s' is new (not in baseline)\n",
                   name.c_str());
    }
  }

  std::printf("bench_compare: %zu baseline run(s), %d deterministic "
              "counter(s) exact, %d warning(s), %d failure(s)\n",
              base_runs.size(), gate.exact_ok, gate.warnings,
              gate.failures);
  return gate.failures == 0 ? 0 : 1;
}

int LoadRecord(const std::string& path, JsonValue* out) {
  auto text = dmt::core::ReadFileString(path);
  if (!text.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 text.status().ToString().c_str());
    return 2;
  }
  JsonParser parser(*text);
  if (!parser.Parse(out)) {
    std::fprintf(stderr, "bench_compare: %s: JSON parse error\n",
                 path.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double tolerance_pct = 50.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance_pct = std::strtod(argv[++i], nullptr);
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--tolerance <pct>]\n");
    return 2;
  }
  JsonValue baseline;
  JsonValue current;
  if (int rc = LoadRecord(paths[0], &baseline); rc != 0) return rc;
  if (int rc = LoadRecord(paths[1], &current); rc != 0) return rc;
  return Compare(baseline, current, tolerance_pct);
}
