// dmtd — the model-serving daemon. Loads trained artifacts from DMTBIN01
// containers into an immutable ModelBundle and answers classify /
// cluster-assignment / rule-recommendation / stats queries over the
// length-prefixed binary protocol (serve/protocol.h), micro-batching
// requests onto the thread pool.
//
//   dmtd --make-demo <dir>              generate demo model containers
//   dmtd --dir <dir> --script <file>    run text queries in-process
//   dmtd --dir <dir> --stdin            serve binary frames on stdin/stdout
//   dmtd --dir <dir> --socket <path>    serve an AF_UNIX socket
//   dmtd --client <path>                text-query client for a socket
//                                       daemon (lines on stdin)
//
// Model flags (alternative to --dir, which picks up tree.dmt, train.dmt,
// kmeans.dmt, rules.dmt when present): --tree/--train/--kmeans/--rules.
// Serving flags: --batch-size N, --batch-timeout-us N, --threads N,
// --cache N (entries; 0 = off), --cache-shards N, --verify-cache,
// --max-conns N (socket mode; 0 = forever).
// Telemetry flags: --metrics-path <file> (periodic Prometheus-text dump
// of the full registry), --metrics-interval-ms N (default 1000),
// --slow-query-us N (log a structured warning for slower requests),
// --no-telemetry (drop per-request latency recording entirely).
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "assoc/apriori.h"
#include "assoc/rules.h"
#include "cluster/kmeans.h"
#include "core/status.h"
#include "core/string_util.h"
#include "gen/agrawal.h"
#include "gen/mixture.h"
#include "gen/quest.h"
#include "io/serialize.h"
#include "serve/daemon.h"
#include "serve/model_bundle.h"
#include "serve/server.h"
#include "tree/builder.h"

namespace {

using dmt::core::Result;
using dmt::core::Status;

int Fail(const Status& status) {
  std::fprintf(stderr, "dmtd: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: dmtd --make-demo <dir>\n"
      "       dmtd (--dir <dir> | model flags) --script <file>\n"
      "       dmtd (--dir <dir> | model flags) --stdin\n"
      "       dmtd (--dir <dir> | model flags) --socket <path> "
      "[--max-conns N]\n"
      "       dmtd --client <socket path>   (query lines on stdin)\n"
      "model flags: --tree/--train/--kmeans/--rules <container>\n"
      "serving flags: --batch-size N --batch-timeout-us N --threads N\n"
      "               --cache N --cache-shards N --verify-cache\n"
      "telemetry flags: --metrics-path <file> --metrics-interval-ms N\n"
      "                 --slow-query-us N --no-telemetry\n");
  return 2;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// Generates a small self-consistent model directory: Quest-mined rules,
/// a k-means model over a BIRCH-style grid, and an Agrawal decision tree
/// plus its training data (for kNN/NB). Everything is deterministic in
/// the fixed seeds, so smoke tests can assert on outputs.
Status MakeDemo(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(dmt::core::StrFormat(
        "mkdir %s: %s", dir.c_str(), std::strerror(errno)));
  }

  dmt::gen::QuestParams quest;
  quest.num_transactions = 2000;
  quest.avg_transaction_size = 8.0;
  quest.avg_pattern_size = 4.0;
  quest.num_items = 200;
  quest.num_patterns = 50;
  DMT_ASSIGN_OR_RETURN(dmt::core::TransactionDatabase db,
                       dmt::gen::GenerateQuestTransactions(quest, 1996));
  dmt::assoc::MiningParams mining_params;
  mining_params.min_support = 0.02;
  DMT_ASSIGN_OR_RETURN(dmt::assoc::MiningResult mined,
                       dmt::assoc::MineApriori(db, mining_params));
  dmt::assoc::RuleParams rule_params;
  rule_params.min_confidence = 0.5;
  DMT_ASSIGN_OR_RETURN(
      std::vector<dmt::assoc::AssociationRule> rules,
      dmt::assoc::GenerateRules(mined, db.size(), rule_params));
  DMT_RETURN_NOT_OK(dmt::io::WriteRuleSet(rules, dir + "/rules.dmt"));
  std::printf("rules.dmt: %zu rules from %s\n", rules.size(),
              quest.Name().c_str());

  DMT_ASSIGN_OR_RETURN(
      dmt::gen::LabeledPoints grid,
      dmt::gen::GenerateBirchGrid(9, 60, 10.0, 0.8, 1996));
  dmt::cluster::KMeansOptions kmeans_options;
  kmeans_options.k = 9;
  kmeans_options.seed = 1996;
  DMT_ASSIGN_OR_RETURN(
      dmt::cluster::ClusteringResult model,
      dmt::cluster::KMeans(grid.points, kmeans_options));
  DMT_RETURN_NOT_OK(dmt::io::WriteKMeansModel(model, dir + "/kmeans.dmt"));
  std::printf("kmeans.dmt: k=%zu dim=%zu sse=%.3f\n", model.centers.size(),
              model.centers.dim(), model.sse);

  dmt::gen::AgrawalParams agrawal;
  agrawal.function = 2;
  agrawal.num_records = 600;
  DMT_ASSIGN_OR_RETURN(dmt::core::Dataset train,
                       dmt::gen::GenerateAgrawal(agrawal, 1993));
  DMT_ASSIGN_OR_RETURN(dmt::tree::DecisionTree tree,
                       dmt::tree::BuildCart(train));
  DMT_RETURN_NOT_OK(dmt::io::WriteDecisionTree(tree, dir + "/tree.dmt"));
  DMT_RETURN_NOT_OK(dmt::io::WriteDataset(train, dir + "/train.dmt"));
  std::printf("tree.dmt: %zu nodes; train.dmt: %zux%zu\n", tree.num_nodes(),
              train.num_rows(), train.num_attributes());
  return Status::OK();
}

/// Sends one text query per stdin line to a socket daemon and prints the
/// formatted responses (the check.sh socket smoke client).
int RunClient(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Fail(Status::InvalidArgument("socket path too long"));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Fail(Status::IOError(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Fail(Status::IOError(dmt::core::StrFormat(
        "connect %s: %s", path.c_str(), std::strerror(errno))));
  }
  uint64_t id = 0;
  std::string line;
  int exit_code = 0;
  while (std::getline(std::cin, line)) {
    Result<dmt::serve::Request> request =
        dmt::serve::ParseScriptLine(line, ++id);
    if (!request.ok()) {
      if (request.status().code() == dmt::core::StatusCode::kNotFound) {
        continue;  // blank/comment line
      }
      std::printf("id=%llu error %s\n",
                  static_cast<unsigned long long>(id),
                  request.status().ToString().c_str());
      exit_code = 1;
      continue;
    }
    Status sent = dmt::serve::WriteAll(
        fd, dmt::serve::EncodeRequestFrame(request.value()));
    if (!sent.ok()) {
      ::close(fd);
      return Fail(sent);
    }
    Result<std::vector<std::byte>> frame =
        dmt::serve::ReadFrame(fd, dmt::serve::kResponseMagic);
    if (!frame.ok()) {
      ::close(fd);
      return Fail(frame.status());
    }
    Result<dmt::serve::Response> response =
        dmt::serve::DecodeResponseFrame(frame.value());
    if (!response.ok()) {
      ::close(fd);
      return Fail(response.status());
    }
    std::printf("%s\n",
                dmt::serve::FormatResponse(response.value()).c_str());
  }
  ::close(fd);
  return exit_code;
}

/// Runs a script file through the deterministic sync path and prints one
/// formatted response per query line, in order.
int RunScript(dmt::serve::Server* server, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Fail(Status::IOError("cannot open script " + path));
  }
  std::vector<std::vector<std::byte>> frames;
  uint64_t id = 0;
  std::string line;
  while (std::getline(in, line)) {
    Result<dmt::serve::Request> request =
        dmt::serve::ParseScriptLine(line, id + 1);
    if (!request.ok()) {
      if (request.status().code() == dmt::core::StatusCode::kNotFound) {
        continue;
      }
      return Fail(request.status());
    }
    ++id;
    frames.push_back(dmt::serve::EncodeRequestFrame(request.value()));
  }
  std::vector<std::vector<std::byte>> responses =
      server->HandleFrames(frames);
  for (const std::vector<std::byte>& frame : responses) {
    Result<dmt::serve::Response> response =
        dmt::serve::DecodeResponseFrame(frame);
    if (!response.ok()) return Fail(response.status());
    std::printf("%s\n",
                dmt::serve::FormatResponse(response.value()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dmt::serve::ModelPaths paths;
  dmt::serve::ServeOptions options;
  std::string make_demo, script, socket_path, client_path, dir;
  std::string metrics_path;
  uint32_t metrics_interval_ms = 1000;
  bool use_stdin = false;
  size_t max_connections = 0;

  auto need_value = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--make-demo" && need_value(i)) {
      make_demo = argv[++i];
    } else if (arg == "--dir" && need_value(i)) {
      dir = argv[++i];
    } else if (arg == "--tree" && need_value(i)) {
      paths.tree = argv[++i];
    } else if (arg == "--train" && need_value(i)) {
      paths.train = argv[++i];
    } else if (arg == "--kmeans" && need_value(i)) {
      paths.kmeans = argv[++i];
    } else if (arg == "--rules" && need_value(i)) {
      paths.rules = argv[++i];
    } else if (arg == "--script" && need_value(i)) {
      script = argv[++i];
    } else if (arg == "--socket" && need_value(i)) {
      socket_path = argv[++i];
    } else if (arg == "--client" && need_value(i)) {
      client_path = argv[++i];
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--batch-size" && need_value(i)) {
      options.batch_size = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--batch-timeout-us" && need_value(i)) {
      options.batch_timeout_us =
          static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--threads" && need_value(i)) {
      options.num_threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--cache" && need_value(i)) {
      options.cache_capacity = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--cache-shards" && need_value(i)) {
      options.cache_shards = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--verify-cache") {
      options.verify_cache_hits = true;
    } else if (arg == "--max-conns" && need_value(i)) {
      max_connections = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--metrics-path" && need_value(i)) {
      metrics_path = argv[++i];
    } else if (arg == "--metrics-interval-ms" && need_value(i)) {
      metrics_interval_ms = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--slow-query-us" && need_value(i)) {
      options.slow_query_us = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--no-telemetry") {
      options.latency_telemetry = false;
    } else {
      return Usage();
    }
  }

  if (!make_demo.empty()) {
    Status status = MakeDemo(make_demo);
    return status.ok() ? 0 : Fail(status);
  }
  if (!client_path.empty()) return RunClient(client_path);

  if (!dir.empty()) {
    auto pick = [&](std::string* slot, const std::string& name) {
      if (slot->empty() && FileExists(dir + "/" + name)) {
        *slot = dir + "/" + name;
      }
    };
    pick(&paths.tree, "tree.dmt");
    pick(&paths.train, "train.dmt");
    pick(&paths.kmeans, "kmeans.dmt");
    pick(&paths.rules, "rules.dmt");
  }
  if (paths.tree.empty() && paths.train.empty() && paths.kmeans.empty() &&
      paths.rules.empty()) {
    return Usage();
  }
  Status valid = options.Validate();
  if (!valid.ok()) return Fail(valid);

  auto bundle = dmt::serve::ModelBundle::Load(paths);
  if (!bundle.ok()) return Fail(bundle.status());
  std::fprintf(stderr, "dmtd: loaded %s\n",
               bundle.value()->Describe().c_str());
  dmt::serve::Server server(bundle.value(), options);

  // Constructed after the server (so the first dump already has the
  // serve/* metrics registered) and destroyed after serving returns (the
  // final dump covers the whole run).
  std::unique_ptr<dmt::serve::MetricsDumper> dumper;
  if (!metrics_path.empty()) {
    dumper = std::make_unique<dmt::serve::MetricsDumper>(
        metrics_path, metrics_interval_ms);
  }

  if (!script.empty()) return RunScript(&server, script);
  if (use_stdin) {
    Status status =
        dmt::serve::ServeStream(&server, STDIN_FILENO, STDOUT_FILENO);
    return status.ok() ? 0 : Fail(status);
  }
  if (!socket_path.empty()) {
    Status status =
        dmt::serve::ServeSocket(&server, socket_path, max_connections);
    return status.ok() ? 0 : Fail(status);
  }
  return Usage();
}
