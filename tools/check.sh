#!/usr/bin/env bash
# Full pre-merge check: tier-1 build + tests (plus a DMT_KERNEL_LEVEL=
# scalar rerun of the kernel-sensitive differential batteries), then a
# ThreadSanitizer build
# that runs the thread-pool unit tests and the serial-vs-parallel
# differential tests for every parallelized miner (plus the out-of-core
# differential and container-corruption tests), then an AddressSanitizer
# build that re-runs the io corruption battery, then a bench smoke
# stage that runs the cluster, tree, association, and io benches at a
# tiny configuration and checks the emitted --json records parse
# (including the threads / work-counter / partition columns), a
# DMT_TRACE smoke that runs one bench per algorithm family and validates
# the emitted Chrome trace_event JSON, a bench_compare regression gate
# diffing the smoke records against the checked-in bench/baselines
# (deterministic work counters must match exactly), and a serving smoke
# that drives dmtd end to end — including the --metrics-path Prometheus
# dump and the --slow-query-us structured log.
#
# Usage: tools/check.sh [jobs]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"

echo "== tier 1: regular build + full test suite =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure

echo
echo "== tier 1b: kernel-sensitive tests forced to the scalar table =="
# The SIMD kernels promise bit-identical results at every dispatch
# level; rerunning the differential batteries with DMT_KERNEL_LEVEL
# pinned to scalar proves the promise covers the integrated call sites
# (Eclat tidsets, k-means assignment, DBSCAN region queries), not just
# the kernel unit tests.
KERNEL_SENSITIVE_TESTS=(
  tests/core/core_kernels_test
  tests/assoc/assoc_parallel_diff_test
  tests/assoc/assoc_out_of_core_diff_test
  tests/assoc/assoc_quant_stream_diff_test
  tests/cluster/cluster_parallel_diff_test
)
for t in "${KERNEL_SENSITIVE_TESTS[@]}"; do
  echo "  DMT_KERNEL_LEVEL=scalar $t"
  DMT_KERNEL_LEVEL=scalar "$ROOT/build/$t" >/dev/null
done

echo
echo "== tier 2: ThreadSanitizer build (DMT_SANITIZE=thread) =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DDMT_SANITIZE=thread \
  -DDMT_BUILD_BENCHMARKS=OFF \
  -DDMT_BUILD_EXAMPLES=OFF
TSAN_TARGETS=(
  core_thread_pool_test
  core_kernels_test
  obs_metrics_test
  obs_histogram_test
  obs_expose_test
  assoc_parallel_diff_test
  assoc_out_of_core_diff_test
  assoc_quant_stream_diff_test
  cluster_parallel_diff_test
  seq_parallel_diff_test
  tree_parallel_diff_test
  io_corruption_test
  serve_protocol_test
  serving_diff_test
)
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target "${TSAN_TARGETS[@]}"

# halt_on_error so a single race fails the script immediately.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$ROOT/build-tsan/tests/core/core_thread_pool_test"
"$ROOT/build-tsan/tests/core/core_kernels_test"
"$ROOT/build-tsan/tests/obs/obs_metrics_test"
# Concurrent Histogram::Record on shared slots plus rendering racing
# recorders — the histogram metric's whole concurrency surface.
"$ROOT/build-tsan/tests/obs/obs_histogram_test"
"$ROOT/build-tsan/tests/obs/obs_expose_test"
"$ROOT/build-tsan/tests/assoc/assoc_parallel_diff_test"
"$ROOT/build-tsan/tests/assoc/assoc_out_of_core_diff_test"
"$ROOT/build-tsan/tests/assoc/assoc_quant_stream_diff_test"
"$ROOT/build-tsan/tests/cluster/cluster_parallel_diff_test"
"$ROOT/build-tsan/tests/seq/seq_parallel_diff_test"
"$ROOT/build-tsan/tests/tree/tree_parallel_diff_test"
"$ROOT/build-tsan/tests/io/io_corruption_test"
# The serving layer's concurrency surface: BatchQueue drain/flush, the
# sharded cache, pool-dispatched batch evaluation, and the socketpair
# stream tests all run under TSan here.
"$ROOT/build-tsan/tests/serve/serve_protocol_test"
"$ROOT/build-tsan/tests/serve/serving_diff_test"

echo
echo "== tier 2b: AddressSanitizer build (DMT_SANITIZE=address) =="
cmake -B "$ROOT/build-asan" -S "$ROOT" \
  -DDMT_SANITIZE=address \
  -DDMT_BUILD_BENCHMARKS=OFF \
  -DDMT_BUILD_EXAMPLES=OFF
ASAN_TARGETS=(
  io_corruption_test
  io_roundtrip_test
  core_kernels_test
  serve_protocol_test
  obs_histogram_test
  obs_expose_test
)
cmake --build "$ROOT/build-asan" -j "$JOBS" --target "${ASAN_TARGETS[@]}"
export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"
"$ROOT/build-asan/tests/io/io_corruption_test"
"$ROOT/build-asan/tests/io/io_roundtrip_test"
# The kernels test sweeps every level's tails and alignments, which is
# exactly where a vector over-read would hide.
"$ROOT/build-asan/tests/core/core_kernels_test"
# The protocol corruption battery decodes every truncation/byte-flip of
# every frame shape — the canonical place for an out-of-bounds read.
"$ROOT/build-asan/tests/serve/serve_protocol_test"
# The exposition renderer walks fixed-size bucket arrays with manual
# indexing — run it (and the bucket-boundary sweep) under ASan.
"$ROOT/build-asan/tests/obs/obs_histogram_test"
"$ROOT/build-asan/tests/obs/obs_expose_test"

echo
echo "== tier 3: bench smoke (tiny configs, --json must parse) =="
BENCH_DIR="$ROOT/build/bench"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

# json_check <path> [required_counter...]: the bench harness must have
# written a parseable record with a non-empty runs array; every listed
# counter must be present in every run.
json_check() {
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$@" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    record = json.load(f)
assert record["bench"], "missing bench name"
assert record["kernel_level"] in ("scalar", "avx2", "avx512"), \
    "missing/bad kernel_level"
assert record["runs"], "empty runs array"
for run in record["runs"]:
    assert "real_time" in run and "counters" in run, "malformed run"
    for counter in sys.argv[2:]:
        assert counter in run["counters"], f"missing counter {counter!r}"
print(f"  {sys.argv[1]}: {record['bench']}, {len(record['runs'])} run(s) ok")
PY
  else
    # Fallback: at least require the expected top-level keys.
    grep -q '"bench"' "$1" && grep -q '"runs"' "$1"
    echo "  $1: keys present (python3 unavailable, skipped full parse)"
  fi
}

# Smallest meaningful cases: one Lloyd k-means point, the BIRCH quality
# row, and one DBSCAN size. --no-table skips the slow prologue tables.
"$BENCH_DIR/bench_cluster_scaleup" \
  --benchmark_filter='BM_KMeans/100/0/0' \
  --json "$SMOKE_DIR/scaleup.json" >/dev/null
json_check "$SMOKE_DIR/scaleup.json"
"$BENCH_DIR/bench_cluster_quality" --no-table \
  --benchmark_filter='BM_Birch' \
  --json "$SMOKE_DIR/quality.json" >/dev/null
json_check "$SMOKE_DIR/quality.json"
"$BENCH_DIR/bench_dbscan" --no-table \
  --benchmark_filter='BM_DbscanKdTree/200/0' \
  --json "$SMOKE_DIR/dbscan.json" >/dev/null
json_check "$SMOKE_DIR/dbscan.json"
# Tree benches: one serial presorted case each (smallest size / the
# fixture grow row), exercising the threads + split_scan_rows counters.
"$BENCH_DIR/bench_tree_scaleup" --no-table \
  --benchmark_filter='BM_Cart/1000/0' \
  --json "$SMOKE_DIR/tree_scaleup.json" >/dev/null
json_check "$SMOKE_DIR/tree_scaleup.json"
"$BENCH_DIR/bench_tree_pruning" --no-table \
  --benchmark_filter='BM_GrowC45Presorted/0' \
  --json "$SMOKE_DIR/tree_pruning.json" >/dev/null
json_check "$SMOKE_DIR/tree_pruning.json"
# Association benches: one parallel FP-growth point on the smallest
# workload and the smallest scale-up row, asserting the threads and
# pattern-growth work-counter columns are emitted.
"$BENCH_DIR/bench_assoc_minsup" --no-table \
  --benchmark_filter='BM_FpGrowth/0/200/0' \
  --json "$SMOKE_DIR/assoc_minsup.json" >/dev/null
json_check "$SMOKE_DIR/assoc_minsup.json" threads cond_trees fp_nodes
"$BENCH_DIR/bench_assoc_scaleup_t" --no-table \
  --benchmark_filter='BM_Eclat/5/0' \
  --json "$SMOKE_DIR/assoc_scaleup_t.json" >/dev/null
json_check "$SMOKE_DIR/assoc_scaleup_t.json" threads intersections
# io bench: binary load + mmap on the smallest workload, asserting the
# bytes column; the out-of-core scale-up row must emit the partition
# and bytes_mapped counters.
"$BENCH_DIR/bench_io" --no-table \
  --benchmark_filter='/5000$' \
  --json "$SMOKE_DIR/io.json" >/dev/null
json_check "$SMOKE_DIR/io.json" bytes
"$BENCH_DIR/bench_assoc_scaleup_d" --no-table \
  --benchmark_filter='BM_AprioriOutOfCore/5000' \
  --json "$SMOKE_DIR/assoc_ooc.json" >/dev/null
json_check "$SMOKE_DIR/assoc_ooc.json" partitions bytes_mapped transactions
# Quantitative + streaming bench: the serial quantitative row must emit
# the rule/interval columns, the window row its verification counters.
"$BENCH_DIR/bench_quantitative" --no-table \
  --benchmark_filter='BM_QuantitativeMine/1' \
  --json "$SMOKE_DIR/quantitative.json" >/dev/null
json_check "$SMOKE_DIR/quantitative.json" threads rules interval_items
"$BENCH_DIR/bench_quantitative" --no-table \
  --benchmark_filter='BM_StreamingMineWindow' \
  --json "$SMOKE_DIR/streaming.json" >/dev/null
json_check "$SMOKE_DIR/streaming.json" window_transactions \
  candidates_checked border_misses
# Kernel microbench: the smallest bitset row at every compiled-in level,
# plus a forced-scalar run to prove the override reaches the record.
"$BENCH_DIR/bench_kernels" --no-table \
  --benchmark_filter='BM_BitsetIntersectionCount/level:[0-9]+/n:1024$' \
  --json "$SMOKE_DIR/kernels.json" >/dev/null
json_check "$SMOKE_DIR/kernels.json"
DMT_KERNEL_LEVEL=scalar "$BENCH_DIR/bench_kernels" --no-table \
  --benchmark_filter='BM_BitsetIntersectionCount/level:0/n:1024$' \
  --json "$SMOKE_DIR/kernels_scalar.json" >/dev/null
json_check "$SMOKE_DIR/kernels_scalar.json"
grep -q '"kernel_level": "scalar"' "$SMOKE_DIR/kernels_scalar.json"

echo
echo "== tier 3b: DMT_TRACE smoke (one bench per family, trace must parse) =="
# trace_check <path> <counter_prefix>: DMT_TRACE must have produced a
# Chrome trace_event file with at least one complete event and a
# dmtCounters section containing the family's registry counters.
trace_check() {
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$@" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "empty traceEvents array"
for event in events:
    assert event["ph"] == "X", f"unexpected phase {event['ph']!r}"
    assert event["name"] and event["dur"] >= 0 and event["ts"] >= 0
prefix = sys.argv[2]
matching = [k for k in trace["dmtCounters"] if k.startswith(prefix)]
assert matching, f"no dmtCounters under {prefix!r}"
assert trace["dmtDroppedEvents"] == 0, "trace dropped events"
print(f"  {sys.argv[1]}: {len(events)} event(s), "
      f"{len(matching)} {prefix}* counter(s) ok")
PY
  else
    grep -q '"traceEvents"' "$1" && grep -q '"dmtCounters"' "$1"
    echo "  $1: keys present (python3 unavailable, skipped full parse)"
  fi
}

DMT_TRACE="$SMOKE_DIR/trace_assoc.json" "$BENCH_DIR/bench_assoc_minsup" \
  --no-table --benchmark_filter='BM_FpGrowth/0/200/0' >/dev/null
trace_check "$SMOKE_DIR/trace_assoc.json" assoc/
DMT_TRACE="$SMOKE_DIR/trace_cluster.json" "$BENCH_DIR/bench_cluster_scaleup" \
  --benchmark_filter='BM_KMeans/100/0/0' >/dev/null
trace_check "$SMOKE_DIR/trace_cluster.json" cluster/
DMT_TRACE="$SMOKE_DIR/trace_tree.json" "$BENCH_DIR/bench_tree_scaleup" \
  --no-table --benchmark_filter='BM_Cart/1000/0' >/dev/null
trace_check "$SMOKE_DIR/trace_tree.json" tree/
DMT_TRACE="$SMOKE_DIR/trace_seq.json" "$BENCH_DIR/bench_gsp_minsup" \
  --no-table --benchmark_filter='BM_Gsp/100/0' >/dev/null
trace_check "$SMOKE_DIR/trace_seq.json" seq/
DMT_TRACE="$SMOKE_DIR/trace_classify.json" "$BENCH_DIR/bench_knn_sweep" \
  --no-table --benchmark_filter='BM_KnnKdTree/2000' >/dev/null
trace_check "$SMOKE_DIR/trace_classify.json" classify/

echo
echo "== tier 3c: bench regression gate (bench_compare vs baselines) =="
# The smoke records above were produced with exactly the configurations
# the checked-in baselines pin, so the gate diffs them directly: any
# deterministic work-counter change (itemsets, fp_nodes, intersections,
# split_scan_rows, ...) fails the script; wall-time drift only warns.
# Regenerate bench/baselines/*.json with the same filters when a change
# legitimately moves a counter.
BENCH_COMPARE="$ROOT/build/tools/bench_compare"
"$BENCH_COMPARE" "$ROOT/bench/baselines/assoc_minsup.json" \
  "$SMOKE_DIR/assoc_minsup.json"
"$BENCH_COMPARE" "$ROOT/bench/baselines/tree_scaleup.json" \
  "$SMOKE_DIR/tree_scaleup.json"
"$BENCH_COMPARE" "$ROOT/bench/baselines/quantitative.json" \
  "$SMOKE_DIR/quantitative.json"
"$BENCH_COMPARE" "$ROOT/bench/baselines/assoc_scaleup_t.json" \
  "$SMOKE_DIR/assoc_scaleup_t.json"

echo
echo "== tier 4: serving smoke (dmtd end-to-end + bench_serving --json) =="
DMTD="$ROOT/build/tools/dmtd"
DEMO_DIR="$SMOKE_DIR/dmtd_demo"
# Build the demo artifact set (tree + train + kmeans + rules containers),
# then drive the loaded daemon through the script path: one query per
# type plus a stats probe, checking the responses line up.
"$DMTD" --make-demo "$DEMO_DIR" >/dev/null
for artifact in tree.dmt train.dmt kmeans.dmt rules.dmt; do
  test -s "$DEMO_DIR/$artifact"
done
cat > "$SMOKE_DIR/queries.txt" <<'EOF'
# serving smoke queries
classify tree 60000 0 30 1 2 0 135000 10 200000
classify knn 60000 0 30 1 2 0 135000 10 200000
classify nb 60000 0 30 1 2 0 135000 10 200000
cluster 0.0 0.0
rules 5 1 2 3 4 5
stats
EOF
"$DMTD" --dir "$DEMO_DIR" --script "$SMOKE_DIR/queries.txt" \
  --batch-size 8 --cache 64 > "$SMOKE_DIR/script_out.txt"
grep -q '^id=1 labels ' "$SMOKE_DIR/script_out.txt"
grep -q '^id=2 labels ' "$SMOKE_DIR/script_out.txt"
grep -q '^id=3 labels ' "$SMOKE_DIR/script_out.txt"
grep -q '^id=4 clusters ' "$SMOKE_DIR/script_out.txt"
grep -q '^id=5 rules ' "$SMOKE_DIR/script_out.txt"
grep -q '^id=6 stats ' "$SMOKE_DIR/script_out.txt"
# The stats JSON must report the serving counters for the five queries.
grep -q '"serve/requests":6' "$SMOKE_DIR/script_out.txt"
echo "  script mode: 6 responses ok"

# Socket mode: start the daemon for exactly one connection, replay a
# repeated rules query through the client (lines on stdin), and require
# the second occurrence to hit the warm cache.
SOCKET="$SMOKE_DIR/dmtd.sock"
"$DMTD" --dir "$DEMO_DIR" --socket "$SOCKET" --max-conns 1 \
  --batch-size 8 --threads 2 --cache 64 >/dev/null &
DMTD_PID=$!
for _ in $(seq 1 100); do
  test -S "$SOCKET" && break
  sleep 0.05
done
printf 'rules 5 1 2 3 4 5\nrules 5 1 2 3 4 5\nstats\n' | \
  "$DMTD" --client "$SOCKET" > "$SMOKE_DIR/client_out.txt"
wait "$DMTD_PID"
grep -q '^id=1 rules ' "$SMOKE_DIR/client_out.txt"
grep -q '^id=2 rules ' "$SMOKE_DIR/client_out.txt"
grep -q '"serve/cache_hits":1' "$SMOKE_DIR/client_out.txt"
echo "  socket mode: cache-hit counter ok"

# bench_serving at one tiny configuration; the EXT-10 columns must land
# in the JSON record. (The fourth benchmark arg is the EXT-12 telemetry
# toggle.)
"$BENCH_DIR/bench_serving" --no-table \
  --benchmark_filter='BM_ServeReplay/1/8/512/1/real_time' \
  --json "$SMOKE_DIR/serving.json" >/dev/null
json_check "$SMOKE_DIR/serving.json" qps p50_us p99_us mean_batch \
  cache_hit_rate

echo
echo "== tier 4b: dmtd metrics exposition (--metrics-path + slow-query log) =="
# Replay the same script with the Prometheus dump and a 1µs slow-query
# threshold: the batch spans all six requests, so the recommend query
# must trip the log, and the final metrics dump must be a consistent
# Prometheus rendering (cumulative histogram buckets monotone, _count ==
# +Inf bucket, per-request latency series populated).
"$DMTD" --dir "$DEMO_DIR" --script "$SMOKE_DIR/queries.txt" \
  --batch-size 8 --cache 64 \
  --metrics-path "$SMOKE_DIR/metrics.prom" --metrics-interval-ms 200 \
  --slow-query-us 1 > "$SMOKE_DIR/metrics_out.txt" 2> "$SMOKE_DIR/metrics_err.txt"
grep -q 'slow query: id=5 type=recommend' "$SMOKE_DIR/metrics_err.txt"
test "$(grep -c 'slow query: ' "$SMOKE_DIR/metrics_err.txt")" -ge 1
metrics_check() {
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$1" <<'PY'
import re, sys
text = open(sys.argv[1]).read()
hists = {}   # name -> list of (le, cumulative)
sums = {}
counts = {}
types = {}
for line in text.splitlines():
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split()
        types[name] = kind
        continue
    m = re.match(r'^([A-Za-z0-9_:]+)_bucket\{le="([^"]+)"\} (\d+)$', line)
    if m:
        hists.setdefault(m.group(1), []).append(
            (m.group(2), int(m.group(3))))
        continue
    m = re.match(r'^([A-Za-z0-9_:]+)_sum (\d+)$', line)
    if m:
        sums[m.group(1)] = int(m.group(2))
        continue
    m = re.match(r'^([A-Za-z0-9_:]+)_count (\d+)$', line)
    if m:
        counts[m.group(1)] = int(m.group(2))
        continue
    assert re.match(r'^[A-Za-z0-9_:]+ -?[0-9.e+-]+$', line), \
        f"unparseable line {line!r}"
assert hists, "no histogram series in dump"
for name, buckets in hists.items():
    assert types.get(name) == "histogram", f"{name}: missing TYPE"
    cumulative = [c for _, c in buckets]
    assert cumulative == sorted(cumulative), f"{name}: non-monotone"
    assert buckets[-1][0] == "+Inf", f"{name}: missing +Inf"
    assert buckets[-1][1] == counts[name], f"{name}: _count != +Inf"
    assert name in sums, f"{name}: missing _sum"
# The per-request serving telemetry must be present and populated.
assert counts.get("dmt_serve_latency_total_us", 0) == 6, \
    "serve latency histogram missing the 6 scripted requests"
assert counts.get("dmt_serve_hist_basket_items", 0) > 0
print(f"  {sys.argv[1]}: {len(hists)} histogram(s) consistent, "
      f"{len(types)} metric(s) ok")
PY
  else
    grep -q '_bucket{le="+Inf"}' "$1"
    echo "  $1: keys present (python3 unavailable, skipped full parse)"
  fi
}
metrics_check "$SMOKE_DIR/metrics.prom"
echo "  metrics exposition: slow-query log + Prometheus dump ok"

echo
echo "All checks passed."
