#!/usr/bin/env bash
# Full pre-merge check: tier-1 build + tests, then a ThreadSanitizer build
# that runs the thread-pool unit tests and the serial-vs-parallel
# differential tests for every parallelized miner.
#
# Usage: tools/check.sh [jobs]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc)}"

echo "== tier 1: regular build + full test suite =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure

echo
echo "== tier 2: ThreadSanitizer build (DMT_SANITIZE=thread) =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DDMT_SANITIZE=thread \
  -DDMT_BUILD_BENCHMARKS=OFF \
  -DDMT_BUILD_EXAMPLES=OFF
TSAN_TARGETS=(
  core_thread_pool_test
  assoc_parallel_diff_test
  cluster_parallel_diff_test
  seq_parallel_diff_test
)
cmake --build "$ROOT/build-tsan" -j "$JOBS" --target "${TSAN_TARGETS[@]}"

# halt_on_error so a single race fails the script immediately.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$ROOT/build-tsan/tests/core/core_thread_pool_test"
"$ROOT/build-tsan/tests/assoc/assoc_parallel_diff_test"
"$ROOT/build-tsan/tests/cluster/cluster_parallel_diff_test"
"$ROOT/build-tsan/tests/seq/seq_parallel_diff_test"

echo
echo "All checks passed."
