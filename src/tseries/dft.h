// Discrete Fourier transform with the orthonormal (1/sqrt(n)) scaling used
// by feature-based time-series indexing: Parseval's theorem then makes
// Euclidean distance in any coefficient subspace a lower bound of the
// distance in the time domain.
#ifndef DMT_TSERIES_DFT_H_
#define DMT_TSERIES_DFT_H_

#include <complex>
#include <span>
#include <vector>

namespace dmt::tseries {

/// Orthonormal DFT of a real series: X_f = n^{-1/2} sum_t x_t e^{-2πi ft/n}.
/// Uses an iterative radix-2 FFT when n is a power of two, the O(n^2)
/// definition otherwise. Empty input yields empty output.
std::vector<std::complex<double>> Dft(std::span<const double> values);

/// First `k` DFT coefficients flattened to 2k reals (re0, im0, re1, ...).
/// k is clamped to the series length.
std::vector<double> DftFeatures(std::span<const double> values, size_t k);

/// DFT coefficients [first, first + count) flattened to reals; the range is
/// clamped to the series length. Starting at 1 skips the DC coefficient,
/// making the features invariant to vertical shifts of the series.
std::vector<double> DftFeaturesRange(std::span<const double> values,
                                     size_t first, size_t count);

/// True when n is a nonzero power of two (exposed for tests).
bool IsPowerOfTwo(size_t n);

}  // namespace dmt::tseries

#endif  // DMT_TSERIES_DFT_H_
