// GEMINI-style subsequence similarity search (Agrawal, Faloutsos & Swami,
// FODO'93; Faloutsos, Ranganathan & Manolopoulos, SIGMOD'94): every
// sliding window of every series is mapped to its first few DFT
// coefficients; a range query filters candidates in the low-dimensional
// feature space (no false dismissals, by Parseval) and verifies the
// survivors against the raw data.
#ifndef DMT_TSERIES_SIMILARITY_H_
#define DMT_TSERIES_SIMILARITY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/kd_tree.h"
#include "core/point_set.h"
#include "core/status.h"

namespace dmt::tseries {

/// Index configuration.
struct SubsequenceIndexOptions {
  /// Sliding-window length; queries must have exactly this length.
  size_t window = 64;
  /// DFT coefficients kept per window (feature dim = 2 * this). The
  /// original papers found 2-3 coefficients optimal for random-walk-like
  /// data (energy concentrates in low frequencies).
  size_t num_coefficients = 3;
  /// Offsets between indexed windows (1 = every position, the papers'
  /// ST-index; larger strides trade recall of *positions* for space —
  /// matches are still exact for indexed offsets).
  size_t stride = 1;
  /// Match up to a vertical shift (FRM'94 §5, "v-shift" similarity): the
  /// DC coefficient is dropped from the features and distances are
  /// computed between mean-centered windows.
  bool vertical_shift_invariant = false;

  core::Status Validate() const;
};

/// One verified match.
struct SubsequenceMatch {
  uint32_t series = 0;
  uint32_t offset = 0;
  /// Exact Euclidean distance between the query and the window.
  double distance = 0.0;

  bool operator==(const SubsequenceMatch& other) const = default;
};

/// Query diagnostics: how well the feature filter worked.
struct QueryStats {
  size_t windows_indexed = 0;
  size_t candidates = 0;   // windows passing the feature-space filter
  size_t matches = 0;      // candidates surviving exact verification
};

/// Immutable index over the sliding windows of a series collection.
class SubsequenceIndex {
 public:
  /// Builds the index; series shorter than the window are skipped.
  static core::Result<SubsequenceIndex> Build(
      const std::vector<std::vector<double>>& series,
      const SubsequenceIndexOptions& options);

  /// All windows within Euclidean distance `epsilon` of `query`
  /// (query.size() == window). Exact: the feature-space prefilter admits
  /// no false dismissals. Results sorted by (series, offset).
  core::Result<std::vector<SubsequenceMatch>> RangeQuery(
      std::span<const double> query, double epsilon,
      QueryStats* stats = nullptr) const;

  /// Brute-force reference scan (ablation baseline; identical results).
  core::Result<std::vector<SubsequenceMatch>> RangeQueryBruteForce(
      std::span<const double> query, double epsilon,
      QueryStats* stats = nullptr) const;

  size_t num_windows() const { return locations_.size(); }
  const SubsequenceIndexOptions& options() const { return options_; }

 private:
  SubsequenceIndex(SubsequenceIndexOptions options) : options_(options) {}

  SubsequenceIndexOptions options_;
  /// Raw series (owned copy, for verification).
  std::vector<std::vector<double>> series_;
  /// (series, offset) per indexed window, parallel to features_ rows.
  std::vector<std::pair<uint32_t, uint32_t>> locations_;
  /// Heap-allocated so the kd-tree's reference to it survives moves of
  /// the index object.
  std::unique_ptr<core::PointSet> features_;
  std::unique_ptr<core::KdTree> feature_index_;
};

}  // namespace dmt::tseries

#endif  // DMT_TSERIES_SIMILARITY_H_
