#include "tseries/similarity.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/distance.h"
#include "core/string_util.h"
#include "tseries/dft.h"

namespace dmt::tseries {

using core::Result;
using core::Status;

namespace {

/// Squared Euclidean distance between the two windows after subtracting
/// each window's own mean (v-shift-invariant distance).
double CenteredSquaredDistance(std::span<const double> a,
                               std::span<const double> b) {
  DMT_CHECK(a.size() == b.size());
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(a.size());
  mean_b /= static_cast<double>(b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = (a[i] - mean_a) - (b[i] - mean_b);
    total += diff * diff;
  }
  return total;
}

}  // namespace

Status SubsequenceIndexOptions::Validate() const {
  if (window == 0) return Status::InvalidArgument("window must be >= 1");
  if (num_coefficients == 0) {
    return Status::InvalidArgument("num_coefficients must be >= 1");
  }
  if (2 * num_coefficients > window) {
    return Status::InvalidArgument(
        "num_coefficients must be <= window / 2 (feature space cannot "
        "exceed the original dimensionality)");
  }
  if (stride == 0) return Status::InvalidArgument("stride must be >= 1");
  return Status::OK();
}

Result<SubsequenceIndex> SubsequenceIndex::Build(
    const std::vector<std::vector<double>>& series,
    const SubsequenceIndexOptions& options) {
  DMT_RETURN_NOT_OK(options.Validate());
  SubsequenceIndex index(options);
  index.series_ = series;
  index.features_ =
      std::make_unique<core::PointSet>(2 * options.num_coefficients);
  for (uint32_t s = 0; s < series.size(); ++s) {
    const auto& values = series[s];
    if (values.size() < options.window) continue;
    for (size_t offset = 0; offset + options.window <= values.size();
         offset += options.stride) {
      std::span<const double> window(values.data() + offset,
                                     options.window);
      auto features =
          options.vertical_shift_invariant
              ? DftFeaturesRange(window, 1, options.num_coefficients)
              : DftFeatures(window, options.num_coefficients);
      index.features_->Add(features);
      index.locations_.emplace_back(s, static_cast<uint32_t>(offset));
    }
  }
  if (!index.features_->empty()) {
    index.feature_index_ =
        std::make_unique<core::KdTree>(*index.features_);
  }
  return index;
}

Result<std::vector<SubsequenceMatch>> SubsequenceIndex::RangeQuery(
    std::span<const double> query, double epsilon,
    QueryStats* stats) const {
  if (query.size() != options_.window) {
    return Status::InvalidArgument(core::StrFormat(
        "query length %zu does not match the index window %zu",
        query.size(), options_.window));
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  QueryStats local;
  local.windows_indexed = locations_.size();
  std::vector<SubsequenceMatch> matches;
  if (feature_index_ != nullptr) {
    auto query_features =
        options_.vertical_shift_invariant
            ? DftFeaturesRange(query, 1, options_.num_coefficients)
            : DftFeatures(query, options_.num_coefficients);
    // Parseval: distance in the truncated coefficient space lower-bounds
    // the time-domain distance, so an epsilon-ball in feature space
    // contains every true match (no false dismissals).
    auto candidates = feature_index_->RadiusSearch(query_features, epsilon);
    local.candidates = candidates.size();
    const double epsilon_sq = epsilon * epsilon;
    for (uint32_t candidate : candidates) {
      auto [s, offset] = locations_[candidate];
      std::span<const double> window(series_[s].data() + offset,
                                     options_.window);
      double d_sq = options_.vertical_shift_invariant
                        ? CenteredSquaredDistance(query, window)
                        : core::SquaredEuclideanDistance(query, window);
      if (d_sq <= epsilon_sq) {
        matches.push_back({s, offset, std::sqrt(d_sq)});
      }
    }
  }
  local.matches = matches.size();
  if (stats != nullptr) *stats = local;
  std::sort(matches.begin(), matches.end(),
            [](const SubsequenceMatch& a, const SubsequenceMatch& b) {
              if (a.series != b.series) return a.series < b.series;
              return a.offset < b.offset;
            });
  return matches;
}

Result<std::vector<SubsequenceMatch>>
SubsequenceIndex::RangeQueryBruteForce(std::span<const double> query,
                                       double epsilon,
                                       QueryStats* stats) const {
  if (query.size() != options_.window) {
    return Status::InvalidArgument(core::StrFormat(
        "query length %zu does not match the index window %zu",
        query.size(), options_.window));
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  QueryStats local;
  local.windows_indexed = locations_.size();
  local.candidates = locations_.size();
  const double epsilon_sq = epsilon * epsilon;
  std::vector<SubsequenceMatch> matches;
  for (const auto& [s, offset] : locations_) {
    std::span<const double> window(series_[s].data() + offset,
                                   options_.window);
    double d_sq = options_.vertical_shift_invariant
                      ? CenteredSquaredDistance(query, window)
                      : core::SquaredEuclideanDistance(query, window);
    if (d_sq <= epsilon_sq) {
      matches.push_back({s, offset, std::sqrt(d_sq)});
    }
  }
  local.matches = matches.size();
  if (stats != nullptr) *stats = local;
  return matches;
}

}  // namespace dmt::tseries
