#include "tseries/dft.h"

#include <cmath>
#include <numbers>

namespace dmt::tseries {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

/// In-place iterative radix-2 Cooley–Tukey.
void Fft(std::vector<std::complex<double>>& data) {
  const size_t n = data.size();
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    std::complex<double> root(std::cos(angle), std::sin(angle));
    for (size_t start = 0; start < n; start += len) {
      std::complex<double> twiddle(1.0, 0.0);
      for (size_t off = 0; off < len / 2; ++off) {
        std::complex<double> even = data[start + off];
        std::complex<double> odd = data[start + off + len / 2] * twiddle;
        data[start + off] = even + odd;
        data[start + off + len / 2] = even - odd;
        twiddle *= root;
      }
    }
  }
}

}  // namespace

std::vector<std::complex<double>> Dft(std::span<const double> values) {
  const size_t n = values.size();
  std::vector<std::complex<double>> out;
  if (n == 0) return out;
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  if (IsPowerOfTwo(n)) {
    out.assign(values.begin(), values.end());
    Fft(out);
    for (auto& c : out) c *= scale;
    return out;
  }
  out.resize(n);
  for (size_t f = 0; f < n; ++f) {
    std::complex<double> sum(0.0, 0.0);
    for (size_t t = 0; t < n; ++t) {
      double angle = -2.0 * std::numbers::pi * static_cast<double>(f) *
                     static_cast<double>(t) / static_cast<double>(n);
      sum += values[t] * std::complex<double>(std::cos(angle),
                                              std::sin(angle));
    }
    out[f] = sum * scale;
  }
  return out;
}

std::vector<double> DftFeatures(std::span<const double> values, size_t k) {
  return DftFeaturesRange(values, 0, k);
}

std::vector<double> DftFeaturesRange(std::span<const double> values,
                                     size_t first, size_t count) {
  auto coefficients = Dft(values);
  size_t end = first + count;
  if (end > coefficients.size()) end = coefficients.size();
  if (first > end) first = end;
  std::vector<double> features;
  features.reserve(2 * (end - first));
  for (size_t f = first; f < end; ++f) {
    features.push_back(coefficients[f].real());
    features.push_back(coefficients[f].imag());
  }
  return features;
}

}  // namespace dmt::tseries
