#include "classify/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/bitset.h"
#include "core/check.h"
#include "core/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::classify {

using core::AttributeType;
using core::Dataset;
using core::Result;
using core::Status;

Status NaiveBayesClassifier::Fit(const Dataset& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit on an empty dataset");
  }
  if (options_.laplace_alpha < 0.0) {
    return Status::InvalidArgument("laplace_alpha must be >= 0");
  }
  if (options_.variance_floor <= 0.0) {
    return Status::InvalidArgument("variance_floor must be > 0");
  }
  obs::Span fit_span("classify/naive_bayes/fit");
  num_attributes_ = train.num_attributes();
  num_classes_ = train.num_classes();
  attribute_types_.clear();
  numeric_stats_.assign(num_attributes_, {});
  categorical_log_likelihood_.assign(num_attributes_, {});

  std::vector<size_t> class_counts = train.ClassCounts();
  log_priors_.assign(num_classes_, 0.0);
  for (uint32_t c = 0; c < num_classes_; ++c) {
    // Laplace-smoothed priors keep classes absent from the sample finite.
    log_priors_[c] = std::log(
        (static_cast<double>(class_counts[c]) + 1.0) /
        (static_cast<double>(train.num_rows()) +
         static_cast<double>(num_classes_)));
  }

  for (size_t a = 0; a < num_attributes_; ++a) {
    const auto& attr = train.attribute(a);
    attribute_types_.push_back(attr.type);
    if (attr.type == AttributeType::kNumeric) {
      // Per-class mean and variance.
      std::vector<double> sum(num_classes_, 0.0);
      std::vector<double> sum_sq(num_classes_, 0.0);
      auto column = train.NumericColumn(a);
      for (size_t row = 0; row < train.num_rows(); ++row) {
        uint32_t label = train.Label(row);
        sum[label] += column[row];
        sum_sq[label] += column[row] * column[row];
      }
      numeric_stats_[a].resize(num_classes_);
      for (uint32_t c = 0; c < num_classes_; ++c) {
        double n = static_cast<double>(class_counts[c]);
        if (n == 0.0) {
          numeric_stats_[a][c] = {0.0, 1.0};
          continue;
        }
        double mean = sum[c] / n;
        double variance = sum_sq[c] / n - mean * mean;
        numeric_stats_[a][c] = {
            mean, std::max(variance, options_.variance_floor)};
      }
    } else {
      size_t num_categories = attr.num_categories();
      categorical_log_likelihood_[a].assign(
          num_classes_, std::vector<double>(num_categories, 0.0));
      std::vector<std::vector<uint32_t>> counts(
          num_classes_, std::vector<uint32_t>(num_categories, 0));
      auto column = train.CategoricalColumn(a);
      for (size_t row = 0; row < train.num_rows(); ++row) {
        ++counts[train.Label(row)][column[row]];
      }
      for (uint32_t c = 0; c < num_classes_; ++c) {
        double denominator =
            static_cast<double>(class_counts[c]) +
            options_.laplace_alpha * static_cast<double>(num_categories);
        for (size_t v = 0; v < num_categories; ++v) {
          double numerator = static_cast<double>(counts[c][v]) +
                             options_.laplace_alpha;
          if (numerator <= 0.0) {
            // alpha == 0 and unseen: effectively -inf; use a huge penalty
            // so other attributes can still break ties.
            categorical_log_likelihood_[a][c][v] = -1e100;
          } else {
            categorical_log_likelihood_[a][c][v] =
                std::log(numerator / denominator);
          }
        }
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> NaiveBayesClassifier::LogScores(
    const Dataset& data, size_t row) const {
  if (!fitted_) {
    return Status::FailedPrecondition("classifier has not been fitted");
  }
  if (data.num_attributes() != num_attributes_) {
    return Status::InvalidArgument(core::StrFormat(
        "schema mismatch: fitted on %zu attributes, queried with %zu",
        num_attributes_, data.num_attributes()));
  }
  std::vector<double> scores = log_priors_;
  constexpr double kLogTwoPi = 1.8378770664093453;  // log(2*pi)
  for (size_t a = 0; a < num_attributes_; ++a) {
    if (data.attribute(a).type != attribute_types_[a]) {
      return Status::InvalidArgument(
          "schema mismatch: attribute type differs from training");
    }
    if (attribute_types_[a] == AttributeType::kNumeric) {
      double value = data.Numeric(row, a);
      for (uint32_t c = 0; c < num_classes_; ++c) {
        const NumericStats& stats = numeric_stats_[a][c];
        double diff = value - stats.mean;
        scores[c] += -0.5 * (kLogTwoPi + std::log(stats.variance) +
                             diff * diff / stats.variance);
      }
    } else {
      uint32_t value = data.Categorical(row, a);
      if (value >= categorical_log_likelihood_[a][0].size()) {
        return Status::OutOfRange(
            "category code outside the training dictionary");
      }
      for (uint32_t c = 0; c < num_classes_; ++c) {
        scores[c] += categorical_log_likelihood_[a][c][value];
      }
    }
  }
  return scores;
}

bool NaiveBayesClassifier::ValidForFastPath(const Dataset& test) const {
  if (!fitted_ || test.num_attributes() != num_attributes_) return false;
  if (test.num_rows() == 0) return false;
  for (size_t a = 0; a < num_attributes_; ++a) {
    if (test.attribute(a).type != attribute_types_[a]) return false;
    if (attribute_types_[a] == AttributeType::kNumeric) continue;
    // Categorical column: every observed code must exist in the training
    // dictionary. One bitmask-subset kernel call per column replaces the
    // per-row per-value range check in LogScores.
    const size_t train_cats = categorical_log_likelihood_[a][0].size();
    const size_t test_cats = test.attribute(a).num_categories();
    const size_t span = std::max(train_cats, test_cats);
    core::DynamicBitset observed(span);
    core::DynamicBitset valid(span);
    for (size_t v = 0; v < train_cats; ++v) valid.Set(v);
    auto column = test.CategoricalColumn(a);
    for (size_t row = 0; row < test.num_rows(); ++row) {
      observed.Set(column[row]);
    }
    if (!observed.IsSubsetOf(valid)) return false;
  }
  return true;
}

Result<std::vector<uint32_t>> NaiveBayesClassifier::PredictAll(
    const Dataset& test) const {
  obs::Counter predictions_counter("classify/naive_bayes/predictions");
  obs::Span predict_span("classify/naive_bayes/predict_all");
  predict_span.AttachCounter(predictions_counter);
  predictions_counter.Add(test.num_rows());
  std::vector<uint32_t> predictions;
  predictions.reserve(test.num_rows());
  if (!ValidForFastPath(test)) {
    // Something would fail validation (or the test set is empty): run the
    // per-row checked path so the error row/attribute/order is exactly
    // what LogScores reports.
    for (size_t row = 0; row < test.num_rows(); ++row) {
      DMT_ASSIGN_OR_RETURN(std::vector<double> scores,
                           LogScores(test, row));
      uint32_t best = 0;
      for (uint32_t c = 1; c < scores.size(); ++c) {
        if (scores[c] > scores[best]) best = c;
      }
      predictions.push_back(best);
    }
    return predictions;
  }
  // Fast path: schema and dictionaries pre-validated above, so score rows
  // with no per-value checks and a reused buffer. The accumulation order
  // matches LogScores term for term, so predictions are bit-identical.
  constexpr double kLogTwoPi = 1.8378770664093453;  // log(2*pi)
  std::vector<double> scores;
  for (size_t row = 0; row < test.num_rows(); ++row) {
    scores = log_priors_;
    for (size_t a = 0; a < num_attributes_; ++a) {
      if (attribute_types_[a] == AttributeType::kNumeric) {
        const double value = test.Numeric(row, a);
        for (uint32_t c = 0; c < num_classes_; ++c) {
          const NumericStats& stats = numeric_stats_[a][c];
          const double diff = value - stats.mean;
          scores[c] += -0.5 * (kLogTwoPi + std::log(stats.variance) +
                               diff * diff / stats.variance);
        }
      } else {
        const uint32_t value = test.Categorical(row, a);
        for (uint32_t c = 0; c < num_classes_; ++c) {
          scores[c] += categorical_log_likelihood_[a][c][value];
        }
      }
    }
    uint32_t best = 0;
    for (uint32_t c = 1; c < scores.size(); ++c) {
      if (scores[c] > scores[best]) best = c;
    }
    predictions.push_back(best);
  }
  return predictions;
}

}  // namespace dmt::classify
