#include "classify/knn.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/distance.h"
#include "core/kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::classify {

using core::Dataset;
using core::KdTree;
using core::PointSet;
using core::Result;
using core::Status;

Status KnnOptions::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  return Status::OK();
}

namespace {

/// Brute-force k-nearest as (squared distance, index), ascending. When a
/// dimension-major staging of `points` is supplied, distances come from
/// the batched SIMD kernel in blocks; the heap still consumes them in
/// ascending index order, so the result is bit-identical to the pairwise
/// scan (the kernel's per-candidate arithmetic is the scalar sequence).
std::vector<std::pair<double, uint32_t>> BruteKNearest(
    const PointSet& points, std::span<const double> query, size_t k,
    const core::kernels::SoaBlock* soa = nullptr) {
  std::vector<std::pair<double, uint32_t>> heap;
  heap.reserve(k + 1);
  constexpr size_t kBlock = 256;
  double dist[kBlock];
  const size_t n = points.size();
  for (size_t block = 0; block < n; block += kBlock) {
    const size_t len = std::min(kBlock, n - block);
    if (soa != nullptr) {
      core::kernels::Ops().squared_euclidean_to_many(
          query.data(), soa->data() + block, n, len, points.dim(), dist);
    } else {
      for (size_t j = 0; j < len; ++j) {
        dist[j] =
            core::SquaredEuclideanDistance(query, points.point(block + j));
      }
    }
    for (size_t j = 0; j < len; ++j) {
      const uint32_t i = static_cast<uint32_t>(block + j);
      const double d = dist[j];
      if (heap.size() < k) {
        heap.emplace_back(d, i);
        std::push_heap(heap.begin(), heap.end());
      } else if (d < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {d, i};
        std::push_heap(heap.begin(), heap.end());
      }
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  return heap;
}

}  // namespace

Status KnnClassifier::Fit(const Dataset& train) {
  DMT_RETURN_NOT_OK(options_.Validate());
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit on an empty dataset");
  }
  obs::Span fit_span("classify/knn/fit");
  DMT_ASSIGN_OR_RETURN(train_points_, train.ToPointSet(true));
  train_labels_.assign(train.labels().begin(), train.labels().end());
  num_classes_ = train.num_classes();

  const size_t dim = train_points_.dim();
  feature_means_.assign(dim, 0.0);
  feature_scales_.assign(dim, 1.0);
  if (options_.standardize) {
    const size_t n = train_points_.size();
    std::vector<double> variance(dim, 0.0);
    for (size_t i = 0; i < n; ++i) {
      auto p = train_points_.point(i);
      for (size_t d = 0; d < dim; ++d) feature_means_[d] += p[d];
    }
    for (size_t d = 0; d < dim; ++d) {
      feature_means_[d] /= static_cast<double>(n);
    }
    for (size_t i = 0; i < n; ++i) {
      auto p = train_points_.point(i);
      for (size_t d = 0; d < dim; ++d) {
        double diff = p[d] - feature_means_[d];
        variance[d] += diff * diff;
      }
    }
    for (size_t d = 0; d < dim; ++d) {
      double stddev = std::sqrt(variance[d] / static_cast<double>(n));
      feature_scales_[d] = stddev > 0.0 ? stddev : 1.0;
    }
    for (size_t i = 0; i < n; ++i) {
      auto p = train_points_.mutable_point(i);
      for (size_t d = 0; d < dim; ++d) {
        p[d] = (p[d] - feature_means_[d]) / feature_scales_[d];
      }
    }
  }
  if (options_.search == KnnOptions::Search::kKdTree) {
    index_ = std::make_unique<KdTree>(train_points_);
  } else {
    index_.reset();
    // Brute mode scans the whole training set per query: stage it
    // dimension-major once (after standardization) for the batched
    // distance kernel.
    train_soa_.Assign(train_points_.data().data(), train_points_.size(),
                      train_points_.dim());
  }
  fitted_ = true;
  return Status::OK();
}

uint32_t KnnClassifier::Vote(
    const std::vector<std::pair<double, uint32_t>>& neighbours) const {
  std::vector<double> votes(num_classes_, 0.0);
  for (const auto& [distance_sq, index] : neighbours) {
    double weight = 1.0;
    if (options_.distance_weighted) {
      weight = 1.0 / (std::sqrt(distance_sq) + 1e-12);
    }
    votes[train_labels_[index]] += weight;
  }
  uint32_t best = 0;
  for (uint32_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return best;
}

Result<std::vector<uint32_t>> KnnClassifier::PredictAll(
    const Dataset& test) const {
  if (!fitted_) {
    return Status::FailedPrecondition("classifier has not been fitted");
  }
  DMT_ASSIGN_OR_RETURN(PointSet queries, test.ToPointSet(true));
  if (queries.dim() != train_points_.dim()) {
    return Status::InvalidArgument(
        "schema mismatch: test dimensionality differs from training");
  }
  obs::Counter queries_counter("classify/knn/queries");
  obs::Span predict_span("classify/knn/predict_all");
  predict_span.AttachCounter(queries_counter);
  queries_counter.Add(queries.size());
  std::vector<uint32_t> predictions;
  predictions.reserve(queries.size());
  std::vector<double> buffer(queries.dim());
  for (size_t row = 0; row < queries.size(); ++row) {
    auto q = queries.point(row);
    for (size_t d = 0; d < buffer.size(); ++d) {
      buffer[d] = (q[d] - feature_means_[d]) / feature_scales_[d];
    }
    std::vector<std::pair<double, uint32_t>> neighbours =
        index_ != nullptr
            ? index_->KNearest(buffer, options_.k)
            : BruteKNearest(train_points_, buffer, options_.k,
                            &train_soa_);
    predictions.push_back(Vote(neighbours));
  }
  return predictions;
}

uint32_t KnnPredictPoint(const PointSet& train,
                         const std::vector<uint32_t>& labels,
                         size_t num_classes, std::span<const double> query,
                         size_t k, const KdTree* index) {
  DMT_CHECK_EQ(train.size(), labels.size());
  DMT_CHECK_GT(k, 0u);
  auto neighbours = index != nullptr ? index->KNearest(query, k)
                                     : BruteKNearest(train, query, k);
  std::vector<uint32_t> votes(num_classes, 0);
  for (const auto& [distance_sq, i] : neighbours) ++votes[labels[i]];
  uint32_t best = 0;
  for (uint32_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return best;
}

}  // namespace dmt::classify
