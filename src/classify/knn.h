// k-nearest-neighbour classification with brute-force or kd-tree search.
#ifndef DMT_CLASSIFY_KNN_H_
#define DMT_CLASSIFY_KNN_H_

#include <memory>
#include <vector>

#include "classify/classifier.h"
#include "core/kd_tree.h"
#include "core/kernels/kernels.h"
#include "core/point_set.h"

namespace dmt::classify {

/// kNN hyper-parameters.
struct KnnOptions {
  /// Number of neighbours (majority vote; ties -> smallest class id).
  size_t k = 5;
  /// Neighbour search backend.
  enum class Search { kKdTree, kBruteForce };
  Search search = Search::kKdTree;
  /// Weight votes by 1/distance instead of uniformly.
  bool distance_weighted = false;
  /// Standardize features to zero mean / unit variance using training
  /// statistics (recommended: Euclidean distance is scale-sensitive).
  bool standardize = true;

  core::Status Validate() const;
};

/// kNN over tabular datasets (categorical attributes one-hot encoded).
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(const KnnOptions& options = {})
      : options_(options) {}

  core::Status Fit(const core::Dataset& train) override;
  core::Result<std::vector<uint32_t>> PredictAll(
      const core::Dataset& test) const override;

 private:
  uint32_t Vote(const std::vector<std::pair<double, uint32_t>>& neighbours)
      const;

  KnnOptions options_;
  bool fitted_ = false;
  core::PointSet train_points_;
  std::vector<uint32_t> train_labels_;
  size_t num_classes_ = 0;
  std::vector<double> feature_means_;
  std::vector<double> feature_scales_;
  std::unique_ptr<core::KdTree> index_;
  /// Brute-force mode only: training points staged dimension-major for
  /// the batched distance kernel (built once per Fit).
  core::kernels::SoaBlock train_soa_;
};

/// Point-level kNN vote shared with benchmarks: labels the query by
/// majority among the k nearest `train` points.
uint32_t KnnPredictPoint(const core::PointSet& train,
                         const std::vector<uint32_t>& labels,
                         size_t num_classes,
                         std::span<const double> query, size_t k,
                         const core::KdTree* index = nullptr);

}  // namespace dmt::classify

#endif  // DMT_CLASSIFY_KNN_H_
