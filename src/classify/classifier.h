// Common interface for dataset-level classifiers.
#ifndef DMT_CLASSIFY_CLASSIFIER_H_
#define DMT_CLASSIFY_CLASSIFIER_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"

namespace dmt::classify {

/// A trainable classifier over tabular datasets. Train and test datasets
/// must share the same schema (attribute order, types, category sets).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the labelled dataset.
  virtual core::Status Fit(const core::Dataset& train) = 0;

  /// Predicts a class for every row of `test`. Fails if called before Fit
  /// or on a schema mismatch.
  virtual core::Result<std::vector<uint32_t>> PredictAll(
      const core::Dataset& test) const = 0;
};

}  // namespace dmt::classify

#endif  // DMT_CLASSIFY_CLASSIFIER_H_
