#include "classify/one_r.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/string_util.h"

namespace dmt::classify {

using core::AttributeType;
using core::Dataset;
using core::Result;
using core::Status;

Status OneROptions::Validate() const {
  if (min_bucket == 0) {
    return Status::InvalidArgument("min_bucket must be >= 1");
  }
  return Status::OK();
}

namespace {

uint32_t Majority(const std::vector<size_t>& counts) {
  uint32_t best = 0;
  for (uint32_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  return best;
}

/// One candidate rule with its training error count.
struct CandidateRule {
  size_t errors = SIZE_MAX;
  std::vector<uint32_t> category_class;
  std::vector<double> interval_bounds;
  std::vector<uint32_t> interval_class;
};

CandidateRule BuildCategoricalRule(const Dataset& data, size_t attribute,
                                   uint32_t fallback) {
  const size_t categories = data.attribute(attribute).num_categories();
  std::vector<std::vector<size_t>> counts(
      categories, std::vector<size_t>(data.num_classes(), 0));
  auto column = data.CategoricalColumn(attribute);
  for (size_t row = 0; row < data.num_rows(); ++row) {
    ++counts[column[row]][data.Label(row)];
  }
  CandidateRule rule;
  rule.errors = 0;
  rule.category_class.resize(categories, fallback);
  for (size_t v = 0; v < categories; ++v) {
    size_t total = std::accumulate(counts[v].begin(), counts[v].end(),
                                   size_t{0});
    if (total == 0) continue;  // unseen category falls back
    uint32_t majority = Majority(counts[v]);
    rule.category_class[v] = majority;
    rule.errors += total - counts[v][majority];
  }
  return rule;
}

CandidateRule BuildNumericRule(const Dataset& data, size_t attribute,
                               size_t min_bucket) {
  const size_t n = data.num_rows();
  auto column = data.NumericColumn(attribute);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return column[a] < column[b];
  });

  // Greedy bucketing: extend the bucket until its majority class has at
  // least min_bucket members, then close it at the next value change.
  CandidateRule rule;
  rule.errors = 0;
  std::vector<size_t> bucket_counts(data.num_classes(), 0);
  size_t bucket_majority_count = 0;
  auto close_bucket = [&](size_t boundary_index) {
    uint32_t majority = Majority(bucket_counts);
    size_t total = std::accumulate(bucket_counts.begin(),
                                   bucket_counts.end(), size_t{0});
    rule.errors += total - bucket_counts[majority];
    rule.interval_class.push_back(majority);
    if (boundary_index < n) {
      double lo = column[order[boundary_index - 1]];
      double hi = column[order[boundary_index]];
      rule.interval_bounds.push_back(lo + (hi - lo) / 2.0);
    }
    std::fill(bucket_counts.begin(), bucket_counts.end(), size_t{0});
    bucket_majority_count = 0;
  };
  for (size_t i = 0; i < n; ++i) {
    ++bucket_counts[data.Label(order[i])];
    bucket_majority_count =
        std::max(bucket_majority_count,
                 bucket_counts[data.Label(order[i])]);
    // Holte's rule: once the majority class has min_bucket members, keep
    // extending while the next example still agrees with that majority;
    // close at the first disagreeing example on a value boundary.
    bool can_close =
        bucket_majority_count >= min_bucket && i + 1 < n &&
        column[order[i]] != column[order[i + 1]] &&
        data.Label(order[i + 1]) != Majority(bucket_counts);
    if (can_close) close_bucket(i + 1);
  }
  close_bucket(n);

  // Merge adjacent intervals predicting the same class.
  std::vector<double> merged_bounds;
  std::vector<uint32_t> merged_class;
  for (size_t i = 0; i < rule.interval_class.size(); ++i) {
    if (!merged_class.empty() &&
        merged_class.back() == rule.interval_class[i]) {
      if (!merged_bounds.empty() &&
          merged_bounds.size() >= merged_class.size()) {
        merged_bounds.pop_back();
      }
      if (i < rule.interval_bounds.size()) {
        merged_bounds.push_back(rule.interval_bounds[i]);
      }
      continue;
    }
    merged_class.push_back(rule.interval_class[i]);
    if (i < rule.interval_bounds.size()) {
      merged_bounds.push_back(rule.interval_bounds[i]);
    }
  }
  rule.interval_bounds = std::move(merged_bounds);
  rule.interval_class = std::move(merged_class);
  return rule;
}

}  // namespace

Status OneRClassifier::Fit(const Dataset& train) {
  DMT_RETURN_NOT_OK(options_.Validate());
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit on an empty dataset");
  }
  if (train.num_attributes() == 0) {
    return Status::InvalidArgument("dataset has no attributes");
  }
  std::vector<size_t> class_counts(train.num_classes(), 0);
  for (uint32_t label : train.labels()) ++class_counts[label];
  fallback_class_ = Majority(class_counts);

  CandidateRule best;
  size_t best_attribute = 0;
  for (size_t a = 0; a < train.num_attributes(); ++a) {
    CandidateRule candidate =
        train.attribute(a).type == AttributeType::kCategorical
            ? BuildCategoricalRule(train, a, fallback_class_)
            : BuildNumericRule(train, a, options_.min_bucket);
    if (candidate.errors < best.errors) {
      best = std::move(candidate);
      best_attribute = a;
    }
  }
  chosen_attribute_ = best_attribute;
  attribute_type_ = train.attribute(best_attribute).type;
  category_class_ = std::move(best.category_class);
  interval_bounds_ = std::move(best.interval_bounds);
  interval_class_ = std::move(best.interval_class);
  training_error_ = static_cast<double>(best.errors) /
                    static_cast<double>(train.num_rows());
  attribute_name_ = train.attribute(best_attribute).name;
  category_names_ = train.attribute(best_attribute).categories;
  class_names_ = train.class_names();
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<uint32_t>> OneRClassifier::PredictAll(
    const Dataset& test) const {
  if (!fitted_) {
    return Status::FailedPrecondition("classifier has not been fitted");
  }
  if (test.num_attributes() <= chosen_attribute_ ||
      test.attribute(chosen_attribute_).type != attribute_type_) {
    return Status::InvalidArgument(
        "schema mismatch: chosen attribute missing or retyped");
  }
  std::vector<uint32_t> predictions;
  predictions.reserve(test.num_rows());
  for (size_t row = 0; row < test.num_rows(); ++row) {
    if (attribute_type_ == AttributeType::kCategorical) {
      uint32_t value = test.Categorical(row, chosen_attribute_);
      predictions.push_back(value < category_class_.size()
                                ? category_class_[value]
                                : fallback_class_);
    } else {
      double value = test.Numeric(row, chosen_attribute_);
      size_t interval =
          std::upper_bound(interval_bounds_.begin(),
                           interval_bounds_.end(), value) -
          interval_bounds_.begin();
      predictions.push_back(interval < interval_class_.size()
                                ? interval_class_[interval]
                                : fallback_class_);
    }
  }
  return predictions;
}

std::string OneRClassifier::RuleToString() const {
  if (!fitted_) return "(unfitted)";
  std::string out = "1R on '" + attribute_name_ + "':\n";
  if (attribute_type_ == AttributeType::kCategorical) {
    for (size_t v = 0; v < category_class_.size(); ++v) {
      out += core::StrFormat(
          "  %s = %s -> %s\n", attribute_name_.c_str(),
          category_names_[v].c_str(),
          class_names_[category_class_[v]].c_str());
    }
  } else {
    double previous = 0.0;
    for (size_t i = 0; i < interval_class_.size(); ++i) {
      if (i == 0) {
        out += interval_bounds_.empty()
                   ? core::StrFormat(
                         "  always -> %s\n",
                         class_names_[interval_class_[i]].c_str())
                   : core::StrFormat(
                         "  %s <= %.6g -> %s\n", attribute_name_.c_str(),
                         interval_bounds_[0],
                         class_names_[interval_class_[i]].c_str());
      } else if (i < interval_bounds_.size()) {
        out += core::StrFormat(
            "  %.6g < %s <= %.6g -> %s\n", previous,
            attribute_name_.c_str(), interval_bounds_[i],
            class_names_[interval_class_[i]].c_str());
      } else {
        out += core::StrFormat(
            "  %s > %.6g -> %s\n", attribute_name_.c_str(), previous,
            class_names_[interval_class_[i]].c_str());
      }
      if (i < interval_bounds_.size()) previous = interval_bounds_[i];
    }
  }
  return out;
}

}  // namespace dmt::classify
