// 1R ("one rule") classifier (Holte, Machine Learning 1993): classify on a
// single attribute — the one whose one-level rule has the lowest training
// error. A classic sanity baseline: "very simple classification rules
// perform well on most commonly used datasets".
#ifndef DMT_CLASSIFY_ONE_R_H_
#define DMT_CLASSIFY_ONE_R_H_

#include <string>
#include <vector>

#include "classify/classifier.h"

namespace dmt::classify {

/// 1R hyper-parameters.
struct OneROptions {
  /// Minimum rows per numeric interval except the last (Holte's SMALL
  /// parameter; avoids overfitting numeric attributes with tiny buckets).
  size_t min_bucket = 6;

  core::Status Validate() const;
};

/// Single-attribute rule classifier.
class OneRClassifier : public Classifier {
 public:
  explicit OneRClassifier(const OneROptions& options = {})
      : options_(options) {}

  core::Status Fit(const core::Dataset& train) override;
  core::Result<std::vector<uint32_t>> PredictAll(
      const core::Dataset& test) const override;

  /// Index of the attribute the learned rule tests.
  size_t chosen_attribute() const { return chosen_attribute_; }
  /// Training error rate of the learned rule.
  double training_error() const { return training_error_; }
  /// "attr = v -> class" / "attr <= t -> class" rendering of the rule.
  std::string RuleToString() const;

 private:
  OneROptions options_;
  bool fitted_ = false;
  size_t chosen_attribute_ = 0;
  double training_error_ = 1.0;
  core::AttributeType attribute_type_ = core::AttributeType::kNumeric;
  /// Categorical rule: predicted class per category code.
  std::vector<uint32_t> category_class_;
  /// Numeric rule: ascending interval upper bounds; interval i predicts
  /// interval_class_[i]; the last class covers everything above.
  std::vector<double> interval_bounds_;
  std::vector<uint32_t> interval_class_;
  uint32_t fallback_class_ = 0;
  std::string attribute_name_;
  std::vector<std::string> category_names_;
  std::vector<std::string> class_names_;
};

}  // namespace dmt::classify

#endif  // DMT_CLASSIFY_ONE_R_H_
