// Naive Bayes over mixed tabular data: Gaussian likelihoods for numeric
// attributes, Laplace-smoothed multinomial likelihoods for categorical ones.
#ifndef DMT_CLASSIFY_NAIVE_BAYES_H_
#define DMT_CLASSIFY_NAIVE_BAYES_H_

#include <vector>

#include "classify/classifier.h"

namespace dmt::classify {

/// Naive Bayes hyper-parameters.
struct NaiveBayesOptions {
  /// Laplace smoothing pseudo-count for categorical likelihoods.
  double laplace_alpha = 1.0;
  /// Floor on per-class Gaussian variances (guards zero-variance columns).
  double variance_floor = 1e-9;
};

/// Mixed Gaussian/categorical naive Bayes classifier.
class NaiveBayesClassifier : public Classifier {
 public:
  explicit NaiveBayesClassifier(const NaiveBayesOptions& options = {})
      : options_(options) {}

  core::Status Fit(const core::Dataset& train) override;
  core::Result<std::vector<uint32_t>> PredictAll(
      const core::Dataset& test) const override;

  /// Per-class log posterior (up to a constant) for one row; exposed for
  /// tests and probability-style inspection.
  core::Result<std::vector<double>> LogScores(const core::Dataset& data,
                                              size_t row) const;

 private:
  struct NumericStats {
    double mean = 0.0;
    double variance = 1.0;
  };

  /// True when every row of `test` would pass LogScores validation:
  /// schema matches and, per categorical column, the observed codes are
  /// a bitmask subset of the training dictionary. Lets PredictAll score
  /// without per-row checks.
  bool ValidForFastPath(const core::Dataset& test) const;

  NaiveBayesOptions options_;
  bool fitted_ = false;
  size_t num_attributes_ = 0;
  size_t num_classes_ = 0;
  std::vector<double> log_priors_;
  /// [attribute][class] for numeric attributes (empty slots otherwise).
  std::vector<std::vector<NumericStats>> numeric_stats_;
  /// [attribute][class][category] log likelihoods.
  std::vector<std::vector<std::vector<double>>> categorical_log_likelihood_;
  std::vector<core::AttributeType> attribute_types_;
};

}  // namespace dmt::classify

#endif  // DMT_CLASSIFY_NAIVE_BAYES_H_
