// Lloyd's k-means with Forgy / k-means++ seeding and empty-cluster repair.
#ifndef DMT_CLUSTER_KMEANS_H_
#define DMT_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "core/point_set.h"
#include "core/status.h"

namespace dmt::cluster {

/// Seeding strategy.
enum class KMeansInit {
  /// k distinct random points as initial centers (Forgy).
  kForgy,
  /// D^2-weighted seeding (Arthur & Vassilvitskii, k-means++).
  kPlusPlus,
};

/// k-means hyper-parameters.
struct KMeansOptions {
  size_t k = 8;
  KMeansInit init = KMeansInit::kPlusPlus;
  size_t max_iterations = 100;
  /// Stop when the SSE improvement falls below this relative amount.
  double tolerance = 1e-6;
  uint64_t seed = 1;
  /// Worker threads for the assignment and seeding distance loops; 0 or 1
  /// = serial. Parallel runs are bit-identical to serial runs: per-point
  /// distances are data-parallel and every floating-point reduction stays
  /// on the calling thread in point-index order.
  size_t num_threads = 0;

  core::Status Validate() const;
};

/// Hard-assignment clustering output.
struct ClusteringResult {
  /// Cluster index per input point.
  std::vector<uint32_t> assignments;
  /// Final cluster centers (k points).
  core::PointSet centers;
  /// Sum of squared distances of points to their centers.
  double sse = 0.0;
  /// Lloyd iterations executed.
  size_t iterations = 0;
};

/// Runs k-means on `points`. Fails when k exceeds the number of points.
core::Result<ClusteringResult> KMeans(const core::PointSet& points,
                                      const KMeansOptions& options);

/// Weighted variant (per-point multiplicities); used by BIRCH's global
/// phase over CF-entry centroids.
core::Result<ClusteringResult> WeightedKMeans(
    const core::PointSet& points, const std::vector<double>& weights,
    const KMeansOptions& options);

/// Recomputes the SSE of an assignment against given centers.
double ComputeSse(const core::PointSet& points,
                  const std::vector<uint32_t>& assignments,
                  const core::PointSet& centers);

}  // namespace dmt::cluster

#endif  // DMT_CLUSTER_KMEANS_H_
