// Lloyd's k-means with Forgy / k-means++ seeding, empty-cluster repair,
// and triangle-inequality pruned assignment (Hamerly 2010 / Elkan 2003)
// that is bit-identical to the plain Lloyd scan.
#ifndef DMT_CLUSTER_KMEANS_H_
#define DMT_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "core/point_set.h"
#include "core/status.h"

namespace dmt::cluster {

/// Seeding strategy.
enum class KMeansInit {
  /// k distinct random points as initial centers (Forgy).
  kForgy,
  /// D^2-weighted seeding (Arthur & Vassilvitskii, k-means++).
  kPlusPlus,
};

/// k-means hyper-parameters.
struct KMeansOptions {
  /// Assignment-step engine. All three produce bit-identical
  /// assignments, SSE, iteration counts, and centers for the same options
  /// (see DESIGN.md "Bound-pruned k-means assignment"); they differ only
  /// in how many point-center distances they evaluate.
  enum class Assignment {
    /// Plain Lloyd scan: k distances per point per iteration.
    kLloyd,
    /// One lower bound per point on the distance to the second-closest
    /// center (Hamerly 2010): one exact distance per point per iteration
    /// plus full rescans only where the bound fails. O(n) extra memory.
    kHamerly,
    /// Per-center lower bounds plus the inter-center distance matrix
    /// (Elkan 2003): prunes individual centers inside the rescan.
    /// O(n*k) extra memory; best at large k.
    kElkan,
  };

  size_t k = 8;
  KMeansInit init = KMeansInit::kPlusPlus;
  Assignment assignment = Assignment::kLloyd;
  size_t max_iterations = 100;
  /// Stop when the SSE improvement falls below this relative amount.
  double tolerance = 1e-6;
  uint64_t seed = 1;
  /// Worker threads for the assignment and seeding distance loops; 0 or 1
  /// = serial. Parallel runs are bit-identical to serial runs: per-point
  /// distances and bound maintenance are data-parallel and every
  /// floating-point reduction stays on the calling thread in point-index
  /// order.
  size_t num_threads = 0;

  core::Status Validate() const;
};

/// Hard-assignment clustering output.
struct ClusteringResult {
  /// Cluster index per input point.
  std::vector<uint32_t> assignments;
  /// Final cluster centers (k points).
  core::PointSet centers;
  /// Sum of squared distances of points to their centers.
  double sse = 0.0;
  /// Lloyd iterations executed.
  size_t iterations = 0;
  /// Point-center and center-center distance evaluations performed,
  /// including seeding. The pruned assignment engines exist to shrink
  /// this; benches report it as the pruning rate.
  uint64_t distance_computations = 0;
};

/// Runs k-means on `points`. Fails when k exceeds the number of points.
core::Result<ClusteringResult> KMeans(const core::PointSet& points,
                                      const KMeansOptions& options);

/// Weighted variant (per-point multiplicities); used by BIRCH's global
/// phase over CF-entry centroids. Weights scale only the SSE reduction
/// and the center update, so the pruned assignment engines apply
/// unchanged.
core::Result<ClusteringResult> WeightedKMeans(
    const core::PointSet& points, const std::vector<double>& weights,
    const KMeansOptions& options);

/// Recomputes the SSE of an assignment against given centers.
double ComputeSse(const core::PointSet& points,
                  const std::vector<uint32_t>& assignments,
                  const core::PointSet& centers);

}  // namespace dmt::cluster

#endif  // DMT_CLUSTER_KMEANS_H_
