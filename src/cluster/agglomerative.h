// Agglomerative hierarchical clustering via the nearest-neighbour-chain
// algorithm (O(n^2) time) with Lance–Williams linkage updates.
#ifndef DMT_CLUSTER_AGGLOMERATIVE_H_
#define DMT_CLUSTER_AGGLOMERATIVE_H_

#include <cstdint>
#include <vector>

#include "core/point_set.h"
#include "core/status.h"

namespace dmt::cluster {

/// Cluster-distance definition.
enum class Linkage {
  kSingle,
  kComplete,
  kAverage,
  kWard,
};

/// One dendrogram merge step: clusters `a` and `b` (ids in the union-find
/// numbering: leaves are 0..n-1, the i-th merge creates id n+i) merge at
/// `height`.
struct MergeStep {
  uint32_t a = 0;
  uint32_t b = 0;
  double height = 0.0;
  uint32_t size = 0;  // points in the merged cluster
};

/// The full merge tree of a dataset.
class Dendrogram {
 public:
  Dendrogram(size_t num_points, std::vector<MergeStep> merges)
      : num_points_(num_points), merges_(std::move(merges)) {}

  size_t num_points() const { return num_points_; }
  const std::vector<MergeStep>& merges() const { return merges_; }

  /// Flat clustering with exactly k clusters (undo the last k-1 merges).
  /// Labels are dense in [0, k).
  core::Result<std::vector<uint32_t>> CutAtK(size_t k) const;

 private:
  size_t num_points_;
  std::vector<MergeStep> merges_;
};

/// Builds the dendrogram of `points` under the given linkage.
/// Ward heights are reported as the increase in within-cluster variance
/// (squared-distance scale); other linkages use Euclidean distance.
core::Result<Dendrogram> AgglomerativeCluster(const core::PointSet& points,
                                              Linkage linkage);

}  // namespace dmt::cluster

#endif  // DMT_CLUSTER_AGGLOMERATIVE_H_
