#include "cluster/dbscan.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>

#include "core/distance.h"
#include "core/kd_tree.h"
#include "core/kernels/kernels.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::cluster {

using core::PointSet;
using core::Result;
using core::Status;

Status DbscanOptions::Validate() const {
  if (!(eps > 0.0)) return Status::InvalidArgument("eps must be > 0");
  if (min_points == 0) {
    return Status::InvalidArgument("min_points must be >= 1");
  }
  return Status::OK();
}

namespace {

/// Block size of the batched brute-force scan: big enough to amortize
/// kernel dispatch, small enough for the distance scratch to sit in L1.
constexpr size_t kRegionQueryBlock = 256;

/// Brute-force region query over the staged SoA point block: distances
/// to every point in blocks of kRegionQueryBlock through the batched
/// SIMD kernel, filtered in ascending index order (so the neighbour
/// list matches the pairwise scalar scan element for element).
std::vector<uint32_t> BruteRegionQuery(const PointSet& points,
                                       const core::kernels::SoaBlock& soa,
                                       size_t center, double eps_sq) {
  std::vector<uint32_t> out;
  auto q = points.point(center);
  const size_t n = points.size();
  double dist[kRegionQueryBlock];
  for (size_t block = 0; block < n; block += kRegionQueryBlock) {
    const size_t len = std::min(kRegionQueryBlock, n - block);
    core::kernels::Ops().squared_euclidean_to_many(
        q.data(), soa.data() + block, n, len, points.dim(), dist);
    for (size_t j = 0; j < len; ++j) {
      if (dist[j] <= eps_sq) out.push_back(static_cast<uint32_t>(block + j));
    }
  }
  return out;
}

}  // namespace

Result<DbscanResult> Dbscan(const PointSet& points,
                            const DbscanOptions& options) {
  DMT_RETURN_NOT_OK(options.Validate());
  DbscanResult result;
  result.labels.assign(points.size(), DbscanResult::kNoise);
  if (points.empty()) return result;

  obs::Counter queries_counter("cluster/dbscan/region_queries");
  obs::Counter neighbors_counter("cluster/dbscan/neighbors_returned");
  obs::Span run_span("cluster/dbscan/run");
  run_span.AttachCounter(queries_counter);
  run_span.AttachCounter(neighbors_counter);

  std::unique_ptr<core::KdTree> index;
  core::kernels::SoaBlock soa;
  if (options.neighbors == DbscanOptions::Neighbors::kKdTree) {
    obs::Span index_span("cluster/dbscan/index_build");
    index = std::make_unique<core::KdTree>(points);
  } else {
    // Brute mode scans every point per query: stage the whole set
    // dimension-major once so the batched distance kernel does the
    // scanning.
    soa.Assign(points.data().data(), points.size(), points.dim());
  }
  const double eps_sq = options.eps * options.eps;
  auto query_point = [&](size_t center) {
    return index != nullptr
               ? index->RadiusSearch(points.point(center), options.eps)
               : BruteRegionQuery(points, soa, center, eps_sq);
  };

  // Parallel mode: batch all neighbourhood queries up front. Each query
  // depends only on the point set, so the serial expansion below consumes
  // identical neighbour lists and produces identical labels; the sweep
  // queries each point at most once, so handing the list out by move is
  // safe.
  const core::ParallelContext ctx(options.num_threads);
  std::vector<std::vector<uint32_t>> batched;
  if (ctx.parallel()) {
    obs::Span batch_span("cluster/dbscan/batch_queries");
    batched.resize(points.size());
    core::ParallelForChunks(
        ctx.pool(), 0, points.size(), [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) batched[i] = query_point(i);
        });
  }
  // Counted at the consumption site, on the orchestrating thread: the
  // parallel mode prefetches every neighbourhood but the serial sweep
  // queries lazily, so counting consumed queries is what keeps the totals
  // identical at every thread count.
  auto region_query = [&](size_t center) {
    queries_counter.Increment();
    std::vector<uint32_t> neighbours = batched.empty()
                                           ? query_point(center)
                                           : std::move(batched[center]);
    neighbors_counter.Add(neighbours.size());
    return neighbours;
  };

  obs::Span expand_span("cluster/dbscan/expand");
  std::vector<bool> visited(points.size(), false);
  int32_t cluster_id = -1;
  std::deque<uint32_t> frontier;
  for (size_t seed = 0; seed < points.size(); ++seed) {
    if (visited[seed]) continue;
    visited[seed] = true;
    std::vector<uint32_t> neighbours = region_query(seed);
    if (neighbours.size() < options.min_points) continue;  // stays noise

    // Grow a new cluster by BFS over density-reachable points.
    ++cluster_id;
    result.labels[seed] = cluster_id;
    frontier.assign(neighbours.begin(), neighbours.end());
    while (!frontier.empty()) {
      uint32_t current = frontier.front();
      frontier.pop_front();
      if (result.labels[current] == DbscanResult::kNoise) {
        // Border or core point reachable from the cluster.
        result.labels[current] = cluster_id;
      }
      if (visited[current]) continue;
      visited[current] = true;
      std::vector<uint32_t> expansion = region_query(current);
      if (expansion.size() >= options.min_points) {
        // Core point: its neighbourhood joins the frontier.
        for (uint32_t next : expansion) {
          if (!visited[next] ||
              result.labels[next] == DbscanResult::kNoise) {
            frontier.push_back(next);
          }
        }
      }
    }
  }
  result.num_clusters = static_cast<size_t>(cluster_id + 1);
  return result;
}

core::Result<std::vector<double>> SortedKDistances(const PointSet& points,
                                                   size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (points.size() <= k) {
    return Status::InvalidArgument(
        "need more than k points to compute k-distances");
  }
  core::KdTree index(points);
  std::vector<double> distances;
  distances.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    // k + 1 neighbours: the nearest is the point itself at distance 0.
    auto neighbours = index.KNearest(points.point(i), k + 1);
    distances.push_back(std::sqrt(neighbours.back().first));
  }
  std::sort(distances.begin(), distances.end(), std::greater<>());
  return distances;
}

}  // namespace dmt::cluster
