#include "cluster/clarans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "core/distance.h"
#include "core/rng.h"

namespace dmt::cluster {

using core::PointSet;
using core::Result;
using core::Rng;
using core::Status;

Status ClaransOptions::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (num_local == 0) {
    return Status::InvalidArgument("num_local must be >= 1");
  }
  return Status::OK();
}

namespace {

/// Current solution: medoid set plus per-point nearest / second-nearest
/// medoid bookkeeping for O(n) swap evaluation.
struct Solution {
  std::vector<uint32_t> medoids;      // point indices
  std::vector<uint32_t> nearest;      // medoid slot per point
  std::vector<double> nearest_dist;   // distance to nearest medoid
  std::vector<double> second_dist;    // distance to second-nearest
  double cost = 0.0;

  void Recompute(const PointSet& points) {
    const size_t n = points.size();
    nearest.assign(n, 0);
    nearest_dist.assign(n, 0.0);
    second_dist.assign(n, 0.0);
    cost = 0.0;
    for (size_t j = 0; j < n; ++j) {
      double best = std::numeric_limits<double>::infinity();
      double second = std::numeric_limits<double>::infinity();
      uint32_t best_slot = 0;
      for (uint32_t slot = 0; slot < medoids.size(); ++slot) {
        double d = core::EuclideanDistance(points.point(j),
                                           points.point(medoids[slot]));
        if (d < best) {
          second = best;
          best = d;
          best_slot = slot;
        } else if (d < second) {
          second = d;
        }
      }
      nearest[j] = best_slot;
      nearest_dist[j] = best;
      second_dist[j] = medoids.size() > 1 ? second : best;
      cost += best;
    }
  }

  /// Cost change of replacing the medoid in `slot` with point `candidate`
  /// (PAM's T_ih differential; O(n)).
  double SwapDelta(const PointSet& points, uint32_t slot,
                   uint32_t candidate) const {
    double delta = 0.0;
    for (size_t j = 0; j < points.size(); ++j) {
      double d_new = core::EuclideanDistance(points.point(j),
                                             points.point(candidate));
      if (nearest[j] == slot) {
        // Point loses its medoid: goes to the new medoid or its old
        // second choice, whichever is closer.
        delta += std::min(d_new, second_dist[j]) - nearest_dist[j];
      } else if (d_new < nearest_dist[j]) {
        delta += d_new - nearest_dist[j];
      }
    }
    return delta;
  }
};

}  // namespace

Result<MedoidResult> Clarans(const PointSet& points,
                             const ClaransOptions& options) {
  DMT_RETURN_NOT_OK(options.Validate());
  const size_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }
  if (options.k > n) {
    return Status::InvalidArgument("k exceeds the number of points");
  }
  Rng rng(options.seed);

  size_t max_neighbors = options.max_neighbors;
  if (max_neighbors == 0) {
    double fraction =
        0.0125 * static_cast<double>(options.k) *
        static_cast<double>(n - options.k);
    max_neighbors = std::max<size_t>(
        250, static_cast<size_t>(std::llround(fraction)));
  }

  MedoidResult best;
  best.total_cost = std::numeric_limits<double>::infinity();
  std::vector<bool> is_medoid(n, false);

  for (size_t restart = 0; restart < options.num_local; ++restart) {
    Solution current;
    auto picks = rng.SampleWithoutReplacement(n, options.k);
    current.medoids.assign(picks.begin(), picks.end());
    current.Recompute(points);
    std::fill(is_medoid.begin(), is_medoid.end(), false);
    for (uint32_t m : current.medoids) is_medoid[m] = true;

    size_t failures = 0;
    while (failures < max_neighbors && options.k < n) {
      uint32_t slot = static_cast<uint32_t>(rng.UniformU64(options.k));
      uint32_t candidate;
      do {
        candidate = static_cast<uint32_t>(rng.UniformU64(n));
      } while (is_medoid[candidate]);
      double delta = current.SwapDelta(points, slot, candidate);
      if (delta < -1e-12) {
        is_medoid[current.medoids[slot]] = false;
        is_medoid[candidate] = true;
        current.medoids[slot] = candidate;
        current.Recompute(points);
        ++best.accepted_swaps;
        failures = 0;
      } else {
        ++failures;
      }
    }

    if (current.cost < best.total_cost) {
      best.total_cost = current.cost;
      best.medoids = current.medoids;
      best.assignments = current.nearest;
    }
  }
  return best;
}

}  // namespace dmt::cluster
