// DBSCAN density-based clustering (Ester, Kriegel, Sander & Xu, KDD'96).
#ifndef DMT_CLUSTER_DBSCAN_H_
#define DMT_CLUSTER_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "core/point_set.h"
#include "core/status.h"

namespace dmt::cluster {

/// DBSCAN hyper-parameters.
struct DbscanOptions {
  /// Neighbourhood radius (Euclidean).
  double eps = 0.5;
  /// Minimum neighbourhood size (including the point itself) for a core
  /// point.
  size_t min_points = 5;
  /// Region-query backend: kd-tree index or O(n^2) scan (the ablation
  /// baseline).
  enum class Neighbors { kKdTree, kBruteForce };
  Neighbors neighbors = Neighbors::kKdTree;
  /// Worker threads for region queries; 0 or 1 = serial. Parallel mode
  /// batches every point's neighbourhood query up front (queries are
  /// independent of traversal order, so labels are bit-identical to the
  /// serial sweep) and then runs the cluster expansion serially; it trades
  /// O(sum of neighbourhood sizes) memory for the speedup.
  size_t num_threads = 0;

  core::Status Validate() const;
};

/// DBSCAN output.
struct DbscanResult {
  /// Cluster id per point; kNoise (-1) marks noise.
  std::vector<int32_t> labels;
  size_t num_clusters = 0;

  static constexpr int32_t kNoise = -1;
};

/// Clusters `points` with DBSCAN. Deterministic: points are seeded in index
/// order, so cluster ids are stable.
core::Result<DbscanResult> Dbscan(const core::PointSet& points,
                                  const DbscanOptions& options);

/// The sorted k-dist graph of KDD'96 §4.2: each point's distance to its
/// k-th nearest neighbour (excluding itself), descending. The "valley"
/// (first sharp drop) is the paper's heuristic for eps at
/// min_points = k + 1; the paper recommends k = 4 for 2-d data.
core::Result<std::vector<double>> SortedKDistances(
    const core::PointSet& points, size_t k);

}  // namespace dmt::cluster

#endif  // DMT_CLUSTER_DBSCAN_H_
