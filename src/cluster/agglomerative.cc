#include "cluster/agglomerative.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/check.h"
#include "core/distance.h"
#include "core/string_util.h"

namespace dmt::cluster {

using core::PointSet;
using core::Result;
using core::Status;

namespace {

/// Hard cap on n: the method keeps a dense n x n distance matrix
/// (8 bytes per cell -> 128 MiB at the cap).
constexpr size_t kMaxPoints = 4096;

/// Lance–Williams update of d(k, i∪j).
double LanceWilliams(Linkage linkage, double d_ki, double d_kj, double d_ij,
                     double n_i, double n_j, double n_k) {
  switch (linkage) {
    case Linkage::kSingle:
      return 0.5 * d_ki + 0.5 * d_kj - 0.5 * std::fabs(d_ki - d_kj);
    case Linkage::kComplete:
      return 0.5 * d_ki + 0.5 * d_kj + 0.5 * std::fabs(d_ki - d_kj);
    case Linkage::kAverage:
      return (n_i * d_ki + n_j * d_kj) / (n_i + n_j);
    case Linkage::kWard: {
      double total = n_i + n_j + n_k;
      return ((n_i + n_k) * d_ki + (n_j + n_k) * d_kj - n_k * d_ij) / total;
    }
  }
  return 0.0;
}

struct RawMerge {
  uint32_t rep_a = 0;  // a leaf inside each merged cluster
  uint32_t rep_b = 0;
  double height = 0.0;
  uint32_t size = 0;
};

/// Simple union-find over leaf indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

Result<std::vector<uint32_t>> Dendrogram::CutAtK(size_t k) const {
  if (k == 0 || k > num_points_) {
    return Status::InvalidArgument(core::StrFormat(
        "cannot cut %zu points into %zu clusters", num_points_, k));
  }
  UnionFind uf(num_points_);
  size_t merges_to_apply = num_points_ - k;
  DMT_CHECK_LE(merges_to_apply, merges_.size());
  // merges_ reference dendrogram ids; map id -> a representative leaf.
  std::vector<uint32_t> rep(num_points_ + merges_.size());
  std::iota(rep.begin(), rep.begin() + static_cast<std::ptrdiff_t>(
                                            num_points_),
            0u);
  for (size_t m = 0; m < merges_.size(); ++m) {
    rep[num_points_ + m] = rep[merges_[m].a];
    if (m < merges_to_apply) {
      uf.Union(rep[merges_[m].a], rep[merges_[m].b]);
    }
  }
  std::vector<uint32_t> labels(num_points_);
  std::vector<int32_t> label_of_root(num_points_, -1);
  uint32_t next_label = 0;
  for (uint32_t i = 0; i < num_points_; ++i) {
    uint32_t root = uf.Find(i);
    if (label_of_root[root] < 0) {
      label_of_root[root] = static_cast<int32_t>(next_label++);
    }
    labels[i] = static_cast<uint32_t>(label_of_root[root]);
  }
  DMT_CHECK_EQ(next_label, k);
  return labels;
}

Result<Dendrogram> AgglomerativeCluster(const PointSet& points,
                                        Linkage linkage) {
  const size_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }
  if (n > kMaxPoints) {
    return Status::InvalidArgument(core::StrFormat(
        "agglomerative clustering is limited to %zu points (got %zu)",
        kMaxPoints, n));
  }
  if (n == 1) return Dendrogram(1, {});

  // Dense distance matrix (squared scale for Ward).
  const bool squared = linkage == Linkage::kWard;
  std::vector<double> dist(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d =
          core::SquaredEuclideanDistance(points.point(i), points.point(j));
      if (!squared) d = std::sqrt(d);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }

  std::vector<bool> active(n, true);
  std::vector<double> cluster_size(n, 1.0);
  std::vector<RawMerge> raw_merges;
  raw_merges.reserve(n - 1);
  std::vector<uint32_t> chain;
  chain.reserve(n);

  size_t remaining = n;
  size_t scan_start = 0;
  while (remaining > 1) {
    if (chain.empty()) {
      while (!active[scan_start]) ++scan_start;
      chain.push_back(static_cast<uint32_t>(scan_start));
    }
    uint32_t top = chain.back();
    // Nearest active neighbour; prefer the chain predecessor on ties so
    // reciprocity is detected.
    uint32_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : top;
    uint32_t nearest = top;
    double nearest_d = std::numeric_limits<double>::infinity();
    for (uint32_t c = 0; c < n; ++c) {
      if (!active[c] || c == top) continue;
      double d = dist[top * n + c];
      if (d < nearest_d || (d == nearest_d && c == prev)) {
        nearest_d = d;
        nearest = c;
      }
    }
    if (chain.size() >= 2 && nearest == prev) {
      // Reciprocal nearest neighbours: merge `top` into `prev`.
      chain.pop_back();
      chain.pop_back();
      uint32_t a = prev, b = top;
      double d_ab = dist[a * n + b];
      for (uint32_t k = 0; k < n; ++k) {
        if (!active[k] || k == a || k == b) continue;
        double updated =
            LanceWilliams(linkage, dist[a * n + k], dist[b * n + k], d_ab,
                          cluster_size[a], cluster_size[b],
                          cluster_size[k]);
        dist[a * n + k] = updated;
        dist[k * n + a] = updated;
      }
      raw_merges.push_back(
          {a, b, d_ab,
           static_cast<uint32_t>(cluster_size[a] + cluster_size[b])});
      cluster_size[a] += cluster_size[b];
      active[b] = false;
      --remaining;
    } else {
      chain.push_back(nearest);
    }
  }

  // Sort merges by height (stable for deterministic ties) and relabel into
  // dendrogram ids via union-find.
  std::stable_sort(raw_merges.begin(), raw_merges.end(),
                   [](const RawMerge& x, const RawMerge& y) {
                     return x.height < y.height;
                   });
  UnionFind uf(n);
  // Map each union-find root to its current dendrogram id.
  std::vector<uint32_t> cluster_id(n);
  std::iota(cluster_id.begin(), cluster_id.end(), 0u);
  std::vector<MergeStep> merges;
  merges.reserve(raw_merges.size());
  for (size_t m = 0; m < raw_merges.size(); ++m) {
    uint32_t root_a = uf.Find(raw_merges[m].rep_a);
    uint32_t root_b = uf.Find(raw_merges[m].rep_b);
    MergeStep step;
    step.a = cluster_id[root_a];
    step.b = cluster_id[root_b];
    step.height = raw_merges[m].height;
    step.size = raw_merges[m].size;
    if (step.a > step.b) std::swap(step.a, step.b);
    merges.push_back(step);
    uf.Union(root_a, root_b);
    cluster_id[uf.Find(root_a)] = static_cast<uint32_t>(n + m);
  }
  return Dendrogram(n, std::move(merges));
}

}  // namespace dmt::cluster
