#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "core/distance.h"
#include "core/parallel.h"
#include "core/rng.h"

namespace dmt::cluster {

using core::PointSet;
using core::Result;
using core::Rng;
using core::Status;

Status KMeansOptions::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be >= 0");
  }
  return Status::OK();
}

double ComputeSse(const PointSet& points,
                  const std::vector<uint32_t>& assignments,
                  const PointSet& centers) {
  DMT_CHECK_EQ(points.size(), assignments.size());
  double sse = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    sse += core::SquaredEuclideanDistance(points.point(i),
                                          centers.point(assignments[i]));
  }
  return sse;
}

namespace {

/// Picks initial centers; weights bias both strategies toward heavy points.
PointSet SeedCenters(const PointSet& points,
                     const std::vector<double>& weights, size_t k,
                     KMeansInit init, Rng& rng,
                     const core::ParallelContext& ctx) {
  PointSet centers(points.dim());
  if (init == KMeansInit::kForgy) {
    auto picks = rng.SampleWithoutReplacement(points.size(), k);
    for (size_t index : picks) centers.Add(points.point(index));
    return centers;
  }
  // k-means++: first center weight-proportional, then D^2-weighted.
  size_t first = rng.Categorical(weights);
  centers.Add(points.point(first));
  std::vector<double> min_dist_sq(points.size(),
                                  std::numeric_limits<double>::infinity());
  std::vector<double> sampling_weight(points.size(), 0.0);
  while (centers.size() < k) {
    auto latest = centers.point(centers.size() - 1);
    core::ParallelForChunks(
        ctx.pool(), 0, points.size(), [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            double d =
                core::SquaredEuclideanDistance(points.point(i), latest);
            if (d < min_dist_sq[i]) min_dist_sq[i] = d;
            sampling_weight[i] = min_dist_sq[i] * weights[i];
          }
        });
    double total = 0.0;
    for (double w : sampling_weight) total += w;
    size_t next;
    if (total <= 0.0) {
      // All remaining points coincide with centers; any point will do.
      next = rng.UniformU64(points.size());
    } else {
      next = rng.Categorical(sampling_weight);
    }
    centers.Add(points.point(next));
  }
  return centers;
}

Result<ClusteringResult> Run(const PointSet& points,
                             const std::vector<double>& weights,
                             const KMeansOptions& options) {
  DMT_RETURN_NOT_OK(options.Validate());
  if (points.empty()) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }
  if (options.k > points.size()) {
    return Status::InvalidArgument("k exceeds the number of points");
  }
  const size_t n = points.size();
  const size_t dim = points.dim();
  Rng rng(options.seed);
  const core::ParallelContext ctx(options.num_threads);

  ClusteringResult result;
  result.centers =
      SeedCenters(points, weights, options.k, options.init, rng, ctx);
  result.assignments.assign(n, 0);

  // Assignment step: per-point nearest centers are data-parallel; the SSE
  // reduction runs on this thread in index order so parallel runs are
  // bit-identical to serial ones.
  std::vector<double> dist_sq(n, 0.0);
  auto assign_points = [&]() {
    core::ParallelForChunks(
        ctx.pool(), 0, n, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            double best_d = std::numeric_limits<double>::infinity();
            uint32_t best_c = 0;
            auto p = points.point(i);
            for (uint32_t c = 0; c < options.k; ++c) {
              double d = core::SquaredEuclideanDistance(
                  p, result.centers.point(c));
              if (d < best_d) {
                best_d = d;
                best_c = c;
              }
            }
            result.assignments[i] = best_c;
            dist_sq[i] = best_d;
          }
        });
    double sse = 0.0;
    for (size_t i = 0; i < n; ++i) sse += dist_sq[i] * weights[i];
    return sse;
  };

  std::vector<double> sums(options.k * dim, 0.0);
  std::vector<double> cluster_weight(options.k, 0.0);
  double previous_sse = std::numeric_limits<double>::infinity();

  for (size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    result.iterations = iteration + 1;
    result.sse = assign_points();

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(cluster_weight.begin(), cluster_weight.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      auto p = points.point(i);
      double w = weights[i];
      double* target = sums.data() + result.assignments[i] * dim;
      for (size_t d = 0; d < dim; ++d) target[d] += w * p[d];
      cluster_weight[result.assignments[i]] += w;
    }
    for (uint32_t c = 0; c < options.k; ++c) {
      auto center = result.centers.mutable_point(c);
      if (cluster_weight[c] > 0.0) {
        const double* source = sums.data() + c * dim;
        for (size_t d = 0; d < dim; ++d) {
          center[d] = source[d] / cluster_weight[c];
        }
      } else {
        // Empty cluster: restart it at the point farthest from its center.
        size_t farthest = 0;
        double farthest_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          double d = core::SquaredEuclideanDistance(
              points.point(i),
              result.centers.point(result.assignments[i]));
          if (d > farthest_d) {
            farthest_d = d;
            farthest = i;
          }
        }
        auto p = points.point(farthest);
        std::copy(p.begin(), p.end(), center.begin());
      }
    }

    if (std::isfinite(previous_sse) &&
        previous_sse - result.sse <=
            options.tolerance * std::max(previous_sse, 1e-30)) {
      break;
    }
    previous_sse = result.sse;
  }

  // Final assignment against the last centers (keeps assignments and
  // centers mutually consistent).
  result.sse = assign_points();
  return result;
}

}  // namespace

Result<ClusteringResult> KMeans(const PointSet& points,
                                const KMeansOptions& options) {
  std::vector<double> weights(points.size(), 1.0);
  return Run(points, weights, options);
}

Result<ClusteringResult> WeightedKMeans(const PointSet& points,
                                        const std::vector<double>& weights,
                                        const KMeansOptions& options) {
  if (weights.size() != points.size()) {
    return Status::InvalidArgument(
        "weights must match the number of points");
  }
  for (double w : weights) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument("weights must be positive");
    }
  }
  return Run(points, weights, options);
}

}  // namespace dmt::cluster
