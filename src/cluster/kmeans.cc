#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "core/distance.h"
#include "core/kernels/kernels.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::cluster {

using core::PointSet;
using core::Result;
using core::Rng;
using core::Status;

Status KMeansOptions::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be >= 0");
  }
  return Status::OK();
}

double ComputeSse(const PointSet& points,
                  const std::vector<uint32_t>& assignments,
                  const PointSet& centers) {
  DMT_CHECK_EQ(points.size(), assignments.size());
  double sse = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    sse += core::SquaredEuclideanDistance(points.point(i),
                                          centers.point(assignments[i]));
  }
  return sse;
}

namespace {

using Assignment = KMeansOptions::Assignment;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Relative safety margin on every pruning test and bound update. The
// triangle-inequality bounds are maintained in floating point, so a few
// ulps of rounding could otherwise let a bound claim slightly more than
// the truth and skip a center the Lloyd scan would pick on a near-exact
// tie. A 1e-10 relative margin dwarfs the achievable rounding error while
// costing a negligible amount of pruning, so pruned runs stay
// bit-identical to Lloyd.
constexpr double kBoundSlack = 1.0 + 1e-10;

/// Picks initial centers; weights bias both strategies toward heavy
/// points. Distance evaluations are tallied into `distance_computations`.
PointSet SeedCenters(const PointSet& points,
                     const std::vector<double>& weights, size_t k,
                     KMeansInit init, Rng& rng,
                     const core::ParallelContext& ctx,
                     uint64_t* distance_computations) {
  PointSet centers(points.dim());
  if (init == KMeansInit::kForgy) {
    auto picks = rng.SampleWithoutReplacement(points.size(), k);
    for (size_t index : picks) centers.Add(points.point(index));
    return centers;
  }
  // k-means++: first center weight-proportional, then D^2-weighted.
  size_t first = rng.Categorical(weights);
  centers.Add(points.point(first));
  std::vector<double> min_dist_sq(points.size(),
                                  std::numeric_limits<double>::infinity());
  std::vector<double> sampling_weight(points.size(), 0.0);
  while (centers.size() < k) {
    auto latest = centers.point(centers.size() - 1);
    core::ParallelForChunks(
        ctx.pool(), 0, points.size(), [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            double d =
                core::SquaredEuclideanDistance(points.point(i), latest);
            if (d < min_dist_sq[i]) min_dist_sq[i] = d;
            sampling_weight[i] = min_dist_sq[i] * weights[i];
          }
        });
    *distance_computations += points.size();
    double total = 0.0;
    for (double w : sampling_weight) total += w;
    size_t next;
    if (total <= 0.0) {
      // All remaining points coincide with centers; any point will do.
      next = rng.UniformU64(points.size());
    } else {
      next = rng.Categorical(sampling_weight);
    }
    centers.Add(points.point(next));
  }
  return centers;
}

/// Nearest-center assignment with three interchangeable engines. All
/// three follow Lloyd's tie-breaking (strict `<`, lowest center index
/// wins) and produce bit-identical assignments and per-point squared
/// distances; the pruned engines merely skip distance evaluations the
/// triangle inequality proves irrelevant. Every point computes the exact
/// distance to its assigned center each iteration, so the SSE reduction
/// (done by the caller in index order) matches Lloyd to the last bit and
/// the convergence test takes identical branches.
class AssignmentEngine {
 public:
  AssignmentEngine(const PointSet& points, const KMeansOptions& options,
                   const core::ParallelContext& ctx)
      : points_(points),
        options_(options),
        ctx_(ctx),
        n_(points.size()),
        dim_(points.dim()),
        k_(options.k),
        dist_sq_(points.size(), 0.0),
        comps_counter_("cluster/kmeans/distance_computations"),
        comps_delta_(comps_counter_),
        sharded_comps_(comps_counter_, ctx.NumChunks(points.size())) {
    if (options_.assignment != Assignment::kLloyd) {
      half_nearest_.assign(k_, 0.0);
      if (options_.assignment == Assignment::kHamerly) {
        lower_.assign(n_, 0.0);
      } else {
        center_dist_.assign(k_ * k_, 0.0);
        lower_per_center_.assign(n_ * k_, 0.0);
      }
    }
  }

  /// Writes the nearest center of every point into `assignments` and its
  /// exact squared distance into dist_sq().
  void Assign(const PointSet& centers, std::vector<uint32_t>* assignments) {
    // Stage the centers dimension-major for the batched distance kernel
    // (every engine except steady-state Elkan scans whole center blocks;
    // Elkan's per-center pruned probes stay pairwise). The transpose is
    // O(k * dim) against an O(n) assignment pass.
    if (options_.assignment != Assignment::kElkan || !initialized_) {
      centers_soa_.Assign(centers.data().data(), k_, dim_);
    }
    if (options_.assignment == Assignment::kLloyd) {
      AssignLloyd(centers, assignments);
      return;
    }
    if (!initialized_) {
      InitScan(centers, assignments);
      initialized_ = true;
    } else {
      ComputeCenterGeometry(centers);
      if (options_.assignment == Assignment::kHamerly) {
        AssignHamerly(centers, assignments);
      } else {
        AssignElkan(centers, assignments);
      }
    }
    // Ascending chunk order per the determinism contract (integer sums,
    // so any order would match, but the contract keeps it auditable).
    sharded_comps_.Drain();
  }

  /// Folds one update step's center movement into the maintained lower
  /// bounds: a center that moved by delta can shrink any point's distance
  /// to it by at most delta (triangle inequality). Valid for arbitrary
  /// movement, including empty-cluster restarts that teleport a center.
  void ApplyMovement(const PointSet& before, const PointSet& after,
                     const std::vector<uint32_t>& assignments) {
    if (options_.assignment == Assignment::kLloyd || !initialized_) return;
    std::vector<double> delta(k_);
    double max1 = 0.0, max2 = 0.0;
    uint32_t argmax = 0;
    for (uint32_t c = 0; c < k_; ++c) {
      // Inflated a hair so accumulated rounding can never make a
      // maintained bound claim more than the true distance.
      double m = core::EuclideanDistance(before.point(c), after.point(c)) *
                 kBoundSlack;
      delta[c] = m;
      if (m > max1) {
        max2 = max1;
        max1 = m;
        argmax = c;
      } else if (m > max2) {
        max2 = m;
      }
    }
    comps_counter_.Add(k_);
    if (options_.assignment == Assignment::kHamerly) {
      // lower_[i] bounds the distance to every center except the
      // assigned one, so the assigned center's movement never applies;
      // when it happens to be the biggest mover, the runner-up does.
      ctx_.ForEachChunk(n_, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          lower_[i] -= assignments[i] == argmax ? max2 : max1;
        }
      });
    } else {
      ctx_.ForEachChunk(n_, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          double* lb = lower_per_center_.data() + i * k_;
          for (uint32_t c = 0; c < k_; ++c) lb[c] -= delta[c];
        }
      });
    }
  }

  /// Exact squared distance of each point to its assigned center, as of
  /// the latest Assign() call (bit-identical across engines).
  const std::vector<double>& dist_sq() const { return dist_sq_; }

  /// The engine's distance-evaluation tally, read back from the metrics
  /// registry (the counter was snapshotted at engine construction, so
  /// this is the work of this engine alone).
  uint64_t distance_computations() const { return comps_delta_.Value(); }
  void CountExternal(uint64_t comps) { comps_counter_.Add(comps); }

  const obs::Counter& comps_counter() const { return comps_counter_; }

 private:
  /// All k distances of one point via the batched SIMD kernel, into the
  /// caller's scratch. Bit-identical to the pairwise scalar loop (one
  /// candidate per vector lane, scalar instruction order within a lane),
  /// so every downstream comparison takes the branches Lloyd would.
  void DistancesToCenters(std::span<const double> p, double* dist) const {
    core::kernels::Ops().squared_euclidean_to_many(
        p.data(), centers_soa_.data(), k_, k_, dim_, dist);
  }

  void AssignLloyd(const PointSet& /*centers*/,
                   std::vector<uint32_t>* assignments) {
    ctx_.ForEachChunk(n_, [&](size_t, size_t begin, size_t end) {
      std::vector<double> dist(k_);
      for (size_t i = begin; i < end; ++i) {
        DistancesToCenters(points_.point(i), dist.data());
        double best_d = kInf;
        uint32_t best_c = 0;
        for (uint32_t c = 0; c < k_; ++c) {
          if (dist[c] < best_d) {
            best_d = dist[c];
            best_c = c;
          }
        }
        (*assignments)[i] = best_c;
        dist_sq_[i] = best_d;
      }
    });
    comps_counter_.Add(static_cast<uint64_t>(n_) * k_);
  }

  /// First pruned-engine pass: a full Lloyd scan that also captures the
  /// second-closest distance (Hamerly's initial lower bound) or every
  /// center's distance (Elkan's initial per-center bounds).
  void InitScan(const PointSet& /*centers*/,
                std::vector<uint32_t>* assignments) {
    const bool elkan = options_.assignment == Assignment::kElkan;
    ctx_.ForEachChunk(n_, [&](size_t chunk, size_t begin, size_t end) {
      uint64_t comps = 0;
      std::vector<double> dist(k_);
      for (size_t i = begin; i < end; ++i) {
        DistancesToCenters(points_.point(i), dist.data());
        comps += k_;
        double best_d2 = kInf, second_d2 = kInf;
        uint32_t best = 0;
        for (uint32_t c = 0; c < k_; ++c) {
          double d2 = dist[c];
          if (elkan) lower_per_center_[i * k_ + c] = std::sqrt(d2);
          if (d2 < best_d2) {
            second_d2 = best_d2;
            best_d2 = d2;
            best = c;
          } else if (d2 < second_d2) {
            second_d2 = d2;
          }
        }
        (*assignments)[i] = best;
        dist_sq_[i] = best_d2;
        if (!elkan) lower_[i] = std::sqrt(second_d2);
      }
      sharded_comps_.Add(chunk, comps);
    });
  }

  void AssignHamerly(const PointSet& centers,
                     std::vector<uint32_t>* assignments) {
    ctx_.ForEachChunk(n_, [&](size_t chunk, size_t begin, size_t end) {
      uint64_t comps = 0;
      std::vector<double> dist(k_);
      for (size_t i = begin; i < end; ++i) {
        auto p = points_.point(i);
        uint32_t a = (*assignments)[i];
        // Exact distance to the assigned center: needed regardless of
        // pruning so the SSE reduction stays bit-identical to Lloyd.
        double d2 = core::SquaredEuclideanDistance(p, centers.point(a));
        ++comps;
        dist_sq_[i] = d2;
        double d = std::sqrt(d2);
        // Prune when d is strictly below both the maintained bound on
        // every other center and half the distance to the nearest other
        // center: either proves every rival is strictly farther, so the
        // Lloyd scan would keep `a` too (ties cannot survive a strict
        // inequality with slack).
        if (d * kBoundSlack < std::max(lower_[i], half_nearest_[a])) {
          continue;
        }
        // Bound failed: full Lloyd-identical rescan via the batched
        // kernel, which also yields the exact second-closest distance to
        // re-tighten the bound.
        DistancesToCenters(p, dist.data());
        comps += k_;
        double best_d2 = kInf, second_d2 = kInf;
        uint32_t best = 0;
        for (uint32_t c = 0; c < k_; ++c) {
          double dd2 = dist[c];
          if (dd2 < best_d2) {
            second_d2 = best_d2;
            best_d2 = dd2;
            best = c;
          } else if (dd2 < second_d2) {
            second_d2 = dd2;
          }
        }
        (*assignments)[i] = best;
        dist_sq_[i] = best_d2;
        lower_[i] = std::sqrt(second_d2);
      }
      sharded_comps_.Add(chunk, comps);
    });
  }

  void AssignElkan(const PointSet& centers,
                   std::vector<uint32_t>* assignments) {
    ctx_.ForEachChunk(n_, [&](size_t chunk, size_t begin, size_t end) {
      uint64_t comps = 0;
      for (size_t i = begin; i < end; ++i) {
        auto p = points_.point(i);
        uint32_t a = (*assignments)[i];
        double* lb = lower_per_center_.data() + i * k_;
        double d2 = core::SquaredEuclideanDistance(p, centers.point(a));
        ++comps;
        double d = std::sqrt(d2);
        lb[a] = d;
        dist_sq_[i] = d2;
        if (d * kBoundSlack < half_nearest_[a]) continue;
        // Per-center pruned scan. The incumbent distance is always
        // exact, so a skipped center is provably *strictly* farther and
        // an evaluated one is compared exactly like Lloyd's scan, with
        // (distance, index) lexicographic order breaking ties toward the
        // lowest index.
        double best_d2 = d2, best_d = d;
        uint32_t best = a;
        for (uint32_t c = 0; c < k_; ++c) {
          if (c == a) continue;
          if (best_d * kBoundSlack < lb[c]) continue;
          if (best_d * kBoundSlack < 0.5 * center_dist_[best * k_ + c]) {
            continue;
          }
          double dd2 = core::SquaredEuclideanDistance(p, centers.point(c));
          ++comps;
          double dd = std::sqrt(dd2);
          lb[c] = dd;
          if (dd2 < best_d2 || (dd2 == best_d2 && c < best)) {
            best_d2 = dd2;
            best_d = dd;
            best = c;
          }
        }
        (*assignments)[i] = best;
        dist_sq_[i] = best_d2;
      }
      sharded_comps_.Add(chunk, comps);
    });
  }

  /// Half the distance from every center to its nearest other center
  /// (both pruned engines), plus the full inter-center matrix (Elkan).
  void ComputeCenterGeometry(const PointSet& centers) {
    const bool elkan = options_.assignment == Assignment::kElkan;
    std::fill(half_nearest_.begin(), half_nearest_.end(), kInf);
    for (uint32_t a = 0; a + 1 < k_; ++a) {
      for (uint32_t b = a + 1; b < k_; ++b) {
        double d = core::EuclideanDistance(centers.point(a),
                                           centers.point(b));
        if (elkan) {
          center_dist_[a * k_ + b] = d;
          center_dist_[b * k_ + a] = d;
        }
        double half = 0.5 * d;
        if (half < half_nearest_[a]) half_nearest_[a] = half;
        if (half < half_nearest_[b]) half_nearest_[b] = half;
      }
    }
    comps_counter_.Add(static_cast<uint64_t>(k_) * (k_ - 1) / 2);
  }

  const PointSet& points_;
  const KMeansOptions& options_;
  const core::ParallelContext& ctx_;
  const size_t n_;
  const size_t dim_;
  const uint32_t k_;
  bool initialized_ = false;
  /// Centers staged dimension-major for the batched distance kernel,
  /// refreshed by Assign() whenever a whole-block scan may run.
  core::kernels::SoaBlock centers_soa_;
  std::vector<double> dist_sq_;
  /// Hamerly: per-point lower bound on the distance to every non-assigned
  /// center.
  std::vector<double> lower_;
  /// Elkan: per-point, per-center lower bounds (n * k).
  std::vector<double> lower_per_center_;
  /// Elkan: inter-center distances (k * k).
  std::vector<double> center_dist_;
  /// Both pruned engines: 0.5 * distance to the nearest other center.
  std::vector<double> half_nearest_;
  /// Distance evaluations flow into the registry: orchestrating-thread
  /// bumps go straight to the counter, chunk-body tallies go through the
  /// sharded slots and drain after the barrier. The delta (snapshotted at
  /// construction) is the engine's own total.
  obs::Counter comps_counter_;
  obs::CounterDelta comps_delta_;
  obs::ShardedCounter sharded_comps_;
};

Result<ClusteringResult> Run(const PointSet& points,
                             const std::vector<double>& weights,
                             const KMeansOptions& options) {
  DMT_RETURN_NOT_OK(options.Validate());
  if (points.empty()) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }
  if (options.k > points.size()) {
    return Status::InvalidArgument("k exceeds the number of points");
  }
  const size_t n = points.size();
  const size_t dim = points.dim();
  Rng rng(options.seed);
  const core::ParallelContext ctx(options.num_threads);

  obs::Counter iterations_counter("cluster/kmeans/iterations");
  obs::Span run_span("cluster/kmeans/run");
  run_span.AttachCounter(iterations_counter);

  ClusteringResult result;
  uint64_t seeding_comps = 0;
  {
    obs::Span seed_span("cluster/kmeans/seed");
    result.centers = SeedCenters(points, weights, options.k, options.init,
                                 rng, ctx, &seeding_comps);
  }
  result.assignments.assign(n, 0);

  AssignmentEngine engine(points, options, ctx);
  engine.CountExternal(seeding_comps);
  run_span.AttachCounter(engine.comps_counter());

  // The SSE reduction runs on this thread in index order so parallel
  // runs are bit-identical to serial ones.
  auto assign_points = [&]() {
    engine.Assign(result.centers, &result.assignments);
    double sse = 0.0;
    for (size_t i = 0; i < n; ++i) sse += engine.dist_sq()[i] * weights[i];
    return sse;
  };

  std::vector<double> sums(options.k * dim, 0.0);
  std::vector<double> cluster_weight(options.k, 0.0);
  PointSet previous_centers;
  double previous_sse = std::numeric_limits<double>::infinity();

  obs::Span loop_span("cluster/kmeans/lloyd_loop");
  for (size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    result.iterations = iteration + 1;
    iterations_counter.Increment();
    result.sse = assign_points();

    // Update step (weights scale only the sums, never the assignment).
    previous_centers = result.centers;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(cluster_weight.begin(), cluster_weight.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      auto p = points.point(i);
      double w = weights[i];
      double* target = sums.data() + result.assignments[i] * dim;
      for (size_t d = 0; d < dim; ++d) target[d] += w * p[d];
      cluster_weight[result.assignments[i]] += w;
    }
    std::vector<uint32_t> empty_clusters;
    for (uint32_t c = 0; c < options.k; ++c) {
      if (cluster_weight[c] > 0.0) {
        auto center = result.centers.mutable_point(c);
        const double* source = sums.data() + c * dim;
        for (size_t d = 0; d < dim; ++d) {
          center[d] = source[d] / cluster_weight[c];
        }
      } else {
        empty_clusters.push_back(c);
      }
    }
    // Empty clusters restart at the points farthest from their assigned
    // centers, measured with the assignment step's distances (dist_sq)
    // so partially updated centers cannot skew the scan, and never
    // reusing one point for two restarts in the same iteration.
    std::vector<size_t> chosen;
    for (uint32_t c : empty_clusters) {
      size_t farthest = 0;
      double farthest_d = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (std::find(chosen.begin(), chosen.end(), i) != chosen.end()) {
          continue;
        }
        if (engine.dist_sq()[i] > farthest_d) {
          farthest_d = engine.dist_sq()[i];
          farthest = i;
        }
      }
      chosen.push_back(farthest);
      auto p = points.point(farthest);
      auto center = result.centers.mutable_point(c);
      std::copy(p.begin(), p.end(), center.begin());
    }

    engine.ApplyMovement(previous_centers, result.centers,
                         result.assignments);

    if (std::isfinite(previous_sse) &&
        previous_sse - result.sse <=
            options.tolerance * std::max(previous_sse, 1e-30)) {
      break;
    }
    previous_sse = result.sse;
  }

  // Final assignment against the last centers (keeps assignments and
  // centers mutually consistent).
  result.sse = assign_points();
  result.distance_computations = engine.distance_computations();
  return result;
}

}  // namespace

Result<ClusteringResult> KMeans(const PointSet& points,
                                const KMeansOptions& options) {
  std::vector<double> weights(points.size(), 1.0);
  return Run(points, weights, options);
}

Result<ClusteringResult> WeightedKMeans(const PointSet& points,
                                        const std::vector<double>& weights,
                                        const KMeansOptions& options) {
  if (weights.size() != points.size()) {
    return Status::InvalidArgument(
        "weights must match the number of points");
  }
  for (double w : weights) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument("weights must be positive");
    }
  }
  return Run(points, weights, options);
}

}  // namespace dmt::cluster
