#include "cluster/birch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>

#include "core/check.h"
#include "core/distance.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::cluster {

using core::PointSet;
using core::Result;
using core::Status;

Status BirchOptions::Validate() const {
  if (threshold < 0.0) {
    return Status::InvalidArgument("threshold must be >= 0");
  }
  if (branching < 2 || leaf_entries < 2) {
    return Status::InvalidArgument("branching and leaf_entries must be >= 2");
  }
  if (max_leaf_entries_total < leaf_entries) {
    return Status::InvalidArgument(
        "max_leaf_entries_total must be >= leaf_entries");
  }
  if (global_clusters == 0) {
    return Status::InvalidArgument("global_clusters must be >= 1");
  }
  return Status::OK();
}

namespace {

/// Clustering feature: sufficient statistics of a point group.
struct Cf {
  double n = 0.0;
  std::vector<double> ls;  // linear sum
  double ss = 0.0;         // sum of squared norms

  explicit Cf(size_t dim) : ls(dim, 0.0) {}

  static Cf FromPoint(std::span<const double> p) {
    Cf cf(p.size());
    cf.n = 1.0;
    for (size_t d = 0; d < p.size(); ++d) {
      cf.ls[d] = p[d];
      cf.ss += p[d] * p[d];
    }
    return cf;
  }

  void Add(const Cf& other) {
    n += other.n;
    for (size_t d = 0; d < ls.size(); ++d) ls[d] += other.ls[d];
    ss += other.ss;
  }

  /// Centroid component d.
  double Centroid(size_t d) const { return ls[d] / n; }

  /// Squared centroid distance to another CF.
  double CentroidDistanceSq(const Cf& other) const {
    double total = 0.0;
    for (size_t d = 0; d < ls.size(); ++d) {
      double diff = Centroid(d) - other.Centroid(d);
      total += diff * diff;
    }
    return total;
  }

  /// Radius (RMS distance of members to the centroid) of this CF merged
  /// with `other`.
  double MergedRadius(const Cf& other) const {
    double merged_n = n + other.n;
    double merged_ss = ss + other.ss;
    double centroid_norm_sq = 0.0;
    for (size_t d = 0; d < ls.size(); ++d) {
      double c = (ls[d] + other.ls[d]) / merged_n;
      centroid_norm_sq += c * c;
    }
    double radius_sq = merged_ss / merged_n - centroid_norm_sq;
    return radius_sq > 0.0 ? std::sqrt(radius_sq) : 0.0;
  }
};

/// CF-tree with arena-allocated nodes.
class CfTree {
 public:
  CfTree(size_t dim, double threshold, size_t branching, size_t leaf_entries)
      : dim_(dim),
        threshold_(threshold),
        branching_(branching),
        leaf_entries_(leaf_entries) {
    root_ = NewNode(/*is_leaf=*/true);
  }

  void Insert(const Cf& cf) {
    InsertResult result = InsertInto(root_, cf);
    if (result.split) {
      // Grow a new root above the two halves.
      uint32_t new_root = NewNode(/*is_leaf=*/false);
      nodes_[new_root].cfs.push_back(SummarizeNode(root_));
      nodes_[new_root].children.push_back(root_);
      nodes_[new_root].cfs.push_back(SummarizeNode(result.new_node));
      nodes_[new_root].children.push_back(result.new_node);
      root_ = new_root;
    }
  }

  size_t num_leaf_entries() const { return num_leaf_entries_; }
  double threshold() const { return threshold_; }

  /// All leaf CF entries.
  std::vector<Cf> LeafEntries() const {
    std::vector<Cf> out;
    out.reserve(num_leaf_entries_);
    for (const Node& node : nodes_) {
      if (!node.alive || !node.is_leaf) continue;
      for (const Cf& cf : node.cfs) out.push_back(cf);
    }
    return out;
  }

 private:
  struct Node {
    bool is_leaf = true;
    bool alive = true;
    std::vector<Cf> cfs;
    std::vector<uint32_t> children;  // internal nodes only, parallel to cfs
  };

  struct InsertResult {
    bool split = false;
    uint32_t new_node = 0;
  };

  uint32_t NewNode(bool is_leaf) {
    nodes_.emplace_back();
    nodes_.back().is_leaf = is_leaf;
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  Cf SummarizeNode(uint32_t index) const {
    Cf total(dim_);
    for (const Cf& cf : nodes_[index].cfs) total.Add(cf);
    return total;
  }

  size_t ClosestEntry(const Node& node, const Cf& cf) const {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t e = 0; e < node.cfs.size(); ++e) {
      double d = node.cfs[e].CentroidDistanceSq(cf);
      if (d < best_d) {
        best_d = d;
        best = e;
      }
    }
    return best;
  }

  /// Splits node `index`'s entries across itself and a fresh sibling using
  /// farthest-pair seeding; returns the sibling.
  uint32_t SplitNode(uint32_t index) {
    uint32_t sibling = NewNode(nodes_[index].is_leaf);
    Node& node = nodes_[index];
    Node& other = nodes_[sibling];
    // Farthest pair of entries.
    size_t seed_a = 0, seed_b = 1;
    double worst = -1.0;
    for (size_t i = 0; i < node.cfs.size(); ++i) {
      for (size_t j = i + 1; j < node.cfs.size(); ++j) {
        double d = node.cfs[i].CentroidDistanceSq(node.cfs[j]);
        if (d > worst) {
          worst = d;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    std::vector<Cf> cfs = std::move(node.cfs);
    std::vector<uint32_t> children = std::move(node.children);
    node.cfs.clear();
    node.children.clear();
    // Copy the seeds: entries are moved out of `cfs` as they are assigned,
    // so later comparisons must not reference the (possibly moved) seeds.
    const Cf anchor_a = cfs[seed_a];
    const Cf anchor_b = cfs[seed_b];
    for (size_t e = 0; e < cfs.size(); ++e) {
      bool to_a = e == seed_a ||
                  (e != seed_b && cfs[e].CentroidDistanceSq(anchor_a) <=
                                      cfs[e].CentroidDistanceSq(anchor_b));
      Node& target = to_a ? node : other;
      target.cfs.push_back(std::move(cfs[e]));
      if (!children.empty()) target.children.push_back(children[e]);
    }
    return sibling;
  }

  InsertResult InsertInto(uint32_t index, const Cf& cf) {
    Node& node = nodes_[index];
    if (node.is_leaf) {
      if (!node.cfs.empty()) {
        size_t closest = ClosestEntry(node, cf);
        if (node.cfs[closest].MergedRadius(cf) <= threshold_) {
          node.cfs[closest].Add(cf);
          return {};
        }
      }
      node.cfs.push_back(cf);
      ++num_leaf_entries_;
      if (node.cfs.size() > leaf_entries_) {
        return {true, SplitNode(index)};
      }
      return {};
    }
    size_t slot = ClosestEntry(node, cf);
    uint32_t child = node.children[slot];
    InsertResult child_result = InsertInto(child, cf);
    Node& node_after = nodes_[index];  // arena may have reallocated
    node_after.cfs[slot].Add(cf);
    if (!child_result.split) return {};
    // Recompute the split child's summary and add the new sibling.
    node_after.cfs[slot] = SummarizeNode(child);
    node_after.cfs.push_back(SummarizeNode(child_result.new_node));
    node_after.children.push_back(child_result.new_node);
    if (node_after.cfs.size() > branching_) {
      return {true, SplitNode(index)};
    }
    return {};
  }

  size_t dim_;
  double threshold_;
  size_t branching_;
  size_t leaf_entries_;
  size_t num_leaf_entries_ = 0;
  uint32_t root_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace

Result<BirchResult> Birch(const PointSet& points,
                          const BirchOptions& options) {
  DMT_RETURN_NOT_OK(options.Validate());
  if (points.empty()) {
    return Status::InvalidArgument("cannot cluster an empty point set");
  }
  const size_t dim = points.dim();

  // BIRCH's global phase delegates to k-means, so its distance work lands
  // in the k-means counter; the delta below spans both phases and the
  // final labeling scan.
  obs::Counter comps_counter("cluster/kmeans/distance_computations");
  const obs::CounterDelta comps_delta(comps_counter);
  obs::Counter rebuilds_counter("cluster/birch/rebuilds");
  obs::Gauge leaf_entries_gauge("cluster/birch/leaf_entries");
  obs::Span run_span("cluster/birch/run");
  run_span.AttachCounter(comps_counter);
  run_span.AttachCounter(rebuilds_counter);

  BirchResult result;
  double threshold = options.threshold > 0.0 ? options.threshold : 1e-3;
  auto tree = std::make_unique<CfTree>(dim, threshold, options.branching,
                                       options.leaf_entries);
  {
    obs::Span insert_span("cluster/birch/insert");
    for (size_t i = 0; i < points.size(); ++i) {
      tree->Insert(Cf::FromPoint(points.point(i)));
      if (tree->num_leaf_entries() > options.max_leaf_entries_total) {
        // Memory bound exceeded: rebuild with a doubled threshold by
        // reinserting the existing summaries, then continue the scan.
        std::vector<Cf> entries = tree->LeafEntries();
        threshold *= 2.0;
        ++result.rebuilds;
        rebuilds_counter.Increment();
        tree = std::make_unique<CfTree>(dim, threshold, options.branching,
                                        options.leaf_entries);
        for (const Cf& entry : entries) tree->Insert(entry);
      }
    }
  }

  std::vector<Cf> entries = tree->LeafEntries();
  result.num_leaf_entries = entries.size();
  leaf_entries_gauge.Set(static_cast<double>(entries.size()));
  result.final_threshold = threshold;

  // Global phase: weighted k-means over the entry centroids.
  PointSet centroids(dim);
  std::vector<double> weights;
  weights.reserve(entries.size());
  std::vector<double> buffer(dim);
  for (const Cf& entry : entries) {
    for (size_t d = 0; d < dim; ++d) buffer[d] = entry.Centroid(d);
    centroids.Add(buffer);
    weights.push_back(entry.n);
  }
  KMeansOptions kmeans;
  kmeans.k = std::min(options.global_clusters, centroids.size());
  kmeans.assignment = options.global_assignment;
  kmeans.seed = options.seed;
  ClusteringResult global;
  {
    obs::Span global_span("cluster/birch/global_kmeans");
    DMT_ASSIGN_OR_RETURN(global, WeightedKMeans(centroids, weights, kmeans));
  }

  // Label original points by their nearest global center.
  obs::Span label_span("cluster/birch/label");
  result.clustering.centers = std::move(global.centers);
  result.clustering.iterations = global.iterations;
  comps_counter.Add(points.size() * result.clustering.centers.size());
  result.clustering.distance_computations = comps_delta.Value();
  result.clustering.assignments.resize(points.size());
  double sse = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    auto p = points.point(i);
    double best_d = std::numeric_limits<double>::infinity();
    uint32_t best_c = 0;
    for (uint32_t c = 0; c < result.clustering.centers.size(); ++c) {
      double d = core::SquaredEuclideanDistance(
          p, result.clustering.centers.point(c));
      if (d < best_d) {
        best_d = d;
        best_c = c;
      }
    }
    result.clustering.assignments[i] = best_c;
    sse += best_d;
  }
  result.clustering.sse = sse;
  return result;
}

}  // namespace dmt::cluster
