// BIRCH (Zhang, Ramakrishnan & Livny, SIGMOD'96): single-scan clustering
// via a height-balanced tree of clustering features CF = (n, LS, SS), with
// automatic threshold escalation and a global clustering phase over the
// leaf entries.
#ifndef DMT_CLUSTER_BIRCH_H_
#define DMT_CLUSTER_BIRCH_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "core/point_set.h"
#include "core/status.h"

namespace dmt::cluster {

/// BIRCH hyper-parameters.
struct BirchOptions {
  /// Initial absorption threshold T: a leaf entry absorbs a point only if
  /// its radius stays <= threshold. 0 lets BIRCH start from a tiny value
  /// and rely on escalation.
  double threshold = 0.5;
  /// Max entries per internal node (B) and per leaf (L).
  size_t branching = 8;
  size_t leaf_entries = 8;
  /// Rebuild (threshold *= 2, reinsert entry centroids) when the number of
  /// leaf entries exceeds this cap — BIRCH's memory bound.
  size_t max_leaf_entries_total = 1024;
  /// Number of clusters produced by the global phase (weighted k-means over
  /// leaf-entry centroids).
  size_t global_clusters = 8;
  /// Assignment engine for the global-phase k-means. Exact (bit-identical
  /// clustering for any choice), so the pruned default only affects speed.
  KMeansOptions::Assignment global_assignment =
      KMeansOptions::Assignment::kHamerly;
  uint64_t seed = 1;

  core::Status Validate() const;
};

/// Extra BIRCH introspection alongside the standard clustering output.
struct BirchResult {
  ClusteringResult clustering;
  /// Leaf CF entries after the build (the dataset summary).
  size_t num_leaf_entries = 0;
  /// Final absorption threshold after escalations.
  double final_threshold = 0.0;
  /// How many times the tree was rebuilt with a doubled threshold.
  size_t rebuilds = 0;
};

/// Clusters `points` with BIRCH. `clustering.distance_computations`
/// covers the global phase plus the final point-labeling pass.
core::Result<BirchResult> Birch(const core::PointSet& points,
                                const BirchOptions& options);

}  // namespace dmt::cluster

#endif  // DMT_CLUSTER_BIRCH_H_
