// CLARANS k-medoids clustering (Ng & Han, VLDB'94): randomized search on
// the graph of medoid sets, where each step swaps one medoid for one
// non-medoid; a node is a local optimum after max_neighbors consecutive
// non-improving sampled swaps, and the best of num_local optima wins.
#ifndef DMT_CLUSTER_CLARANS_H_
#define DMT_CLUSTER_CLARANS_H_

#include <cstdint>
#include <vector>

#include "core/point_set.h"
#include "core/status.h"

namespace dmt::cluster {

/// CLARANS hyper-parameters. Defaults follow the paper's recommendation:
/// numlocal = 2, maxneighbor = max(250, 1.25% of k*(n-k)).
struct ClaransOptions {
  size_t k = 8;
  /// Number of local optima to collect (restarts).
  size_t num_local = 2;
  /// Consecutive failed swap samples before declaring a local optimum;
  /// 0 = the paper's 1.25% rule.
  size_t max_neighbors = 0;
  uint64_t seed = 1;

  core::Status Validate() const;
};

/// k-medoids clustering output. Unlike k-means, centers are actual input
/// points and the objective is the sum of (unsquared) Euclidean distances,
/// making the method robust to outliers.
struct MedoidResult {
  /// Indices of the k medoid points.
  std::vector<uint32_t> medoids;
  /// Medoid slot (0..k-1) per input point.
  std::vector<uint32_t> assignments;
  /// Sum of distances of points to their medoid.
  double total_cost = 0.0;
  /// Swap steps accepted across all restarts.
  size_t accepted_swaps = 0;
};

/// Runs CLARANS on `points`. Deterministic in (options, seed).
core::Result<MedoidResult> Clarans(const core::PointSet& points,
                                   const ClaransOptions& options);

}  // namespace dmt::cluster

#endif  // DMT_CLUSTER_CLARANS_H_
