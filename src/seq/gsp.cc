#include "seq/gsp.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/check.h"
#include "core/kernels/kernels.h"
#include "core/parallel.h"
#include "core/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::seq {

using core::ItemId;
using core::Result;
using core::Sequence;
using core::SequenceDatabase;
using core::Status;

core::Status SeqMiningParams::Validate() const {
  if (!(min_support > 0.0) || min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  return Status::OK();
}

namespace {

/// Flattened key for hashing/ordering: items with a sentinel between
/// elements. The sentinel is larger than any valid item, so lexicographic
/// comparison of keys orders "element break" after "continue element".
constexpr uint32_t kElementBreak = 0xffffffffu;

std::vector<uint32_t> FlattenSequence(const Sequence& sequence) {
  std::vector<uint32_t> key;
  key.reserve(sequence.TotalItems() + sequence.size());
  for (size_t e = 0; e < sequence.elements.size(); ++e) {
    if (e > 0) key.push_back(kElementBreak);
    for (ItemId item : sequence.elements[e]) key.push_back(item);
  }
  return key;
}

struct KeyHash {
  size_t operator()(const std::vector<uint32_t>& key) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint32_t v : key) {
      h ^= v;
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

using SeqKeySet = std::unordered_set<std::vector<uint32_t>, KeyHash>;

/// Drops the item at flat position (element, offset); removes the element
/// when it empties.
Sequence DropItem(const Sequence& sequence, size_t element, size_t offset) {
  Sequence out = sequence;
  auto& target = out.elements[element];
  target.erase(target.begin() + static_cast<std::ptrdiff_t>(offset));
  if (target.empty()) {
    out.elements.erase(out.elements.begin() +
                       static_cast<std::ptrdiff_t>(element));
  }
  return out;
}

/// Drops the very first item.
Sequence DropFirst(const Sequence& sequence) {
  return DropItem(sequence, 0, 0);
}

/// Drops the very last item.
Sequence DropLast(const Sequence& sequence) {
  return DropItem(sequence, sequence.elements.size() - 1,
                  sequence.elements.back().size() - 1);
}

/// GSP join of frequent k-sequences into (k+1)-candidates: s1 and s2 join
/// when dropping s1's first item equals dropping s2's last item; the result
/// is s1 extended by s2's last item (new element iff it was alone in s2's
/// last element).
std::vector<Sequence> JoinPhase(const std::vector<SequencePattern>& layer) {
  std::vector<Sequence> candidates;
  std::unordered_map<std::vector<uint32_t>, std::vector<size_t>, KeyHash>
      by_drop_first;
  for (size_t i = 0; i < layer.size(); ++i) {
    by_drop_first[FlattenSequence(DropFirst(layer[i].sequence))].push_back(
        i);
  }
  SeqKeySet emitted;
  for (const auto& s2 : layer) {
    Sequence trimmed = DropLast(s2.sequence);
    auto it = by_drop_first.find(FlattenSequence(trimmed));
    if (it == by_drop_first.end()) continue;
    const ItemId new_item = s2.sequence.elements.back().back();
    const bool own_element = s2.sequence.elements.back().size() == 1;
    for (size_t i : it->second) {
      const Sequence& s1 = layer[i].sequence;
      Sequence candidate = s1;
      if (own_element) {
        candidate.elements.push_back({new_item});
      } else {
        auto& last = candidate.elements.back();
        // Items within an element are a sorted set; the new item must
        // extend it strictly (insert keeping order, reject duplicates).
        auto pos = std::lower_bound(last.begin(), last.end(), new_item);
        if (pos != last.end() && *pos == new_item) continue;
        last.insert(pos, new_item);
      }
      auto key = FlattenSequence(candidate);
      if (emitted.insert(std::move(key)).second) {
        candidates.push_back(std::move(candidate));
      }
    }
  }
  return candidates;
}

/// Special-cased join for k=1: every ordered pair <{x} {y}> plus every
/// unordered pair <{x, y}> with x < y.
std::vector<Sequence> JoinSingles(const std::vector<SequencePattern>& layer) {
  std::vector<Sequence> candidates;
  for (const auto& a : layer) {
    ItemId x = a.sequence.elements[0][0];
    for (const auto& b : layer) {
      ItemId y = b.sequence.elements[0][0];
      Sequence two_elements;
      two_elements.elements = {{x}, {y}};
      candidates.push_back(std::move(two_elements));
      if (x < y) {
        Sequence one_element;
        one_element.elements = {{x, y}};
        candidates.push_back(std::move(one_element));
      }
    }
  }
  return candidates;
}

/// Downward-closure prune: every subsequence obtained by dropping a single
/// item must be frequent.
bool SurvivesPrune(const Sequence& candidate, const SeqKeySet& frequent) {
  for (size_t e = 0; e < candidate.elements.size(); ++e) {
    for (size_t o = 0; o < candidate.elements[e].size(); ++o) {
      Sequence subsequence = DropItem(candidate, e, o);
      if (!frequent.contains(FlattenSequence(subsequence))) return false;
    }
  }
  return true;
}

/// Fast counting for pass 2: |C2| is quadratic in |L1|, so per-candidate
/// containment scans dominate the whole run. Instead, one pass per customer
/// records each item's first and last element positions, which decide every
/// ordered pair, and scans elements for unordered pairs.
void CountPass2(const SequenceDatabase& db,
                const std::vector<Sequence>& candidates,
                std::span<uint32_t> counts,
                const core::ParallelContext& ctx) {
  auto pair_key = [](ItemId x, ItemId y) {
    return (static_cast<uint64_t>(x) << 32) | y;
  };
  std::unordered_map<uint64_t, uint32_t> ordered_index;   // <{x} {y}>
  std::unordered_map<uint64_t, uint32_t> element_index;   // <{x, y}>
  for (uint32_t c = 0; c < candidates.size(); ++c) {
    const Sequence& candidate = candidates[c];
    if (candidate.elements.size() == 2) {
      ordered_index.emplace(
          pair_key(candidate.elements[0][0], candidate.elements[1][0]), c);
    } else {
      element_index.emplace(
          pair_key(candidate.elements[0][0], candidate.elements[0][1]), c);
    }
  }
  const size_t universe = db.item_universe();
  // The indexes above are shared read-only; every stamp/position scratch
  // array is chunk-local, so customers partition cleanly across chunks.
  core::CountPartitioned(
      ctx, db.size(), counts,
      [&](size_t chunk_begin, size_t chunk_end, std::span<uint32_t> local) {
        std::vector<uint32_t> first_seen(universe, 0),
            last_seen(universe, 0);
        std::vector<uint32_t> first_pos(universe, 0), last_pos(universe, 0);
        std::vector<uint32_t> element_stamp(candidates.size(), 0);
        std::vector<ItemId> present;
        uint32_t serial = 0;
        for (size_t cust = chunk_begin; cust < chunk_end; ++cust) {
          const Sequence& customer = db.sequence(cust);
          ++serial;
          present.clear();
          for (uint32_t e = 0; e < customer.elements.size(); ++e) {
            for (ItemId item : customer.elements[e]) {
              if (first_seen[item] != serial) {
                first_seen[item] = serial;
                first_pos[item] = e;
                present.push_back(item);
              }
              last_seen[item] = serial;
              last_pos[item] = e;
            }
          }
          // Ordered pairs: x strictly before y in element position.
          for (ItemId x : present) {
            for (ItemId y : present) {
              if (first_pos[x] < last_pos[y]) {
                auto it = ordered_index.find(pair_key(x, y));
                if (it != ordered_index.end()) ++local[it->second];
              }
            }
          }
          // Same-element pairs, deduplicated per customer.
          for (const auto& element : customer.elements) {
            for (size_t i = 0; i < element.size(); ++i) {
              for (size_t j = i + 1; j < element.size(); ++j) {
                auto it =
                    element_index.find(pair_key(element[i], element[j]));
                if (it != element_index.end() &&
                    element_stamp[it->second] != serial) {
                  element_stamp[it->second] = serial;
                  ++local[it->second];
                }
              }
            }
          }
        }
      });
}

void SortCanonicalSequences(std::vector<SequencePattern>* patterns) {
  std::sort(patterns->begin(), patterns->end(),
            [](const SequencePattern& a, const SequencePattern& b) {
              size_t an = a.sequence.TotalItems();
              size_t bn = b.sequence.TotalItems();
              if (an != bn) return an < bn;
              return FlattenSequence(a.sequence) <
                     FlattenSequence(b.sequence);
            });
}

}  // namespace

Result<SeqMiningResult> MineGsp(const SequenceDatabase& db,
                                const SeqMiningParams& params) {
  DMT_RETURN_NOT_OK(params.Validate());
  SeqMiningResult result;
  if (db.empty()) return result;
  const core::ParallelContext ctx(params.num_threads);
  const auto min_count = static_cast<uint32_t>(std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(
             params.min_support * static_cast<double>(db.size()) - 1e-9))));

  obs::Counter candidates_counter("seq/gsp/candidates");
  obs::Counter frequent_counter("seq/gsp/frequent");
  obs::Counter passes_counter("seq/gsp/passes");
  obs::Span mine_span("seq/gsp/mine");
  mine_span.AttachCounter(candidates_counter);
  mine_span.AttachCounter(frequent_counter);
  mine_span.AttachCounter(passes_counter);

  // Pass 1: frequent items (customer support: once per customer).
  std::vector<uint32_t> item_support(db.item_universe(), 0);
  std::vector<SequencePattern> layer;
  {
    obs::Span pass1_span("seq/gsp/pass1");
    std::unordered_set<ItemId> seen;
    for (size_t c = 0; c < db.size(); ++c) {
      seen.clear();
      for (const auto& element : db.sequence(c).elements) {
        for (ItemId item : element) seen.insert(item);
      }
      for (ItemId item : seen) ++item_support[item];
    }
    for (ItemId item = 0; item < item_support.size(); ++item) {
      if (item_support[item] >= min_count) {
        Sequence s;
        s.elements = {{item}};
        layer.push_back({std::move(s), item_support[item]});
      }
    }
  }
  result.passes.push_back({1, db.item_universe(), layer.size()});
  candidates_counter.Add(db.item_universe());
  frequent_counter.Add(layer.size());
  passes_counter.Increment();
  result.patterns = layer;

  // Per-customer item signatures, computed once: a candidate whose
  // signature is not a bitmask subset of the customer's cannot be
  // contained, so the counting loop skips the greedy element walk.
  std::vector<uint64_t> customer_sigs(db.size());
  for (size_t c = 0; c < db.size(); ++c) {
    customer_sigs[c] = db.sequence(c).ItemSignature();
  }

  for (size_t k = 2; !layer.empty(); ++k) {
    if (params.max_pattern_items != 0 && k > params.max_pattern_items) break;
    obs::Span pass_span("seq/gsp/pass");
    pass_span.AddArg("k", k);
    std::vector<Sequence> candidates;
    {
      obs::Span join_span("seq/gsp/pass/join");
      candidates = k == 2 ? JoinSingles(layer) : JoinPhase(layer);
      if (k > 2) {
        SeqKeySet frequent_keys;
        for (const auto& pattern : layer) {
          frequent_keys.insert(FlattenSequence(pattern.sequence));
        }
        std::vector<Sequence> pruned;
        pruned.reserve(candidates.size());
        for (auto& candidate : candidates) {
          if (SurvivesPrune(candidate, frequent_keys)) {
            pruned.push_back(std::move(candidate));
          }
        }
        candidates = std::move(pruned);
      }
    }
    if (candidates.empty()) {
      result.passes.push_back({k, 0, 0});
      passes_counter.Increment();
      break;
    }
    std::vector<uint32_t> counts(candidates.size(), 0);
    {
      obs::Span count_span("seq/gsp/pass/count");
      if (k == 2) {
        CountPass2(db, candidates, counts, ctx);
      } else {
        std::vector<uint64_t> cand_sigs(candidates.size());
        for (size_t cand = 0; cand < candidates.size(); ++cand) {
          cand_sigs[cand] = candidates[cand].ItemSignature();
        }
        core::CountPartitioned(
            ctx, db.size(), counts,
            [&](size_t chunk_begin, size_t chunk_end,
                std::span<uint32_t> local) {
              for (size_t c = chunk_begin; c < chunk_end; ++c) {
                const Sequence& customer = db.sequence(c);
                if (customer.TotalItems() < k) continue;
                const uint64_t customer_sig = customer_sigs[c];
                for (size_t cand = 0; cand < candidates.size(); ++cand) {
                  if (core::kernels::SignatureSubset(cand_sigs[cand],
                                                     customer_sig) &&
                      customer.Contains(candidates[cand])) {
                    ++local[cand];
                  }
                }
              }
            });
      }
    }
    std::vector<SequencePattern> next_layer;
    for (size_t cand = 0; cand < candidates.size(); ++cand) {
      if (counts[cand] >= min_count) {
        next_layer.push_back({std::move(candidates[cand]), counts[cand]});
      }
    }
    result.passes.push_back({k, candidates.size(), next_layer.size()});
    candidates_counter.Add(candidates.size());
    frequent_counter.Add(next_layer.size());
    passes_counter.Increment();
    result.patterns.insert(result.patterns.end(), next_layer.begin(),
                           next_layer.end());
    layer = std::move(next_layer);
  }
  SortCanonicalSequences(&result.patterns);
  return result;
}

std::vector<SequencePattern> FilterMaximalSequences(
    const std::vector<SequencePattern>& patterns) {
  std::vector<uint64_t> sigs(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    sigs[i] = patterns[i].sequence.ItemSignature();
  }
  std::vector<SequencePattern> kept;
  for (size_t i = 0; i < patterns.size(); ++i) {
    const auto& candidate = patterns[i];
    bool maximal = true;
    for (size_t j = 0; j < patterns.size(); ++j) {
      const auto& other = patterns[j];
      if (other.sequence.TotalItems() <= candidate.sequence.TotalItems()) {
        continue;
      }
      if (core::kernels::SignatureSubset(sigs[i], sigs[j]) &&
          other.sequence.Contains(candidate.sequence)) {
        maximal = false;
        break;
      }
    }
    if (maximal) kept.push_back(candidate);
  }
  SortCanonicalSequences(&kept);
  return kept;
}

std::string FormatSequencePattern(const SequencePattern& pattern) {
  std::string out = "<";
  for (size_t e = 0; e < pattern.sequence.elements.size(); ++e) {
    if (e > 0) out += ' ';
    out += '{';
    const auto& element = pattern.sequence.elements[e];
    for (size_t i = 0; i < element.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(element[i]);
    }
    out += '}';
  }
  out += core::StrFormat("> (support=%u)", pattern.support);
  return out;
}

}  // namespace dmt::seq
