// Sequential pattern mining in the GSP / AprioriAll family (Agrawal &
// Srikant, ICDE'95; Srikant & Agrawal, EDBT'96): level-wise candidate
// sequence generation with downward-closure pruning, counted by subsequence
// containment over customer sequences.
#ifndef DMT_SEQ_GSP_H_
#define DMT_SEQ_GSP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/sequence.h"
#include "core/status.h"

namespace dmt::seq {

/// A frequent sequential pattern with its customer support count.
struct SequencePattern {
  core::Sequence sequence;
  uint32_t support = 0;

  bool operator==(const SequencePattern& other) const = default;
};

/// Per-pass bookkeeping (k = total items in the candidate sequences).
struct SeqPassStats {
  size_t pass = 0;
  size_t candidates = 0;
  size_t frequent = 0;
};

/// Output of the miner.
struct SeqMiningResult {
  /// Frequent patterns in canonical order (by total items, then element
  /// structure, then items).
  std::vector<SequencePattern> patterns;
  std::vector<SeqPassStats> passes;
};

/// Mining thresholds.
struct SeqMiningParams {
  /// Minimum support as a fraction of customers, in (0, 1].
  double min_support = 0.01;
  /// Largest pattern size in total items; 0 = unlimited.
  size_t max_pattern_items = 0;
  /// Worker threads for candidate-support counting (the per-customer
  /// containment scans); 0 or 1 = serial. Parallel runs produce
  /// bit-identical results to serial runs.
  size_t num_threads = 0;

  core::Status Validate() const;
};

/// Mines all frequent sequential patterns.
core::Result<SeqMiningResult> MineGsp(const core::SequenceDatabase& db,
                                      const SeqMiningParams& params);

/// Keeps only maximal patterns (no frequent proper supersequence) — the
/// "maximal phase" of AprioriAll.
std::vector<SequencePattern> FilterMaximalSequences(
    const std::vector<SequencePattern>& patterns);

/// Human-readable "<{a, b} {c}> (support=n)".
std::string FormatSequencePattern(const SequencePattern& pattern);

}  // namespace dmt::seq

#endif  // DMT_SEQ_GSP_H_
