// Hierarchical RAII trace spans and the Chrome trace_event sink.
//
//   obs::Span scan("assoc/apriori/pass/count");
//   scan.AddArg("k", k);
//   scan.AttachCounter(candidates);   // records the counter's delta
//
// Spans record wall time (core::WallTimer) and process CPU time
// (core::CpuTimer) between construction and destruction, plus any
// attached args, and report to the global TraceSink. The sink serializes
// to Chrome trace_event JSON ("complete" events, ph="X") loadable in
// chrome://tracing or Perfetto, with the metrics-registry totals embedded
// as a "dmtCounters" object.
//
// Off switches:
//  - Runtime (default off): tracing is enabled by the DMT_TRACE=<path>
//    environment variable or programmatically via TraceSink::Start /
//    StartCollection. A disabled span costs one relaxed atomic load and a
//    predicted branch — the "no measurable slowdown" number is checked by
//    the EXT-7 bench, not asserted.
//  - Compile time: -DDMT_OBS_DISABLED compiles Span to an empty object so
//    tracing vanishes entirely. The metrics registry stays available in
//    both modes because public stats fields read through it.
//
// Naming scheme: span names are static strings of the form
// "<family>/<algorithm>/<phase>" (nested phases append segments, e.g.
// "assoc/apriori/pass/count"); per-invocation values such as the pass
// number travel as args, never in the name, so disabled spans do no
// formatting work. Spans may be opened on any thread, but the library
// only opens them on the orchestrating thread; chunk-body work is
// reported through counters instead.
#ifndef DMT_OBS_TRACE_H_
#define DMT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dmt::obs {

namespace internal {

/// One finished span, in microseconds since the sink's epoch.
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  double cpu_us = 0.0;
  uint32_t tid = 0;
  std::vector<std::pair<std::string, uint64_t>> args;
};

}  // namespace internal

/// Aggregated view of every recorded span with a given name (the span
/// tree a bench embeds in its --json record).
struct SpanAggregate {
  std::string name;
  uint64_t count = 0;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
};

/// Global collector of finished spans. Record() appends under a mutex —
/// spans are phase-granularity, so contention is not a concern; hot-loop
/// work belongs in counters.
class TraceSink {
 public:
  /// The process-wide sink. First access reads DMT_TRACE: when set and
  /// non-empty, collection starts immediately and the trace is flushed to
  /// that path at process exit (or an earlier Stop()).
  static TraceSink& Global();

  /// True when spans are being collected (the Span fast-path check).
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts collection and arranges for Flush() to write `path`.
  void Start(std::string path);
  /// Starts in-memory collection with no output file (the bench harness
  /// uses this to embed span aggregates without writing a trace).
  void StartCollection();
  /// Stops collection and flushes to the configured path, if any.
  void Stop();
  /// Temporarily toggles collection without touching the path or the
  /// buffered events (the EXT-7 overhead bench flips this).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Discards every buffered event (keeps the enabled state and path).
  void Clear();

  /// Writes the Chrome trace_event JSON to the configured path. No-op
  /// without a path. Keeps the buffered events.
  void Flush();

  /// Buffered spans aggregated by name, sorted by name.
  std::vector<SpanAggregate> Aggregates() const;

  /// Number of buffered events (capped; see kMaxEvents).
  size_t event_count() const;
  /// Events dropped after the cap was reached.
  uint64_t dropped_events() const;

  /// Seconds since the sink's construction (the trace timebase).
  double EpochSeconds() const;

  void Record(internal::TraceEvent event);

  /// Records an externally timed span — serving's per-request telemetry,
  /// where the request lifetime crosses threads and queues so a
  /// stack-scoped Span cannot bracket it. `ts_us` is microseconds since
  /// the sink's epoch (EpochSeconds() · 1e6), `dur_us` the measured
  /// duration. No-op while collection is disabled.
  void RecordManual(const char* name, double ts_us, double dur_us,
                    std::vector<std::pair<std::string, uint64_t>> args);

  /// Stable small integer for the calling thread (trace "tid").
  uint32_t ThreadId();

 private:
  TraceSink();
  ~TraceSink();

  /// Buffer cap: a span is ~100 bytes, so the cap bounds the sink at
  /// roughly 100 MB under pathological span counts.
  static constexpr size_t kMaxEvents = 1u << 20;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::string path_;
  std::vector<internal::TraceEvent> events_;
  uint64_t dropped_ = 0;
};

#ifndef DMT_OBS_DISABLED

/// RAII trace span. `name` must be a string with static storage duration
/// (the sink stores the pointer). Non-copyable, non-movable; construct on
/// the stack around the phase being measured.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a named value to the span (shown under "args" in the trace
  /// viewer). No-op on an inactive span.
  void AddArg(const char* key, uint64_t value);

  /// Attaches a counter: the span records how much the counter grew
  /// between this call and the span's close, keyed by the counter's
  /// registered name.
  void AttachCounter(const Counter& counter);

 private:
  const char* name_;
  bool active_;
  double start_wall_us_ = 0.0;
  double start_cpu_us_ = 0.0;
  std::vector<std::pair<std::string, uint64_t>> args_;
  std::vector<std::pair<Counter, uint64_t>> attached_;
};

#else  // DMT_OBS_DISABLED

class Span {
 public:
  explicit Span(const char*) {}
  // User-provided so a scoped `obs::Span s(...)` never trips
  // -Wunused-variable in the disabled build.
  ~Span() {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void AddArg(const char*, uint64_t) {}
  void AttachCounter(const Counter&) {}
};

#endif  // DMT_OBS_DISABLED

}  // namespace dmt::obs

#endif  // DMT_OBS_TRACE_H_
