// Registry exposition: renders the full metrics registry — counters,
// gauges, histogram buckets — as Prometheus text (for scraping / the
// dmtd --metrics-path dump) and as JSON (the bench --json "registry"
// shape, extended with gauges and histograms). Pure readers: rendering
// never mutates the registry.
#ifndef DMT_OBS_EXPOSE_H_
#define DMT_OBS_EXPOSE_H_

#include <string>
#include <string_view>

namespace dmt::obs {

/// Mangles a registry metric name into a valid Prometheus metric name:
/// "serve/cache_hits" -> "dmt_serve_cache_hits". Every character outside
/// [a-zA-Z0-9_:] becomes '_'; the "dmt_" prefix namespaces the process
/// and keeps names from starting with a digit.
std::string PrometheusName(std::string_view name);

/// The whole registry in Prometheus text exposition format 0.0.4: one
/// "# TYPE" comment plus sample lines per metric, metrics in registry
/// snapshot (name-sorted) order. Histograms render cumulative
/// `_bucket{le="..."}` series (empty buckets elided, "+Inf" always
/// present), `_sum`, and `_count`; cumulative counts are monotone and
/// `_count` equals the "+Inf" bucket by construction.
std::string RenderPrometheusText();

/// The whole registry as a JSON object:
///   {"counters": {"name": n, ...},
///    "gauges": {"name": x, ...},
///    "histograms": {"name": {"count": n, "sum": s, "mean": m,
///                            "p50": a, "p90": b, "p99": c,
///                            "buckets": {"<upper-bound>": n, ...}}, ...}}
/// The "counters" object is exactly the bench --json "registry" shape;
/// histogram buckets are keyed by inclusive upper bound with only
/// non-empty buckets listed ("+Inf" for the overflow bucket).
std::string RenderJsonSnapshot();

}  // namespace dmt::obs

#endif  // DMT_OBS_EXPOSE_H_
