#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace dmt::obs {

namespace {

const std::string& EmptyName() {
  static const std::string empty;
  return empty;
}

HistogramData ReadSlot(const internal::HistogramSlot& slot) {
  HistogramData data;
  data.name = slot.name;
  data.sum = slot.sum.load(std::memory_order_relaxed);
  data.buckets.resize(histogram_buckets::kNumBuckets);
  for (size_t i = 0; i < histogram_buckets::kNumBuckets; ++i) {
    data.buckets[i] = slot.buckets[i].load(std::memory_order_relaxed);
    data.count += data.buckets[i];
  }
  return data;
}

}  // namespace

uint64_t HistogramData::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::min(p, 100.0);
  // Nearest rank: the smallest rank >= p/100 · count, at least 1.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return histogram_buckets::BucketUpperBound(i);
  }
  return histogram_buckets::BucketUpperBound(buckets.size() - 1);
}

double HistogramData::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

HistogramData Histogram::Data() const {
  if (slot_ == nullptr) {
    HistogramData empty;
    empty.buckets.resize(histogram_buckets::kNumBuckets);
    return empty;
  }
  return ReadSlot(*slot_);
}

ShardedHistogram::ShardedHistogram(Histogram histogram, size_t num_chunks)
    : histogram_(histogram), shards_(num_chunks > 0 ? num_chunks : 1) {}

void ShardedHistogram::Drain() {
  internal::HistogramSlot* slot = histogram_.slot_;
  for (Shard& shard : shards_) {
    if (slot != nullptr) {
      // The registry values are atomics only for cross-invocation
      // safety; this drain runs on the orchestrating thread, merging
      // shards in ascending chunk order.
      slot->sum.fetch_add(shard.sum, std::memory_order_relaxed);
      for (size_t i = 0; i < histogram_buckets::kNumBuckets; ++i) {
        if (shard.buckets[i] != 0) {
          slot->buckets[i].fetch_add(shard.buckets[i],
                                     std::memory_order_relaxed);
        }
      }
    }
    shard = Shard{};
  }
}

Registry& Registry::Global() {
  // Leaked singleton: handles may be read during static destruction (a
  // bench's trace flush, a test's atexit), so the registry must outlive
  // every other static.
  static Registry* registry = new Registry();
  return *registry;
}

internal::CounterSlot* Registry::CounterNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return it->second;
  internal::CounterSlot& slot = counters_.emplace_back();
  slot.name = std::string(name);
  counter_index_.emplace(slot.name, &slot);
  return &slot;
}

internal::GaugeSlot* Registry::GaugeNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return it->second;
  internal::GaugeSlot& slot = gauges_.emplace_back();
  slot.name = std::string(name);
  gauge_index_.emplace(slot.name, &slot);
  return &slot;
}

internal::HistogramSlot* Registry::HistogramNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return it->second;
  internal::HistogramSlot& slot = histograms_.emplace_back();
  slot.name = std::string(name);
  histogram_index_.emplace(slot.name, &slot);
  return &slot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (internal::CounterSlot& slot : counters_) {
    slot.value.store(0, std::memory_order_relaxed);
  }
  for (internal::GaugeSlot& slot : gauges_) {
    slot.value.store(0.0, std::memory_order_relaxed);
  }
  for (internal::HistogramSlot& slot : histograms_) {
    slot.sum.store(0, std::memory_order_relaxed);
    for (auto& bucket : slot.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<std::pair<std::string, uint64_t>> Registry::CounterSnapshot()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(counters_.size());
    for (const internal::CounterSlot& slot : counters_) {
      out.emplace_back(slot.name,
                       slot.value.load(std::memory_order_relaxed));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::GaugeSnapshot() const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(gauges_.size());
    for (const internal::GaugeSlot& slot : gauges_) {
      out.emplace_back(slot.name,
                       slot.value.load(std::memory_order_relaxed));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<HistogramData> Registry::HistogramSnapshot() const {
  std::vector<HistogramData> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(histograms_.size());
    for (const internal::HistogramSlot& slot : histograms_) {
      out.push_back(ReadSlot(slot));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramData& a, const HistogramData& b) {
              return a.name < b.name;
            });
  return out;
}

uint64_t Registry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counter_index_.find(name);
  if (it == counter_index_.end()) return 0;
  return it->second->value.load(std::memory_order_relaxed);
}

HistogramData Registry::HistogramValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histogram_index_.find(name);
  if (it == histogram_index_.end()) {
    HistogramData empty;
    empty.name = std::string(name);
    empty.buckets.resize(histogram_buckets::kNumBuckets);
    return empty;
  }
  return ReadSlot(*it->second);
}

Counter::Counter(std::string_view name)
    : slot_(Registry::Global().CounterNamed(name)) {}

const std::string& Counter::name() const {
  return slot_ != nullptr ? slot_->name : EmptyName();
}

Gauge::Gauge(std::string_view name)
    : slot_(Registry::Global().GaugeNamed(name)) {}

const std::string& Gauge::name() const {
  return slot_ != nullptr ? slot_->name : EmptyName();
}

Histogram::Histogram(std::string_view name)
    : slot_(Registry::Global().HistogramNamed(name)) {}

const std::string& Histogram::name() const {
  return slot_ != nullptr ? slot_->name : EmptyName();
}

}  // namespace dmt::obs
