#include "obs/metrics.h"

#include <algorithm>

namespace dmt::obs {

namespace {

const std::string& EmptyName() {
  static const std::string empty;
  return empty;
}

}  // namespace

Registry& Registry::Global() {
  // Leaked singleton: handles may be read during static destruction (a
  // bench's trace flush, a test's atexit), so the registry must outlive
  // every other static.
  static Registry* registry = new Registry();
  return *registry;
}

internal::CounterSlot* Registry::CounterNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return it->second;
  internal::CounterSlot& slot = counters_.emplace_back();
  slot.name = std::string(name);
  counter_index_.emplace(slot.name, &slot);
  return &slot;
}

internal::GaugeSlot* Registry::GaugeNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return it->second;
  internal::GaugeSlot& slot = gauges_.emplace_back();
  slot.name = std::string(name);
  gauge_index_.emplace(slot.name, &slot);
  return &slot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (internal::CounterSlot& slot : counters_) {
    slot.value.store(0, std::memory_order_relaxed);
  }
  for (internal::GaugeSlot& slot : gauges_) {
    slot.value.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<std::pair<std::string, uint64_t>> Registry::CounterSnapshot()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(counters_.size());
    for (const internal::CounterSlot& slot : counters_) {
      out.emplace_back(slot.name,
                       slot.value.load(std::memory_order_relaxed));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::GaugeSnapshot() const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(gauges_.size());
    for (const internal::GaugeSlot& slot : gauges_) {
      out.emplace_back(slot.name,
                       slot.value.load(std::memory_order_relaxed));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t Registry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counter_index_.find(name);
  if (it == counter_index_.end()) return 0;
  return it->second->value.load(std::memory_order_relaxed);
}

Counter::Counter(std::string_view name)
    : slot_(Registry::Global().CounterNamed(name)) {}

const std::string& Counter::name() const {
  return slot_ != nullptr ? slot_->name : EmptyName();
}

Gauge::Gauge(std::string_view name)
    : slot_(Registry::Global().GaugeNamed(name)) {}

const std::string& Gauge::name() const {
  return slot_ != nullptr ? slot_->name : EmptyName();
}

}  // namespace dmt::obs
