#include "obs/expose.h"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "obs/metrics.h"

namespace dmt::obs {

namespace {

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

// Upper-bound label for bucket `index`: the bound in decimal, or "+Inf"
// for the overflow bucket. Shared by both renderings so the JSON bucket
// keys and the Prometheus `le` labels agree.
std::string BoundLabel(size_t index) {
  if (index >= histogram_buckets::kNumBuckets - 1) return "+Inf";
  std::string label;
  AppendUint(&label, histogram_buckets::BucketUpperBound(index));
  return label;
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "dmt_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string RenderPrometheusText() {
  Registry& registry = Registry::Global();
  std::string out;
  for (const auto& [name, value] : registry.CounterSnapshot()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    AppendUint(&out, value);
    out += "\n";
  }
  for (const auto& [name, value] : registry.GaugeSnapshot()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    AppendDouble(&out, value);
    out += "\n";
  }
  for (const HistogramData& hist : registry.HistogramSnapshot()) {
    const std::string prom = PrometheusName(hist.name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      bool overflow = i + 1 == hist.buckets.size();
      if (hist.buckets[i] == 0 && !overflow) continue;  // elide empties
      cumulative += hist.buckets[i];
      out += prom + "_bucket{le=\"" + BoundLabel(i) + "\"} ";
      AppendUint(&out, overflow ? hist.count : cumulative);
      out += "\n";
    }
    out += prom + "_sum ";
    AppendUint(&out, hist.sum);
    out += "\n" + prom + "_count ";
    AppendUint(&out, hist.count);
    out += "\n";
  }
  return out;
}

std::string RenderJsonSnapshot() {
  Registry& registry = Registry::Global();
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : registry.CounterSnapshot()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": ";
    AppendUint(&out, value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : registry.GaugeSnapshot()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": ";
    AppendDouble(&out, value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const HistogramData& hist : registry.HistogramSnapshot()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + hist.name + "\": {\"count\": ";
    AppendUint(&out, hist.count);
    out += ", \"sum\": ";
    AppendUint(&out, hist.sum);
    out += ", \"mean\": ";
    AppendDouble(&out, hist.Mean());
    out += ", \"p50\": ";
    AppendUint(&out, hist.Percentile(50));
    out += ", \"p90\": ";
    AppendUint(&out, hist.Percentile(90));
    out += ", \"p99\": ";
    AppendUint(&out, hist.Percentile(99));
    out += ", \"buckets\": {";
    bool first_bucket = true;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "\"" + BoundLabel(i) + "\": ";
      AppendUint(&out, hist.buckets[i]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

}  // namespace dmt::obs
