// Deterministic metrics registry: named Counter/Gauge handles backed by a
// process-global registry, so every algorithm reports work through one
// schema instead of ad-hoc side channels.
//
// Determinism contract (the PR-1 contract, applied to metrics): counter
// totals must be bit-identical at every thread count. Counters are
// therefore bumped either (a) on the orchestrating thread from
// chunk-invariant quantities, or (b) through a ShardedCounter whose
// per-chunk slots are merged in ascending chunk order after the pool
// barrier — never concurrently from inside chunk bodies. The slots
// themselves are plain (non-atomic) integers because each chunk owns its
// slot exclusively; the registry values are atomics only so that
// independent algorithm invocations on different application threads
// remain race-free.
//
// The existing public stats fields (MiningResult work counters,
// ClusteringResult::distance_computations, TreeBuildStats::
// split_scan_rows) are views over these registry counters: the algorithm
// publishes its merged tallies to the registry and fills the field from a
// CounterDelta read, so the registry is the source of truth and no public
// API changes.
#ifndef DMT_OBS_METRICS_H_
#define DMT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dmt::obs {

namespace internal {

struct CounterSlot {
  std::string name;
  std::atomic<uint64_t> value{0};
};

struct GaugeSlot {
  std::string name;
  std::atomic<double> value{0.0};
};

}  // namespace internal

/// Handle to one named registry counter. Cheap to copy; a
/// default-constructed handle is a no-op sink. Handles stay valid for the
/// process lifetime (registry slots are never deallocated or moved).
class Counter {
 public:
  Counter() = default;
  /// Registers (or looks up) the counter named `name` in the global
  /// registry. One mutex-guarded hash lookup — construct once per
  /// algorithm invocation, not inside hot loops.
  explicit Counter(std::string_view name);

  void Add(uint64_t delta) {
    if (slot_ != nullptr) {
      slot_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void Increment() { Add(1); }

  uint64_t value() const {
    return slot_ != nullptr ? slot_->value.load(std::memory_order_relaxed)
                            : 0;
  }

  /// The registered name, or "" for a default-constructed handle.
  const std::string& name() const;

 private:
  internal::CounterSlot* slot_ = nullptr;
};

/// Handle to one named registry gauge (a last-written value, e.g. a
/// configuration knob or a final quality number).
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(std::string_view name);

  void Set(double value) {
    if (slot_ != nullptr) {
      slot_->value.store(value, std::memory_order_relaxed);
    }
  }
  double value() const {
    return slot_ != nullptr ? slot_->value.load(std::memory_order_relaxed)
                            : 0.0;
  }
  const std::string& name() const;

 private:
  internal::GaugeSlot* slot_ = nullptr;
};

/// Snapshot of a counter at construction; Value() returns what has been
/// added since. Algorithms use this to fill their public stats fields
/// from the registry (the "view" half of the contract) without being
/// confused by earlier runs' contributions.
class CounterDelta {
 public:
  explicit CounterDelta(const Counter& counter)
      : counter_(counter), start_(counter.value()) {}

  uint64_t Value() const { return counter_.value() - start_; }

 private:
  Counter counter_;
  uint64_t start_;
};

/// Per-chunk counter shards for parallel sections. Chunk bodies bump
/// their own slot with plain integer arithmetic (the chunk owns the slot,
/// so no synchronization is involved); Drain() folds the slots into the
/// registry counter in ascending chunk order after the pool barrier —
/// the fixed merge order of the determinism contract. Reusable across
/// parallel regions: Drain() zeroes the slots.
class ShardedCounter {
 public:
  ShardedCounter(Counter counter, size_t num_chunks)
      : counter_(counter), shards_(num_chunks > 0 ? num_chunks : 1, 0) {}

  /// The chunk-owned slot. Valid only between construction/Drain() and
  /// the next Drain(); must not be touched after the owning chunk's task
  /// finished.
  void Add(size_t chunk, uint64_t delta) { shards_[chunk] += delta; }

  /// Merges every shard into the registry counter in ascending chunk
  /// order and resets the shards. Call from the orchestrating thread
  /// after the parallel region's barrier.
  void Drain() {
    for (uint64_t& shard : shards_) {
      counter_.Add(shard);
      shard = 0;
    }
  }

  size_t num_shards() const { return shards_.size(); }

 private:
  Counter counter_;
  std::vector<uint64_t> shards_;
};

/// Process-global registry of named counters and gauges.
class Registry {
 public:
  static Registry& Global();

  /// Zeroes every value (registrations and handles stay valid). Tests
  /// call this between runs to compare absolute totals.
  void Reset();

  /// All counters as (name, value), sorted by name — the deterministic
  /// order every serialization uses.
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;
  /// All gauges as (name, value), sorted by name.
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;

  /// Value of the counter named `name`, or 0 if never registered.
  uint64_t CounterValue(std::string_view name) const;

 private:
  friend class Counter;
  friend class Gauge;

  internal::CounterSlot* CounterNamed(std::string_view name);
  internal::GaugeSlot* GaugeNamed(std::string_view name);

  mutable std::mutex mutex_;
  // Deques never relocate elements, so handles hold stable pointers.
  std::deque<internal::CounterSlot> counters_;
  std::deque<internal::GaugeSlot> gauges_;
  std::unordered_map<std::string_view, internal::CounterSlot*>
      counter_index_;
  std::unordered_map<std::string_view, internal::GaugeSlot*> gauge_index_;
};

}  // namespace dmt::obs

#endif  // DMT_OBS_METRICS_H_
