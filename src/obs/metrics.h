// Deterministic metrics registry: named Counter/Gauge handles backed by a
// process-global registry, so every algorithm reports work through one
// schema instead of ad-hoc side channels.
//
// Determinism contract (the PR-1 contract, applied to metrics): counter
// totals must be bit-identical at every thread count. Counters are
// therefore bumped either (a) on the orchestrating thread from
// chunk-invariant quantities, or (b) through a ShardedCounter whose
// per-chunk slots are merged in ascending chunk order after the pool
// barrier — never concurrently from inside chunk bodies. The slots
// themselves are plain (non-atomic) integers because each chunk owns its
// slot exclusively; the registry values are atomics only so that
// independent algorithm invocations on different application threads
// remain race-free.
//
// The existing public stats fields (MiningResult work counters,
// ClusteringResult::distance_computations, TreeBuildStats::
// split_scan_rows) are views over these registry counters: the algorithm
// publishes its merged tallies to the registry and fills the field from a
// CounterDelta read, so the registry is the source of truth and no public
// API changes.
#ifndef DMT_OBS_METRICS_H_
#define DMT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dmt::obs {

/// Fixed log-spaced bucket layout shared by every Histogram. The layout
/// is part of the determinism contract: bucket boundaries are compile-time
/// constants, so identical sample multisets produce identical bucket
/// arrays on every machine and at every thread count.
///
/// Values are unsigned integers (the serving layer records microseconds):
///   - buckets 0..16 are exact, one value each (upper bound == index);
///   - above 16, each power-of-two octave (16·2^o, 32·2^o] splits into 8
///     equal sub-buckets, bounding relative error by 1/16 = 6.25%;
///   - 32 octaves reach 2^36 µs (≈ 19 hours); one final overflow bucket
///     catches everything larger.
namespace histogram_buckets {

inline constexpr size_t kLinearBuckets = 17;  // upper bounds 0, 1, .. 16
inline constexpr size_t kOctaves = 32;
inline constexpr size_t kStepsPerOctave = 8;
inline constexpr size_t kNumBuckets =
    kLinearBuckets + kOctaves * kStepsPerOctave + 1;  // +1 overflow

/// Index of the bucket whose range contains `value`.
constexpr size_t BucketIndex(uint64_t value) {
  if (value < kLinearBuckets) return static_cast<size_t>(value);
  // value >= 17, so bit_width(value - 1) >= 5; octave o covers
  // (16·2^o, 32·2^o].
  int octave = std::bit_width(value - 1) - 5;
  if (octave >= static_cast<int>(kOctaves)) return kNumBuckets - 1;
  uint64_t base = uint64_t{16} << octave;  // exclusive lower bound
  uint64_t step = uint64_t{2} << octave;   // sub-bucket width
  return kLinearBuckets + static_cast<size_t>(octave) * kStepsPerOctave +
         static_cast<size_t>((value - base - 1) / step);
}

/// Inclusive upper bound of bucket `index`; UINT64_MAX for the overflow
/// bucket.
constexpr uint64_t BucketUpperBound(size_t index) {
  if (index < kLinearBuckets) return index;
  if (index >= kNumBuckets - 1) return UINT64_MAX;
  size_t rel = index - kLinearBuckets;
  size_t octave = rel / kStepsPerOctave;
  size_t sub = rel % kStepsPerOctave;
  return (uint64_t{16} << octave) + (uint64_t{2} << octave) * (sub + 1);
}

}  // namespace histogram_buckets

namespace internal {

struct CounterSlot {
  std::string name;
  std::atomic<uint64_t> value{0};
};

struct GaugeSlot {
  std::string name;
  std::atomic<double> value{0.0};
};

struct HistogramSlot {
  std::string name;
  std::atomic<uint64_t> sum{0};  // sum of recorded values
  std::array<std::atomic<uint64_t>, histogram_buckets::kNumBuckets>
      buckets{};
};

}  // namespace internal

/// Handle to one named registry counter. Cheap to copy; a
/// default-constructed handle is a no-op sink. Handles stay valid for the
/// process lifetime (registry slots are never deallocated or moved).
class Counter {
 public:
  Counter() = default;
  /// Registers (or looks up) the counter named `name` in the global
  /// registry. One mutex-guarded hash lookup — construct once per
  /// algorithm invocation, not inside hot loops.
  explicit Counter(std::string_view name);

  void Add(uint64_t delta) {
    if (slot_ != nullptr) {
      slot_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void Increment() { Add(1); }

  uint64_t value() const {
    return slot_ != nullptr ? slot_->value.load(std::memory_order_relaxed)
                            : 0;
  }

  /// The registered name, or "" for a default-constructed handle.
  const std::string& name() const;

 private:
  internal::CounterSlot* slot_ = nullptr;
};

/// Handle to one named registry gauge (a last-written value, e.g. a
/// configuration knob or a final quality number).
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(std::string_view name);

  void Set(double value) {
    if (slot_ != nullptr) {
      slot_->value.store(value, std::memory_order_relaxed);
    }
  }
  double value() const {
    return slot_ != nullptr ? slot_->value.load(std::memory_order_relaxed)
                            : 0.0;
  }
  const std::string& name() const;

 private:
  internal::GaugeSlot* slot_ = nullptr;
};

/// Point-in-time copy of one histogram's state. `count` is derived from
/// the bucket array at snapshot time, so `count == Σ buckets[i]` holds by
/// construction even when the snapshot races concurrent Record() calls
/// (`sum` is read separately and may trail by in-flight samples).
struct HistogramData {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Per-bucket (non-cumulative) sample counts; size
  /// histogram_buckets::kNumBuckets.
  std::vector<uint64_t> buckets;

  /// Nearest-rank percentile readout: the inclusive upper bound of the
  /// bucket holding the sample of rank ceil(p/100 · count). A pure
  /// function of the bucket counts, so deterministic whenever they are.
  /// Returns 0 for an empty histogram; UINT64_MAX if the rank falls in
  /// the overflow bucket. `p` is clamped to (0, 100].
  uint64_t Percentile(double p) const;

  /// sum / count, or 0.0 for an empty histogram. Unlike Percentile this
  /// uses the exact sample sum, not bucket bounds.
  double Mean() const;
};

/// Handle to one named registry histogram of unsigned integer samples
/// (by convention microseconds for latency metrics). Same lifetime and
/// cost model as Counter: cheap to copy, default-constructed handles are
/// no-op sinks, slots live for the process lifetime.
///
/// Record() is race-free from any thread (relaxed atomic adds), and the
/// final bucket array is a pure function of the recorded multiset — so
/// histograms of deterministic quantities (work shapes, element counts)
/// are bit-identical at every thread count even when recorded
/// concurrently. Inside chunk-parallel regions, use ShardedHistogram to
/// keep the single-writer discipline of the PR-1 contract.
class Histogram {
 public:
  Histogram() = default;
  /// Registers (or looks up) the histogram named `name`. One
  /// mutex-guarded hash lookup — construct outside hot loops.
  explicit Histogram(std::string_view name);

  void Record(uint64_t value) {
    if (slot_ == nullptr) return;
    slot_->sum.fetch_add(value, std::memory_order_relaxed);
    slot_->buckets[histogram_buckets::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Current state (count derived from buckets; see HistogramData).
  /// Default-constructed handles return empty data.
  HistogramData Data() const;

  const std::string& name() const;

 private:
  friend class ShardedHistogram;

  internal::HistogramSlot* slot_ = nullptr;
};

/// Per-chunk histogram shards for parallel sections — the ShardedCounter
/// pattern applied to distributions. Chunk bodies record into their own
/// plain (non-atomic) slot; Drain() folds the slots into the registry
/// histogram in ascending chunk order after the pool barrier. Reusable
/// across parallel regions: Drain() zeroes the slots.
class ShardedHistogram {
 public:
  ShardedHistogram(Histogram histogram, size_t num_chunks);

  /// Records `value` into chunk `chunk`'s slot. Valid only between
  /// construction/Drain() and the next Drain(); must not be touched
  /// after the owning chunk's task finished.
  void Record(size_t chunk, uint64_t value) {
    Shard& shard = shards_[chunk];
    shard.sum += value;
    shard.buckets[histogram_buckets::BucketIndex(value)] += 1;
  }

  /// Merges every shard into the registry histogram in ascending chunk
  /// order and resets the shards. Call from the orchestrating thread
  /// after the parallel region's barrier.
  void Drain();

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    uint64_t sum = 0;
    std::array<uint64_t, histogram_buckets::kNumBuckets> buckets{};
  };

  Histogram histogram_;
  std::vector<Shard> shards_;
};

/// Snapshot of a counter at construction; Value() returns what has been
/// added since. Algorithms use this to fill their public stats fields
/// from the registry (the "view" half of the contract) without being
/// confused by earlier runs' contributions.
class CounterDelta {
 public:
  explicit CounterDelta(const Counter& counter)
      : counter_(counter), start_(counter.value()) {}

  uint64_t Value() const { return counter_.value() - start_; }

 private:
  Counter counter_;
  uint64_t start_;
};

/// Per-chunk counter shards for parallel sections. Chunk bodies bump
/// their own slot with plain integer arithmetic (the chunk owns the slot,
/// so no synchronization is involved); Drain() folds the slots into the
/// registry counter in ascending chunk order after the pool barrier —
/// the fixed merge order of the determinism contract. Reusable across
/// parallel regions: Drain() zeroes the slots.
class ShardedCounter {
 public:
  ShardedCounter(Counter counter, size_t num_chunks)
      : counter_(counter), shards_(num_chunks > 0 ? num_chunks : 1, 0) {}

  /// The chunk-owned slot. Valid only between construction/Drain() and
  /// the next Drain(); must not be touched after the owning chunk's task
  /// finished.
  void Add(size_t chunk, uint64_t delta) { shards_[chunk] += delta; }

  /// Merges every shard into the registry counter in ascending chunk
  /// order and resets the shards. Call from the orchestrating thread
  /// after the parallel region's barrier.
  void Drain() {
    for (uint64_t& shard : shards_) {
      counter_.Add(shard);
      shard = 0;
    }
  }

  size_t num_shards() const { return shards_.size(); }

 private:
  Counter counter_;
  std::vector<uint64_t> shards_;
};

/// Process-global registry of named counters and gauges.
class Registry {
 public:
  static Registry& Global();

  /// Zeroes every value (registrations and handles stay valid). Tests
  /// call this between runs to compare absolute totals.
  void Reset();

  /// All counters as (name, value), sorted by name — the deterministic
  /// order every serialization uses.
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;
  /// All gauges as (name, value), sorted by name.
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;
  /// All histograms, sorted by name.
  std::vector<HistogramData> HistogramSnapshot() const;

  /// Value of the counter named `name`, or 0 if never registered.
  uint64_t CounterValue(std::string_view name) const;
  /// State of the histogram named `name`; empty data if never registered.
  HistogramData HistogramValue(std::string_view name) const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  internal::CounterSlot* CounterNamed(std::string_view name);
  internal::GaugeSlot* GaugeNamed(std::string_view name);
  internal::HistogramSlot* HistogramNamed(std::string_view name);

  mutable std::mutex mutex_;
  // Deques never relocate elements, so handles hold stable pointers.
  std::deque<internal::CounterSlot> counters_;
  std::deque<internal::GaugeSlot> gauges_;
  std::deque<internal::HistogramSlot> histograms_;
  std::unordered_map<std::string_view, internal::CounterSlot*>
      counter_index_;
  std::unordered_map<std::string_view, internal::GaugeSlot*> gauge_index_;
  std::unordered_map<std::string_view, internal::HistogramSlot*>
      histogram_index_;
};

}  // namespace dmt::obs

#endif  // DMT_OBS_METRICS_H_
