#include "obs/log.h"

#include <cstdarg>
#include <cstdio>

namespace dmt::obs {

namespace internal {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "[I]";
    case LogSeverity::kWarning:
      return "[W]";
    case LogSeverity::kError:
      return "[E]";
    case LogSeverity::kFatal:
      return "[F]";
  }
  return "[?]";
}

}  // namespace internal

void Log(LogSeverity severity, const char* format, ...) {
  // One fprintf per part keeps the line assembly allocation-free; the
  // prefix/message interleaving risk under concurrent logging is no worse
  // than the raw fprintf calls this helper replaced.
  std::fprintf(stderr, "dmt %s ", internal::SeverityTag(severity));
  std::va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace dmt::obs
