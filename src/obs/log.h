// Minimal severity-prefixed logging for library diagnostics. Every message
// the library writes to stderr goes through obs::Log so error output has
// one format: "dmt [<severity>] <message>\n". This header sits below
// core/ in the layering (core/check.h and core/status.cc route through
// it), so it must not include any dmt header.
#ifndef DMT_OBS_LOG_H_
#define DMT_OBS_LOG_H_

namespace dmt::obs {

enum class LogSeverity {
  kInfo,
  kWarning,
  kError,
  /// Fatal messages report unrecoverable programming errors; the caller
  /// is expected to abort right after logging (obs::Log never aborts
  /// itself, so call sites keep control of the termination path).
  kFatal,
};

/// printf-style log line to stderr with a severity prefix.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void Log(LogSeverity severity, const char* format, ...);

namespace internal {

/// The "[I]" / "[W]" / "[E]" / "[F]" tag used in the line prefix
/// (exposed for tests).
const char* SeverityTag(LogSeverity severity);

}  // namespace internal
}  // namespace dmt::obs

#endif  // DMT_OBS_LOG_H_
