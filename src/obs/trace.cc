#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/timer.h"
#include "obs/log.h"

namespace dmt::obs {

namespace {

/// One steady timebase for the whole trace; every ts is relative to it.
const core::WallTimer& ProcessEpoch() {
  static const core::WallTimer epoch;
  return epoch;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceSink& TraceSink::Global() {
  // Function-local static (not leaked): the destructor flushes the trace
  // at process exit, which is how DMT_TRACE=<path> runs get their file
  // without any explicit Stop() call.
  static TraceSink sink;
  return sink;
}

TraceSink::TraceSink() {
  ProcessEpoch();  // pin the timebase before the first span
  const char* env = std::getenv("DMT_TRACE");
  if (env != nullptr && env[0] != '\0') {
    Start(env);
  }
}

TraceSink::~TraceSink() {
  enabled_.store(false, std::memory_order_relaxed);
  Flush();
}

void TraceSink::Start(std::string path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = std::move(path);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSink::StartCollection() {
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSink::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
  Flush();
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

void TraceSink::Record(internal::TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceSink::RecordManual(
    const char* name, double ts_us, double dur_us,
    std::vector<std::pair<std::string, uint64_t>> args) {
  if (!enabled()) return;
  internal::TraceEvent event;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = ThreadId();
  event.args = std::move(args);
  Record(std::move(event));
}

uint32_t TraceSink::ThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double TraceSink::EpochSeconds() const {
  return ProcessEpoch().ElapsedSeconds();
}

size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

uint64_t TraceSink::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<SpanAggregate> TraceSink::Aggregates() const {
  std::map<std::string, SpanAggregate> by_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const internal::TraceEvent& event : events_) {
      SpanAggregate& agg = by_name[event.name];
      ++agg.count;
      agg.wall_ms += event.dur_us * 1e-3;
      agg.cpu_ms += event.cpu_us * 1e-3;
    }
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) {
    agg.name = name;
    out.push_back(std::move(agg));
  }
  return out;
}

void TraceSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    Log(LogSeverity::kError, "cannot write trace to '%s'", path_.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"displayTimeUnit\": \"ms\",\n"
               "  \"traceEvents\": [");
  for (size_t i = 0; i < events_.size(); ++i) {
    const internal::TraceEvent& e = events_[i];
    // Chrome "complete" events: ts/dur in microseconds; tdur carries the
    // span's CPU time so viewers show both clocks.
    std::fprintf(f,
                 "%s\n    {\"name\": \"%s\", \"cat\": \"dmt\", "
                 "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                 "\"ts\": %.3f, \"dur\": %.3f, \"tdur\": %.3f",
                 i == 0 ? "" : ",", JsonEscape(e.name).c_str(), e.tid,
                 e.ts_us, e.dur_us, e.cpu_us);
    if (!e.args.empty()) {
      std::fprintf(f, ", \"args\": {");
      for (size_t a = 0; a < e.args.size(); ++a) {
        std::fprintf(f, "%s\"%s\": %llu", a == 0 ? "" : ", ",
                     JsonEscape(e.args[a].first).c_str(),
                     static_cast<unsigned long long>(e.args[a].second));
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ],\n  \"dmtCounters\": {");
  auto counters = Registry::Global().CounterSnapshot();
  for (size_t i = 0; i < counters.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                 JsonEscape(counters[i].first).c_str(),
                 static_cast<unsigned long long>(counters[i].second));
  }
  std::fprintf(f, "\n  },\n  \"dmtDroppedEvents\": %llu\n}\n",
               static_cast<unsigned long long>(dropped_));
  std::fclose(f);
}

#ifndef DMT_OBS_DISABLED

Span::Span(const char* name)
    : name_(name), active_(TraceSink::Global().enabled()) {
  if (!active_) return;
  start_wall_us_ = TraceSink::Global().EpochSeconds() * 1e6;
  start_cpu_us_ = core::CpuTimer::Now() * 1e6;
}

Span::~Span() {
  if (!active_) return;
  TraceSink& sink = TraceSink::Global();
  internal::TraceEvent event;
  event.name = name_;
  event.ts_us = start_wall_us_;
  event.dur_us = sink.EpochSeconds() * 1e6 - start_wall_us_;
  event.cpu_us = core::CpuTimer::Now() * 1e6 - start_cpu_us_;
  event.tid = sink.ThreadId();
  event.args = std::move(args_);
  for (const auto& [counter, start] : attached_) {
    event.args.emplace_back(counter.name(), counter.value() - start);
  }
  sink.Record(std::move(event));
}

void Span::AddArg(const char* key, uint64_t value) {
  if (!active_) return;
  args_.emplace_back(key, value);
}

void Span::AttachCounter(const Counter& counter) {
  if (!active_) return;
  attached_.emplace_back(counter, counter.value());
}

#endif  // DMT_OBS_DISABLED

}  // namespace dmt::obs
