#include "tree/discretize.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <span>

#include "core/string_util.h"

namespace dmt::tree {

using core::AttributeType;
using core::Dataset;
using core::DatasetBuilder;
using core::Result;
using core::Status;

namespace {

/// Maps each value to the index of the last boundary <= value, clamped to
/// [0, bins-1]. `boundaries` holds the lower edges of bins 1..bins-1.
uint32_t BinOf(double value, const std::vector<double>& boundaries) {
  auto it = std::upper_bound(boundaries.begin(), boundaries.end(), value);
  return static_cast<uint32_t>(it - boundaries.begin());
}

Result<Dataset> DiscretizeWith(
    const Dataset& data, size_t bins,
    const std::function<std::vector<double>(std::span<const double>)>&
        make_boundaries) {
  if (bins < 2) {
    return Status::InvalidArgument("bins must be >= 2");
  }
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot discretize an empty dataset");
  }
  DatasetBuilder builder;
  for (size_t a = 0; a < data.num_attributes(); ++a) {
    const auto& attr = data.attribute(a);
    if (attr.type == AttributeType::kCategorical) {
      std::vector<uint32_t> codes(data.CategoricalColumn(a).begin(),
                                  data.CategoricalColumn(a).end());
      builder.AddCategoricalColumn(attr.name, std::move(codes),
                                   attr.categories);
      continue;
    }
    auto column = data.NumericColumn(a);
    std::vector<double> boundaries = make_boundaries(column);
    std::vector<uint32_t> codes;
    codes.reserve(column.size());
    for (double value : column) codes.push_back(BinOf(value, boundaries));
    std::vector<std::string> names;
    names.reserve(boundaries.size() + 1);
    for (size_t b = 0; b <= boundaries.size(); ++b) {
      std::string lo = b == 0 ? "-inf"
                              : core::StrFormat("%.4g", boundaries[b - 1]);
      std::string hi = b == boundaries.size()
                           ? "+inf"
                           : core::StrFormat("%.4g", boundaries[b]);
      names.push_back("[" + lo + "," + hi + ")");
    }
    builder.AddCategoricalColumn(attr.name, std::move(codes),
                                 std::move(names));
  }
  std::vector<uint32_t> labels(data.labels().begin(), data.labels().end());
  builder.SetLabels(std::move(labels), data.class_names());
  return builder.Build();
}

}  // namespace

Result<Dataset> EqualWidthDiscretize(const Dataset& data, size_t bins) {
  return DiscretizeWith(
      data, bins, [bins](std::span<const double> column) {
        double lo = column[0], hi = column[0];
        for (double v : column) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        std::vector<double> boundaries;
        if (hi > lo) {
          double width = (hi - lo) / static_cast<double>(bins);
          for (size_t b = 1; b < bins; ++b) {
            boundaries.push_back(lo + width * static_cast<double>(b));
          }
        }
        return boundaries;  // empty for constant columns: single bin
      });
}

Result<Dataset> EqualFrequencyDiscretize(const Dataset& data, size_t bins) {
  return DiscretizeWith(
      data, bins, [bins](std::span<const double> column) {
        std::vector<double> sorted(column.begin(), column.end());
        std::sort(sorted.begin(), sorted.end());
        std::vector<double> boundaries;
        for (size_t b = 1; b < bins; ++b) {
          size_t index = b * sorted.size() / bins;
          double boundary = sorted[std::min(index, sorted.size() - 1)];
          if (boundaries.empty() || boundary > boundaries.back()) {
            boundaries.push_back(boundary);
          }
        }
        return boundaries;
      });
}

}  // namespace dmt::tree
