// Numeric-attribute discretization, for algorithms that handle only
// categorical data (faithful ID3, categorical naive Bayes).
#ifndef DMT_TREE_DISCRETIZE_H_
#define DMT_TREE_DISCRETIZE_H_

#include "core/dataset.h"
#include "core/status.h"

namespace dmt::tree {

/// Replaces every numeric attribute with a categorical one of `bins`
/// equal-width intervals over the attribute's observed range (category
/// names like "[20,35)"). Categorical attributes and labels pass through
/// unchanged.
core::Result<core::Dataset> EqualWidthDiscretize(const core::Dataset& data,
                                                 size_t bins);

/// Equal-frequency variant: bin boundaries at the empirical quantiles, so
/// each bin holds roughly num_rows/bins values.
core::Result<core::Dataset> EqualFrequencyDiscretize(
    const core::Dataset& data, size_t bins);

}  // namespace dmt::tree

#endif  // DMT_TREE_DISCRETIZE_H_
