#include "tree/builder.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/check.h"
#include "core/parallel.h"
#include "core/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::tree {

using core::AttributeType;
using core::Dataset;
using core::Result;
using core::Status;

Status TreeOptions::Validate() const {
  if (min_samples_split < 2) {
    return Status::InvalidArgument("min_samples_split must be >= 2");
  }
  if (min_gain < 0.0) {
    return Status::InvalidArgument("min_gain must be >= 0");
  }
  return Status::OK();
}

namespace {

/// Nodes smaller than this scan their attributes on the calling thread
/// even when a pool exists: dispatching chunk tasks costs more than the
/// scan itself. The grown tree is identical either way (the cutoff depends
/// only on the node size, never on scheduling).
constexpr size_t kParallelMinRows = 256;

/// A chosen split for one node.
struct BestSplit {
  double score = -1.0;
  uint32_t attribute = 0;
  SplitKind kind = SplitKind::kNumericThreshold;
  double threshold = 0.0;
  uint32_t category = 0;
};

/// Everything one node needs for split search: its rows (ascending row id
/// — partitions preserve the parent's order, and the root is the identity)
/// and, on the presorted engine, its view of every numeric attribute's
/// presorted row order. Children derive their orders by a stable one-pass
/// partition of the parent's arrays, so the invariant "order[a] = the
/// node's rows sorted by (value, row id)" holds at every node without
/// ever re-sorting.
struct Workset {
  std::vector<uint32_t> rows;
  std::vector<std::vector<uint32_t>> order;
};

/// Per-chunk scan state: the chunk's best candidate, its work tally, and
/// reusable histogram buffers so the hot sweeps never allocate (the same
/// scratch-hoisting treatment Eclat's intersections got in PR 2).
struct ScanScratch {
  BestSplit best;
  uint64_t scan_rows = 0;
  std::vector<uint32_t> left;      // num_classes
  std::vector<uint32_t> right;     // num_classes
  std::vector<uint32_t> best_left; // num_classes
  std::vector<uint32_t> flat;      // child-major categorical histograms
  std::vector<uint32_t> sizes;     // partition sizes for SplitScoreFlat
  std::vector<uint32_t> sort_buf;  // naive engine's per-node sort
};

/// Builder state shared across the recursion.
class TreeBuilderImpl {
 public:
  TreeBuilderImpl(const Dataset& data, const TreeOptions& options)
      : data_(data), options_(options), ctx_(options.num_threads) {
    const size_t num_classes = data_.num_classes();
    size_t max_categories = 2;
    for (size_t a = 0; a < data_.num_attributes(); ++a) {
      if (data_.attribute(a).type == AttributeType::kCategorical) {
        max_categories =
            std::max(max_categories, data_.attribute(a).num_categories());
      }
    }
    scratch_.resize(
        std::max<size_t>(1, ctx_.NumChunks(data_.num_attributes())));
    for (ScanScratch& s : scratch_) {
      s.left.resize(num_classes);
      s.right.resize(num_classes);
      s.best_left.resize(num_classes);
      s.flat.resize(max_categories * num_classes);
      s.sizes.resize(max_categories);
    }
    row_child_.resize(data_.num_rows());
  }

  DecisionTree Build(TreeBuildStats* stats) {
    obs::Counter scan_rows_counter("tree/greedy/split_scan_rows");
    obs::Counter nodes_counter("tree/greedy/nodes");
    const obs::CounterDelta scan_rows_delta(scan_rows_counter);
    obs::Span build_span("tree/greedy/build");
    build_span.AttachCounter(scan_rows_counter);
    build_span.AttachCounter(nodes_counter);

    DecisionTree tree;
    // Capture rendering metadata.
    for (size_t a = 0; a < data_.num_attributes(); ++a) {
      internal::TreeAccess::AttributeNames(tree).push_back(
          data_.attribute(a).name);
      internal::TreeAccess::AttributeCategories(tree).push_back(
          data_.attribute(a).categories);
    }
    internal::TreeAccess::ClassNames(tree) = data_.class_names();
    Workset root;
    root.rows.resize(data_.num_rows());
    std::iota(root.rows.begin(), root.rows.end(), 0u);
    if (options_.split_search == SplitSearch::kPresorted) {
      obs::Span presort_span("tree/greedy/presort");
      Presort(&root);
    }
    {
      obs::Span grow_span("tree/greedy/grow");
      Grow(&tree, std::move(root), 0);
    }
    // Publish the per-chunk scan tallies in ascending chunk order (the
    // determinism contract's merge order) and read the public stats field
    // back through the registry.
    for (const ScanScratch& s : scratch_) scan_rows_counter.Add(s.scan_rows);
    nodes_counter.Add(internal::TreeAccess::Nodes(tree).size());
    if (stats != nullptr) {
      stats->split_scan_rows = scan_rows_delta.Value();
    }
    return tree;
  }

 private:
  bool ScansNumeric(size_t attribute) const {
    return data_.attribute(attribute).type == AttributeType::kNumeric &&
           options_.allow_numeric_splits;
  }

  /// One-time presort of every numeric attribute into a row-index array
  /// under the (value, row id) total order, so the arrays are identical
  /// across standard libraries, and so is every derived per-node order.
  /// Sorting materialized (value, id) pairs — whose lexicographic `<` is
  /// exactly that order — keeps the comparator's reads contiguous instead
  /// of gathering through the column, which is what makes the one-time
  /// sort cheap enough to amortize at the root.
  void Presort(Workset* root) {
    const size_t num_attributes = data_.num_attributes();
    const size_t n = data_.num_rows();
    root->order.resize(num_attributes);
    ctx_.ForEachChunk(num_attributes, [&](size_t, size_t begin, size_t end) {
      std::vector<std::pair<double, uint32_t>> keyed(n);
      for (size_t a = begin; a < end; ++a) {
        if (!ScansNumeric(a)) continue;
        auto column = data_.NumericColumn(a);
        for (size_t i = 0; i < n; ++i) {
          keyed[i] = {column[i], static_cast<uint32_t>(i)};
        }
        std::sort(keyed.begin(), keyed.end());
        std::vector<uint32_t>& order = root->order[a];
        order.resize(n);
        for (size_t i = 0; i < n; ++i) order[i] = keyed[i].second;
      }
    });
  }

  std::vector<uint32_t> CountClasses(std::span<const uint32_t> rows) const {
    std::vector<uint32_t> counts(data_.num_classes(), 0);
    for (uint32_t row : rows) ++counts[data_.Label(row)];
    return counts;
  }

  static uint32_t Majority(std::span<const uint32_t> counts) {
    uint32_t best = 0;
    for (uint32_t c = 1; c < counts.size(); ++c) {
      if (counts[c] > counts[best]) best = c;
    }
    return best;
  }

  /// Evaluates the best threshold split on a numeric attribute, given the
  /// node's rows already sorted by (value, row id).
  void ScanNumericSorted(std::span<const uint32_t> sorted,
                         uint32_t attribute,
                         std::span<const uint32_t> parent_counts,
                         ScanScratch* s) const {
    s->scan_rows += sorted.size();
    auto column = data_.NumericColumn(attribute);
    std::fill(s->left.begin(), s->left.end(), 0u);
    std::copy(parent_counts.begin(), parent_counts.end(), s->right.begin());
    // C4.5 caveat: gain ratio rewards extremely lopsided thresholds (tiny
    // split information inflates the ratio), so the threshold is chosen by
    // raw gain and only the chosen threshold is scored with the requested
    // criterion (Quinlan's own remedy).
    const SplitCriterion scan_criterion =
        options_.criterion == SplitCriterion::kGainRatio
            ? SplitCriterion::kInformationGain
            : options_.criterion;
    const BinarySplitScorer scorer(scan_criterion, parent_counts);
    const size_t n = sorted.size();
    double best_gain = -1.0;
    double best_threshold = 0.0;
    // Each row's value is gathered once and carried into the next
    // iteration as the boundary's left side.
    double next_value = n != 0 ? column[sorted[0]] : 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      uint32_t label = data_.Label(sorted[i]);
      ++s->left[label];
      --s->right[label];
      double left_value = next_value;
      next_value = column[sorted[i + 1]];
      if (left_value == next_value) continue;  // no boundary here
      double gain = scorer.Score(s->left, i + 1, s->right, n - (i + 1));
      if (gain > best_gain) {
        best_gain = gain;
        best_threshold = left_value + (next_value - left_value) / 2.0;
        std::copy(s->left.begin(), s->left.end(), s->best_left.begin());
      }
    }
    if (best_gain < 0.0) return;
    double score = best_gain;
    if (options_.criterion == SplitCriterion::kGainRatio) {
      for (size_t cls = 0; cls < s->right.size(); ++cls) {
        s->right[cls] = parent_counts[cls] - s->best_left[cls];
      }
      score = SplitScoreBinary(SplitCriterion::kGainRatio, parent_counts,
                               s->best_left, s->right);
    }
    if (score > s->best.score) {
      // Assign every field: the scratch candidate is reused across
      // attributes, and a stale category/threshold from a previous kind
      // would leak into the tree and vary with the chunking.
      s->best.score = score;
      s->best.attribute = attribute;
      s->best.kind = SplitKind::kNumericThreshold;
      s->best.threshold = best_threshold;
      s->best.category = 0;
    }
  }

  /// Evaluates a categorical attribute (multiway or best binary equals).
  void ScanCategorical(std::span<const uint32_t> rows, uint32_t attribute,
                       std::span<const uint32_t> parent_counts,
                       ScanScratch* s) const {
    s->scan_rows += rows.size();
    const size_t num_classes = data_.num_classes();
    const size_t num_categories =
        data_.attribute(attribute).num_categories();
    auto column = data_.CategoricalColumn(attribute);
    std::span<uint32_t> flat(s->flat.data(), num_categories * num_classes);
    std::fill(flat.begin(), flat.end(), 0u);
    for (uint32_t row : rows) {
      ++flat[column[row] * num_classes + data_.Label(row)];
    }
    if (options_.categorical_style == CategoricalSplitStyle::kMultiway) {
      double score = SplitScoreFlat(options_.criterion, parent_counts, flat,
                                    num_classes, s->sizes);
      if (score > s->best.score) {
        s->best.score = score;
        s->best.attribute = attribute;
        s->best.kind = SplitKind::kCategoricalMultiway;
        s->best.threshold = 0.0;
        s->best.category = 0;
      }
      return;
    }
    // Binary: try category == c for every c present among the rows.
    const BinarySplitScorer scorer(options_.criterion, parent_counts);
    for (uint32_t c = 0; c < num_categories; ++c) {
      std::span<const uint32_t> left =
          flat.subspan(c * num_classes, num_classes);
      uint64_t in_category = 0;
      for (uint32_t count : left) in_category += count;
      if (in_category == 0 || in_category == rows.size()) continue;
      for (size_t cls = 0; cls < num_classes; ++cls) {
        s->right[cls] = parent_counts[cls] - left[cls];
      }
      double score = scorer.Score(left, in_category, s->right,
                                  rows.size() - in_category);
      if (score > s->best.score) {
        s->best.score = score;
        s->best.attribute = attribute;
        s->best.kind = SplitKind::kCategoricalEquals;
        s->best.threshold = 0.0;
        s->best.category = c;
      }
    }
  }

  void ScanAttribute(const Workset& ws, uint32_t attribute,
                     std::span<const uint32_t> parent_counts,
                     ScanScratch* s) const {
    if (data_.attribute(attribute).type == AttributeType::kNumeric) {
      if (!options_.allow_numeric_splits) return;
      std::span<const uint32_t> sorted;
      if (options_.split_search == SplitSearch::kPresorted) {
        sorted = ws.order[attribute];
      } else {
        auto column = data_.NumericColumn(attribute);
        s->sort_buf.assign(ws.rows.begin(), ws.rows.end());
        std::sort(s->sort_buf.begin(), s->sort_buf.end(),
                  [&](uint32_t a, uint32_t b) {
                    return column[a] != column[b] ? column[a] < column[b]
                                                  : a < b;
                  });
        sorted = s->sort_buf;
      }
      ScanNumericSorted(sorted, attribute, parent_counts, s);
    } else {
      ScanCategorical(ws.rows, attribute, parent_counts, s);
    }
  }

  /// Scans every attribute — chunk-parallel on large nodes — and returns
  /// the winning candidate. Chunks are contiguous attribute ranges and the
  /// per-chunk winners merge in ascending chunk order under the serial
  /// strict-improvement comparison, so ties keep the lowest attribute and
  /// any thread count reproduces the serial tree bit for bit.
  BestSplit FindBestSplit(const Workset& ws,
                          std::span<const uint32_t> parent_counts) {
    const size_t num_attributes = data_.num_attributes();
    if (!ctx_.parallel() || ws.rows.size() < kParallelMinRows) {
      ScanScratch& s = scratch_[0];
      s.best = BestSplit{};
      for (uint32_t a = 0; a < num_attributes; ++a) {
        ScanAttribute(ws, a, parent_counts, &s);
      }
      return s.best;
    }
    const size_t chunks = ctx_.NumChunks(num_attributes);
    for (size_t c = 0; c < chunks; ++c) scratch_[c].best = BestSplit{};
    ctx_.ForEachChunk(
        num_attributes, [&](size_t chunk, size_t begin, size_t end) {
          ScanScratch& s = scratch_[chunk];
          for (size_t a = begin; a < end; ++a) {
            ScanAttribute(ws, static_cast<uint32_t>(a), parent_counts, &s);
          }
        });
    BestSplit best;
    for (size_t c = 0; c < chunks; ++c) {
      if (scratch_[c].best.score > best.score) best = scratch_[c].best;
    }
    return best;
  }

  uint32_t Grow(DecisionTree* tree, Workset ws, size_t depth) {
    auto& nodes = internal::TreeAccess::Nodes(*tree);
    const uint32_t node_index = static_cast<uint32_t>(nodes.size());
    nodes.emplace_back();
    {
      TreeNode& node = nodes[node_index];
      node.class_counts = CountClasses(ws.rows);
      node.majority_class = Majority(node.class_counts);
    }
    // No node is appended between here and the child creation below, so a
    // span over the arena-held histogram stays valid through split search
    // and partitioning.
    std::span<const uint32_t> parent_counts = nodes[node_index].class_counts;

    // Stopping conditions: purity, size, depth.
    bool pure = false;
    for (uint32_t count : parent_counts) {
      if (count == ws.rows.size()) pure = true;
    }
    if (pure || ws.rows.size() < options_.min_samples_split ||
        (options_.max_depth != 0 && depth >= options_.max_depth)) {
      return node_index;
    }

    BestSplit best = FindBestSplit(ws, parent_counts);
    if (best.score < options_.min_gain) return node_index;

    // Route every row of the node to its child once; the same marks drive
    // the row partition and the attribute-order partitions.
    const size_t num_children =
        best.kind == SplitKind::kCategoricalMultiway
            ? data_.attribute(best.attribute).num_categories()
            : 2;
    child_sizes_.assign(num_children, 0);
    switch (best.kind) {
      case SplitKind::kCategoricalMultiway: {
        auto column = data_.CategoricalColumn(best.attribute);
        for (uint32_t row : ws.rows) {
          row_child_[row] = column[row];
          ++child_sizes_[column[row]];
        }
        break;
      }
      case SplitKind::kCategoricalEquals: {
        auto column = data_.CategoricalColumn(best.attribute);
        for (uint32_t row : ws.rows) {
          uint32_t child = column[row] == best.category ? 0 : 1;
          row_child_[row] = child;
          ++child_sizes_[child];
        }
        break;
      }
      case SplitKind::kNumericThreshold: {
        auto column = data_.NumericColumn(best.attribute);
        for (uint32_t row : ws.rows) {
          uint32_t child = column[row] <= best.threshold ? 0 : 1;
          row_child_[row] = child;
          ++child_sizes_[child];
        }
        break;
      }
    }

    // A degenerate split (all rows one side) can slip through multiway
    // scoring when only one category is populated; keep the node a leaf.
    size_t non_empty = 0;
    for (size_t size : child_sizes_) {
      if (size != 0) ++non_empty;
    }
    if (non_empty < 2) return node_index;

    // Derive the child worksets by stable one-pass partitions of the
    // parent's arrays, then release the parent before recursing so live
    // memory along the recursion path stays bounded by the node sizes.
    std::vector<Workset> children(num_children);
    for (size_t c = 0; c < num_children; ++c) {
      children[c].rows.reserve(child_sizes_[c]);
    }
    for (uint32_t row : ws.rows) {
      children[row_child_[row]].rows.push_back(row);
    }
    if (options_.split_search == SplitSearch::kPresorted) {
      const size_t num_attributes = data_.num_attributes();
      for (Workset& child : children) child.order.resize(num_attributes);
      auto partition_attribute = [&](size_t a) {
        if (!ScansNumeric(a)) return;
        for (size_t c = 0; c < num_children; ++c) {
          children[c].order[a].reserve(child_sizes_[c]);
        }
        for (uint32_t row : ws.order[a]) {
          children[row_child_[row]].order[a].push_back(row);
        }
      };
      if (ctx_.parallel() && ws.rows.size() >= kParallelMinRows) {
        ctx_.ForEachChunk(num_attributes,
                          [&](size_t, size_t begin, size_t end) {
                            for (size_t a = begin; a < end; ++a) {
                              partition_attribute(a);
                            }
                          });
      } else {
        for (size_t a = 0; a < num_attributes; ++a) partition_attribute(a);
      }
    }
    ws = Workset{};

    {
      TreeNode& node = nodes[node_index];
      node.is_leaf = false;
      node.kind = best.kind;
      node.attribute = best.attribute;
      node.threshold = best.threshold;
      node.category = best.category;
    }
    std::vector<uint32_t> child_ids;
    child_ids.reserve(num_children);
    for (Workset& child : children) {
      if (child.rows.empty()) {
        // Empty branch: a leaf inheriting the parent's majority (C4.5's
        // convention for unseen categories).
        uint32_t leaf_index = static_cast<uint32_t>(nodes.size());
        nodes.emplace_back();
        TreeNode& leaf = nodes[leaf_index];
        leaf.class_counts.assign(data_.num_classes(), 0);
        leaf.majority_class = nodes[node_index].majority_class;
        child_ids.push_back(leaf_index);
      } else {
        child_ids.push_back(Grow(tree, std::move(child), depth + 1));
      }
    }
    nodes[node_index].children = std::move(child_ids);
    return node_index;
  }

  const Dataset& data_;
  const TreeOptions& options_;
  core::ParallelContext ctx_;
  std::vector<ScanScratch> scratch_;
  /// Child index of every routed row; consumed before each recursion, so
  /// one arena-wide array serves the whole tree.
  std::vector<uint32_t> row_child_;
  std::vector<size_t> child_sizes_;
};

}  // namespace

Result<DecisionTree> BuildTree(const Dataset& data,
                               const TreeOptions& options,
                               TreeBuildStats* stats) {
  DMT_RETURN_NOT_OK(options.Validate());
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot grow a tree on an empty dataset");
  }
  if (data.num_classes() == 0) {
    return Status::InvalidArgument("dataset has no classes");
  }
  if (!options.allow_numeric_splits) {
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      if (data.attribute(a).type == AttributeType::kNumeric) {
        return Status::InvalidArgument(core::StrFormat(
            "attribute '%s' is numeric but numeric splits are disabled "
            "(discretize first, e.g. EqualWidthDiscretize)",
            data.attribute(a).name.c_str()));
      }
    }
  }
  TreeBuilderImpl builder(data, options);
  return builder.Build(stats);
}

Result<DecisionTree> BuildId3(const Dataset& data, TreeOptions options) {
  options.criterion = SplitCriterion::kInformationGain;
  options.categorical_style = CategoricalSplitStyle::kMultiway;
  options.allow_numeric_splits = false;
  return BuildTree(data, options);
}

Result<DecisionTree> BuildC45(const Dataset& data, TreeOptions options) {
  options.criterion = SplitCriterion::kGainRatio;
  options.categorical_style = CategoricalSplitStyle::kMultiway;
  options.allow_numeric_splits = true;
  return BuildTree(data, options);
}

Result<DecisionTree> BuildCart(const Dataset& data, TreeOptions options) {
  options.criterion = SplitCriterion::kGini;
  options.categorical_style = CategoricalSplitStyle::kBinary;
  options.allow_numeric_splits = true;
  return BuildTree(data, options);
}

}  // namespace dmt::tree
