#include "tree/builder.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/string_util.h"

namespace dmt::tree {

using core::AttributeType;
using core::Dataset;
using core::Result;
using core::Status;

Status TreeOptions::Validate() const {
  if (min_samples_split < 2) {
    return Status::InvalidArgument("min_samples_split must be >= 2");
  }
  if (min_gain < 0.0) {
    return Status::InvalidArgument("min_gain must be >= 0");
  }
  return Status::OK();
}

namespace {

/// A chosen split for one node.
struct BestSplit {
  double score = -1.0;
  uint32_t attribute = 0;
  SplitKind kind = SplitKind::kNumericThreshold;
  double threshold = 0.0;
  uint32_t category = 0;
};

/// Builder state shared across the recursion.
class TreeBuilderImpl {
 public:
  TreeBuilderImpl(const Dataset& data, const TreeOptions& options)
      : data_(data), options_(options) {}

  DecisionTree Build() {
    DecisionTree tree;
    // Capture rendering metadata.
    for (size_t a = 0; a < data_.num_attributes(); ++a) {
      internal::TreeAccess::AttributeNames(tree).push_back(
          data_.attribute(a).name);
      internal::TreeAccess::AttributeCategories(tree).push_back(
          data_.attribute(a).categories);
    }
    internal::TreeAccess::ClassNames(tree) = data_.class_names();
    std::vector<size_t> rows(data_.num_rows());
    std::iota(rows.begin(), rows.end(), size_t{0});
    Grow(&tree, rows, 0);
    return tree;
  }

 private:
  std::vector<uint32_t> CountClasses(std::span<const size_t> rows) const {
    std::vector<uint32_t> counts(data_.num_classes(), 0);
    for (size_t row : rows) ++counts[data_.Label(row)];
    return counts;
  }

  static uint32_t Majority(std::span<const uint32_t> counts) {
    uint32_t best = 0;
    for (uint32_t c = 1; c < counts.size(); ++c) {
      if (counts[c] > counts[best]) best = c;
    }
    return best;
  }

  /// Evaluates the best threshold split on a numeric attribute.
  void ScanNumeric(std::span<const size_t> rows, uint32_t attribute,
                   std::span<const uint32_t> parent_counts,
                   BestSplit* best) const {
    // Sort rows by value, then sweep the boundary between distinct values.
    std::vector<size_t> sorted(rows.begin(), rows.end());
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return data_.Numeric(a, attribute) < data_.Numeric(b, attribute);
    });
    std::vector<std::vector<uint32_t>> child_counts(2);
    child_counts[0].assign(data_.num_classes(), 0);
    child_counts[1].assign(parent_counts.begin(), parent_counts.end());
    // C4.5 caveat: gain ratio rewards extremely lopsided thresholds (tiny
    // split information inflates the ratio), so the threshold is chosen by
    // raw gain and only the chosen threshold is scored with the requested
    // criterion (Quinlan's own remedy).
    const SplitCriterion scan_criterion =
        options_.criterion == SplitCriterion::kGainRatio
            ? SplitCriterion::kInformationGain
            : options_.criterion;
    double best_gain = -1.0;
    double best_threshold = 0.0;
    std::vector<uint32_t> best_left;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      uint32_t label = data_.Label(sorted[i]);
      ++child_counts[0][label];
      --child_counts[1][label];
      double left_value = data_.Numeric(sorted[i], attribute);
      double right_value = data_.Numeric(sorted[i + 1], attribute);
      if (left_value == right_value) continue;  // no boundary here
      double gain =
          SplitScore(scan_criterion, parent_counts, child_counts);
      if (gain > best_gain) {
        best_gain = gain;
        best_threshold = left_value + (right_value - left_value) / 2.0;
        best_left = child_counts[0];
      }
    }
    if (best_gain < 0.0) return;
    double score = best_gain;
    if (options_.criterion == SplitCriterion::kGainRatio) {
      std::vector<std::vector<uint32_t>> chosen(2);
      chosen[0] = best_left;
      chosen[1].assign(data_.num_classes(), 0);
      for (size_t cls = 0; cls < chosen[1].size(); ++cls) {
        chosen[1][cls] = parent_counts[cls] - best_left[cls];
      }
      score = SplitScore(SplitCriterion::kGainRatio, parent_counts, chosen);
    }
    if (score > best->score) {
      best->score = score;
      best->attribute = attribute;
      best->kind = SplitKind::kNumericThreshold;
      best->threshold = best_threshold;
    }
  }

  /// Evaluates a categorical attribute (multiway or best binary equals).
  void ScanCategorical(std::span<const size_t> rows, uint32_t attribute,
                       std::span<const uint32_t> parent_counts,
                       BestSplit* best) const {
    const size_t num_categories =
        data_.attribute(attribute).num_categories();
    std::vector<std::vector<uint32_t>> per_category(
        num_categories, std::vector<uint32_t>(data_.num_classes(), 0));
    for (size_t row : rows) {
      ++per_category[data_.Categorical(row, attribute)][data_.Label(row)];
    }
    if (options_.categorical_style == CategoricalSplitStyle::kMultiway) {
      double score =
          SplitScore(options_.criterion, parent_counts, per_category);
      if (score > best->score) {
        best->score = score;
        best->attribute = attribute;
        best->kind = SplitKind::kCategoricalMultiway;
      }
      return;
    }
    // Binary: try category == c for every c present among the rows.
    std::vector<std::vector<uint32_t>> child_counts(2);
    for (uint32_t c = 0; c < num_categories; ++c) {
      uint64_t in_category = 0;
      for (uint32_t count : per_category[c]) in_category += count;
      if (in_category == 0 || in_category == rows.size()) continue;
      child_counts[0] = per_category[c];
      child_counts[1].assign(data_.num_classes(), 0);
      for (size_t cls = 0; cls < child_counts[1].size(); ++cls) {
        child_counts[1][cls] = parent_counts[cls] - per_category[c][cls];
      }
      double score =
          SplitScore(options_.criterion, parent_counts, child_counts);
      if (score > best->score) {
        best->score = score;
        best->attribute = attribute;
        best->kind = SplitKind::kCategoricalEquals;
        best->category = c;
      }
    }
  }

  uint32_t Grow(DecisionTree* tree, std::span<const size_t> rows,
                size_t depth) {
    const uint32_t node_index =
        static_cast<uint32_t>(internal::TreeAccess::Nodes(*tree).size());
    internal::TreeAccess::Nodes(*tree).emplace_back();
    {
      TreeNode& node = internal::TreeAccess::Nodes(*tree)[node_index];
      node.class_counts = CountClasses(rows);
      node.majority_class = Majority(node.class_counts);
    }
    const std::vector<uint32_t> parent_counts =
        internal::TreeAccess::Nodes(*tree)[node_index].class_counts;

    // Stopping conditions: purity, size, depth.
    bool pure = false;
    for (uint32_t count : parent_counts) {
      if (count == rows.size()) pure = true;
    }
    if (pure || rows.size() < options_.min_samples_split ||
        (options_.max_depth != 0 && depth >= options_.max_depth)) {
      return node_index;
    }

    BestSplit best;
    for (uint32_t a = 0; a < data_.num_attributes(); ++a) {
      if (data_.attribute(a).type == AttributeType::kNumeric) {
        if (options_.allow_numeric_splits) {
          ScanNumeric(rows, a, parent_counts, &best);
        }
      } else {
        ScanCategorical(rows, a, parent_counts, &best);
      }
    }
    if (best.score < options_.min_gain) return node_index;

    // Partition rows among children.
    std::vector<std::vector<size_t>> partitions;
    switch (best.kind) {
      case SplitKind::kCategoricalMultiway:
        partitions.resize(
            data_.attribute(best.attribute).num_categories());
        for (size_t row : rows) {
          partitions[data_.Categorical(row, best.attribute)].push_back(row);
        }
        break;
      case SplitKind::kCategoricalEquals:
        partitions.resize(2);
        for (size_t row : rows) {
          partitions[data_.Categorical(row, best.attribute) ==
                             best.category
                         ? 0
                         : 1]
              .push_back(row);
        }
        break;
      case SplitKind::kNumericThreshold:
        partitions.resize(2);
        for (size_t row : rows) {
          partitions[data_.Numeric(row, best.attribute) <= best.threshold
                         ? 0
                         : 1]
              .push_back(row);
        }
        break;
    }

    // A degenerate split (all rows one side) can slip through multiway
    // scoring when only one category is populated; keep the node a leaf.
    size_t non_empty = 0;
    for (const auto& partition : partitions) {
      if (!partition.empty()) ++non_empty;
    }
    if (non_empty < 2) return node_index;

    {
      TreeNode& node = internal::TreeAccess::Nodes(*tree)[node_index];
      node.is_leaf = false;
      node.kind = best.kind;
      node.attribute = best.attribute;
      node.threshold = best.threshold;
      node.category = best.category;
    }
    std::vector<uint32_t> children;
    children.reserve(partitions.size());
    for (const auto& partition : partitions) {
      if (partition.empty()) {
        // Empty branch: a leaf inheriting the parent's majority (C4.5's
        // convention for unseen categories).
        uint32_t leaf_index = static_cast<uint32_t>(internal::TreeAccess::Nodes(*tree).size());
        internal::TreeAccess::Nodes(*tree).emplace_back();
        TreeNode& leaf = internal::TreeAccess::Nodes(*tree)[leaf_index];
        leaf.class_counts.assign(data_.num_classes(), 0);
        leaf.majority_class = internal::TreeAccess::Nodes(*tree)[node_index].majority_class;
        children.push_back(leaf_index);
      } else {
        children.push_back(Grow(tree, partition, depth + 1));
      }
    }
    internal::TreeAccess::Nodes(*tree)[node_index].children = std::move(children);
    return node_index;
  }

  const Dataset& data_;
  const TreeOptions& options_;
};

}  // namespace

Result<DecisionTree> BuildTree(const Dataset& data,
                               const TreeOptions& options) {
  DMT_RETURN_NOT_OK(options.Validate());
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot grow a tree on an empty dataset");
  }
  if (data.num_classes() == 0) {
    return Status::InvalidArgument("dataset has no classes");
  }
  if (!options.allow_numeric_splits) {
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      if (data.attribute(a).type == AttributeType::kNumeric) {
        return Status::InvalidArgument(core::StrFormat(
            "attribute '%s' is numeric but numeric splits are disabled "
            "(discretize first, e.g. EqualWidthDiscretize)",
            data.attribute(a).name.c_str()));
      }
    }
  }
  TreeBuilderImpl builder(data, options);
  return builder.Build();
}

Result<DecisionTree> BuildId3(const Dataset& data, TreeOptions options) {
  options.criterion = SplitCriterion::kInformationGain;
  options.categorical_style = CategoricalSplitStyle::kMultiway;
  options.allow_numeric_splits = false;
  return BuildTree(data, options);
}

Result<DecisionTree> BuildC45(const Dataset& data, TreeOptions options) {
  options.criterion = SplitCriterion::kGainRatio;
  options.categorical_style = CategoricalSplitStyle::kMultiway;
  options.allow_numeric_splits = true;
  return BuildTree(data, options);
}

Result<DecisionTree> BuildCart(const Dataset& data, TreeOptions options) {
  options.criterion = SplitCriterion::kGini;
  options.categorical_style = CategoricalSplitStyle::kBinary;
  options.allow_numeric_splits = true;
  return BuildTree(data, options);
}

}  // namespace dmt::tree
