// SLIQ-style scalable decision-tree induction (Mehta, Agrawal & Rissanen,
// EDBT'96): numeric attributes are sorted ONCE into attribute lists; the
// tree grows breadth-first, and one scan of each attribute list per level
// evaluates the candidate splits of every open leaf simultaneously via a
// class list mapping rows to their current leaves. Equivalent splits to
// CART (Gini, binary), but without the per-node re-sorting.
#ifndef DMT_TREE_SLIQ_H_
#define DMT_TREE_SLIQ_H_

#include "core/dataset.h"
#include "core/status.h"
#include "tree/decision_tree.h"

namespace dmt::tree {

/// SLIQ induction limits (same semantics as TreeOptions).
struct SliqOptions {
  size_t min_samples_split = 2;
  size_t max_depth = 0;
  double min_gain = 1e-9;

  core::Status Validate() const;
};

/// Grows a CART-equivalent (Gini, binary splits) tree breadth-first with
/// presorted attribute lists. Produces the same DecisionTree type as the
/// recursive builders.
core::Result<DecisionTree> BuildSliq(const core::Dataset& data,
                                     const SliqOptions& options = {});

}  // namespace dmt::tree

#endif  // DMT_TREE_SLIQ_H_
