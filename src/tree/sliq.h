// SLIQ-style scalable decision-tree induction (Mehta, Agrawal & Rissanen,
// EDBT'96): numeric attributes are sorted ONCE into attribute lists; the
// tree grows breadth-first, and one scan of each attribute list per level
// evaluates the candidate splits of every open leaf simultaneously via a
// class list mapping rows to their current leaves. Equivalent splits to
// CART (Gini, binary), but without the per-node re-sorting.
#ifndef DMT_TREE_SLIQ_H_
#define DMT_TREE_SLIQ_H_

#include "core/dataset.h"
#include "core/status.h"
#include "tree/decision_tree.h"

namespace dmt::tree {

/// SLIQ induction limits (same semantics as TreeOptions).
struct SliqOptions {
  size_t min_samples_split = 2;
  size_t max_depth = 0;
  double min_gain = 1e-9;
  /// Worker threads for the per-attribute list scans; 0 (default) or 1 =
  /// serial. Threaded runs grow bit-identical trees: attribute lists are
  /// scanned in contiguous attribute chunks and each open leaf's candidate
  /// splits merge in attribute order with the serial tie-breaking.
  size_t num_threads = 0;

  core::Status Validate() const;
};

/// Grows a CART-equivalent (Gini, binary splits) tree breadth-first with
/// presorted attribute lists. Produces the same DecisionTree type as the
/// recursive builders. When `stats` is non-null it receives the
/// split-search work counters (active-row visits of the list scans).
core::Result<DecisionTree> BuildSliq(const core::Dataset& data,
                                     const SliqOptions& options = {},
                                     TreeBuildStats* stats = nullptr);

}  // namespace dmt::tree

#endif  // DMT_TREE_SLIQ_H_
