// Impurity measures and split-quality criteria for decision-tree induction:
// information gain (ID3), gain ratio (C4.5), Gini index (CART).
#ifndef DMT_TREE_CRITERIA_H_
#define DMT_TREE_CRITERIA_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dmt::tree {

/// Which measure scores candidate splits.
enum class SplitCriterion {
  /// Entropy reduction (ID3).
  kInformationGain,
  /// Information gain normalized by split information (C4.5).
  kGainRatio,
  /// Gini impurity reduction (CART).
  kGini,
};

/// Shannon entropy (bits) of a class-count histogram.
double Entropy(std::span<const uint32_t> class_counts);

/// Gini impurity 1 - sum p_i^2 of a class-count histogram.
double GiniImpurity(std::span<const uint32_t> class_counts);

/// Impurity under the given criterion (entropy for both gain flavours).
double Impurity(SplitCriterion criterion,
                std::span<const uint32_t> class_counts);

/// Split information: entropy of the partition sizes (C4.5 denominator).
double SplitInformation(std::span<const uint32_t> partition_sizes);

/// Scores a candidate partition of `parent_counts` into children.
/// `child_counts[c]` is the class histogram of child c. Returns the
/// criterion value (higher is better); gain ratio returns 0 when the split
/// information vanishes.
double SplitScore(SplitCriterion criterion,
                  std::span<const uint32_t> parent_counts,
                  const std::vector<std::vector<uint32_t>>& child_counts);

}  // namespace dmt::tree

#endif  // DMT_TREE_CRITERIA_H_
