// Impurity measures and split-quality criteria for decision-tree induction:
// information gain (ID3), gain ratio (C4.5), Gini index (CART).
#ifndef DMT_TREE_CRITERIA_H_
#define DMT_TREE_CRITERIA_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dmt::tree {

/// Which measure scores candidate splits.
enum class SplitCriterion {
  /// Entropy reduction (ID3).
  kInformationGain,
  /// Information gain normalized by split information (C4.5).
  kGainRatio,
  /// Gini impurity reduction (CART).
  kGini,
};

/// Shannon entropy (bits) of a class-count histogram.
double Entropy(std::span<const uint32_t> class_counts);

/// Gini impurity 1 - sum p_i^2 of a class-count histogram.
double GiniImpurity(std::span<const uint32_t> class_counts);

/// Impurity under the given criterion (entropy for both gain flavours).
double Impurity(SplitCriterion criterion,
                std::span<const uint32_t> class_counts);

/// Split information: entropy of the partition sizes (C4.5 denominator).
double SplitInformation(std::span<const uint32_t> partition_sizes);

/// Scores a candidate partition of `parent_counts` into children.
/// `child_counts[c]` is the class histogram of child c. Returns the
/// criterion value (higher is better); gain ratio returns 0 when the split
/// information vanishes.
double SplitScore(SplitCriterion criterion,
                  std::span<const uint32_t> parent_counts,
                  const std::vector<std::vector<uint32_t>>& child_counts);

/// Two-child scorer over caller-owned histograms. Arithmetically identical
/// to SplitScore with child_counts = {left, right} (same operations in the
/// same order, so results agree bit for bit) but performs no allocations:
/// the numeric boundary sweeps call it once per candidate threshold.
double SplitScoreBinary(SplitCriterion criterion,
                        std::span<const uint32_t> parent_counts,
                        std::span<const uint32_t> left_counts,
                        std::span<const uint32_t> right_counts);

/// Multiway scorer over a flat child-major histogram
/// (`flat_child_counts[child * num_classes + cls]`, with
/// `flat_child_counts.size() == num_children * num_classes`).
/// `size_scratch` must hold at least num_children entries and is
/// clobbered with the partition sizes. Arithmetically identical to
/// SplitScore on the equivalent vector-of-vectors, without allocating.
double SplitScoreFlat(SplitCriterion criterion,
                      std::span<const uint32_t> parent_counts,
                      std::span<const uint32_t> flat_child_counts,
                      size_t num_classes, std::span<uint32_t> size_scratch);

/// Repeated-evaluation form of SplitScoreBinary for boundary sweeps: the
/// parent-side terms (total and impurity) are computed once at
/// construction, and Score() takes the child totals the sweep already
/// maintains instead of re-summing the histograms. Score(l, lt, r, rt)
/// returns bit for bit the same value as SplitScoreBinary(criterion,
/// parent, l, r) whenever lt/rt are the true histogram totals — the same
/// operations run in the same order, only hoisted out of the loop.
class BinarySplitScorer {
 public:
  BinarySplitScorer(SplitCriterion criterion,
                    std::span<const uint32_t> parent_counts);

  double Score(std::span<const uint32_t> left_counts, uint64_t left_total,
               std::span<const uint32_t> right_counts,
               uint64_t right_total) const;

 private:
  SplitCriterion criterion_;
  uint64_t parent_total_;
  double parent_impurity_;
};

}  // namespace dmt::tree

#endif  // DMT_TREE_CRITERIA_H_
