// Shared decision-tree representation: a flat node arena with typed splits,
// prediction, introspection, and text/DOT export.
#ifndef DMT_TREE_DECISION_TREE_H_
#define DMT_TREE_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"

namespace dmt::tree {

class DecisionTree;

namespace internal {
/// Builder/pruner back-door to the tree's private storage. Not part of the
/// public API.
struct TreeAccess;
}  // namespace internal

/// How an internal node routes a row.
enum class SplitKind {
  /// One child per category of a categorical attribute.
  kCategoricalMultiway,
  /// Binary: left iff category == `category` (CART-style).
  kCategoricalEquals,
  /// Binary: left iff numeric value <= `threshold`.
  kNumericThreshold,
};

/// One tree node. Leaves predict `majority_class`; internal nodes route by
/// `kind`. Children are indices into the tree's node arena.
struct TreeNode {
  bool is_leaf = true;
  uint32_t majority_class = 0;
  /// Training class histogram at this node (kept for pruning & export).
  std::vector<uint32_t> class_counts;

  SplitKind kind = SplitKind::kNumericThreshold;
  uint32_t attribute = 0;
  double threshold = 0.0;   // kNumericThreshold
  uint32_t category = 0;    // kCategoricalEquals
  std::vector<uint32_t> children;

  /// Training rows reaching this node.
  uint64_t NumSamples() const {
    uint64_t total = 0;
    for (uint32_t c : class_counts) total += c;
    return total;
  }
  /// Misclassified training rows if this node predicted its majority.
  uint64_t NumErrors() const {
    return NumSamples() - class_counts[majority_class];
  }
};

/// Work counters reported by the tree builders (the tree-pillar analogue
/// of ClusteringResult::distance_computations). `split_scan_rows` counts
/// every (row, attribute) visit made while evaluating candidate splits —
/// the numeric boundary sweeps and the categorical histogram passes — and
/// is covered by the determinism contract: it is identical across
/// split-search engines and across num_threads settings.
struct TreeBuildStats {
  uint64_t split_scan_rows = 0;
};

/// A trained classification tree. Nodes live in a flat arena; node 0 is the
/// root.
class DecisionTree {
 public:
  /// Routes one row of `data` to a leaf and returns its class.
  uint32_t Predict(const core::Dataset& data, size_t row) const;

  /// Predicts every row.
  std::vector<uint32_t> PredictAll(const core::Dataset& data) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t NumLeaves() const;
  size_t Depth() const;

  const TreeNode& node(size_t i) const { return nodes_[i]; }
  const TreeNode& root() const { return nodes_[0]; }

  /// Indented human-readable rendering using stored attribute/class names.
  std::string ToText() const;

  /// Graphviz DOT rendering.
  std::string ToDot() const;

  /// Collapses the subtree rooted at `node_index` into a leaf predicting
  /// its majority class (used by pruners; children become unreachable).
  void CollapseToLeaf(size_t node_index);

  /// Drops unreachable nodes left behind by pruning and reindexes.
  void Compact();

 private:
  friend struct internal::TreeAccess;

  size_t DepthBelow(size_t node_index) const;

  std::vector<TreeNode> nodes_;
  /// Names captured from the training schema, for rendering.
  std::vector<std::string> attribute_names_;
  std::vector<std::vector<std::string>> attribute_categories_;
  std::vector<std::string> class_names_;
};

namespace internal {

struct TreeAccess {
  static std::vector<TreeNode>& Nodes(DecisionTree& tree) {
    return tree.nodes_;
  }
  static std::vector<std::string>& AttributeNames(DecisionTree& tree) {
    return tree.attribute_names_;
  }
  static std::vector<std::vector<std::string>>& AttributeCategories(
      DecisionTree& tree) {
    return tree.attribute_categories_;
  }
  static std::vector<std::string>& ClassNames(DecisionTree& tree) {
    return tree.class_names_;
  }
  // Const views for serializers.
  static const std::vector<std::string>& AttributeNames(
      const DecisionTree& tree) {
    return tree.attribute_names_;
  }
  static const std::vector<std::vector<std::string>>& AttributeCategories(
      const DecisionTree& tree) {
    return tree.attribute_categories_;
  }
  static const std::vector<std::string>& ClassNames(
      const DecisionTree& tree) {
    return tree.class_names_;
  }
};

}  // namespace internal

}  // namespace dmt::tree

#endif  // DMT_TREE_DECISION_TREE_H_
