#include "tree/sliq.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/check.h"
#include "tree/criteria.h"

namespace dmt::tree {

using core::AttributeType;
using core::Dataset;
using core::Result;
using core::Status;

Status SliqOptions::Validate() const {
  if (min_samples_split < 2) {
    return Status::InvalidArgument("min_samples_split must be >= 2");
  }
  if (min_gain < 0.0) {
    return Status::InvalidArgument("min_gain must be >= 0");
  }
  return Status::OK();
}

namespace {

constexpr uint32_t kInactive = 0xffffffffu;

/// Best split found for one open leaf during a level.
struct LeafSplit {
  double score = -1.0;
  uint32_t attribute = 0;
  SplitKind kind = SplitKind::kNumericThreshold;
  double threshold = 0.0;
  uint32_t category = 0;
};

/// Per-open-leaf scan state for one numeric attribute-list pass.
struct NumericScanState {
  std::vector<uint32_t> left_counts;
  uint64_t seen = 0;
  double last_value = 0.0;
};

double GiniGain(std::span<const uint32_t> parent,
                std::span<const uint32_t> left) {
  // SplitScore wants explicit child histograms; build the right side.
  std::vector<std::vector<uint32_t>> children(2);
  children[0].assign(left.begin(), left.end());
  children[1].resize(parent.size());
  for (size_t c = 0; c < parent.size(); ++c) {
    children[1][c] = parent[c] - left[c];
  }
  return SplitScore(SplitCriterion::kGini, parent, children);
}

}  // namespace

Result<DecisionTree> BuildSliq(const Dataset& data,
                               const SliqOptions& options) {
  DMT_RETURN_NOT_OK(options.Validate());
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot grow a tree on an empty dataset");
  }
  if (data.num_classes() == 0) {
    return Status::InvalidArgument("dataset has no classes");
  }
  const size_t n = data.num_rows();
  const size_t num_classes = data.num_classes();

  DecisionTree tree;
  auto& nodes = internal::TreeAccess::Nodes(tree);
  for (size_t a = 0; a < data.num_attributes(); ++a) {
    internal::TreeAccess::AttributeNames(tree).push_back(
        data.attribute(a).name);
    internal::TreeAccess::AttributeCategories(tree).push_back(
        data.attribute(a).categories);
  }
  internal::TreeAccess::ClassNames(tree) = data.class_names();

  // Presort every numeric attribute once (the SLIQ attribute lists).
  std::vector<std::vector<uint32_t>> sorted_rows(data.num_attributes());
  for (size_t a = 0; a < data.num_attributes(); ++a) {
    if (data.attribute(a).type != AttributeType::kNumeric) continue;
    auto column = data.NumericColumn(a);
    sorted_rows[a].resize(n);
    std::iota(sorted_rows[a].begin(), sorted_rows[a].end(), 0u);
    std::stable_sort(sorted_rows[a].begin(), sorted_rows[a].end(),
                     [&](uint32_t x, uint32_t y) {
                       return column[x] < column[y];
                     });
  }

  // Class list: every row starts at the root (slot 0 of level 0).
  std::vector<uint32_t> slot_of(n, 0);
  // Level bookkeeping: slot -> tree node id, class histogram, depth.
  nodes.emplace_back();
  std::vector<uint32_t> slot_node = {0};
  std::vector<std::vector<uint32_t>> slot_counts(1);
  slot_counts[0].assign(num_classes, 0);
  for (size_t row = 0; row < n; ++row) ++slot_counts[0][data.Label(row)];
  size_t depth = 0;

  while (!slot_node.empty()) {
    const size_t num_slots = slot_node.size();
    // Finalize majority classes for this level's nodes.
    std::vector<bool> growable(num_slots, true);
    for (size_t s = 0; s < num_slots; ++s) {
      TreeNode& node = nodes[slot_node[s]];
      node.class_counts = slot_counts[s];
      uint32_t best_class = 0;
      uint64_t total = 0;
      for (uint32_t c = 0; c < num_classes; ++c) {
        total += slot_counts[s][c];
        if (slot_counts[s][c] > slot_counts[s][best_class]) best_class = c;
      }
      node.majority_class = best_class;
      bool pure = slot_counts[s][best_class] == total;
      if (pure || total < options.min_samples_split ||
          (options.max_depth != 0 && depth >= options.max_depth)) {
        growable[s] = false;
      }
    }

    // Evaluate splits for every growable slot with one pass per attribute.
    std::vector<LeafSplit> best(num_slots);
    for (uint32_t a = 0; a < data.num_attributes(); ++a) {
      if (data.attribute(a).type == AttributeType::kNumeric) {
        auto column = data.NumericColumn(a);
        std::vector<NumericScanState> scan(num_slots);
        for (size_t s = 0; s < num_slots; ++s) {
          scan[s].left_counts.assign(num_classes, 0);
        }
        for (uint32_t row : sorted_rows[a]) {
          uint32_t s = slot_of[row];
          if (s == kInactive || !growable[s]) continue;
          NumericScanState& state = scan[s];
          double value = column[row];
          if (state.seen > 0 && value > state.last_value) {
            double gain = GiniGain(slot_counts[s], state.left_counts);
            if (gain > best[s].score) {
              best[s].score = gain;
              best[s].attribute = a;
              best[s].kind = SplitKind::kNumericThreshold;
              best[s].threshold =
                  state.last_value + (value - state.last_value) / 2.0;
            }
          }
          ++state.left_counts[data.Label(row)];
          ++state.seen;
          state.last_value = value;
        }
      } else {
        const size_t num_categories = data.attribute(a).num_categories();
        auto column = data.CategoricalColumn(a);
        // Per-slot per-category class histograms in one scan.
        std::vector<std::vector<uint32_t>> histograms(
            num_slots,
            std::vector<uint32_t>(num_categories * num_classes, 0));
        for (size_t row = 0; row < n; ++row) {
          uint32_t s = slot_of[row];
          if (s == kInactive || !growable[s]) continue;
          ++histograms[s][column[row] * num_classes + data.Label(row)];
        }
        std::vector<uint32_t> left(num_classes);
        for (size_t s = 0; s < num_slots; ++s) {
          if (!growable[s]) continue;
          uint64_t slot_total = 0;
          for (uint32_t c = 0; c < num_classes; ++c) {
            slot_total += slot_counts[s][c];
          }
          for (uint32_t v = 0; v < num_categories; ++v) {
            uint64_t in_category = 0;
            for (uint32_t c = 0; c < num_classes; ++c) {
              left[c] = histograms[s][v * num_classes + c];
              in_category += left[c];
            }
            if (in_category == 0 || in_category == slot_total) continue;
            double gain = GiniGain(slot_counts[s], left);
            if (gain > best[s].score) {
              best[s].score = gain;
              best[s].attribute = a;
              best[s].kind = SplitKind::kCategoricalEquals;
              best[s].category = v;
            }
          }
        }
      }
    }

    // Apply the chosen splits: create children, rewrite the class list.
    std::vector<uint32_t> next_slot_node;
    std::vector<std::vector<uint32_t>> next_slot_counts;
    // For each old slot: either (left_slot, right_slot) or kInactive.
    std::vector<std::pair<uint32_t, uint32_t>> slot_children(
        num_slots, {kInactive, kInactive});
    for (size_t s = 0; s < num_slots; ++s) {
      if (!growable[s] || best[s].score < options.min_gain) continue;
      TreeNode& node = nodes[slot_node[s]];
      node.is_leaf = false;
      node.kind = best[s].kind;
      node.attribute = best[s].attribute;
      node.threshold = best[s].threshold;
      node.category = best[s].category;
      uint32_t left_id = static_cast<uint32_t>(nodes.size());
      nodes.emplace_back();
      uint32_t right_id = static_cast<uint32_t>(nodes.size());
      nodes.emplace_back();
      nodes[slot_node[s]].children = {left_id, right_id};
      slot_children[s] = {
          static_cast<uint32_t>(next_slot_node.size()),
          static_cast<uint32_t>(next_slot_node.size() + 1)};
      next_slot_node.push_back(left_id);
      next_slot_node.push_back(right_id);
      next_slot_counts.emplace_back(num_classes, 0);
      next_slot_counts.emplace_back(num_classes, 0);
    }
    // Route rows.
    for (size_t row = 0; row < n; ++row) {
      uint32_t s = slot_of[row];
      if (s == kInactive || slot_children[s].first == kInactive) {
        slot_of[row] = kInactive;
        continue;
      }
      const TreeNode& node = nodes[slot_node[s]];
      bool goes_left =
          node.kind == SplitKind::kNumericThreshold
              ? data.Numeric(row, node.attribute) <= node.threshold
              : data.Categorical(row, node.attribute) == node.category;
      uint32_t next = goes_left ? slot_children[s].first
                                : slot_children[s].second;
      slot_of[row] = next;
      ++next_slot_counts[next][data.Label(row)];
    }
    slot_node = std::move(next_slot_node);
    slot_counts = std::move(next_slot_counts);
    ++depth;
  }
  return tree;
}

}  // namespace dmt::tree
