#include "tree/sliq.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "core/check.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tree/criteria.h"

namespace dmt::tree {

using core::AttributeType;
using core::Dataset;
using core::Result;
using core::Status;

Status SliqOptions::Validate() const {
  if (min_samples_split < 2) {
    return Status::InvalidArgument("min_samples_split must be >= 2");
  }
  if (min_gain < 0.0) {
    return Status::InvalidArgument("min_gain must be >= 0");
  }
  return Status::OK();
}

namespace {

constexpr uint32_t kInactive = 0xffffffffu;

/// Best split found for one open leaf during a level.
struct LeafSplit {
  double score = -1.0;
  uint32_t attribute = 0;
  SplitKind kind = SplitKind::kNumericThreshold;
  double threshold = 0.0;
  uint32_t category = 0;
};

/// Per-chunk level-scan state. One chunk owns a contiguous attribute
/// range; its buffers are reused across attributes and levels so the list
/// scans never allocate inside the level loop (beyond first-touch
/// growth). `best` holds the chunk's per-slot candidates, merged into the
/// level's winners in ascending chunk order after the pool barrier.
struct LevelScratch {
  std::vector<LeafSplit> best;      // num_slots
  std::vector<uint32_t> scan_left;  // num_slots * num_classes (numeric)
  std::vector<uint64_t> seen;       // num_slots
  std::vector<double> last_value;   // num_slots
  std::vector<uint32_t> histogram;  // num_slots * categories * classes
  std::vector<uint32_t> right;      // num_classes
  uint64_t scan_rows = 0;
};

}  // namespace

Result<DecisionTree> BuildSliq(const Dataset& data,
                               const SliqOptions& options,
                               TreeBuildStats* stats) {
  DMT_RETURN_NOT_OK(options.Validate());
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot grow a tree on an empty dataset");
  }
  if (data.num_classes() == 0) {
    return Status::InvalidArgument("dataset has no classes");
  }
  const size_t n = data.num_rows();
  const size_t num_classes = data.num_classes();
  const size_t num_attributes = data.num_attributes();
  core::ParallelContext ctx(options.num_threads);

  obs::Counter scan_rows_counter("tree/sliq/split_scan_rows");
  obs::Counter levels_counter("tree/sliq/levels");
  const obs::CounterDelta scan_rows_delta(scan_rows_counter);
  obs::Span build_span("tree/sliq/build");
  build_span.AttachCounter(scan_rows_counter);
  build_span.AttachCounter(levels_counter);

  DecisionTree tree;
  auto& nodes = internal::TreeAccess::Nodes(tree);
  for (size_t a = 0; a < num_attributes; ++a) {
    internal::TreeAccess::AttributeNames(tree).push_back(
        data.attribute(a).name);
    internal::TreeAccess::AttributeCategories(tree).push_back(
        data.attribute(a).categories);
  }
  internal::TreeAccess::ClassNames(tree) = data.class_names();

  // Presort every numeric attribute once (the SLIQ attribute lists) under
  // the (value, row id) total order — ties broken by row id, so the lists
  // are identical across standard libraries. Materialized (value, id)
  // pairs sort with contiguous comparator reads (lexicographic `<` is
  // exactly that order), and the per-attribute sorts run chunk-parallel.
  std::vector<std::vector<uint32_t>> sorted_rows(num_attributes);
  {
    obs::Span presort_span("tree/sliq/presort");
    ctx.ForEachChunk(num_attributes, [&](size_t, size_t begin, size_t end) {
      std::vector<std::pair<double, uint32_t>> keyed(n);
      for (size_t a = begin; a < end; ++a) {
        if (data.attribute(a).type != AttributeType::kNumeric) continue;
        auto column = data.NumericColumn(a);
        for (size_t i = 0; i < n; ++i) {
          keyed[i] = {column[i], static_cast<uint32_t>(i)};
        }
        std::sort(keyed.begin(), keyed.end());
        sorted_rows[a].resize(n);
        for (size_t i = 0; i < n; ++i) sorted_rows[a][i] = keyed[i].second;
      }
    });
  }

  // Class list: every row starts at the root (slot 0 of level 0).
  std::vector<uint32_t> slot_of(n, 0);
  // Level bookkeeping: slot -> tree node id, class histogram, depth.
  nodes.emplace_back();
  std::vector<uint32_t> slot_node = {0};
  std::vector<std::vector<uint32_t>> slot_counts(1);
  slot_counts[0].assign(num_classes, 0);
  for (size_t row = 0; row < n; ++row) ++slot_counts[0][data.Label(row)];
  size_t depth = 0;

  const size_t num_chunks =
      std::max<size_t>(1, ctx.NumChunks(num_attributes));
  std::vector<LevelScratch> scratch(num_chunks);
  for (LevelScratch& s : scratch) s.right.resize(num_classes);

  while (!slot_node.empty()) {
    obs::Span level_span("tree/sliq/level");
    level_span.AddArg("depth", depth);
    levels_counter.Increment();
    const size_t num_slots = slot_node.size();
    // Finalize majority classes for this level's nodes, and hoist the
    // parent-side split-score terms (totals, impurity) out of the list
    // scans: they are fixed per slot for the whole level.
    std::vector<bool> growable(num_slots, true);
    std::vector<uint64_t> slot_total(num_slots, 0);
    std::vector<BinarySplitScorer> slot_scorer;
    slot_scorer.reserve(num_slots);
    for (size_t s = 0; s < num_slots; ++s) {
      TreeNode& node = nodes[slot_node[s]];
      node.class_counts = slot_counts[s];
      uint32_t best_class = 0;
      uint64_t total = 0;
      for (uint32_t c = 0; c < num_classes; ++c) {
        total += slot_counts[s][c];
        if (slot_counts[s][c] > slot_counts[s][best_class]) best_class = c;
      }
      node.majority_class = best_class;
      slot_total[s] = total;
      slot_scorer.emplace_back(SplitCriterion::kGini, slot_counts[s]);
      bool pure = slot_counts[s][best_class] == total;
      if (pure || total < options.min_samples_split ||
          (options.max_depth != 0 && depth >= options.max_depth)) {
        growable[s] = false;
      }
    }

    // Evaluate splits for every growable slot with one pass per attribute.
    // Attributes are scanned in contiguous chunks (serial mode = one chunk
    // covering all of them); each chunk records per-slot candidates into
    // its own scratch, read-only over slot_of/growable/slot_counts.
    auto scan_attribute = [&](uint32_t a, LevelScratch& scr) {
      if (data.attribute(a).type == AttributeType::kNumeric) {
        auto column = data.NumericColumn(a);
        scr.scan_left.assign(num_slots * num_classes, 0);
        scr.seen.assign(num_slots, 0);
        scr.last_value.assign(num_slots, 0.0);
        for (uint32_t row : sorted_rows[a]) {
          uint32_t s = slot_of[row];
          if (s == kInactive || !growable[s]) continue;
          ++scr.scan_rows;
          std::span<uint32_t> left(scr.scan_left.data() + s * num_classes,
                                   num_classes);
          double value = column[row];
          if (scr.seen[s] > 0 && value > scr.last_value[s]) {
            for (uint32_t c = 0; c < num_classes; ++c) {
              scr.right[c] = slot_counts[s][c] - left[c];
            }
            double gain = slot_scorer[s].Score(
                left, scr.seen[s], scr.right, slot_total[s] - scr.seen[s]);
            if (gain > scr.best[s].score) {
              // Assign every field: the per-slot candidate is reused
              // across this chunk's attributes, and a stale category or
              // threshold from a previous kind would vary with chunking.
              scr.best[s].score = gain;
              scr.best[s].attribute = a;
              scr.best[s].kind = SplitKind::kNumericThreshold;
              scr.best[s].threshold =
                  scr.last_value[s] + (value - scr.last_value[s]) / 2.0;
              scr.best[s].category = 0;
            }
          }
          ++left[data.Label(row)];
          ++scr.seen[s];
          scr.last_value[s] = value;
        }
      } else {
        const size_t num_categories = data.attribute(a).num_categories();
        auto column = data.CategoricalColumn(a);
        // Per-slot per-category class histograms in one scan.
        scr.histogram.assign(num_slots * num_categories * num_classes, 0);
        for (size_t row = 0; row < n; ++row) {
          uint32_t s = slot_of[row];
          if (s == kInactive || !growable[s]) continue;
          ++scr.scan_rows;
          ++scr.histogram[(s * num_categories + column[row]) * num_classes +
                          data.Label(row)];
        }
        for (size_t s = 0; s < num_slots; ++s) {
          if (!growable[s]) continue;
          for (uint32_t v = 0; v < num_categories; ++v) {
            std::span<const uint32_t> left(
                scr.histogram.data() +
                    (s * num_categories + v) * num_classes,
                num_classes);
            uint64_t in_category = 0;
            for (uint32_t count : left) in_category += count;
            if (in_category == 0 || in_category == slot_total[s]) continue;
            for (uint32_t c = 0; c < num_classes; ++c) {
              scr.right[c] = slot_counts[s][c] - left[c];
            }
            double gain = slot_scorer[s].Score(
                left, in_category, scr.right, slot_total[s] - in_category);
            if (gain > scr.best[s].score) {
              scr.best[s].score = gain;
              scr.best[s].attribute = a;
              scr.best[s].kind = SplitKind::kCategoricalEquals;
              scr.best[s].threshold = 0.0;
              scr.best[s].category = v;
            }
          }
        }
      }
    };
    for (LevelScratch& s : scratch) s.best.assign(num_slots, LeafSplit{});
    ctx.ForEachChunk(num_attributes,
                     [&](size_t chunk, size_t begin, size_t end) {
                       for (size_t a = begin; a < end; ++a) {
                         scan_attribute(static_cast<uint32_t>(a),
                                        scratch[chunk]);
                       }
                     });
    // Merge the chunk candidates in ascending chunk (= attribute) order
    // under the serial strict-improvement comparison: ties keep the lowest
    // attribute, so any thread count grows the serial tree bit for bit.
    std::vector<LeafSplit> best(num_slots);
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      for (size_t s = 0; s < num_slots; ++s) {
        if (scratch[chunk].best[s].score > best[s].score) {
          best[s] = scratch[chunk].best[s];
        }
      }
    }

    // Apply the chosen splits: create children, rewrite the class list.
    std::vector<uint32_t> next_slot_node;
    std::vector<std::vector<uint32_t>> next_slot_counts;
    // For each old slot: either (left_slot, right_slot) or kInactive.
    std::vector<std::pair<uint32_t, uint32_t>> slot_children(
        num_slots, {kInactive, kInactive});
    for (size_t s = 0; s < num_slots; ++s) {
      if (!growable[s] || best[s].score < options.min_gain) continue;
      TreeNode& node = nodes[slot_node[s]];
      node.is_leaf = false;
      node.kind = best[s].kind;
      node.attribute = best[s].attribute;
      node.threshold = best[s].threshold;
      node.category = best[s].category;
      uint32_t left_id = static_cast<uint32_t>(nodes.size());
      nodes.emplace_back();
      uint32_t right_id = static_cast<uint32_t>(nodes.size());
      nodes.emplace_back();
      nodes[slot_node[s]].children = {left_id, right_id};
      slot_children[s] = {
          static_cast<uint32_t>(next_slot_node.size()),
          static_cast<uint32_t>(next_slot_node.size() + 1)};
      next_slot_node.push_back(left_id);
      next_slot_node.push_back(right_id);
      next_slot_counts.emplace_back(num_classes, 0);
      next_slot_counts.emplace_back(num_classes, 0);
    }
    // Route rows.
    for (size_t row = 0; row < n; ++row) {
      uint32_t s = slot_of[row];
      if (s == kInactive || slot_children[s].first == kInactive) {
        slot_of[row] = kInactive;
        continue;
      }
      const TreeNode& node = nodes[slot_node[s]];
      bool goes_left =
          node.kind == SplitKind::kNumericThreshold
              ? data.Numeric(row, node.attribute) <= node.threshold
              : data.Categorical(row, node.attribute) == node.category;
      uint32_t next = goes_left ? slot_children[s].first
                                : slot_children[s].second;
      slot_of[row] = next;
      ++next_slot_counts[next][data.Label(row)];
    }
    slot_node = std::move(next_slot_node);
    slot_counts = std::move(next_slot_counts);
    ++depth;
  }
  // Publish the per-chunk scan tallies in ascending chunk order (the
  // determinism contract's merge order) and read the public stats field
  // back through the registry.
  for (const LevelScratch& s : scratch) scan_rows_counter.Add(s.scan_rows);
  if (stats != nullptr) {
    stats->split_scan_rows = scan_rows_delta.Value();
  }
  return tree;
}

}  // namespace dmt::tree
