#include "tree/pruning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace dmt::tree {

using core::Dataset;
using core::Result;
using core::Status;

double InverseNormalCdf(double p) {
  DMT_CHECK(p > 0.0 && p < 1.0);
  // Acklam's rational approximation (relative error < 1.15e-9).
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double PessimisticErrorRate(double errors, double n, double confidence) {
  DMT_CHECK(n > 0.0);
  // C4.5's special case for error-free leaves: the exact binomial upper
  // limit solving (1 - e)^n = CF. The normal approximation badly
  // underestimates this for tiny leaves (0.31 vs 0.75 at n = 1, CF = .25),
  // which would stop pruning from ever firing on overfit trees.
  if (errors <= 0.0) {
    return 1.0 - std::pow(confidence, 1.0 / n);
  }
  const double z = InverseNormalCdf(1.0 - confidence);
  const double z2 = z * z;
  // Continuity-corrected observed rate, as in C4.5/Weka.
  const double f = std::min(1.0, (errors + 0.5) / n);
  double numerator =
      f + z2 / (2.0 * n) +
      z * std::sqrt(std::max(0.0, f / n - f * f / n + z2 / (4.0 * n * n)));
  double bound = numerator / (1.0 + z2 / n);
  if (errors < 1.0) {
    // Interpolate between the exact zero-error limit and the one-error
    // bound (C4.5's treatment of fractional error counts).
    double at_zero = 1.0 - std::pow(confidence, 1.0 / n);
    double at_one = PessimisticErrorRate(1.0, n, confidence);
    bound = at_zero + errors * (at_one - at_zero);
  }
  return std::min(1.0, bound);
}

namespace {

/// Estimated (pessimistic) number of errors of the subtree at `index`, and
/// pruning in post-order.
double PruneSubtree(DecisionTree* tree, size_t index, double confidence) {
  auto& nodes = internal::TreeAccess::Nodes(*tree);
  TreeNode& node = nodes[index];
  const double n = static_cast<double>(node.NumSamples());
  const double node_errors = static_cast<double>(node.NumErrors());
  // Empty branches (n == 0) predict the parent majority and contribute no
  // estimated error.
  const double leaf_estimate =
      n > 0.0 ? n * PessimisticErrorRate(node_errors, n, confidence) : 0.0;
  if (node.is_leaf) return leaf_estimate;

  double subtree_estimate = 0.0;
  for (uint32_t child : node.children) {
    subtree_estimate += PruneSubtree(tree, child, confidence);
  }
  if (leaf_estimate <= subtree_estimate + 0.1) {
    // Collapsing does not raise the estimated error: prune.
    tree->CollapseToLeaf(index);
    return leaf_estimate;
  }
  return subtree_estimate;
}

/// Training-error count of the subtree's leaves plus its leaf count.
void SubtreeStats(const DecisionTree& tree, size_t index,
                  uint64_t* leaf_errors, size_t* leaves) {
  const TreeNode& node = tree.node(index);
  if (node.is_leaf) {
    *leaf_errors += node.NumErrors();
    ++*leaves;
    return;
  }
  for (uint32_t child : node.children) {
    SubtreeStats(tree, child, leaf_errors, leaves);
  }
}

/// Finds the weakest link: the internal node with the smallest
/// g(t) = (R(t) - R(T_t)) / (|leaves| - 1). Returns false for a stump.
bool WeakestLink(const DecisionTree& tree, double total_samples,
                 size_t* link, double* g_value) {
  bool found = false;
  double best_g = std::numeric_limits<double>::infinity();
  size_t best_index = 0;
  // Walk reachable internal nodes.
  std::vector<size_t> stack = {0};
  while (!stack.empty()) {
    size_t index = stack.back();
    stack.pop_back();
    const TreeNode& node = tree.node(index);
    if (node.is_leaf) continue;
    for (uint32_t child : node.children) stack.push_back(child);
    uint64_t subtree_errors = 0;
    size_t leaves = 0;
    SubtreeStats(tree, index, &subtree_errors, &leaves);
    if (leaves < 2) continue;
    double r_leaf =
        static_cast<double>(node.NumErrors()) / total_samples;
    double r_subtree =
        static_cast<double>(subtree_errors) / total_samples;
    double g = (r_leaf - r_subtree) / static_cast<double>(leaves - 1);
    if (g < best_g) {
      best_g = g;
      best_index = index;
      found = true;
    }
  }
  if (found) {
    *link = best_index;
    *g_value = best_g;
  }
  return found;
}

}  // namespace

Status PessimisticPrune(DecisionTree* tree,
                        const PessimisticPruneOptions& options) {
  if (!(options.confidence > 0.0) || options.confidence > 0.5) {
    return Status::InvalidArgument("confidence must be in (0, 0.5]");
  }
  if (tree->num_nodes() == 0) {
    return Status::InvalidArgument("cannot prune an empty tree");
  }
  PruneSubtree(tree, 0, options.confidence);
  tree->Compact();
  return Status::OK();
}

void CostComplexityPrune(DecisionTree* tree, double alpha) {
  if (tree->num_nodes() == 0) return;
  const double total =
      static_cast<double>(tree->root().NumSamples());
  if (total == 0.0) return;
  for (;;) {
    size_t link = 0;
    double g = 0.0;
    if (!WeakestLink(*tree, total, &link, &g)) break;
    if (g > alpha) break;
    tree->CollapseToLeaf(link);
  }
  tree->Compact();
}

std::vector<double> CostComplexityAlphas(const DecisionTree& tree) {
  std::vector<double> alphas;
  if (tree.num_nodes() == 0) return alphas;
  DecisionTree working = tree;
  const double total =
      static_cast<double>(working.root().NumSamples());
  if (total == 0.0) return alphas;
  for (;;) {
    size_t link = 0;
    double g = 0.0;
    if (!WeakestLink(working, total, &link, &g)) break;
    alphas.push_back(std::max(g, alphas.empty() ? g : alphas.back()));
    working.CollapseToLeaf(link);
  }
  return alphas;
}

Result<double> SelectAlphaByValidation(const DecisionTree& tree,
                                       const Dataset& validation) {
  if (validation.num_rows() == 0) {
    return Status::InvalidArgument("validation set is empty");
  }
  std::vector<double> candidates = {0.0};
  for (double alpha : CostComplexityAlphas(tree)) {
    // Nudge past the critical value so the link actually collapses.
    candidates.push_back(alpha + 1e-12);
  }
  double best_alpha = 0.0;
  double best_accuracy = -1.0;
  for (double alpha : candidates) {
    DecisionTree pruned = tree;
    CostComplexityPrune(&pruned, alpha);
    size_t correct = 0;
    for (size_t row = 0; row < validation.num_rows(); ++row) {
      if (pruned.Predict(validation, row) == validation.Label(row)) {
        ++correct;
      }
    }
    double accuracy =
        static_cast<double>(correct) /
        static_cast<double>(validation.num_rows());
    // Ties favour the larger alpha (smaller tree); candidates ascend.
    if (accuracy >= best_accuracy) {
      best_accuracy = accuracy;
      best_alpha = alpha;
    }
  }
  return best_alpha;
}

}  // namespace dmt::tree
