// Unified recursive tree induction behind the ID3 / C4.5 / CART presets.
#ifndef DMT_TREE_BUILDER_H_
#define DMT_TREE_BUILDER_H_

#include "core/dataset.h"
#include "core/status.h"
#include "tree/criteria.h"
#include "tree/decision_tree.h"

namespace dmt::tree {

/// How categorical attributes are split.
enum class CategoricalSplitStyle {
  /// One child per category (ID3, C4.5).
  kMultiway,
  /// Binary equals/not-equals on the best single category (CART-style).
  kBinary,
};

/// Induction hyper-parameters.
struct TreeOptions {
  SplitCriterion criterion = SplitCriterion::kGainRatio;
  CategoricalSplitStyle categorical_style =
      CategoricalSplitStyle::kMultiway;
  /// Whether numeric attributes may be split on thresholds (off for the
  /// faithful ID3, which handles only categorical data).
  bool allow_numeric_splits = true;
  /// Stop expanding below this many rows.
  size_t min_samples_split = 2;
  /// Hard depth cap; 0 = unlimited.
  size_t max_depth = 0;
  /// Minimum criterion improvement to accept a split.
  double min_gain = 1e-9;

  core::Status Validate() const;
};

/// Grows a decision tree on `data` (all rows).
core::Result<DecisionTree> BuildTree(const core::Dataset& data,
                                     const TreeOptions& options);

/// ID3 preset: information gain, multiway categorical splits, no numeric
/// splits. Fails with InvalidArgument on datasets with numeric attributes.
core::Result<DecisionTree> BuildId3(const core::Dataset& data,
                                    TreeOptions options = {});

/// C4.5 preset: gain ratio, multiway categorical splits, numeric
/// thresholds. (Apply PessimisticPrune afterwards for the full C4.5.)
core::Result<DecisionTree> BuildC45(const core::Dataset& data,
                                    TreeOptions options = {});

/// CART preset: Gini, binary splits everywhere. (Apply CostComplexityPrune
/// afterwards for the full CART.)
core::Result<DecisionTree> BuildCart(const core::Dataset& data,
                                     TreeOptions options = {});

}  // namespace dmt::tree

#endif  // DMT_TREE_BUILDER_H_
