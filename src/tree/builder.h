// Unified recursive tree induction behind the ID3 / C4.5 / CART presets.
#ifndef DMT_TREE_BUILDER_H_
#define DMT_TREE_BUILDER_H_

#include "core/dataset.h"
#include "core/status.h"
#include "tree/criteria.h"
#include "tree/decision_tree.h"

namespace dmt::tree {

/// How categorical attributes are split.
enum class CategoricalSplitStyle {
  /// One child per category (ID3, C4.5).
  kMultiway,
  /// Binary equals/not-equals on the best single category (CART-style).
  kBinary,
};

/// How numeric threshold candidates are enumerated. Both engines grow
/// bit-identical trees (structure, thresholds, leaf histograms); they
/// differ only in how the per-node sorted orders are obtained.
enum class SplitSearch {
  /// Copy and re-sort the node's rows for every numeric attribute at
  /// every node — O(depth · attrs · n log n), the TKDE'93-era reference
  /// path. Kept as the differential-testing baseline and ablation point.
  kNaive,
  /// Sort each numeric attribute once up front into a row-index array
  /// (ties broken by row id so the order is fully specified), then derive
  /// each child's order by a stable one-pass partition of the parent's
  /// arrays (the SLIQ/SPRINT attribute-list idea applied to the greedy
  /// builder); per-node split search becomes a linear sweep.
  kPresorted,
};

/// Induction hyper-parameters.
struct TreeOptions {
  SplitCriterion criterion = SplitCriterion::kGainRatio;
  CategoricalSplitStyle categorical_style =
      CategoricalSplitStyle::kMultiway;
  /// Whether numeric attributes may be split on thresholds (off for the
  /// faithful ID3, which handles only categorical data).
  bool allow_numeric_splits = true;
  /// Stop expanding below this many rows.
  size_t min_samples_split = 2;
  /// Hard depth cap; 0 = unlimited.
  size_t max_depth = 0;
  /// Minimum criterion improvement to accept a split.
  double min_gain = 1e-9;
  /// Numeric split-search engine (see SplitSearch; trees are identical).
  SplitSearch split_search = SplitSearch::kPresorted;
  /// Worker threads for the per-attribute best-split search; 0 (default)
  /// or 1 = serial. Threaded runs grow bit-identical trees: attributes
  /// are scanned in contiguous chunks and the candidate splits merged in
  /// attribute order with the serial strict-improvement tie-breaking.
  size_t num_threads = 0;

  core::Status Validate() const;
};

/// Grows a decision tree on `data` (all rows). When `stats` is non-null it
/// receives the split-search work counters.
core::Result<DecisionTree> BuildTree(const core::Dataset& data,
                                     const TreeOptions& options,
                                     TreeBuildStats* stats = nullptr);

/// ID3 preset: information gain, multiway categorical splits, no numeric
/// splits. Fails with InvalidArgument on datasets with numeric attributes.
core::Result<DecisionTree> BuildId3(const core::Dataset& data,
                                    TreeOptions options = {});

/// C4.5 preset: gain ratio, multiway categorical splits, numeric
/// thresholds. (Apply PessimisticPrune afterwards for the full C4.5.)
core::Result<DecisionTree> BuildC45(const core::Dataset& data,
                                    TreeOptions options = {});

/// CART preset: Gini, binary splits everywhere. (Apply CostComplexityPrune
/// afterwards for the full CART.)
core::Result<DecisionTree> BuildCart(const core::Dataset& data,
                                     TreeOptions options = {});

}  // namespace dmt::tree

#endif  // DMT_TREE_BUILDER_H_
