#include "tree/decision_tree.h"

#include <algorithm>

#include "core/check.h"
#include "core/string_util.h"

namespace dmt::tree {

uint32_t DecisionTree::Predict(const core::Dataset& data, size_t row) const {
  DMT_CHECK(!nodes_.empty());
  size_t current = 0;
  for (;;) {
    const TreeNode& node = nodes_[current];
    if (node.is_leaf) return node.majority_class;
    switch (node.kind) {
      case SplitKind::kCategoricalMultiway: {
        uint32_t value = data.Categorical(row, node.attribute);
        DMT_DCHECK(value < node.children.size());
        current = node.children[value];
        break;
      }
      case SplitKind::kCategoricalEquals: {
        uint32_t value = data.Categorical(row, node.attribute);
        current = node.children[value == node.category ? 0 : 1];
        break;
      }
      case SplitKind::kNumericThreshold: {
        double value = data.Numeric(row, node.attribute);
        current = node.children[value <= node.threshold ? 0 : 1];
        break;
      }
    }
  }
}

std::vector<uint32_t> DecisionTree::PredictAll(
    const core::Dataset& data) const {
  std::vector<uint32_t> out;
  out.reserve(data.num_rows());
  for (size_t row = 0; row < data.num_rows(); ++row) {
    out.push_back(Predict(data, row));
  }
  return out;
}

size_t DecisionTree::NumLeaves() const {
  // Count leaves reachable from the root (pruning may strand nodes until
  // Compact() runs).
  size_t leaves = 0;
  std::vector<size_t> stack = {0};
  while (!stack.empty()) {
    size_t current = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_[current];
    if (node.is_leaf) {
      ++leaves;
      continue;
    }
    for (uint32_t child : node.children) stack.push_back(child);
  }
  return leaves;
}

size_t DecisionTree::Depth() const { return DepthBelow(0); }

size_t DecisionTree::DepthBelow(size_t node_index) const {
  const TreeNode& node = nodes_[node_index];
  if (node.is_leaf) return 0;
  size_t deepest = 0;
  for (uint32_t child : node.children) {
    deepest = std::max(deepest, DepthBelow(child));
  }
  return deepest + 1;
}

void DecisionTree::CollapseToLeaf(size_t node_index) {
  TreeNode& node = nodes_[node_index];
  node.is_leaf = true;
  node.children.clear();
}

void DecisionTree::Compact() {
  std::vector<uint32_t> remap(nodes_.size(), UINT32_MAX);
  std::vector<TreeNode> kept;
  // Preorder walk assigning new ids.
  std::vector<size_t> stack = {0};
  while (!stack.empty()) {
    size_t current = stack.back();
    stack.pop_back();
    if (remap[current] != UINT32_MAX) continue;
    remap[current] = static_cast<uint32_t>(kept.size());
    kept.push_back(nodes_[current]);
    for (uint32_t child : nodes_[current].children) {
      stack.push_back(child);
    }
  }
  for (auto& node : kept) {
    for (auto& child : node.children) child = remap[child];
  }
  nodes_ = std::move(kept);
}

namespace {

std::string DescribeEdge(const DecisionTree& tree, const TreeNode& node,
                         size_t child_slot,
                         const std::vector<std::string>& attribute_names,
                         const std::vector<std::vector<std::string>>&
                             attribute_categories) {
  const std::string& attr = attribute_names[node.attribute];
  switch (node.kind) {
    case SplitKind::kCategoricalMultiway:
      return core::StrFormat(
          "%s = %s", attr.c_str(),
          attribute_categories[node.attribute][child_slot].c_str());
    case SplitKind::kCategoricalEquals:
      return core::StrFormat(
          "%s %s %s", attr.c_str(), child_slot == 0 ? "=" : "!=",
          attribute_categories[node.attribute][node.category].c_str());
    case SplitKind::kNumericThreshold:
      return core::StrFormat("%s %s %.6g", attr.c_str(),
                             child_slot == 0 ? "<=" : ">", node.threshold);
  }
  (void)tree;
  return "?";
}

}  // namespace

std::string DecisionTree::ToText() const {
  std::string out;
  // (node, indent, edge label) DFS.
  struct Frame {
    size_t node;
    size_t indent;
    std::string edge;
  };
  std::vector<Frame> stack = {{0, 0, ""}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const TreeNode& node = nodes_[frame.node];
    out.append(frame.indent * 2, ' ');
    if (!frame.edge.empty()) {
      out += frame.edge;
      out += ": ";
    }
    if (node.is_leaf) {
      out += core::StrFormat("%s (%llu/%llu)",
                             class_names_[node.majority_class].c_str(),
                             static_cast<unsigned long long>(
                                 node.NumSamples()),
                             static_cast<unsigned long long>(
                                 node.NumErrors()));
      out += '\n';
      continue;
    }
    out += core::StrFormat("[split on %s]",
                           attribute_names_[node.attribute].c_str());
    out += '\n';
    // Push children in reverse so the first child renders first.
    for (size_t slot = node.children.size(); slot-- > 0;) {
      stack.push_back({node.children[slot], frame.indent + 1,
                       DescribeEdge(*this, node, slot, attribute_names_,
                                    attribute_categories_)});
    }
  }
  return out;
}

std::string DecisionTree::ToDot() const {
  std::string out = "digraph dmt_tree {\n  node [shape=box];\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& node = nodes_[i];
    if (node.is_leaf) {
      out += core::StrFormat(
          "  n%zu [label=\"%s\\n%llu samples\", style=filled];\n", i,
          class_names_[node.majority_class].c_str(),
          static_cast<unsigned long long>(node.NumSamples()));
    } else {
      out += core::StrFormat("  n%zu [label=\"%s\"];\n", i,
                             attribute_names_[node.attribute].c_str());
      for (size_t slot = 0; slot < node.children.size(); ++slot) {
        out += core::StrFormat(
            "  n%zu -> n%u [label=\"%s\"];\n", i, node.children[slot],
            DescribeEdge(*this, node, slot, attribute_names_,
                         attribute_categories_)
                .c_str());
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace dmt::tree
