#include "tree/criteria.h"

#include "core/stats.h"

namespace dmt::tree {
namespace {

uint64_t Total(std::span<const uint32_t> counts) {
  uint64_t total = 0;
  for (uint32_t c : counts) total += c;
  return total;
}

}  // namespace

double Entropy(std::span<const uint32_t> class_counts) {
  uint64_t total = Total(class_counts);
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (uint32_t count : class_counts) {
    if (count == 0) continue;
    double p = static_cast<double>(count) / static_cast<double>(total);
    entropy -= core::XLog2X(p);
  }
  return entropy;
}

double GiniImpurity(std::span<const uint32_t> class_counts) {
  uint64_t total = Total(class_counts);
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (uint32_t count : class_counts) {
    double p = static_cast<double>(count) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double Impurity(SplitCriterion criterion,
                std::span<const uint32_t> class_counts) {
  return criterion == SplitCriterion::kGini ? GiniImpurity(class_counts)
                                            : Entropy(class_counts);
}

double SplitInformation(std::span<const uint32_t> partition_sizes) {
  return Entropy(partition_sizes);
}

double SplitScore(SplitCriterion criterion,
                  std::span<const uint32_t> parent_counts,
                  const std::vector<std::vector<uint32_t>>& child_counts) {
  uint64_t parent_total = Total(parent_counts);
  if (parent_total == 0) return 0.0;
  double weighted_child_impurity = 0.0;
  std::vector<uint32_t> partition_sizes;
  partition_sizes.reserve(child_counts.size());
  for (const auto& child : child_counts) {
    uint64_t child_total = Total(child);
    partition_sizes.push_back(static_cast<uint32_t>(child_total));
    if (child_total == 0) continue;
    double weight = static_cast<double>(child_total) /
                    static_cast<double>(parent_total);
    weighted_child_impurity += weight * Impurity(criterion, child);
  }
  double gain = Impurity(criterion, parent_counts) - weighted_child_impurity;
  if (criterion != SplitCriterion::kGainRatio) return gain;
  double split_info = SplitInformation(partition_sizes);
  if (split_info <= 1e-12) return 0.0;
  return gain / split_info;
}

}  // namespace dmt::tree
