#include "tree/criteria.h"

#include <array>

#include "core/stats.h"

namespace dmt::tree {
namespace {

uint64_t Total(std::span<const uint32_t> counts) {
  uint64_t total = 0;
  for (uint32_t c : counts) total += c;
  return total;
}

/// Shared scoring core: `child(c)` yields child c's class histogram,
/// `sizes` receives the partition sizes (>= num_children entries). All
/// three public scorers route through this so they agree bit for bit.
template <typename ChildSpanFn>
double ScoreChildren(SplitCriterion criterion,
                     std::span<const uint32_t> parent_counts,
                     size_t num_children, const ChildSpanFn& child,
                     std::span<uint32_t> sizes) {
  uint64_t parent_total = Total(parent_counts);
  if (parent_total == 0) return 0.0;
  double weighted_child_impurity = 0.0;
  for (size_t c = 0; c < num_children; ++c) {
    std::span<const uint32_t> counts = child(c);
    uint64_t child_total = Total(counts);
    sizes[c] = static_cast<uint32_t>(child_total);
    if (child_total == 0) continue;
    double weight = static_cast<double>(child_total) /
                    static_cast<double>(parent_total);
    weighted_child_impurity += weight * Impurity(criterion, counts);
  }
  double gain = Impurity(criterion, parent_counts) - weighted_child_impurity;
  if (criterion != SplitCriterion::kGainRatio) return gain;
  double split_info = SplitInformation(sizes.first(num_children));
  if (split_info <= 1e-12) return 0.0;
  return gain / split_info;
}

/// Impurity() with the histogram total supplied by the caller. Runs the
/// same per-class arithmetic as GiniImpurity/Entropy, so given the true
/// total it returns the identical double.
double ImpurityWithTotal(SplitCriterion criterion,
                         std::span<const uint32_t> class_counts,
                         uint64_t total) {
  if (total == 0) return 0.0;
  if (criterion == SplitCriterion::kGini) {
    double sum_sq = 0.0;
    for (uint32_t count : class_counts) {
      double p = static_cast<double>(count) / static_cast<double>(total);
      sum_sq += p * p;
    }
    return 1.0 - sum_sq;
  }
  double entropy = 0.0;
  for (uint32_t count : class_counts) {
    if (count == 0) continue;
    double p = static_cast<double>(count) / static_cast<double>(total);
    entropy -= core::XLog2X(p);
  }
  return entropy;
}

}  // namespace

double Entropy(std::span<const uint32_t> class_counts) {
  uint64_t total = Total(class_counts);
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (uint32_t count : class_counts) {
    if (count == 0) continue;
    double p = static_cast<double>(count) / static_cast<double>(total);
    entropy -= core::XLog2X(p);
  }
  return entropy;
}

double GiniImpurity(std::span<const uint32_t> class_counts) {
  uint64_t total = Total(class_counts);
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (uint32_t count : class_counts) {
    double p = static_cast<double>(count) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double Impurity(SplitCriterion criterion,
                std::span<const uint32_t> class_counts) {
  return criterion == SplitCriterion::kGini ? GiniImpurity(class_counts)
                                            : Entropy(class_counts);
}

double SplitInformation(std::span<const uint32_t> partition_sizes) {
  return Entropy(partition_sizes);
}

double SplitScore(SplitCriterion criterion,
                  std::span<const uint32_t> parent_counts,
                  const std::vector<std::vector<uint32_t>>& child_counts) {
  std::vector<uint32_t> partition_sizes(child_counts.size(), 0);
  return ScoreChildren(
      criterion, parent_counts, child_counts.size(),
      [&](size_t c) { return std::span<const uint32_t>(child_counts[c]); },
      partition_sizes);
}

double SplitScoreBinary(SplitCriterion criterion,
                        std::span<const uint32_t> parent_counts,
                        std::span<const uint32_t> left_counts,
                        std::span<const uint32_t> right_counts) {
  std::array<uint32_t, 2> sizes = {0, 0};
  return ScoreChildren(
      criterion, parent_counts, 2,
      [&](size_t c) { return c == 0 ? left_counts : right_counts; }, sizes);
}

double SplitScoreFlat(SplitCriterion criterion,
                      std::span<const uint32_t> parent_counts,
                      std::span<const uint32_t> flat_child_counts,
                      size_t num_classes, std::span<uint32_t> size_scratch) {
  const size_t num_children = flat_child_counts.size() / num_classes;
  return ScoreChildren(
      criterion, parent_counts, num_children,
      [&](size_t c) {
        return flat_child_counts.subspan(c * num_classes, num_classes);
      },
      size_scratch);
}

BinarySplitScorer::BinarySplitScorer(SplitCriterion criterion,
                                     std::span<const uint32_t> parent_counts)
    : criterion_(criterion),
      parent_total_(Total(parent_counts)),
      parent_impurity_(Impurity(criterion, parent_counts)) {}

double BinarySplitScorer::Score(std::span<const uint32_t> left_counts,
                                uint64_t left_total,
                                std::span<const uint32_t> right_counts,
                                uint64_t right_total) const {
  // Mirrors ScoreChildren over {left, right}: children accumulate in that
  // order, empty children are skipped, gain ratio normalizes at the end.
  if (parent_total_ == 0) return 0.0;
  double weighted_child_impurity = 0.0;
  if (left_total != 0) {
    double weight = static_cast<double>(left_total) /
                    static_cast<double>(parent_total_);
    weighted_child_impurity +=
        weight * ImpurityWithTotal(criterion_, left_counts, left_total);
  }
  if (right_total != 0) {
    double weight = static_cast<double>(right_total) /
                    static_cast<double>(parent_total_);
    weighted_child_impurity +=
        weight * ImpurityWithTotal(criterion_, right_counts, right_total);
  }
  double gain = parent_impurity_ - weighted_child_impurity;
  if (criterion_ != SplitCriterion::kGainRatio) return gain;
  std::array<uint32_t, 2> sizes = {static_cast<uint32_t>(left_total),
                                   static_cast<uint32_t>(right_total)};
  double split_info = SplitInformation(sizes);
  if (split_info <= 1e-12) return 0.0;
  return gain / split_info;
}

}  // namespace dmt::tree
