// Post-pruning: C4.5 pessimistic error-based pruning and CART
// cost-complexity (weakest-link) pruning.
#ifndef DMT_TREE_PRUNING_H_
#define DMT_TREE_PRUNING_H_

#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "tree/decision_tree.h"

namespace dmt::tree {

/// Options for C4.5 pessimistic pruning.
struct PessimisticPruneOptions {
  /// Confidence factor CF in (0, 0.5]; smaller prunes more aggressively.
  /// C4.5's default is 0.25.
  double confidence = 0.25;
};

/// Upper confidence limit on the error rate after observing `errors`
/// mistakes in `n` samples (Wilson-style bound used by C4.5). Exposed for
/// tests.
double PessimisticErrorRate(double errors, double n, double confidence);

/// Inverse standard-normal CDF (Acklam's rational approximation). Exposed
/// for tests.
double InverseNormalCdf(double p);

/// Prunes `tree` bottom-up, collapsing subtrees whose estimated error is no
/// better than predicting the majority class directly. Compacts the tree.
core::Status PessimisticPrune(DecisionTree* tree,
                              const PessimisticPruneOptions& options = {});

/// CART cost-complexity pruning at a fixed complexity parameter: collapses
/// every subtree whose per-leaf error improvement is <= alpha (weakest link
/// first). alpha is in units of (training error fraction) / leaf.
void CostComplexityPrune(DecisionTree* tree, double alpha);

/// The increasing sequence of critical alphas of the weakest-link path
/// (empty for a stump). Pruning at alphas[i] removes at least i+1 links.
std::vector<double> CostComplexityAlphas(const DecisionTree& tree);

/// Sweeps the cost-complexity path and returns the alpha whose pruned tree
/// maximizes accuracy on `validation` (ties -> smaller tree, i.e. larger
/// alpha).
core::Result<double> SelectAlphaByValidation(
    const DecisionTree& tree, const core::Dataset& validation);

}  // namespace dmt::tree

#endif  // DMT_TREE_PRUNING_H_
