#include "gen/quest.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/rng.h"
#include "core/string_util.h"

namespace dmt::gen {

using core::ItemId;
using core::Result;
using core::Rng;
using core::Status;
using core::TransactionDatabase;

Status QuestParams::Validate() const {
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be > 0");
  }
  if (num_items == 0) {
    return Status::InvalidArgument("num_items must be > 0");
  }
  if (num_patterns == 0) {
    return Status::InvalidArgument("num_patterns must be > 0");
  }
  if (avg_transaction_size <= 0.0 || avg_pattern_size <= 0.0) {
    return Status::InvalidArgument(
        "avg_transaction_size and avg_pattern_size must be > 0");
  }
  if (correlation < 0.0 || correlation > 1.0) {
    return Status::InvalidArgument("correlation must be in [0, 1]");
  }
  if (corruption_mean < 0.0 || corruption_mean > 1.0 ||
      corruption_stddev < 0.0) {
    return Status::InvalidArgument("corruption parameters out of range");
  }
  return Status::OK();
}

std::string QuestParams::Name() const {
  auto format_count = [](size_t n) {
    if (n % 1000000 == 0 && n >= 1000000) {
      return core::StrFormat("%zuM", n / 1000000);
    }
    if (n % 1000 == 0 && n >= 1000) return core::StrFormat("%zuK", n / 1000);
    return core::StrFormat("%zu", n);
  };
  return core::StrFormat("T%g.I%g.D%s", avg_transaction_size,
                         avg_pattern_size,
                         format_count(num_transactions).c_str());
}

namespace {

struct Pattern {
  std::vector<ItemId> items;  // sorted
  double corruption = 0.5;
};

/// Builds the pool of maximal potentially-large itemsets: sizes are
/// Poisson(I); a correlated fraction of items is inherited from the previous
/// pattern, the rest drawn uniformly; pattern weights decay exponentially.
void BuildPatternPool(const QuestParams& params, Rng& rng,
                      std::vector<Pattern>* patterns,
                      std::vector<double>* weights) {
  patterns->clear();
  weights->clear();
  patterns->reserve(params.num_patterns);
  weights->reserve(params.num_patterns);
  const std::vector<ItemId> no_previous;
  for (size_t p = 0; p < params.num_patterns; ++p) {
    size_t target_size = std::max<uint64_t>(
        1, rng.Poisson(params.avg_pattern_size));
    target_size = std::min(target_size, params.num_items);

    Pattern pattern;
    const std::vector<ItemId>& previous =
        p == 0 ? no_previous : (*patterns)[p - 1].items;
    if (!previous.empty() && params.correlation > 0.0) {
      double fraction =
          std::min(1.0, rng.Exponential(params.correlation));
      size_t inherit = std::min(
          previous.size(),
          static_cast<size_t>(
              std::llround(fraction * static_cast<double>(target_size))));
      auto picks = rng.SampleWithoutReplacement(previous.size(), inherit);
      for (size_t index : picks) pattern.items.push_back(previous[index]);
    }
    while (pattern.items.size() < target_size) {
      ItemId item = static_cast<ItemId>(rng.UniformU64(params.num_items));
      if (std::find(pattern.items.begin(), pattern.items.end(), item) ==
          pattern.items.end()) {
        pattern.items.push_back(item);
      }
    }
    std::sort(pattern.items.begin(), pattern.items.end());
    pattern.corruption = std::clamp(
        rng.Normal(params.corruption_mean, params.corruption_stddev), 0.0,
        1.0);
    patterns->push_back(std::move(pattern));
    weights->push_back(rng.Exponential(1.0));
  }
}

}  // namespace

Result<TransactionDatabase> GenerateQuestTransactions(
    const QuestParams& params, uint64_t seed) {
  DMT_RETURN_NOT_OK(params.Validate());
  Rng rng(seed);
  std::vector<Pattern> patterns;
  std::vector<double> weights;
  BuildPatternPool(params, rng, &patterns, &weights);

  TransactionDatabase db;
  std::vector<ItemId> transaction;
  // A corrupted pattern deferred to the next transaction, per the paper's
  // "assign it to the next transaction half the time" rule.
  std::vector<ItemId> carryover;

  for (size_t t = 0; t < params.num_transactions; ++t) {
    size_t target_size = std::max<uint64_t>(
        1, rng.Poisson(params.avg_transaction_size));
    transaction.clear();
    if (!carryover.empty()) {
      transaction = carryover;
      carryover.clear();
    }
    // Plant patterns until the transaction reaches its target size; bound
    // the number of attempts so tiny targets with huge patterns terminate.
    size_t attempts = 0;
    const size_t max_attempts = 8 + 4 * target_size;
    while (transaction.size() < target_size && attempts++ < max_attempts) {
      const size_t pick = rng.Categorical(weights);
      const Pattern& pattern = patterns[pick];
      // Corrupt: drop items while a coin keeps coming up below the
      // pattern's corruption level.
      std::vector<ItemId> planted = pattern.items;
      while (planted.size() > 1 &&
             rng.UniformDouble() < pattern.corruption) {
        size_t victim = static_cast<size_t>(rng.UniformU64(planted.size()));
        planted.erase(planted.begin() +
                      static_cast<std::ptrdiff_t>(victim));
      }
      if (transaction.size() + planted.size() > target_size &&
          !transaction.empty()) {
        // Does not fit: half the time force it in anyway (overshooting),
        // half the time defer it to the next transaction.
        if (rng.Bernoulli(0.5)) {
          transaction.insert(transaction.end(), planted.begin(),
                             planted.end());
        } else {
          carryover = std::move(planted);
          break;
        }
      } else {
        transaction.insert(transaction.end(), planted.begin(),
                           planted.end());
      }
    }
    if (transaction.empty()) {
      // Degenerate corner (all patterns deferred): plant one random item so
      // every transaction is non-empty, as in the original workloads.
      transaction.push_back(
          static_cast<ItemId>(rng.UniformU64(params.num_items)));
    }
    db.Add(transaction);
  }
  return db;
}

}  // namespace dmt::gen
