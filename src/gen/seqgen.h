// Synthetic customer-sequence generator of Srikant & Agrawal, "Mining
// Sequential Patterns" (ICDE'95): a pool of potentially-large itemsets is
// composed into potentially-large sequences, which are planted (with
// corruption) into customers' transaction sequences. Workloads are named
// C<avg transactions per customer>.T<avg transaction size>.S<avg pattern
// elements>.I<avg itemset size>.
#ifndef DMT_GEN_SEQGEN_H_
#define DMT_GEN_SEQGEN_H_

#include <cstdint>
#include <string>

#include "core/sequence.h"
#include "core/status.h"

namespace dmt::gen {

/// Parameters of the sequence generator; defaults are the paper's scaled
/// for laptop runs.
struct SequenceGenParams {
  /// |C|: number of customers (sequences).
  size_t num_customers = 5000;
  /// Avg transactions per customer (Poisson mean).
  double avg_transactions_per_customer = 10.0;
  /// Avg items per transaction (Poisson mean).
  double avg_items_per_transaction = 2.5;
  /// Avg number of elements of the maximal potentially-large sequences.
  double avg_pattern_elements = 4.0;
  /// Avg size of the itemsets inside potentially-large sequences.
  double avg_pattern_itemset_size = 1.25;
  /// N: number of distinct items.
  size_t num_items = 1000;
  /// Pool sizes.
  size_t num_pattern_sequences = 500;
  size_t num_pattern_itemsets = 2000;
  /// Corruption level distribution, as in the transaction generator.
  double corruption_mean = 0.5;
  double corruption_stddev = 0.1;

  core::Status Validate() const;

  /// Conventional workload name, e.g. "C10.T2.5.S4.I1.25".
  std::string Name() const;
};

/// Generates a customer-sequence database. Deterministic in (params, seed).
core::Result<core::SequenceDatabase> GenerateSequences(
    const SequenceGenParams& params, uint64_t seed);

}  // namespace dmt::gen

#endif  // DMT_GEN_SEQGEN_H_
