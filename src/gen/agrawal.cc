#include "gen/agrawal.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/string_util.h"

namespace dmt::gen {

using core::Dataset;
using core::DatasetBuilder;
using core::Result;
using core::Rng;
using core::Status;

Status AgrawalParams::Validate() const {
  if (function < 1 || function > 10) {
    return Status::InvalidArgument(
        core::StrFormat("function must be in 1..10, got %d", function));
  }
  if (num_records == 0) {
    return Status::InvalidArgument("num_records must be > 0");
  }
  if (perturbation < 0.0 || perturbation > 1.0) {
    return Status::InvalidArgument("perturbation must be in [0, 1]");
  }
  if (label_noise < 0.0 || label_noise > 1.0) {
    return Status::InvalidArgument("label_noise must be in [0, 1]");
  }
  return Status::OK();
}

namespace {

/// One synthetic applicant record.
struct Record {
  double salary;      // uniform [20000, 150000]
  double commission;  // 0 if salary >= 75000, else uniform [10000, 75000]
  double age;         // uniform [20, 80]
  uint32_t elevel;    // uniform {0..4}
  uint32_t car;       // uniform {1..20} (stored as code 0..19)
  uint32_t zipcode;   // uniform {1..9} (stored as code 0..8)
  double hvalue;      // uniform [zipcode*50000, zipcode*150000]
  double hyears;      // uniform [1, 30]
  double loan;        // uniform [0, 500000]
};

Record DrawRecord(Rng& rng) {
  Record r;
  r.salary = rng.UniformDouble(20000.0, 150000.0);
  r.commission =
      r.salary >= 75000.0 ? 0.0 : rng.UniformDouble(10000.0, 75000.0);
  r.age = rng.UniformDouble(20.0, 80.0);
  r.elevel = static_cast<uint32_t>(rng.UniformU64(5));
  r.car = static_cast<uint32_t>(rng.UniformU64(20));
  r.zipcode = static_cast<uint32_t>(rng.UniformU64(9));
  double zip_factor = static_cast<double>(r.zipcode + 1);
  r.hvalue = rng.UniformDouble(zip_factor * 50000.0, zip_factor * 150000.0);
  r.hyears = rng.UniformDouble(1.0, 30.0);
  r.loan = rng.UniformDouble(0.0, 500000.0);
  return r;
}

/// The published group-A predicates (encoding follows the reference
/// implementation distributed with the paper and reused by later systems).
bool IsGroupA(int function, const Record& r) {
  const double salary = r.salary;
  const double commission = r.commission;
  const double age = r.age;
  const double elevel = static_cast<double>(r.elevel);
  const double loan = r.loan;
  const double total_income = salary + commission;
  switch (function) {
    case 1:
      return age < 40.0 || 60.0 <= age;
    case 2:
      if (age < 40.0) return 50000.0 <= salary && salary <= 100000.0;
      if (age < 60.0) return 75000.0 <= salary && salary <= 125000.0;
      return 25000.0 <= salary && salary <= 75000.0;
    case 3:
      if (age < 40.0) return r.elevel <= 1;
      if (age < 60.0) return 1 <= r.elevel && r.elevel <= 3;
      return 2 <= r.elevel;
    case 4:
      if (age < 40.0) {
        return r.elevel <= 1 ? (25000.0 <= salary && salary <= 75000.0)
                             : (50000.0 <= salary && salary <= 100000.0);
      }
      if (age < 60.0) {
        return (1 <= r.elevel && r.elevel <= 3)
                   ? (50000.0 <= salary && salary <= 100000.0)
                   : (75000.0 <= salary && salary <= 125000.0);
      }
      return 2 <= r.elevel ? (50000.0 <= salary && salary <= 100000.0)
                           : (25000.0 <= salary && salary <= 75000.0);
    case 5:
      if (age < 40.0) {
        return (50000.0 <= salary && salary <= 100000.0)
                   ? (100000.0 <= loan && loan <= 300000.0)
                   : (200000.0 <= loan && loan <= 400000.0);
      }
      if (age < 60.0) {
        return (75000.0 <= salary && salary <= 125000.0)
                   ? (200000.0 <= loan && loan <= 400000.0)
                   : (300000.0 <= loan && loan <= 500000.0);
      }
      return (25000.0 <= salary && salary <= 75000.0)
                 ? (300000.0 <= loan && loan <= 500000.0)
                 : (100000.0 <= loan && loan <= 300000.0);
    case 6:
      if (age < 40.0) {
        return 25000.0 <= total_income && total_income <= 75000.0;
      }
      if (age < 60.0) {
        return 50000.0 <= total_income && total_income <= 125000.0;
      }
      return 25000.0 <= total_income && total_income <= 75000.0;
    case 7:
      return (2.0 * total_income / 3.0 - loan / 5.0 - 20000.0) > 0.0;
    case 8:
      return (2.0 * total_income / 3.0 - 5000.0 * elevel - 20000.0) > 0.0;
    case 9:
      return (2.0 * total_income / 3.0 - 5000.0 * elevel - loan / 5.0 -
              10000.0) > 0.0;
    case 10: {
      double equity = 0.0;
      if (r.hyears >= 20.0) equity = r.hvalue * (r.hyears - 20.0) / 10.0;
      return (2.0 * total_income / 3.0 - 5000.0 * elevel + equity / 5.0 -
              10000.0) > 0.0;
    }
    default:
      return false;
  }
}

}  // namespace

Result<Dataset> GenerateAgrawal(const AgrawalParams& params, uint64_t seed) {
  DMT_RETURN_NOT_OK(params.Validate());
  Rng rng(seed);
  const size_t n = params.num_records;

  std::vector<double> salary(n), commission(n), age(n), hvalue(n), hyears(n),
      loan(n);
  std::vector<uint32_t> elevel(n), car(n), zipcode(n), labels(n);

  for (size_t i = 0; i < n; ++i) {
    Record r = DrawRecord(rng);
    labels[i] = IsGroupA(params.function, r) ? 0u : 1u;
    if (params.label_noise > 0.0 && rng.Bernoulli(params.label_noise)) {
      labels[i] ^= 1u;
    }
    if (params.perturbation > 0.0) {
      auto perturb = [&](double value, double lo, double hi) {
        double shifted = value + rng.UniformDouble(-0.5, 0.5) *
                                     params.perturbation * (hi - lo);
        return std::clamp(shifted, lo, hi);
      };
      r.salary = perturb(r.salary, 20000.0, 150000.0);
      if (r.commission > 0.0) {
        r.commission = perturb(r.commission, 10000.0, 75000.0);
      }
      r.age = perturb(r.age, 20.0, 80.0);
      double zip_factor = static_cast<double>(r.zipcode + 1);
      r.hvalue = perturb(r.hvalue, zip_factor * 50000.0,
                         zip_factor * 150000.0);
      r.hyears = perturb(r.hyears, 1.0, 30.0);
      r.loan = perturb(r.loan, 0.0, 500000.0);
    }
    salary[i] = r.salary;
    commission[i] = r.commission;
    age[i] = r.age;
    elevel[i] = r.elevel;
    car[i] = r.car;
    zipcode[i] = r.zipcode;
    hvalue[i] = r.hvalue;
    hyears[i] = r.hyears;
    loan[i] = r.loan;
  }

  auto make_names = [](const char* prefix, size_t count, int base) {
    std::vector<std::string> names;
    names.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      names.push_back(
          core::StrFormat("%s%d", prefix, static_cast<int>(i) + base));
    }
    return names;
  };

  DatasetBuilder builder;
  builder.AddNumericColumn("salary", std::move(salary))
      .AddNumericColumn("commission", std::move(commission))
      .AddNumericColumn("age", std::move(age))
      .AddCategoricalColumn("elevel", std::move(elevel),
                            make_names("level", 5, 0))
      .AddCategoricalColumn("car", std::move(car), make_names("make", 20, 1))
      .AddCategoricalColumn("zipcode", std::move(zipcode),
                            make_names("zip", 9, 1))
      .AddNumericColumn("hvalue", std::move(hvalue))
      .AddNumericColumn("hyears", std::move(hyears))
      .AddNumericColumn("loan", std::move(loan))
      .SetLabels(std::move(labels), {"groupA", "groupB"});
  return builder.Build();
}

}  // namespace dmt::gen
