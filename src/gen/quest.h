// IBM Quest-style synthetic transaction generator.
//
// Re-implementation of the synthetic market-basket workload of Agrawal &
// Srikant, "Fast Algorithms for Mining Association Rules" (VLDB'94),
// §"Synthetic data generation": a pool of potentially-large itemsets with
// exponentially decaying weights is planted into Poisson-sized transactions,
// with per-pattern corruption. Workloads are conventionally named
// T<avg transaction size>.I<avg pattern size>.D<num transactions>.
#ifndef DMT_GEN_QUEST_H_
#define DMT_GEN_QUEST_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "core/transaction.h"

namespace dmt::gen {

/// Parameters of the Quest transaction generator. Defaults follow the
/// VLDB'94 paper (N = 1000, |L| = 2000) scaled for laptop runs.
struct QuestParams {
  /// |D|: number of transactions.
  size_t num_transactions = 10000;
  /// |T|: average transaction size (Poisson mean).
  double avg_transaction_size = 10.0;
  /// |I|: average size of the maximal potentially large itemsets.
  double avg_pattern_size = 4.0;
  /// N: number of distinct items.
  size_t num_items = 1000;
  /// |L|: number of maximal potentially large itemsets in the pool.
  size_t num_patterns = 2000;
  /// Fraction of each pattern inherited from the previous pattern
  /// (exponential mean), modeling correlated itemsets.
  double correlation = 0.5;
  /// Mean / stddev of the per-pattern corruption level (normal, clamped to
  /// [0, 1]); corrupted patterns drop items when planted.
  double corruption_mean = 0.5;
  double corruption_stddev = 0.1;

  /// Validates parameter ranges.
  core::Status Validate() const;

  /// Conventional workload name, e.g. "T10.I4.D10K".
  std::string Name() const;
};

/// Generates a transaction database. Deterministic in (params, seed).
core::Result<core::TransactionDatabase> GenerateQuestTransactions(
    const QuestParams& params, uint64_t seed);

}  // namespace dmt::gen

#endif  // DMT_GEN_QUEST_H_
