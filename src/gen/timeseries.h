// Synthetic time-series generator: random walks (the workload of the
// FODO'93 / SIGMOD'94 similarity-search papers, who modelled stock series
// as random walks) with optional planted motifs.
#ifndef DMT_GEN_TIMESERIES_H_
#define DMT_GEN_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace dmt::gen {

/// Random-walk parameters.
struct RandomWalkParams {
  size_t num_series = 100;
  size_t length = 1024;
  /// Standard deviation of each step.
  double step_stddev = 1.0;
  /// Starting value of each walk.
  double start = 0.0;

  core::Status Validate() const;
};

/// Generates independent Gaussian random walks. Deterministic in
/// (params, seed).
core::Result<std::vector<std::vector<double>>> GenerateRandomWalks(
    const RandomWalkParams& params, uint64_t seed);

/// Copies `motif` into `series[target]` at `offset`, adding Gaussian noise
/// with `noise_stddev` — plants a known near-match for similarity-search
/// experiments.
core::Status PlantMotif(std::vector<std::vector<double>>* series,
                        size_t target, size_t offset,
                        const std::vector<double>& motif,
                        double noise_stddev, uint64_t seed);

}  // namespace dmt::gen

#endif  // DMT_GEN_TIMESERIES_H_
