#include "gen/mixture.h"

#include <cmath>

#include "core/rng.h"

namespace dmt::gen {

using core::PointSet;
using core::Result;
using core::Rng;
using core::Status;

Status GaussianMixtureParams::Validate() const {
  if (num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be > 0");
  }
  if (points_per_cluster == 0) {
    return Status::InvalidArgument("points_per_cluster must be > 0");
  }
  if (dim == 0) return Status::InvalidArgument("dim must be > 0");
  if (cluster_stddev < 0.0) {
    return Status::InvalidArgument("cluster_stddev must be >= 0");
  }
  if (spread <= 0.0) return Status::InvalidArgument("spread must be > 0");
  if (noise_fraction < 0.0) {
    return Status::InvalidArgument("noise_fraction must be >= 0");
  }
  if (placement == CenterPlacement::kGrid && dim != 2) {
    return Status::InvalidArgument("grid placement requires dim == 2");
  }
  return Status::OK();
}

Result<LabeledPoints> GenerateGaussianMixture(
    const GaussianMixtureParams& params, uint64_t seed) {
  DMT_RETURN_NOT_OK(params.Validate());
  Rng rng(seed);
  LabeledPoints out;
  out.points = PointSet(params.dim);
  out.true_centers = PointSet(params.dim);

  // Place centers.
  std::vector<double> center(params.dim);
  if (params.placement == CenterPlacement::kGrid) {
    size_t side = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(params.num_clusters))));
    for (size_t c = 0; c < params.num_clusters; ++c) {
      center[0] = static_cast<double>(c % side) * params.spread;
      center[1] = static_cast<double>(c / side) * params.spread;
      out.true_centers.Add(center);
    }
  } else {
    for (size_t c = 0; c < params.num_clusters; ++c) {
      for (size_t d = 0; d < params.dim; ++d) {
        center[d] = rng.UniformDouble(0.0, params.spread);
      }
      out.true_centers.Add(center);
    }
  }

  // Draw clustered points.
  std::vector<double> point(params.dim);
  for (size_t c = 0; c < params.num_clusters; ++c) {
    auto mu = out.true_centers.point(c);
    for (size_t i = 0; i < params.points_per_cluster; ++i) {
      for (size_t d = 0; d < params.dim; ++d) {
        point[d] = rng.Normal(mu[d], params.cluster_stddev);
      }
      out.points.Add(point);
      out.labels.push_back(static_cast<uint32_t>(c));
    }
  }

  // Background noise over the bounding box of the centers, padded by 3
  // sigma so noise actually surrounds the clusters.
  size_t noise_points = static_cast<size_t>(
      std::llround(params.noise_fraction *
                   static_cast<double>(params.num_clusters *
                                       params.points_per_cluster)));
  if (noise_points > 0) {
    std::vector<double> mins, maxs;
    out.true_centers.Bounds(&mins, &maxs);
    double pad = 3.0 * params.cluster_stddev;
    for (size_t i = 0; i < noise_points; ++i) {
      for (size_t d = 0; d < params.dim; ++d) {
        point[d] = rng.UniformDouble(mins[d] - pad, maxs[d] + pad);
      }
      out.points.Add(point);
      out.labels.push_back(kNoiseLabel);
    }
  }
  return out;
}

Result<LabeledPoints> GenerateBirchGrid(size_t num_clusters,
                                        size_t points_per_cluster,
                                        double spacing, double stddev,
                                        uint64_t seed) {
  GaussianMixtureParams params;
  params.num_clusters = num_clusters;
  params.points_per_cluster = points_per_cluster;
  params.dim = 2;
  params.cluster_stddev = stddev;
  params.placement = CenterPlacement::kGrid;
  params.spread = spacing;
  return GenerateGaussianMixture(params, seed);
}

}  // namespace dmt::gen
