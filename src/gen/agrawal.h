// Synthetic classification-function generator of Agrawal, Imielinski &
// Swami, "Database Mining: A Performance Perspective" (IEEE TKDE 1993).
//
// Nine attributes describe a loan applicant (salary, commission, age,
// education level, car make, zipcode, house value, years owned, loan);
// ten published predicates F1..F10 assign each record to "group A" or
// "group B". Optional attribute perturbation and label noise reproduce the
// paper's robustness experiments.
#ifndef DMT_GEN_AGRAWAL_H_
#define DMT_GEN_AGRAWAL_H_

#include <cstdint>

#include "core/dataset.h"
#include "core/status.h"

namespace dmt::gen {

/// Parameters of the Agrawal classification generator.
struct AgrawalParams {
  /// Which published predicate labels the records, 1..10.
  int function = 1;
  /// Number of records to generate.
  size_t num_records = 10000;
  /// Attribute perturbation factor p: after labelling, each numeric value v
  /// is shifted by uniform(-0.5, 0.5) * p * range(attribute) (paper §5.4).
  double perturbation = 0.0;
  /// Probability of flipping the class label of a record.
  double label_noise = 0.0;

  core::Status Validate() const;
};

/// Generates a labelled dataset (classes "groupA"/"groupB").
/// Deterministic in (params, seed).
core::Result<core::Dataset> GenerateAgrawal(const AgrawalParams& params,
                                            uint64_t seed);

}  // namespace dmt::gen

#endif  // DMT_GEN_AGRAWAL_H_
