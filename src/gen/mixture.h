// Gaussian-mixture point generators for clustering experiments, including
// the grid-of-clusters layouts of the BIRCH paper (SIGMOD'96, DS1/DS2/DS3).
#ifndef DMT_GEN_MIXTURE_H_
#define DMT_GEN_MIXTURE_H_

#include <cstdint>
#include <vector>

#include "core/point_set.h"
#include "core/status.h"

namespace dmt::gen {

/// Ground-truth label assigned to uniform background noise points.
inline constexpr uint32_t kNoiseLabel = 0xffffffffu;

/// How cluster centers are placed.
enum class CenterPlacement {
  /// Uniformly at random inside the bounding box.
  kUniformRandom,
  /// On a regular sqrt(k) x sqrt(k)-ish grid (BIRCH DS1 layout; requires
  /// dim == 2).
  kGrid,
};

/// Parameters of the Gaussian mixture generator.
struct GaussianMixtureParams {
  size_t num_clusters = 10;
  /// Points drawn per cluster (each cluster gets exactly this many).
  size_t points_per_cluster = 100;
  size_t dim = 2;
  /// Per-dimension standard deviation of each cluster.
  double cluster_stddev = 1.0;
  CenterPlacement placement = CenterPlacement::kUniformRandom;
  /// Side length of the bounding box centers are placed in (random
  /// placement) or grid spacing between adjacent centers (grid placement).
  double spread = 20.0;
  /// Additional uniform background-noise points, as a fraction of the total
  /// clustered points (labelled kNoiseLabel).
  double noise_fraction = 0.0;

  core::Status Validate() const;
};

/// Generated points plus ground truth.
struct LabeledPoints {
  core::PointSet points;
  std::vector<uint32_t> labels;
  core::PointSet true_centers;
};

/// Generates a Gaussian mixture. Deterministic in (params, seed).
core::Result<LabeledPoints> GenerateGaussianMixture(
    const GaussianMixtureParams& params, uint64_t seed);

/// Convenience: the BIRCH-style 2-d grid dataset with k clusters of n points
/// each at unit grid spacing `spacing` and cluster radius ~ stddev.
core::Result<LabeledPoints> GenerateBirchGrid(size_t num_clusters,
                                              size_t points_per_cluster,
                                              double spacing, double stddev,
                                              uint64_t seed);

}  // namespace dmt::gen

#endif  // DMT_GEN_MIXTURE_H_
