#include "gen/seqgen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/rng.h"
#include "core/string_util.h"

namespace dmt::gen {

using core::ItemId;
using core::Result;
using core::Rng;
using core::Sequence;
using core::SequenceDatabase;
using core::Status;

Status SequenceGenParams::Validate() const {
  if (num_customers == 0) {
    return Status::InvalidArgument("num_customers must be > 0");
  }
  if (num_items == 0) return Status::InvalidArgument("num_items must be > 0");
  if (num_pattern_sequences == 0 || num_pattern_itemsets == 0) {
    return Status::InvalidArgument("pattern pool sizes must be > 0");
  }
  if (avg_transactions_per_customer <= 0.0 ||
      avg_items_per_transaction <= 0.0 || avg_pattern_elements <= 0.0 ||
      avg_pattern_itemset_size <= 0.0) {
    return Status::InvalidArgument("all averages must be > 0");
  }
  if (corruption_mean < 0.0 || corruption_mean > 1.0 ||
      corruption_stddev < 0.0) {
    return Status::InvalidArgument("corruption parameters out of range");
  }
  return Status::OK();
}

std::string SequenceGenParams::Name() const {
  return core::StrFormat("C%g.T%g.S%g.I%g", avg_transactions_per_customer,
                         avg_items_per_transaction, avg_pattern_elements,
                         avg_pattern_itemset_size);
}

namespace {

struct PatternSequence {
  Sequence sequence;
  double corruption = 0.5;
};

std::vector<ItemId> DrawItemset(Rng& rng, size_t num_items, double avg_size) {
  size_t target = std::max<uint64_t>(1, rng.Poisson(avg_size));
  target = std::min(target, num_items);
  std::vector<ItemId> items;
  while (items.size() < target) {
    ItemId item = static_cast<ItemId>(rng.UniformU64(num_items));
    if (std::find(items.begin(), items.end(), item) == items.end()) {
      items.push_back(item);
    }
  }
  std::sort(items.begin(), items.end());
  return items;
}

}  // namespace

Result<SequenceDatabase> GenerateSequences(const SequenceGenParams& params,
                                           uint64_t seed) {
  DMT_RETURN_NOT_OK(params.Validate());
  Rng rng(seed);

  // Phase 1: pool of potentially-large itemsets with exponential weights.
  std::vector<std::vector<ItemId>> itemset_pool;
  std::vector<double> itemset_weights;
  itemset_pool.reserve(params.num_pattern_itemsets);
  for (size_t i = 0; i < params.num_pattern_itemsets; ++i) {
    itemset_pool.push_back(
        DrawItemset(rng, params.num_items, params.avg_pattern_itemset_size));
    itemset_weights.push_back(rng.Exponential(1.0));
  }

  // Phase 2: pool of potentially-large sequences whose elements come from
  // the itemset pool.
  std::vector<PatternSequence> sequence_pool;
  std::vector<double> sequence_weights;
  sequence_pool.reserve(params.num_pattern_sequences);
  for (size_t s = 0; s < params.num_pattern_sequences; ++s) {
    size_t elements =
        std::max<uint64_t>(1, rng.Poisson(params.avg_pattern_elements));
    PatternSequence pattern;
    for (size_t e = 0; e < elements; ++e) {
      size_t pick = rng.Categorical(itemset_weights);
      pattern.sequence.elements.push_back(itemset_pool[pick]);
    }
    pattern.corruption = std::clamp(
        rng.Normal(params.corruption_mean, params.corruption_stddev), 0.0,
        1.0);
    sequence_pool.push_back(std::move(pattern));
    sequence_weights.push_back(rng.Exponential(1.0));
  }

  // Phase 3: assemble customers. Each customer receives a target number of
  // transactions; patterns are planted (corrupted: elements dropped) until
  // the target is covered, then each transaction is padded with random
  // items up to its own Poisson-sized target.
  SequenceDatabase db;
  for (size_t customer = 0; customer < params.num_customers; ++customer) {
    size_t target_transactions = std::max<uint64_t>(
        1, rng.Poisson(params.avg_transactions_per_customer));
    Sequence assembled;
    size_t attempts = 0;
    const size_t max_attempts = 8 + 4 * target_transactions;
    while (assembled.elements.size() < target_transactions &&
           attempts++ < max_attempts) {
      const size_t pick = rng.Categorical(sequence_weights);
      const PatternSequence& pattern = sequence_pool[pick];
      Sequence planted = pattern.sequence;
      while (planted.elements.size() > 1 &&
             rng.UniformDouble() < pattern.corruption) {
        size_t victim =
            static_cast<size_t>(rng.UniformU64(planted.elements.size()));
        planted.elements.erase(planted.elements.begin() +
                               static_cast<std::ptrdiff_t>(victim));
      }
      for (auto& element : planted.elements) {
        if (assembled.elements.size() >= target_transactions) break;
        assembled.elements.push_back(std::move(element));
      }
    }
    while (assembled.elements.size() < target_transactions) {
      assembled.elements.push_back(
          DrawItemset(rng, params.num_items, params.avg_items_per_transaction));
    }
    // Pad each transaction with random items toward the per-transaction
    // size target.
    for (auto& element : assembled.elements) {
      size_t target_size = std::max<uint64_t>(
          1, rng.Poisson(params.avg_items_per_transaction));
      while (element.size() < target_size) {
        element.push_back(
            static_cast<ItemId>(rng.UniformU64(params.num_items)));
      }
    }
    db.Add(assembled);
  }
  return db;
}

}  // namespace dmt::gen
