#include "gen/timeseries.h"

#include "core/rng.h"
#include "core/string_util.h"

namespace dmt::gen {

using core::Result;
using core::Rng;
using core::Status;

Status RandomWalkParams::Validate() const {
  if (num_series == 0) {
    return Status::InvalidArgument("num_series must be > 0");
  }
  if (length == 0) return Status::InvalidArgument("length must be > 0");
  if (step_stddev < 0.0) {
    return Status::InvalidArgument("step_stddev must be >= 0");
  }
  return Status::OK();
}

Result<std::vector<std::vector<double>>> GenerateRandomWalks(
    const RandomWalkParams& params, uint64_t seed) {
  DMT_RETURN_NOT_OK(params.Validate());
  Rng rng(seed);
  std::vector<std::vector<double>> series(params.num_series);
  for (auto& walk : series) {
    walk.resize(params.length);
    double value = params.start;
    for (size_t t = 0; t < params.length; ++t) {
      value += rng.Normal(0.0, params.step_stddev);
      walk[t] = value;
    }
  }
  return series;
}

Status PlantMotif(std::vector<std::vector<double>>* series, size_t target,
                  size_t offset, const std::vector<double>& motif,
                  double noise_stddev, uint64_t seed) {
  if (series == nullptr || target >= series->size()) {
    return Status::InvalidArgument("target series out of range");
  }
  auto& destination = (*series)[target];
  if (offset + motif.size() > destination.size()) {
    return Status::OutOfRange(core::StrFormat(
        "motif of length %zu at offset %zu overruns series of length %zu",
        motif.size(), offset, destination.size()));
  }
  if (noise_stddev < 0.0) {
    return Status::InvalidArgument("noise_stddev must be >= 0");
  }
  Rng rng(seed);
  for (size_t i = 0; i < motif.size(); ++i) {
    destination[offset + i] = motif[i] + rng.Normal(0.0, noise_stddev);
  }
  return Status::OK();
}

}  // namespace dmt::gen
