// Splits a transaction database into K on-disk container partitions — the
// preparation step for the out-of-core miners (assoc/out_of_core.h).
//
// Partition p covers the contiguous transaction range
// [n*p/K, n*(p+1)/K), the same boundary arithmetic as
// core::ParallelContext chunking, so the split depends only on (n, K) and
// concatenating the partitions in order reproduces the database exactly.
#ifndef DMT_IO_PARTITION_H_
#define DMT_IO_PARTITION_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "core/transaction.h"

namespace dmt::io {

/// Writes `db` as `num_partitions` TransactionDatabase container files
/// named `<prefix>.part<i>.dmtb` and returns the paths in partition
/// order. Partitions may be empty when num_partitions > db.size().
core::Result<std::vector<std::string>> WritePartitions(
    const core::TransactionDatabase& db, const std::string& prefix,
    size_t num_partitions);

}  // namespace dmt::io

#endif  // DMT_IO_PARTITION_H_
