// Bounds-checked little-endian byte streams for variable-length container
// sections (schemas, rule lists, tree nodes). ByteWriter appends into a
// growable buffer; ByteReader consumes a read-only span and returns
// Corruption the moment a read would run past the end — the loaders'
// first line of defense against truncated or lying section payloads.
//
// Fixed-width arrays (offsets, supports, columns) do not go through these
// streams; they are stored as raw sections and read in place via
// ContainerReader::SectionAs.
#ifndef DMT_IO_BYTES_H_
#define DMT_IO_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"

namespace dmt::io {

/// Append-only byte buffer with primitive put operations. Values are
/// memcpy'd in host order; the container format is declared little-endian
/// and the library targets little-endian hosts (checked in container.cc).
class ByteWriter {
 public:
  void PutU8(uint8_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }

  /// u32 length prefix followed by the bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// Raw element copy with a u64 element-count prefix.
  template <typename T>
  void PutArray(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(values.size());
    PutRaw(values.data(), values.size_bytes());
  }

  void PutRaw(const void* data, size_t size) {
    const auto* bytes = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
  }

  std::span<const std::byte> bytes() const { return buffer_; }

 private:
  std::vector<std::byte> buffer_;
};

/// Sequential reader over a section payload. Every read checks the
/// remaining length first; `context` names the section in error messages.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data,
                      std::string context = "section")
      : data_(data), context_(std::move(context)) {}

  core::Result<uint8_t> ReadU8() { return ReadScalar<uint8_t>(); }
  core::Result<uint32_t> ReadU32() { return ReadScalar<uint32_t>(); }
  core::Result<uint64_t> ReadU64() { return ReadScalar<uint64_t>(); }
  core::Result<double> ReadF64() { return ReadScalar<double>(); }

  core::Result<std::string> ReadString() {
    DMT_ASSIGN_OR_RETURN(uint32_t length, ReadU32());
    if (length > remaining()) return Truncated("string of length", length);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                    length);
    pos_ += length;
    return out;
  }

  /// Reads a u64 count followed by that many elements. `max_elements`
  /// caps the count so a corrupted length cannot trigger a huge
  /// allocation before the bounds check fires.
  template <typename T>
  core::Result<std::vector<T>> ReadArray(uint64_t max_elements) {
    static_assert(std::is_trivially_copyable_v<T>);
    DMT_ASSIGN_OR_RETURN(uint64_t count, ReadU64());
    if (count > max_elements) {
      return core::Status::Corruption(
          context_ + ": array count " + std::to_string(count) +
          " exceeds limit " + std::to_string(max_elements));
    }
    if (count > remaining() / sizeof(T)) {  // overflow-safe bounds check
      return Truncated("array of count", count);
    }
    std::vector<T> out(count);
    std::memcpy(out.data(), data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return out;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// Corruption unless the stream was fully consumed (catches sections
  /// with trailing garbage).
  core::Status ExpectEnd() const {
    if (!AtEnd()) {
      return core::Status::Corruption(
          context_ + ": " + std::to_string(remaining()) +
          " trailing byte(s) after the last field");
    }
    return core::Status::OK();
  }

 private:
  template <typename T>
  core::Result<T> ReadScalar() {
    if (sizeof(T) > remaining()) return Truncated("scalar of size", sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  core::Status Truncated(const char* what, uint64_t amount) const {
    return core::Status::Corruption(
        context_ + ": truncated — " + what + " " + std::to_string(amount) +
        " but only " + std::to_string(remaining()) + " byte(s) remain");
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
  std::string context_;
};

}  // namespace dmt::io

#endif  // DMT_IO_BYTES_H_
