// Versioned, CRC-checked, mmap-able binary container — the on-disk unit of
// the persistence layer (ROADMAP "memory-mapped binary store").
//
// File layout (all integers little-endian, write-once read-many):
//
//   ┌────────────────────────────────────────────────────────┐
//   │ FileHeader (32 B): magic "DMTBIN01", format version,   │
//   │   artifact type, section count, file size, header CRC  │
//   ├────────────────────────────────────────────────────────┤
//   │ SectionEntry table (32 B each): id, offset, length,    │
//   │   payload CRC32                                        │
//   ├────────────────────────────────────────────────────────┤
//   │ section payloads, each 8-byte aligned, zero-padded     │
//   └────────────────────────────────────────────────────────┘
//
// The header CRC covers the header (with the CRC field zeroed) plus the
// whole section table; each section carries its own CRC32 over the
// payload bytes. ContainerReader::Map validates everything eagerly —
// magic, version, declared vs actual file size, section bounds/alignment/
// overlap-free placement, and every checksum — and returns
// core::Status::Corruption on the first mismatch. A malformed file can
// therefore never crash a loader or hand out an out-of-bounds span.
//
// Fixed-width numeric arrays (transaction offsets, item ids, supports,
// dataset columns) live in their own sections so readers can use them in
// place from the mapping (zero copy); variable-length payloads (schemas,
// rules, tree nodes) are ByteWriter/ByteReader streams.
#ifndef DMT_IO_CONTAINER_H_
#define DMT_IO_CONTAINER_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/mmap_file.h"
#include "core/status.h"

namespace dmt::io {

/// First 8 bytes of every container file.
inline constexpr char kMagic[8] = {'D', 'M', 'T', 'B', 'I', 'N', '0', '1'};

/// Current (and only) format version. Readers reject anything else.
inline constexpr uint32_t kFormatVersion = 1;

/// Section payloads start on 8-byte boundaries so u64 arrays can be read
/// in place from the mapping.
inline constexpr uint64_t kSectionAlignment = 8;

/// What a container file holds; loaders check it before touching
/// sections so a Dataset file cannot be loaded as a TransactionDatabase.
enum class ArtifactType : uint32_t {
  kTransactionDatabase = 1,
  kDataset = 2,
  kMiningResult = 3,
  kRuleSet = 4,
  kDecisionTree = 5,
  kKMeansModel = 6,
  kQuantRuleSet = 7,
};

/// Stable name for error messages and `dmt_pack info`.
std::string_view ArtifactTypeName(ArtifactType type);

/// On-disk header, 32 bytes.
struct FileHeader {
  char magic[8];
  uint32_t format_version = 0;
  uint32_t artifact_type = 0;
  uint32_t section_count = 0;
  /// CRC32 of header (this field zeroed) + section table.
  uint32_t header_crc32 = 0;
  uint64_t file_size = 0;
};
static_assert(sizeof(FileHeader) == 32, "FileHeader must pack to 32 bytes");

/// On-disk section-table entry, 32 bytes.
struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved0 = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc32 = 0;
  uint32_t reserved1 = 0;
};
static_assert(sizeof(SectionEntry) == 32,
              "SectionEntry must pack to 32 bytes");

/// Assembles a container in memory and writes it atomically. Sections are
/// laid out in AddSection order; ids must be unique within one file.
class ContainerWriter {
 public:
  explicit ContainerWriter(ArtifactType type) : type_(type) {}

  /// Adds a section payload (copied).
  void AddSection(uint32_t id, std::span<const std::byte> payload);

  /// Adds a section holding a raw array of trivially copyable elements.
  template <typename T>
  void AddArraySection(uint32_t id, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddSection(id, std::as_bytes(values));
  }

  /// Serializes header + table + payloads and writes them via
  /// core::WriteFileBytes (atomic rename).
  core::Status WriteToFile(const std::string& path) const;

  /// Serialized container bytes (exposed for tests that corrupt them).
  std::vector<std::byte> Serialize() const;

 private:
  ArtifactType type_;
  std::vector<std::pair<uint32_t, std::vector<std::byte>>> sections_;
};

/// Maps a container file and validates the full envelope eagerly (see the
/// file comment). Section spans point into the mapping and stay valid for
/// the reader's lifetime.
class ContainerReader {
 public:
  /// An empty reader with no sections; assign a Map/FromBytes result over
  /// it (lets owners hold a reader as a plain member).
  ContainerReader() = default;

  /// Maps and validates `path`. `expected` guards against loading the
  /// wrong artifact kind.
  static core::Result<ContainerReader> Map(const std::string& path,
                                           ArtifactType expected);

  /// Validates an already-mapped file (Map's worker; exposed so tests can
  /// validate in-memory buffers without touching disk).
  static core::Result<ContainerReader> FromBytes(
      std::span<const std::byte> bytes, ArtifactType expected,
      std::string name = "<memory>");

  ArtifactType artifact_type() const { return type_; }
  size_t num_sections() const { return entries_.size(); }

  /// Payload of the section with `id`; NotFound when absent.
  core::Result<std::span<const std::byte>> Section(uint32_t id) const;

  /// Section reinterpreted as an array of T. Corruption when the length
  /// is not a multiple of sizeof(T) (alignment is guaranteed by Map's
  /// offset checks plus the page-aligned mapping).
  template <typename T>
  core::Result<std::span<const T>> SectionAs(uint32_t id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    DMT_ASSIGN_OR_RETURN(std::span<const std::byte> raw, Section(id));
    if (raw.size() % sizeof(T) != 0) {
      return core::Status::Corruption(
          name_ + ": section " + std::to_string(id) + " length " +
          std::to_string(raw.size()) + " is not a multiple of element size " +
          std::to_string(sizeof(T)));
    }
    return std::span<const T>(reinterpret_cast<const T*>(raw.data()),
                              raw.size() / sizeof(T));
  }

  /// Bytes this reader keeps mapped (0 for FromBytes readers).
  uint64_t bytes_mapped() const { return file_.size(); }

  /// The mapped path or the FromBytes name (for error messages).
  const std::string& name() const { return name_; }

  /// Raw entries, for `dmt_pack info`.
  const std::vector<SectionEntry>& entries() const { return entries_; }

 private:
  core::MappedFile file_;
  std::span<const std::byte> bytes_;
  std::string name_;
  ArtifactType type_ = ArtifactType::kTransactionDatabase;
  std::vector<SectionEntry> entries_;
};

}  // namespace dmt::io

#endif  // DMT_IO_CONTAINER_H_
