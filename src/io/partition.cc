#include "io/partition.h"

#include <utility>

#include "io/serialize.h"
#include "obs/trace.h"

namespace dmt::io {

core::Result<std::vector<std::string>> WritePartitions(
    const core::TransactionDatabase& db, const std::string& prefix,
    size_t num_partitions) {
  if (num_partitions == 0) {
    return core::Status::InvalidArgument(
        "WritePartitions: num_partitions must be >= 1");
  }
  obs::Span span("io/partition/write");
  span.AddArg("partitions", num_partitions);
  span.AddArg("transactions", db.size());

  const std::span<const uint64_t> offsets = db.offsets();
  const std::span<const core::ItemId> items = db.items();
  std::vector<std::string> paths;
  paths.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    const size_t begin = db.size() * p / num_partitions;
    const size_t end = db.size() * (p + 1) / num_partitions;
    const uint64_t item_base = offsets[begin];
    std::vector<uint64_t> part_offsets;
    part_offsets.reserve(end - begin + 1);
    for (size_t t = begin; t <= end; ++t) {
      part_offsets.push_back(offsets[t] - item_base);
    }
    std::vector<core::ItemId> part_items(
        items.begin() + item_base, items.begin() + offsets[end]);
    DMT_ASSIGN_OR_RETURN(core::TransactionDatabase part,
                         core::TransactionDatabase::FromColumns(
                             std::move(part_offsets), std::move(part_items)));
    std::string path = prefix + ".part" + std::to_string(p) + ".dmtb";
    DMT_RETURN_NOT_OK(WriteTransactionDatabase(part, path));
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace dmt::io
