// SON two-phase out-of-core mining (see assoc/out_of_core.h). Lives in
// the io library because it drives the container loaders; the entry
// points belong to namespace dmt::assoc alongside the in-memory miners.
#include "assoc/out_of_core.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "assoc/hash_tree.h"
#include "core/parallel.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::assoc {

namespace {

/// One local in-memory mine: (partition, params) -> MiningResult.
using LocalMiner = std::function<core::Result<MiningResult>(
    const core::TransactionDatabase&, const MiningParams&)>;

/// Global absolute threshold over N transactions — the same rounding as
/// AbsoluteMinSupport, which takes a database we never materialize.
uint32_t GlobalMinSupport(double min_support, uint64_t num_transactions) {
  double exact = min_support * static_cast<double>(num_transactions);
  auto count = static_cast<uint64_t>(std::ceil(exact - 1e-9));
  if (count < 1) count = 1;
  return static_cast<uint32_t>(count);
}

/// Counts every transaction of a mapped partition into per-candidate
/// totals for one itemset-size layer, under the deterministic
/// chunk-merge contract (CountPartitioned adds into `counts`, so totals
/// accumulate across partitions).
void CountLayer(const io::MappedTransactionDatabase& view,
                const core::ParallelContext& ctx, const HashTree& tree,
                size_t num_candidates, std::span<uint32_t> counts) {
  core::CountPartitioned(
      ctx, view.size(), counts,
      [&](size_t begin, size_t end, std::span<uint32_t> buffer) {
        HashTree::CountingState state(num_candidates);
        for (size_t t = begin; t < end; ++t) {
          tree.CountTransaction(view.transaction(t), state, buffer);
        }
      });
}

/// Size-1 layer: direct per-item scan (a hash tree over singletons would
/// work but a lookup table is cheaper).
void CountSingletons(const io::MappedTransactionDatabase& view,
                     const core::ParallelContext& ctx,
                     const std::vector<uint32_t>& item_to_candidate,
                     std::span<uint32_t> counts) {
  constexpr uint32_t kNone = UINT32_MAX;
  core::CountPartitioned(
      ctx, view.size(), counts,
      [&](size_t begin, size_t end, std::span<uint32_t> buffer) {
        for (size_t t = begin; t < end; ++t) {
          for (core::ItemId item : view.transaction(t)) {
            if (item < item_to_candidate.size() &&
                item_to_candidate[item] != kNone) {
              ++buffer[item_to_candidate[item]];
            }
          }
        }
      });
}

core::Result<MiningResult> MineOutOfCore(
    std::span<const std::string> partition_paths, const MiningParams& params,
    const char* span_name, const LocalMiner& local_mine,
    size_t hash_tree_fanout, size_t hash_tree_leaf_size) {
  DMT_RETURN_NOT_OK(params.Validate());
  if (partition_paths.empty()) {
    return core::Status::InvalidArgument(
        "out-of-core mining needs at least one partition path");
  }
  obs::Span span(span_name);
  span.AddArg("partitions", partition_paths.size());

  MiningResult result;
  uint64_t num_transactions = 0;
  // Candidate union in lexicographic order — a deterministic order that
  // does not depend on which partition contributed an itemset first.
  std::set<Itemset> candidates;
  {
    obs::Span local_span("assoc/out_of_core/local_mine");
    for (const std::string& path : partition_paths) {
      DMT_ASSIGN_OR_RETURN(io::MappedTransactionDatabase view,
                           io::MappedTransactionDatabase::Map(path));
      result.bytes_mapped += view.bytes_mapped();
      num_transactions += view.size();
      ++result.partitions_mined;
      if (view.empty()) continue;
      const core::TransactionDatabase partition = view.ToOwned();
      DMT_ASSIGN_OR_RETURN(MiningResult local,
                           local_mine(partition, params));
      result.conditional_trees_built += local.conditional_trees_built;
      result.fp_nodes_allocated += local.fp_nodes_allocated;
      result.tidset_intersections += local.tidset_intersections;
      for (FrequentItemset& itemset : local.itemsets) {
        candidates.insert(std::move(itemset.items));
      }
    }
  }
  obs::Counter("assoc/out_of_core/partitions_mined")
      .Add(result.partitions_mined);

  if (candidates.empty()) return result;

  // Phase 2: exact counting of the union, one layer per itemset size.
  obs::Span count_span("assoc/out_of_core/count");
  std::map<size_t, std::vector<Itemset>> layers;
  for (const Itemset& itemset : candidates) {
    layers[itemset.size()].push_back(itemset);
  }
  candidates.clear();

  constexpr uint32_t kNone = UINT32_MAX;
  std::vector<uint32_t> item_to_candidate;
  std::vector<std::unique_ptr<HashTree>> trees;
  std::map<size_t, std::vector<uint32_t>> layer_counts;
  std::map<size_t, const HashTree*> layer_trees;
  for (const auto& [k, layer] : layers) {
    layer_counts[k].assign(layer.size(), 0);
    if (k == 1) {
      for (uint32_t c = 0; c < layer.size(); ++c) {
        const core::ItemId item = layer[c][0];
        if (item >= item_to_candidate.size()) {
          item_to_candidate.resize(item + 1, kNone);
        }
        item_to_candidate[item] = c;
      }
    } else {
      trees.push_back(std::make_unique<HashTree>(
          layer, k, hash_tree_fanout, hash_tree_leaf_size));
      layer_trees[k] = trees.back().get();
    }
  }

  core::ParallelContext ctx(params.num_threads);
  for (const std::string& path : partition_paths) {
    DMT_ASSIGN_OR_RETURN(io::MappedTransactionDatabase view,
                         io::MappedTransactionDatabase::Map(path));
    result.bytes_mapped += view.bytes_mapped();
    if (view.empty()) continue;
    for (const auto& [k, layer] : layers) {
      std::span<uint32_t> counts(layer_counts[k]);
      if (k == 1) {
        CountSingletons(view, ctx, item_to_candidate, counts);
      } else {
        CountLayer(view, ctx, *layer_trees[k], layer.size(), counts);
      }
    }
  }

  const uint32_t min_count =
      GlobalMinSupport(params.min_support, num_transactions);
  for (const auto& [k, layer] : layers) {
    const std::vector<uint32_t>& counts = layer_counts[k];
    PassStats stats;
    stats.pass = k;
    stats.candidates = layer.size();
    for (size_t c = 0; c < layer.size(); ++c) {
      if (counts[c] >= min_count) {
        result.itemsets.push_back({layer[c], counts[c]});
        ++stats.frequent;
      }
    }
    result.passes.push_back(stats);
  }
  SortCanonical(&result.itemsets);
  span.AddArg("itemsets", result.itemsets.size());
  return result;
}

}  // namespace

core::Result<MiningResult> MineAprioriPartitioned(
    std::span<const std::string> partition_paths, const MiningParams& params,
    const AprioriOptions& options) {
  DMT_RETURN_NOT_OK(options.Validate());
  return MineOutOfCore(
      partition_paths, params, "assoc/out_of_core/apriori",
      [&options](const core::TransactionDatabase& db,
                 const MiningParams& p) { return MineApriori(db, p, options); },
      options.hash_tree_fanout, options.hash_tree_leaf_size);
}

core::Result<MiningResult> MineFpGrowthDiskProjected(
    std::span<const std::string> partition_paths, const MiningParams& params,
    const FpGrowthOptions& options) {
  return MineOutOfCore(
      partition_paths, params, "assoc/out_of_core/fp_growth",
      [&options](const core::TransactionDatabase& db, const MiningParams& p) {
        return MineFpGrowth(db, p, options);
      },
      AprioriOptions{}.hash_tree_fanout, AprioriOptions{}.hash_tree_leaf_size);
}

}  // namespace dmt::assoc

