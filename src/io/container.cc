#include "io/container.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "core/crc32.h"
#include "core/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::io {

static_assert(std::endian::native == std::endian::little,
              "the container format is little-endian; big-endian hosts "
              "would need byte swaps in ContainerReader/Writer");

std::string_view ArtifactTypeName(ArtifactType type) {
  switch (type) {
    case ArtifactType::kTransactionDatabase:
      return "TransactionDatabase";
    case ArtifactType::kDataset:
      return "Dataset";
    case ArtifactType::kMiningResult:
      return "MiningResult";
    case ArtifactType::kRuleSet:
      return "RuleSet";
    case ArtifactType::kDecisionTree:
      return "DecisionTree";
    case ArtifactType::kKMeansModel:
      return "KMeansModel";
    case ArtifactType::kQuantRuleSet:
      return "QuantRuleSet";
  }
  return "Unknown";
}

namespace {

uint64_t AlignUp(uint64_t value) {
  return (value + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace

void ContainerWriter::AddSection(uint32_t id,
                                 std::span<const std::byte> payload) {
  sections_.emplace_back(
      id, std::vector<std::byte>(payload.begin(), payload.end()));
}

std::vector<std::byte> ContainerWriter::Serialize() const {
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.format_version = kFormatVersion;
  header.artifact_type = static_cast<uint32_t>(type_);
  header.section_count = static_cast<uint32_t>(sections_.size());

  std::vector<SectionEntry> entries(sections_.size());
  uint64_t cursor =
      sizeof(FileHeader) + sections_.size() * sizeof(SectionEntry);
  for (size_t s = 0; s < sections_.size(); ++s) {
    const auto& [id, payload] = sections_[s];
    entries[s].id = id;
    entries[s].offset = cursor;
    entries[s].length = payload.size();
    entries[s].crc32 = core::Crc32(payload);
    cursor = AlignUp(cursor + payload.size());
  }
  header.file_size = cursor;

  // Header CRC covers the header with the CRC field zeroed, then the
  // whole section table.
  uint32_t crc = core::Crc32(&header, sizeof(header));
  crc = core::Crc32(entries.data(), entries.size() * sizeof(SectionEntry),
                    crc);
  header.header_crc32 = crc;

  std::vector<std::byte> out(cursor, std::byte{0});
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + sizeof(header), entries.data(),
              entries.size() * sizeof(SectionEntry));
  for (size_t s = 0; s < sections_.size(); ++s) {
    std::memcpy(out.data() + entries[s].offset, sections_[s].second.data(),
                sections_[s].second.size());
  }
  return out;
}

core::Status ContainerWriter::WriteToFile(const std::string& path) const {
  const std::vector<std::byte> bytes = Serialize();
  return core::WriteFileBytes(path, bytes);
}

core::Result<ContainerReader> ContainerReader::Map(const std::string& path,
                                                   ArtifactType expected) {
  obs::Span span("io/container/map");
  DMT_ASSIGN_OR_RETURN(core::MappedFile file, core::MappedFile::Open(path));
  DMT_ASSIGN_OR_RETURN(ContainerReader reader,
                       FromBytes(file.bytes(), expected, path));
  reader.file_ = std::move(file);
  // Re-point at the mapping: FromBytes validated a span that belonged to
  // the (now moved) MappedFile, and spans into it stay valid because the
  // mapping address moves with the object.
  reader.bytes_ = reader.file_.bytes();
  span.AddArg("bytes", reader.bytes_.size());
  span.AddArg("sections", reader.entries().size());
  obs::Counter("io/bytes_mapped").Add(reader.bytes_.size());
  return reader;
}

core::Result<ContainerReader> ContainerReader::FromBytes(
    std::span<const std::byte> bytes, ArtifactType expected,
    std::string name) {
  core::WallTimer validate_timer;
  if (bytes.size() < sizeof(FileHeader)) {
    return core::Status::Corruption(
        name + ": truncated — " + std::to_string(bytes.size()) +
        " byte(s), smaller than the " + std::to_string(sizeof(FileHeader)) +
        "-byte header");
  }
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return core::Status::Corruption(
        name + ": bad magic (not a DMTBIN01 container)");
  }
  if (header.format_version != kFormatVersion) {
    return core::Status::InvalidArgument(
        name + ": unsupported format version " +
        std::to_string(header.format_version) + " (this build reads " +
        std::to_string(kFormatVersion) + ")");
  }
  if (header.file_size != bytes.size()) {
    return core::Status::Corruption(
        name + ": declared file size " + std::to_string(header.file_size) +
        " does not match actual size " + std::to_string(bytes.size()) +
        " (truncated or padded file)");
  }
  const uint64_t max_sections =
      (bytes.size() - sizeof(FileHeader)) / sizeof(SectionEntry);
  if (header.section_count > max_sections) {
    return core::Status::Corruption(
        name + ": section table of " + std::to_string(header.section_count) +
        " entries does not fit in the file");
  }

  std::vector<SectionEntry> entries(header.section_count);
  std::memcpy(entries.data(), bytes.data() + sizeof(FileHeader),
              entries.size() * sizeof(SectionEntry));

  // Checksum before interpreting the table further: a flipped bit in any
  // header/table field must surface as a CRC mismatch, not as a confusing
  // bounds error.
  FileHeader crc_header = header;
  crc_header.header_crc32 = 0;
  uint32_t crc = core::Crc32(&crc_header, sizeof(crc_header));
  crc = core::Crc32(entries.data(), entries.size() * sizeof(SectionEntry),
                    crc);
  if (crc != header.header_crc32) {
    return core::Status::Corruption(
        name + ": header/section-table CRC mismatch");
  }

  const uint64_t payload_start =
      sizeof(FileHeader) + entries.size() * sizeof(SectionEntry);
  std::vector<std::pair<uint64_t, uint64_t>> placements;
  for (const SectionEntry& entry : entries) {
    if (entry.offset % kSectionAlignment != 0) {
      return core::Status::Corruption(
          name + ": section " + std::to_string(entry.id) +
          " offset is not 8-byte aligned");
    }
    if (entry.offset < payload_start || entry.offset > bytes.size() ||
        entry.length > bytes.size() - entry.offset) {
      return core::Status::Corruption(
          name + ": section " + std::to_string(entry.id) + " (offset " +
          std::to_string(entry.offset) + ", length " +
          std::to_string(entry.length) + ") lies outside the file");
    }
    placements.emplace_back(entry.offset, entry.length);
    const std::span<const std::byte> payload =
        bytes.subspan(entry.offset, entry.length);
    if (core::Crc32(payload) != entry.crc32) {
      return core::Status::Corruption(name + ": section " +
                                      std::to_string(entry.id) +
                                      " payload CRC mismatch");
    }
  }
  std::sort(placements.begin(), placements.end());
  for (size_t s = 1; s < placements.size(); ++s) {
    if (placements[s].first <
        placements[s - 1].first + placements[s - 1].second) {
      return core::Status::Corruption(name + ": overlapping sections");
    }
  }
  for (size_t a = 0; a < entries.size(); ++a) {
    for (size_t b = a + 1; b < entries.size(); ++b) {
      if (entries[a].id == entries[b].id) {
        return core::Status::Corruption(name + ": duplicate section id " +
                                        std::to_string(entries[a].id));
      }
    }
  }

  if (header.artifact_type != static_cast<uint32_t>(expected)) {
    const auto actual = static_cast<ArtifactType>(header.artifact_type);
    return core::Status::InvalidArgument(
        name + ": artifact type mismatch — file holds " +
        std::string(ArtifactTypeName(actual)) + " (" +
        std::to_string(header.artifact_type) + "), loader expected " +
        std::string(ArtifactTypeName(expected)));
  }

  // Validation telemetry: the section count is deterministic (counter);
  // the CRC wall time is not, so it lives in a histogram, outside the
  // deterministic counter contract.
  obs::Counter("io/sections_validated").Add(entries.size());
  obs::Histogram("io/crc_us")
      .Record(static_cast<uint64_t>(validate_timer.ElapsedSeconds() * 1e6));

  ContainerReader reader;
  reader.bytes_ = bytes;
  reader.name_ = std::move(name);
  reader.type_ = expected;
  reader.entries_ = std::move(entries);
  return reader;
}

core::Result<std::span<const std::byte>> ContainerReader::Section(
    uint32_t id) const {
  for (const SectionEntry& entry : entries_) {
    if (entry.id == id) return bytes_.subspan(entry.offset, entry.length);
  }
  return core::Status::NotFound(name_ + ": no section with id " +
                                std::to_string(id));
}

}  // namespace dmt::io
