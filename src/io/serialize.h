// Writers and loaders mapping the library's core objects and trained
// artifacts onto the binary container (io/container.h):
//
//   TransactionDatabase — CSR offsets/items as raw sections, mmap-able
//   Dataset             — schema stream + per-column raw sections
//   MiningResult        — frequent itemsets (CSR), supports, pass census,
//                         work counters
//   rule sets           — std::vector<assoc::AssociationRule> (all five
//                         measures: supp/conf/lift/conviction/leverage)
//   quant rule sets     — assoc::QuantRuleSet: rules plus the interval /
//                         category metadata naming every quantized item
//   DecisionTree        — node arena + captured names
//   k-means models      — cluster::ClusteringResult (centers, assignments)
//
// Every loader validates semantic invariants on top of the container's
// envelope checks (sorted itemsets, monotone offsets, in-range codes) and
// returns core::Status::Corruption instead of crashing. Loaded objects
// are bit-identical to what was written: integer arrays round-trip
// exactly and doubles are stored as raw IEEE-754 bit patterns.
//
// MappedTransactionDatabase additionally exposes a zero-copy view over a
// mapped file — the streaming substrate of the out-of-core miners
// (assoc/out_of_core.h): partitions are counted straight out of the page
// cache without materializing a TransactionDatabase.
#ifndef DMT_IO_SERIALIZE_H_
#define DMT_IO_SERIALIZE_H_

#include <string>
#include <vector>

#include "assoc/itemset.h"
#include "assoc/quantitative.h"
#include "assoc/rules.h"
#include "cluster/kmeans.h"
#include "core/dataset.h"
#include "core/status.h"
#include "core/transaction.h"
#include "io/container.h"
#include "tree/decision_tree.h"

namespace dmt::io {

// ---- TransactionDatabase ------------------------------------------------

core::Status WriteTransactionDatabase(const core::TransactionDatabase& db,
                                      const std::string& path);
core::Result<core::TransactionDatabase> LoadTransactionDatabase(
    const std::string& path);

/// Zero-copy read-only view of a written TransactionDatabase: the offset
/// and item arrays are used in place from the mapping. Map() runs the
/// same structural validation as TransactionDatabase::FromColumns, so a
/// valid view upholds every miner precondition (sorted, duplicate-free
/// transactions).
class MappedTransactionDatabase {
 public:
  static core::Result<MappedTransactionDatabase> Map(
      const std::string& path);

  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }
  std::span<const core::ItemId> transaction(size_t t) const {
    return items_.subspan(offsets_[t], offsets_[t + 1] - offsets_[t]);
  }
  size_t item_universe() const { return item_universe_; }
  size_t total_items() const { return items_.size(); }

  /// Bytes held mapped by this view (the container file size).
  uint64_t bytes_mapped() const { return reader_.bytes_mapped(); }

  /// Materializes an owning copy (the out-of-core miners use this to run
  /// the in-memory miners on one partition at a time).
  core::TransactionDatabase ToOwned() const;

 private:
  MappedTransactionDatabase() = default;

  ContainerReader reader_;
  std::span<const uint64_t> offsets_;
  std::span<const core::ItemId> items_;
  size_t item_universe_ = 0;
};

// ---- Dataset ------------------------------------------------------------

core::Status WriteDataset(const core::Dataset& dataset,
                          const std::string& path);
core::Result<core::Dataset> LoadDataset(const std::string& path);

// ---- Mined artifacts ----------------------------------------------------

core::Status WriteMiningResult(const assoc::MiningResult& result,
                               const std::string& path);
core::Result<assoc::MiningResult> LoadMiningResult(const std::string& path);

core::Status WriteRuleSet(const std::vector<assoc::AssociationRule>& rules,
                          const std::string& path);
core::Result<std::vector<assoc::AssociationRule>> LoadRuleSet(
    const std::string& path);

/// Quantitative rule sets carry the item metadata (attribute, interval
/// bounds, base-interval run, label) alongside the rules; the loader
/// validates that every rule references an in-range item id.
core::Status WriteQuantRuleSet(const assoc::QuantRuleSet& rule_set,
                               const std::string& path);
core::Result<assoc::QuantRuleSet> LoadQuantRuleSet(const std::string& path);

core::Status WriteDecisionTree(const tree::DecisionTree& tree,
                               const std::string& path);
core::Result<tree::DecisionTree> LoadDecisionTree(const std::string& path);

core::Status WriteKMeansModel(const cluster::ClusteringResult& model,
                              const std::string& path);
core::Result<cluster::ClusteringResult> LoadKMeansModel(
    const std::string& path);

}  // namespace dmt::io

#endif  // DMT_IO_SERIALIZE_H_
