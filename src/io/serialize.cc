#include "io/serialize.h"

#include <cstring>
#include <utility>

#include "io/bytes.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::io {

namespace {

// Section ids. Each artifact starts its fixed sections at 1; Dataset
// feature columns occupy kColumnBase + attribute index.
constexpr uint32_t kMeta = 1;
constexpr uint32_t kOffsets = 2;
constexpr uint32_t kItems = 3;
constexpr uint32_t kSupports = 4;
constexpr uint32_t kLabels = 2;
constexpr uint32_t kNodes = 2;
constexpr uint32_t kNames = 3;
constexpr uint32_t kRules = 1;
constexpr uint32_t kCenters = 2;
constexpr uint32_t kAssignments = 3;
constexpr uint32_t kQuantItems = 2;
constexpr uint32_t kQuantRules = 3;
constexpr uint32_t kColumnBase = 16;

core::Status WriteContainer(const ContainerWriter& writer,
                            const std::string& path) {
  obs::Span span("io/serialize/write");
  std::vector<std::byte> bytes = writer.Serialize();
  span.AddArg("bytes", bytes.size());
  obs::Counter("io/bytes_written").Add(bytes.size());
  return core::WriteFileBytes(path, bytes);
}

core::Result<ContainerReader> MapContainer(const std::string& path,
                                           ArtifactType type) {
  // ContainerReader::Map owns the "io/container/map" span and the
  // io/bytes_mapped counter, so direct Map callers (dmt_pack) count too.
  return ContainerReader::Map(path, type);
}

}  // namespace

// ---- TransactionDatabase ------------------------------------------------

core::Status WriteTransactionDatabase(const core::TransactionDatabase& db,
                                      const std::string& path) {
  ContainerWriter writer(ArtifactType::kTransactionDatabase);
  ByteWriter meta;
  meta.PutU64(db.size());
  meta.PutU64(db.total_items());
  meta.PutU64(db.item_universe());
  writer.AddSection(kMeta, meta.bytes());
  writer.AddArraySection<uint64_t>(kOffsets, db.offsets());
  writer.AddArraySection<core::ItemId>(kItems, db.items());
  return WriteContainer(writer, path);
}

namespace {

/// Shared by the owning loader and the mmap view: checks META against the
/// raw sections so both paths reject the same malformed inputs.
core::Status CheckTransactionSections(const ContainerReader& reader,
                                      std::span<const uint64_t> offsets,
                                      std::span<const core::ItemId> items,
                                      uint64_t* item_universe) {
  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> meta_bytes,
                       reader.Section(kMeta));
  ByteReader meta(meta_bytes, reader.name() + ": META");
  DMT_ASSIGN_OR_RETURN(uint64_t num_transactions, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(uint64_t total_items, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(*item_universe, meta.ReadU64());
  DMT_RETURN_NOT_OK(meta.ExpectEnd());
  if (offsets.size() != num_transactions + 1) {
    return core::Status::Corruption(
        reader.name() + ": OFFSETS holds " + std::to_string(offsets.size()) +
        " entries, META declares " + std::to_string(num_transactions) +
        " transactions");
  }
  if (items.size() != total_items) {
    return core::Status::Corruption(
        reader.name() + ": ITEMS holds " + std::to_string(items.size()) +
        " entries, META declares " + std::to_string(total_items));
  }
  return core::Status::OK();
}

}  // namespace

core::Result<core::TransactionDatabase> LoadTransactionDatabase(
    const std::string& path) {
  obs::Span span("io/serialize/load/transactions");
  DMT_ASSIGN_OR_RETURN(
      ContainerReader reader,
      MapContainer(path, ArtifactType::kTransactionDatabase));
  DMT_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                       reader.SectionAs<uint64_t>(kOffsets));
  DMT_ASSIGN_OR_RETURN(std::span<const core::ItemId> items,
                       reader.SectionAs<core::ItemId>(kItems));
  uint64_t declared_universe = 0;
  DMT_RETURN_NOT_OK(
      CheckTransactionSections(reader, offsets, items, &declared_universe));
  DMT_ASSIGN_OR_RETURN(
      core::TransactionDatabase db,
      core::TransactionDatabase::FromColumns(
          std::vector<uint64_t>(offsets.begin(), offsets.end()),
          std::vector<core::ItemId>(items.begin(), items.end())));
  if (db.item_universe() != declared_universe) {
    return core::Status::Corruption(
        path + ": META item universe " + std::to_string(declared_universe) +
        " does not match items (" + std::to_string(db.item_universe()) + ")");
  }
  span.AddArg("transactions", db.size());
  return db;
}

core::Result<MappedTransactionDatabase> MappedTransactionDatabase::Map(
    const std::string& path) {
  obs::Span span("io/serialize/load/transactions_mmap");
  MappedTransactionDatabase view;
  DMT_ASSIGN_OR_RETURN(
      view.reader_,
      MapContainer(path, ArtifactType::kTransactionDatabase));
  DMT_ASSIGN_OR_RETURN(view.offsets_,
                       view.reader_.SectionAs<uint64_t>(kOffsets));
  DMT_ASSIGN_OR_RETURN(view.items_,
                       view.reader_.SectionAs<core::ItemId>(kItems));
  uint64_t declared_universe = 0;
  DMT_RETURN_NOT_OK(CheckTransactionSections(
      view.reader_, view.offsets_, view.items_, &declared_universe));
  // Structural validation in place — the same invariants FromColumns
  // enforces, without copying the arrays.
  const auto& offsets = view.offsets_;
  const auto& items = view.items_;
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != items.size()) {
    return core::Status::Corruption(path + ": malformed offset array");
  }
  size_t universe = 0;
  for (size_t t = 0; t + 1 < offsets.size(); ++t) {
    if (offsets[t] > offsets[t + 1]) {
      return core::Status::Corruption(
          path + ": transaction offsets decrease at entry " +
          std::to_string(t + 1));
    }
    for (uint64_t i = offsets[t] + 1; i < offsets[t + 1]; ++i) {
      if (items[i - 1] >= items[i]) {
        return core::Status::Corruption(
            path + ": transaction " + std::to_string(t) +
            " is not strictly increasing");
      }
    }
    if (offsets[t] < offsets[t + 1]) {
      universe = std::max(
          universe, static_cast<size_t>(items[offsets[t + 1] - 1]) + 1);
    }
  }
  if (universe != declared_universe) {
    return core::Status::Corruption(
        path + ": META item universe " + std::to_string(declared_universe) +
        " does not match items (" + std::to_string(universe) + ")");
  }
  view.item_universe_ = universe;
  span.AddArg("transactions", view.size());
  return view;
}

core::TransactionDatabase MappedTransactionDatabase::ToOwned() const {
  // Map() already validated the invariants, so FromColumns cannot fail.
  auto db = core::TransactionDatabase::FromColumns(
      std::vector<uint64_t>(offsets_.begin(), offsets_.end()),
      std::vector<core::ItemId>(items_.begin(), items_.end()));
  return std::move(db).value();
}

// ---- Dataset ------------------------------------------------------------

core::Status WriteDataset(const core::Dataset& dataset,
                          const std::string& path) {
  ContainerWriter writer(ArtifactType::kDataset);
  ByteWriter schema;
  schema.PutU64(dataset.num_rows());
  schema.PutU32(static_cast<uint32_t>(dataset.num_attributes()));
  schema.PutU32(static_cast<uint32_t>(dataset.num_classes()));
  for (const std::string& name : dataset.class_names()) {
    schema.PutString(name);
  }
  for (size_t a = 0; a < dataset.num_attributes(); ++a) {
    const core::AttributeInfo& info = dataset.attribute(a);
    schema.PutString(info.name);
    schema.PutU8(info.type == core::AttributeType::kNumeric ? 0 : 1);
    if (info.type == core::AttributeType::kCategorical) {
      schema.PutU32(static_cast<uint32_t>(info.categories.size()));
      for (const std::string& category : info.categories) {
        schema.PutString(category);
      }
    }
  }
  writer.AddSection(kMeta, schema.bytes());
  writer.AddArraySection<uint32_t>(kLabels, dataset.labels());
  for (size_t a = 0; a < dataset.num_attributes(); ++a) {
    const uint32_t id = kColumnBase + static_cast<uint32_t>(a);
    if (dataset.attribute(a).type == core::AttributeType::kNumeric) {
      writer.AddArraySection<double>(id, dataset.NumericColumn(a));
    } else {
      writer.AddArraySection<uint32_t>(id, dataset.CategoricalColumn(a));
    }
  }
  return WriteContainer(writer, path);
}

core::Result<core::Dataset> LoadDataset(const std::string& path) {
  obs::Span span("io/serialize/load/dataset");
  DMT_ASSIGN_OR_RETURN(ContainerReader reader,
                       MapContainer(path, ArtifactType::kDataset));
  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> schema_bytes,
                       reader.Section(kMeta));
  ByteReader schema(schema_bytes, path + ": SCHEMA");
  DMT_ASSIGN_OR_RETURN(uint64_t num_rows, schema.ReadU64());
  DMT_ASSIGN_OR_RETURN(uint32_t num_attributes, schema.ReadU32());
  DMT_ASSIGN_OR_RETURN(uint32_t num_classes, schema.ReadU32());
  std::vector<std::string> class_names(num_classes);
  for (uint32_t c = 0; c < num_classes; ++c) {
    DMT_ASSIGN_OR_RETURN(class_names[c], schema.ReadString());
  }

  core::DatasetBuilder builder;
  for (uint32_t a = 0; a < num_attributes; ++a) {
    DMT_ASSIGN_OR_RETURN(std::string name, schema.ReadString());
    DMT_ASSIGN_OR_RETURN(uint8_t type_tag, schema.ReadU8());
    if (type_tag > 1) {
      return core::Status::Corruption(path + ": attribute '" + name +
                                      "' has unknown type tag " +
                                      std::to_string(type_tag));
    }
    const uint32_t column_id = kColumnBase + a;
    if (type_tag == 0) {
      DMT_ASSIGN_OR_RETURN(std::span<const double> column,
                           reader.SectionAs<double>(column_id));
      if (column.size() != num_rows) {
        return core::Status::Corruption(
            path + ": numeric column '" + name + "' holds " +
            std::to_string(column.size()) + " values for " +
            std::to_string(num_rows) + " rows");
      }
      builder.AddNumericColumn(
          std::move(name), std::vector<double>(column.begin(), column.end()));
    } else {
      DMT_ASSIGN_OR_RETURN(uint32_t num_categories, schema.ReadU32());
      std::vector<std::string> categories(num_categories);
      for (uint32_t c = 0; c < num_categories; ++c) {
        DMT_ASSIGN_OR_RETURN(categories[c], schema.ReadString());
      }
      DMT_ASSIGN_OR_RETURN(std::span<const uint32_t> column,
                           reader.SectionAs<uint32_t>(column_id));
      if (column.size() != num_rows) {
        return core::Status::Corruption(
            path + ": categorical column '" + name + "' holds " +
            std::to_string(column.size()) + " values for " +
            std::to_string(num_rows) + " rows");
      }
      builder.AddCategoricalColumn(
          std::move(name),
          std::vector<uint32_t>(column.begin(), column.end()),
          std::move(categories));
    }
  }
  DMT_RETURN_NOT_OK(schema.ExpectEnd());

  DMT_ASSIGN_OR_RETURN(std::span<const uint32_t> labels,
                       reader.SectionAs<uint32_t>(kLabels));
  if (labels.size() != num_rows) {
    return core::Status::Corruption(
        path + ": LABELS holds " + std::to_string(labels.size()) +
        " entries for " + std::to_string(num_rows) + " rows");
  }
  builder.SetLabels(std::vector<uint32_t>(labels.begin(), labels.end()),
                    std::move(class_names));
  auto built = builder.Build();
  if (!built.ok()) {
    // Shape/range failures out of a checksummed file are corruption, not
    // caller error — rewrap so the caller sees one code for bad files.
    return core::Status::Corruption(path + ": " +
                                    built.status().message());
  }
  span.AddArg("rows", num_rows);
  return std::move(built).value();
}

// ---- MiningResult -------------------------------------------------------

core::Status WriteMiningResult(const assoc::MiningResult& result,
                               const std::string& path) {
  ContainerWriter writer(ArtifactType::kMiningResult);
  std::vector<uint64_t> offsets;
  offsets.reserve(result.itemsets.size() + 1);
  std::vector<core::ItemId> items;
  std::vector<uint32_t> supports;
  supports.reserve(result.itemsets.size());
  offsets.push_back(0);
  for (const assoc::FrequentItemset& itemset : result.itemsets) {
    items.insert(items.end(), itemset.items.begin(), itemset.items.end());
    offsets.push_back(items.size());
    supports.push_back(itemset.support);
  }
  ByteWriter meta;
  meta.PutU64(result.itemsets.size());
  meta.PutU64(items.size());
  meta.PutU64(result.conditional_trees_built);
  meta.PutU64(result.fp_nodes_allocated);
  meta.PutU64(result.tidset_intersections);
  meta.PutU64(result.partitions_mined);
  meta.PutU64(result.bytes_mapped);
  meta.PutU64(result.passes.size());
  for (const assoc::PassStats& pass : result.passes) {
    meta.PutU64(pass.pass);
    meta.PutU64(pass.candidates);
    meta.PutU64(pass.frequent);
  }
  writer.AddSection(kMeta, meta.bytes());
  writer.AddArraySection<uint64_t>(kOffsets, std::span(offsets));
  writer.AddArraySection<core::ItemId>(kItems, std::span(items));
  writer.AddArraySection<uint32_t>(kSupports, std::span(supports));
  return WriteContainer(writer, path);
}

core::Result<assoc::MiningResult> LoadMiningResult(const std::string& path) {
  obs::Span span("io/serialize/load/mining_result");
  DMT_ASSIGN_OR_RETURN(ContainerReader reader,
                       MapContainer(path, ArtifactType::kMiningResult));
  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> meta_bytes,
                       reader.Section(kMeta));
  ByteReader meta(meta_bytes, path + ": META");
  DMT_ASSIGN_OR_RETURN(uint64_t num_itemsets, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(uint64_t total_items, meta.ReadU64());
  assoc::MiningResult result;
  DMT_ASSIGN_OR_RETURN(result.conditional_trees_built, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(result.fp_nodes_allocated, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(result.tidset_intersections, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(result.partitions_mined, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(result.bytes_mapped, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(uint64_t num_passes, meta.ReadU64());
  if (num_passes > meta.remaining() / (3 * sizeof(uint64_t))) {
    return core::Status::Corruption(path + ": pass census count " +
                                    std::to_string(num_passes) +
                                    " exceeds the META section");
  }
  result.passes.resize(num_passes);
  for (assoc::PassStats& pass : result.passes) {
    DMT_ASSIGN_OR_RETURN(uint64_t pass_k, meta.ReadU64());
    DMT_ASSIGN_OR_RETURN(uint64_t candidates, meta.ReadU64());
    DMT_ASSIGN_OR_RETURN(uint64_t frequent, meta.ReadU64());
    pass.pass = pass_k;
    pass.candidates = candidates;
    pass.frequent = frequent;
  }
  DMT_RETURN_NOT_OK(meta.ExpectEnd());

  DMT_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                       reader.SectionAs<uint64_t>(kOffsets));
  DMT_ASSIGN_OR_RETURN(std::span<const core::ItemId> items,
                       reader.SectionAs<core::ItemId>(kItems));
  DMT_ASSIGN_OR_RETURN(std::span<const uint32_t> supports,
                       reader.SectionAs<uint32_t>(kSupports));
  if (offsets.size() != num_itemsets + 1 || items.size() != total_items ||
      supports.size() != num_itemsets) {
    return core::Status::Corruption(
        path + ": section sizes disagree with the META counts");
  }
  if (num_itemsets > 0 &&
      (offsets.front() != 0 || offsets.back() != items.size())) {
    return core::Status::Corruption(path + ": malformed itemset offsets");
  }
  result.itemsets.resize(num_itemsets);
  for (uint64_t i = 0; i < num_itemsets; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return core::Status::Corruption(
          path + ": itemset offsets decrease at entry " + std::to_string(i));
    }
    assoc::FrequentItemset& itemset = result.itemsets[i];
    itemset.items.assign(items.begin() + offsets[i],
                         items.begin() + offsets[i + 1]);
    for (size_t j = 1; j < itemset.items.size(); ++j) {
      if (itemset.items[j - 1] >= itemset.items[j]) {
        return core::Status::Corruption(
            path + ": itemset " + std::to_string(i) + " is not sorted");
      }
    }
    itemset.support = supports[i];
  }
  span.AddArg("itemsets", num_itemsets);
  return result;
}

// ---- Rule sets ----------------------------------------------------------

namespace {

/// Shared rule-stream encoding for plain and quantitative rule sets: a
/// u64 count followed by one record per rule — the two item arrays, the
/// absolute support count, and all five measures (supp, conf, lift,
/// conviction, leverage) as raw IEEE-754 bit patterns.
void AppendRuleStream(const std::vector<assoc::AssociationRule>& rules,
                      ByteWriter* stream) {
  stream->PutU64(rules.size());
  for (const assoc::AssociationRule& rule : rules) {
    stream->PutArray<core::ItemId>(rule.antecedent);
    stream->PutArray<core::ItemId>(rule.consequent);
    stream->PutU32(rule.support_count);
    stream->PutF64(rule.support);
    stream->PutF64(rule.confidence);
    stream->PutF64(rule.lift);
    stream->PutF64(rule.conviction);
    stream->PutF64(rule.leverage);
  }
}

core::Result<std::vector<assoc::AssociationRule>> ReadRuleStream(
    ByteReader* stream, const std::string& context) {
  DMT_ASSIGN_OR_RETURN(uint64_t num_rules, stream->ReadU64());
  // Each rule needs at least its two array headers + fixed fields.
  if (num_rules > stream->remaining() / (2 * sizeof(uint64_t))) {
    return core::Status::Corruption(context + ": rule count " +
                                    std::to_string(num_rules) +
                                    " exceeds the section");
  }
  std::vector<assoc::AssociationRule> rules(num_rules);
  for (assoc::AssociationRule& rule : rules) {
    DMT_ASSIGN_OR_RETURN(
        rule.antecedent,
        stream->ReadArray<core::ItemId>(stream->remaining()));
    DMT_ASSIGN_OR_RETURN(
        rule.consequent,
        stream->ReadArray<core::ItemId>(stream->remaining()));
    DMT_ASSIGN_OR_RETURN(rule.support_count, stream->ReadU32());
    DMT_ASSIGN_OR_RETURN(rule.support, stream->ReadF64());
    DMT_ASSIGN_OR_RETURN(rule.confidence, stream->ReadF64());
    DMT_ASSIGN_OR_RETURN(rule.lift, stream->ReadF64());
    DMT_ASSIGN_OR_RETURN(rule.conviction, stream->ReadF64());
    DMT_ASSIGN_OR_RETURN(rule.leverage, stream->ReadF64());
  }
  return rules;
}

}  // namespace

core::Status WriteRuleSet(const std::vector<assoc::AssociationRule>& rules,
                          const std::string& path) {
  ContainerWriter writer(ArtifactType::kRuleSet);
  ByteWriter stream;
  AppendRuleStream(rules, &stream);
  writer.AddSection(kRules, stream.bytes());
  return WriteContainer(writer, path);
}

core::Result<std::vector<assoc::AssociationRule>> LoadRuleSet(
    const std::string& path) {
  obs::Span span("io/serialize/load/rule_set");
  DMT_ASSIGN_OR_RETURN(ContainerReader reader,
                       MapContainer(path, ArtifactType::kRuleSet));
  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> payload,
                       reader.Section(kRules));
  ByteReader stream(payload, path + ": RULES");
  DMT_ASSIGN_OR_RETURN(std::vector<assoc::AssociationRule> rules,
                       ReadRuleStream(&stream, path + ": RULES"));
  DMT_RETURN_NOT_OK(stream.ExpectEnd());
  span.AddArg("rules", rules.size());
  return rules;
}

// ---- Quantitative rule sets ---------------------------------------------

core::Status WriteQuantRuleSet(const assoc::QuantRuleSet& rule_set,
                               const std::string& path) {
  ContainerWriter writer(ArtifactType::kQuantRuleSet);
  ByteWriter meta;
  meta.PutF64(rule_set.partial_completeness);
  meta.PutU64(rule_set.itemsets_mined);
  meta.PutU64(rule_set.itemsets_attribute_distinct);
  writer.AddSection(kMeta, meta.bytes());

  ByteWriter items;
  items.PutU64(rule_set.items.size());
  for (const assoc::QuantItem& item : rule_set.items) {
    items.PutU32(item.attribute);
    items.PutU8(item.is_categorical ? 1 : 0);
    items.PutU32(item.category);
    items.PutF64(item.lo);
    items.PutF64(item.hi);
    items.PutU32(item.first_bin);
    items.PutU32(item.last_bin);
    items.PutString(item.label);
  }
  writer.AddSection(kQuantItems, items.bytes());

  ByteWriter rules;
  AppendRuleStream(rule_set.rules, &rules);
  writer.AddSection(kQuantRules, rules.bytes());
  return WriteContainer(writer, path);
}

core::Result<assoc::QuantRuleSet> LoadQuantRuleSet(const std::string& path) {
  obs::Span span("io/serialize/load/quant_rule_set");
  DMT_ASSIGN_OR_RETURN(ContainerReader reader,
                       MapContainer(path, ArtifactType::kQuantRuleSet));
  assoc::QuantRuleSet rule_set;

  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> meta_payload,
                       reader.Section(kMeta));
  ByteReader meta(meta_payload, path + ": META");
  DMT_ASSIGN_OR_RETURN(rule_set.partial_completeness, meta.ReadF64());
  DMT_ASSIGN_OR_RETURN(rule_set.itemsets_mined, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(rule_set.itemsets_attribute_distinct,
                       meta.ReadU64());
  DMT_RETURN_NOT_OK(meta.ExpectEnd());

  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> items_payload,
                       reader.Section(kQuantItems));
  ByteReader items(items_payload, path + ": QUANT_ITEMS");
  DMT_ASSIGN_OR_RETURN(uint64_t num_items, items.ReadU64());
  if (num_items > items.remaining() / sizeof(uint32_t)) {
    return core::Status::Corruption(path + ": item count " +
                                    std::to_string(num_items) +
                                    " exceeds the QUANT_ITEMS section");
  }
  rule_set.items.resize(num_items);
  for (assoc::QuantItem& item : rule_set.items) {
    DMT_ASSIGN_OR_RETURN(item.attribute, items.ReadU32());
    DMT_ASSIGN_OR_RETURN(uint8_t is_categorical, items.ReadU8());
    item.is_categorical = is_categorical != 0;
    DMT_ASSIGN_OR_RETURN(item.category, items.ReadU32());
    DMT_ASSIGN_OR_RETURN(item.lo, items.ReadF64());
    DMT_ASSIGN_OR_RETURN(item.hi, items.ReadF64());
    DMT_ASSIGN_OR_RETURN(item.first_bin, items.ReadU32());
    DMT_ASSIGN_OR_RETURN(item.last_bin, items.ReadU32());
    DMT_ASSIGN_OR_RETURN(item.label, items.ReadString());
    if (!item.is_categorical && item.first_bin > item.last_bin) {
      return core::Status::Corruption(
          path + ": quant item interval run decreases (" +
          std::to_string(item.first_bin) + " > " +
          std::to_string(item.last_bin) + ")");
    }
  }
  DMT_RETURN_NOT_OK(items.ExpectEnd());

  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> rules_payload,
                       reader.Section(kQuantRules));
  ByteReader rules(rules_payload, path + ": QUANT_RULES");
  DMT_ASSIGN_OR_RETURN(rule_set.rules,
                       ReadRuleStream(&rules, path + ": QUANT_RULES"));
  DMT_RETURN_NOT_OK(rules.ExpectEnd());
  for (const assoc::AssociationRule& rule : rule_set.rules) {
    for (const assoc::Itemset* side : {&rule.antecedent, &rule.consequent}) {
      for (core::ItemId id : *side) {
        if (id >= rule_set.items.size()) {
          return core::Status::Corruption(
              path + ": rule references item " + std::to_string(id) +
              " beyond the " + std::to_string(rule_set.items.size()) +
              " quant items");
        }
      }
    }
  }
  span.AddArg("rules", rule_set.rules.size());
  return rule_set;
}

// ---- DecisionTree -------------------------------------------------------

core::Status WriteDecisionTree(const tree::DecisionTree& tree,
                               const std::string& path) {
  ContainerWriter writer(ArtifactType::kDecisionTree);
  ByteWriter meta;
  meta.PutU64(tree.num_nodes());
  writer.AddSection(kMeta, meta.bytes());

  ByteWriter nodes;
  for (size_t n = 0; n < tree.num_nodes(); ++n) {
    const tree::TreeNode& node = tree.node(n);
    nodes.PutU8(node.is_leaf ? 1 : 0);
    nodes.PutU8(static_cast<uint8_t>(node.kind));
    nodes.PutU32(node.majority_class);
    nodes.PutU32(node.attribute);
    nodes.PutU32(node.category);
    nodes.PutF64(node.threshold);
    nodes.PutArray<uint32_t>(node.class_counts);
    nodes.PutArray<uint32_t>(node.children);
  }
  writer.AddSection(kNodes, nodes.bytes());

  ByteWriter names;
  const auto& attribute_names =
      tree::internal::TreeAccess::AttributeNames(tree);
  const auto& attribute_categories =
      tree::internal::TreeAccess::AttributeCategories(tree);
  const auto& class_names = tree::internal::TreeAccess::ClassNames(tree);
  names.PutU32(static_cast<uint32_t>(attribute_names.size()));
  for (const std::string& name : attribute_names) names.PutString(name);
  names.PutU32(static_cast<uint32_t>(attribute_categories.size()));
  for (const auto& categories : attribute_categories) {
    names.PutU32(static_cast<uint32_t>(categories.size()));
    for (const std::string& category : categories) {
      names.PutString(category);
    }
  }
  names.PutU32(static_cast<uint32_t>(class_names.size()));
  for (const std::string& name : class_names) names.PutString(name);
  writer.AddSection(kNames, names.bytes());
  return WriteContainer(writer, path);
}

core::Result<tree::DecisionTree> LoadDecisionTree(const std::string& path) {
  obs::Span span("io/serialize/load/tree");
  DMT_ASSIGN_OR_RETURN(ContainerReader reader,
                       MapContainer(path, ArtifactType::kDecisionTree));
  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> meta_bytes,
                       reader.Section(kMeta));
  ByteReader meta(meta_bytes, path + ": META");
  DMT_ASSIGN_OR_RETURN(uint64_t num_nodes, meta.ReadU64());
  DMT_RETURN_NOT_OK(meta.ExpectEnd());
  if (num_nodes == 0) {
    return core::Status::Corruption(path + ": tree with zero nodes");
  }

  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> node_bytes,
                       reader.Section(kNodes));
  ByteReader nodes(node_bytes, path + ": NODES");
  // A serialized node occupies at least its fixed fields.
  if (num_nodes > node_bytes.size() / 22) {
    return core::Status::Corruption(path + ": node count " +
                                    std::to_string(num_nodes) +
                                    " exceeds the NODES section");
  }
  tree::DecisionTree tree;
  auto& arena = tree::internal::TreeAccess::Nodes(tree);
  arena.resize(num_nodes);
  for (uint64_t n = 0; n < num_nodes; ++n) {
    tree::TreeNode& node = arena[n];
    DMT_ASSIGN_OR_RETURN(uint8_t is_leaf, nodes.ReadU8());
    DMT_ASSIGN_OR_RETURN(uint8_t kind, nodes.ReadU8());
    if (is_leaf > 1 || kind > 2) {
      return core::Status::Corruption(path + ": node " + std::to_string(n) +
                                      " has an invalid leaf/kind tag");
    }
    node.is_leaf = is_leaf != 0;
    node.kind = static_cast<tree::SplitKind>(kind);
    DMT_ASSIGN_OR_RETURN(node.majority_class, nodes.ReadU32());
    DMT_ASSIGN_OR_RETURN(node.attribute, nodes.ReadU32());
    DMT_ASSIGN_OR_RETURN(node.category, nodes.ReadU32());
    DMT_ASSIGN_OR_RETURN(node.threshold, nodes.ReadF64());
    DMT_ASSIGN_OR_RETURN(node.class_counts,
                         nodes.ReadArray<uint32_t>(nodes.remaining()));
    DMT_ASSIGN_OR_RETURN(node.children,
                         nodes.ReadArray<uint32_t>(nodes.remaining()));
    if (node.class_counts.empty() ||
        node.majority_class >= node.class_counts.size()) {
      return core::Status::Corruption(
          path + ": node " + std::to_string(n) +
          " majority class is out of its histogram's range");
    }
    for (uint32_t child : node.children) {
      if (child >= num_nodes || child == n) {
        return core::Status::Corruption(path + ": node " +
                                        std::to_string(n) +
                                        " has an out-of-range child index");
      }
    }
    if (!node.is_leaf && node.children.empty()) {
      return core::Status::Corruption(path + ": internal node " +
                                      std::to_string(n) + " has no children");
    }
  }
  DMT_RETURN_NOT_OK(nodes.ExpectEnd());

  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> name_bytes,
                       reader.Section(kNames));
  ByteReader names(name_bytes, path + ": NAMES");
  DMT_ASSIGN_OR_RETURN(uint32_t num_attribute_names, names.ReadU32());
  auto& attribute_names = tree::internal::TreeAccess::AttributeNames(tree);
  attribute_names.resize(num_attribute_names);
  for (std::string& name : attribute_names) {
    DMT_ASSIGN_OR_RETURN(name, names.ReadString());
  }
  DMT_ASSIGN_OR_RETURN(uint32_t num_attribute_categories, names.ReadU32());
  auto& attribute_categories =
      tree::internal::TreeAccess::AttributeCategories(tree);
  attribute_categories.resize(num_attribute_categories);
  for (auto& categories : attribute_categories) {
    DMT_ASSIGN_OR_RETURN(uint32_t count, names.ReadU32());
    categories.resize(count);
    for (std::string& category : categories) {
      DMT_ASSIGN_OR_RETURN(category, names.ReadString());
    }
  }
  DMT_ASSIGN_OR_RETURN(uint32_t num_class_names, names.ReadU32());
  auto& class_names = tree::internal::TreeAccess::ClassNames(tree);
  class_names.resize(num_class_names);
  for (std::string& name : class_names) {
    DMT_ASSIGN_OR_RETURN(name, names.ReadString());
  }
  DMT_RETURN_NOT_OK(names.ExpectEnd());
  span.AddArg("nodes", num_nodes);
  return tree;
}

// ---- k-means models -----------------------------------------------------

core::Status WriteKMeansModel(const cluster::ClusteringResult& model,
                              const std::string& path) {
  ContainerWriter writer(ArtifactType::kKMeansModel);
  ByteWriter meta;
  meta.PutU64(model.centers.size());
  meta.PutU64(model.centers.dim());
  meta.PutU64(model.assignments.size());
  meta.PutU64(model.iterations);
  meta.PutU64(model.distance_computations);
  meta.PutF64(model.sse);
  writer.AddSection(kMeta, meta.bytes());
  writer.AddArraySection<double>(kCenters, std::span(model.centers.data()));
  writer.AddArraySection<uint32_t>(kAssignments,
                                   std::span(model.assignments));
  return WriteContainer(writer, path);
}

core::Result<cluster::ClusteringResult> LoadKMeansModel(
    const std::string& path) {
  obs::Span span("io/serialize/load/kmeans");
  DMT_ASSIGN_OR_RETURN(ContainerReader reader,
                       MapContainer(path, ArtifactType::kKMeansModel));
  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> meta_bytes,
                       reader.Section(kMeta));
  ByteReader meta(meta_bytes, path + ": META");
  DMT_ASSIGN_OR_RETURN(uint64_t k, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(uint64_t dim, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(uint64_t num_points, meta.ReadU64());
  cluster::ClusteringResult model;
  DMT_ASSIGN_OR_RETURN(model.iterations, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(model.distance_computations, meta.ReadU64());
  DMT_ASSIGN_OR_RETURN(model.sse, meta.ReadF64());
  DMT_RETURN_NOT_OK(meta.ExpectEnd());

  DMT_ASSIGN_OR_RETURN(std::span<const double> centers,
                       reader.SectionAs<double>(kCenters));
  if (dim == 0 ? !centers.empty() : centers.size() / dim != k ||
                                        centers.size() % dim != 0) {
    return core::Status::Corruption(
        path + ": CENTERS holds " + std::to_string(centers.size()) +
        " doubles, META declares k=" + std::to_string(k) + " dim=" +
        std::to_string(dim));
  }
  auto center_set = core::PointSet::FromFlat(
      dim, std::vector<double>(centers.begin(), centers.end()));
  if (!center_set.ok()) {
    return core::Status::Corruption(path + ": " +
                                    center_set.status().message());
  }
  model.centers = std::move(center_set).value();

  DMT_ASSIGN_OR_RETURN(std::span<const uint32_t> assignments,
                       reader.SectionAs<uint32_t>(kAssignments));
  if (assignments.size() != num_points) {
    return core::Status::Corruption(
        path + ": ASSIGNMENTS holds " + std::to_string(assignments.size()) +
        " entries, META declares " + std::to_string(num_points));
  }
  for (uint32_t a : assignments) {
    if (a >= k) {
      return core::Status::Corruption(
          path + ": assignment indexes cluster " + std::to_string(a) +
          " but only " + std::to_string(k) + " centers exist");
    }
  }
  model.assignments.assign(assignments.begin(), assignments.end());
  span.AddArg("centers", k);
  return model;
}

}  // namespace dmt::io
