#include "core/point_set.h"

#include <cmath>

#include "core/check.h"
#include "core/string_util.h"

namespace dmt::core {

Result<PointSet> PointSet::FromFlat(size_t dim, std::vector<double> data) {
  if (dim == 0) {
    return Status::InvalidArgument("PointSet dimensionality must be > 0");
  }
  if (data.size() % dim != 0) {
    return Status::InvalidArgument(
        StrFormat("flat data of %zu doubles is not a multiple of dim %zu",
                  data.size(), dim));
  }
  PointSet out(dim);
  out.data_ = std::move(data);
  return out;
}

void PointSet::Add(std::span<const double> point) {
  DMT_CHECK_EQ(point.size(), dim_);
  data_.insert(data_.end(), point.begin(), point.end());
}

std::span<const double> PointSet::point(size_t i) const {
  DMT_DCHECK(i < size());
  return {data_.data() + i * dim_, dim_};
}

std::span<double> PointSet::mutable_point(size_t i) {
  DMT_DCHECK(i < size());
  return {data_.data() + i * dim_, dim_};
}

PointSet PointSet::Subset(std::span<const size_t> rows) const {
  PointSet out(dim_);
  out.data_.reserve(rows.size() * dim_);
  for (size_t row : rows) {
    auto p = point(row);
    out.data_.insert(out.data_.end(), p.begin(), p.end());
  }
  return out;
}

void PointSet::Bounds(std::vector<double>* mins,
                      std::vector<double>* maxs) const {
  DMT_CHECK(!empty());
  mins->assign(dim_, 0.0);
  maxs->assign(dim_, 0.0);
  for (size_t d = 0; d < dim_; ++d) {
    (*mins)[d] = (*maxs)[d] = data_[d];
  }
  for (size_t i = 1; i < size(); ++i) {
    auto p = point(i);
    for (size_t d = 0; d < dim_; ++d) {
      if (p[d] < (*mins)[d]) (*mins)[d] = p[d];
      if (p[d] > (*maxs)[d]) (*maxs)[d] = p[d];
    }
  }
}

void PointSet::Standardize() {
  if (empty()) return;
  const size_t n = size();
  std::vector<double> mean(dim_, 0.0);
  std::vector<double> var(dim_, 0.0);
  for (size_t i = 0; i < n; ++i) {
    auto p = point(i);
    for (size_t d = 0; d < dim_; ++d) mean[d] += p[d];
  }
  for (size_t d = 0; d < dim_; ++d) mean[d] /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    auto p = point(i);
    for (size_t d = 0; d < dim_; ++d) {
      double diff = p[d] - mean[d];
      var[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dim_; ++d) {
    var[d] = std::sqrt(var[d] / static_cast<double>(n));
  }
  for (size_t i = 0; i < n; ++i) {
    auto p = mutable_point(i);
    for (size_t d = 0; d < dim_; ++d) {
      p[d] -= mean[d];
      if (var[d] > 0.0) p[d] /= var[d];
    }
  }
}

}  // namespace dmt::core
