#include "core/sequence.h"

#include <algorithm>

#include "core/check.h"
#include "core/kernels/kernels.h"

namespace dmt::core {

size_t Sequence::TotalItems() const {
  size_t total = 0;
  for (const auto& element : elements) total += element.size();
  return total;
}

bool Sequence::Contains(const Sequence& other) const {
  // Greedy left-to-right matching is correct for subsequence containment:
  // matching each element of `other` at the earliest possible position
  // leaves the largest suffix available for the rest.
  size_t pos = 0;
  for (const auto& needle : other.elements) {
    bool matched = false;
    for (; pos < elements.size(); ++pos) {
      const auto& haystack = elements[pos];
      if (std::includes(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end())) {
        matched = true;
        ++pos;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

uint64_t Sequence::ItemSignature() const {
  uint64_t signature = 0;
  for (const auto& element : elements) {
    for (ItemId item : element) {
      signature |= kernels::SignatureOfItem(item);
    }
  }
  return signature;
}

void SequenceDatabase::Add(const Sequence& sequence) {
  Sequence cleaned;
  cleaned.elements.reserve(sequence.elements.size());
  for (const auto& element : sequence.elements) {
    std::vector<ItemId> sorted(element);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    if (sorted.empty()) continue;
    item_universe_ =
        std::max(item_universe_, static_cast<size_t>(sorted.back()) + 1);
    cleaned.elements.push_back(std::move(sorted));
  }
  sequences_.push_back(std::move(cleaned));
}

const Sequence& SequenceDatabase::sequence(size_t i) const {
  DMT_CHECK_LT(i, sequences_.size());
  return sequences_[i];
}

double SequenceDatabase::average_elements() const {
  if (empty()) return 0.0;
  size_t total = 0;
  for (const auto& s : sequences_) total += s.size();
  return static_cast<double>(total) / static_cast<double>(size());
}

}  // namespace dmt::core
