// Scalar kernel bodies shared by every dispatch level. Each arch
// translation unit defines DMT_KERNEL_IMPL_NAMESPACE before including
// this header, so the bodies are instantiated once per TU under that
// TU's arch flags with internal-namespace symbols — distinct copies per
// level, no ODR aliasing between differently-compiled instantiations.
//
// The sum-reduction kernels (SquaredEuclidean, Manhattan) accumulate in
// strict ascending index order: that order IS the determinism contract,
// and vector levels reuse these exact bodies for the pairwise forms.
// Kernel TUs compile with -ffp-contract=off so no level fuses the
// multiply-add into an FMA the scalar baseline would not perform.
#ifndef DMT_KERNEL_IMPL_NAMESPACE
#error "define DMT_KERNEL_IMPL_NAMESPACE before including kernels_common.h"
#endif

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace dmt::core::kernels {
namespace DMT_KERNEL_IMPL_NAMESPACE {

inline size_t PopcountWords(const uint64_t* words, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

inline size_t IntersectionCountWords(const uint64_t* a, const uint64_t* b,
                                     size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

inline size_t IntersectInplaceWords(uint64_t* a, const uint64_t* b,
                                    size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    a[i] &= b[i];
    total += std::popcount(a[i]);
  }
  return total;
}

inline size_t IntersectIntoWords(uint64_t* out, const uint64_t* a,
                                 const uint64_t* b, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] & b[i];
    total += std::popcount(out[i]);
  }
  return total;
}

inline size_t ToIndicesWords(const uint64_t* words, size_t n,
                             uint32_t* out) {
  size_t count = 0;
  for (size_t w = 0; w < n; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      out[count++] =
          static_cast<uint32_t>(w * 64 + std::countr_zero(word));
      word &= word - 1;
    }
  }
  return count;
}

inline bool MaskIsSubsetWords(const uint64_t* sub, const uint64_t* super,
                              size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

inline double SquaredEuclideanSeq(const double* a, const double* b,
                                  size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double diff = a[i] - b[i];
    total += diff * diff;
  }
  return total;
}

inline double ManhattanSeq(const double* a, const double* b, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += std::fabs(a[i] - b[i]);
  return total;
}

inline double ChebyshevSeq(const double* a, const double* b, size_t n) {
  double worst = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double diff = std::fabs(a[i] - b[i]);
    if (diff > worst) worst = diff;
  }
  return worst;
}

inline void SquaredEuclideanToManySeq(const double* point,
                                      const double* soa, size_t stride,
                                      size_t count, size_t dim,
                                      double* out) {
  for (size_t c = 0; c < count; ++c) {
    double total = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      double diff = point[d] - soa[d * stride + c];
      total += diff * diff;
    }
    out[c] = total;
  }
}

}  // namespace DMT_KERNEL_IMPL_NAMESPACE
}  // namespace dmt::core::kernels
