// Runtime dispatch: picks the best compiled-in kernel table the host CPU
// supports, once, at the first Ops() call. DMT_KERNEL_LEVEL=scalar|avx2|
// avx512 clamps the choice (downward only — requesting a level the host
// or build lacks falls back with a warning, so differential CI scripts
// can force levels without probing the hardware first).
#include "core/kernels/kernels.h"

#include <cstdlib>
#include <cstring>

#include "obs/log.h"

namespace dmt::core::kernels {

namespace scalar_impl {
const KernelOps& Table();
}
#if defined(DMT_KERNELS_HAVE_AVX2)
namespace avx2_impl {
const KernelOps& Table();
}
#endif
#if defined(DMT_KERNELS_HAVE_AVX512)
namespace avx512_impl {
const KernelOps& Table();
}
#endif

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar: return "scalar";
    case KernelLevel::kAvx2: return "avx2";
    case KernelLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

bool ParseKernelLevel(const char* name, KernelLevel* out) {
  if (std::strcmp(name, "scalar") == 0) {
    *out = KernelLevel::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = KernelLevel::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = KernelLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

KernelLevel MaxSupportedLevel() {
#if defined(DMT_KERNELS_HAVE_AVX512)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return KernelLevel::kAvx512;
  }
#endif
#if defined(DMT_KERNELS_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return KernelLevel::kAvx2;
  }
#endif
  return KernelLevel::kScalar;
}

const KernelOps* OpsForLevel(KernelLevel level) {
  if (static_cast<int>(level) > static_cast<int>(MaxSupportedLevel())) {
    return nullptr;
  }
  switch (level) {
    case KernelLevel::kScalar:
      return &scalar_impl::Table();
    case KernelLevel::kAvx2:
#if defined(DMT_KERNELS_HAVE_AVX2)
      return &avx2_impl::Table();
#else
      return nullptr;
#endif
    case KernelLevel::kAvx512:
#if defined(DMT_KERNELS_HAVE_AVX512)
      return &avx512_impl::Table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

namespace {

KernelLevel ResolveLevel() {
  const KernelLevel best = MaxSupportedLevel();
  const char* env = std::getenv("DMT_KERNEL_LEVEL");
  if (env == nullptr || *env == '\0') return best;
  KernelLevel requested;
  if (!ParseKernelLevel(env, &requested)) {
    obs::Log(obs::LogSeverity::kWarning,
             "unrecognized DMT_KERNEL_LEVEL '%s' "
             "(want scalar|avx2|avx512); using %s",
             env, KernelLevelName(best));
    return best;
  }
  if (static_cast<int>(requested) > static_cast<int>(best)) {
    obs::Log(obs::LogSeverity::kWarning,
             "DMT_KERNEL_LEVEL=%s is not supported by this build/host; "
             "using %s",
             env, KernelLevelName(best));
    return best;
  }
  return requested;
}

}  // namespace

const KernelOps& Ops() {
  // Magic static: resolved exactly once, thread-safe, pinned for the
  // process lifetime so every subsystem sees one level.
  static const KernelOps& ops = *OpsForLevel(ResolveLevel());
  return ops;
}

KernelLevel ActiveLevel() { return Ops().level; }

}  // namespace dmt::core::kernels
