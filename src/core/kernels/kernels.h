// Runtime-dispatched hot-loop kernels: one scalar implementation (the
// permanent differential baseline, same pattern as SplitSearch::kNaive)
// plus AVX2 and AVX-512 variants selected once at startup via CPUID.
//
// Determinism contract: every kernel is bit-identical to its scalar
// counterpart at every dispatch level.
//  - Integer/bit kernels (popcount, intersect, subset, to_indices) are
//    exact at any evaluation order.
//  - Sum-reduction float kernels (squared_euclidean, manhattan) keep the
//    scalar's sequential accumulation order as the contract; their table
//    entries stay scalar code at every level (vector lanes would reorder
//    the adds), and the SIMD win comes from the batched form instead.
//  - squared_euclidean_to_many assigns one *candidate* per vector lane,
//    so each lane performs the exact scalar instruction sequence
//    (subtract, multiply, add — never an FMA contraction; the kernel
//    translation units compile with -ffp-contract=off) and lanes are
//    stored back in fixed index order. Bit-identical to calling the
//    scalar pairwise kernel per candidate.
//  - chebyshev is a max-reduction: exact (no rounding) at any order for
//    non-NaN inputs, so it vectorizes freely.
// tests/core/kernels_test.cc asserts all of this bit-for-bit rather
// than assuming it.
//
// The level is pinned at the first Ops() call: CPUID picks the best
// compiled-in level the host supports, overridable (downward only) with
// DMT_KERNEL_LEVEL=scalar|avx2|avx512 for differential testing.
// OpsForLevel() exposes every supported table directly so tests and
// benches can sweep levels inside one process.
#ifndef DMT_CORE_KERNELS_KERNELS_H_
#define DMT_CORE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "core/kernels/aligned.h"

namespace dmt::core::kernels {

enum class KernelLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Dispatch table. All pointers are non-null in every table.
struct KernelOps {
  KernelLevel level;

  // -- bitset kernels over arrays of 64-bit words --------------------
  /// Total set bits in words[0, n).
  size_t (*popcount)(const uint64_t* words, size_t n);
  /// popcount(a & b) without materializing the intersection (fused
  /// and+popcount).
  size_t (*intersection_count)(const uint64_t* a, const uint64_t* b,
                               size_t n);
  /// a &= b; returns popcount of the result in the same pass.
  size_t (*intersect_inplace)(uint64_t* a, const uint64_t* b, size_t n);
  /// out = a & b; returns popcount of the result in the same pass.
  size_t (*intersect_into)(uint64_t* out, const uint64_t* a,
                           const uint64_t* b, size_t n);
  /// Writes the ascending bit indices of words[0, n) into out (caller
  /// guarantees capacity); returns the number written.
  size_t (*to_indices)(const uint64_t* words, size_t n, uint32_t* out);

  // -- containment kernels -------------------------------------------
  /// True when every set bit of sub is set in super: (sub & ~super) == 0
  /// over n words, with early exit.
  bool (*mask_is_subset)(const uint64_t* sub, const uint64_t* super,
                         size_t n);

  // -- dense distance kernels ----------------------------------------
  double (*squared_euclidean)(const double* a, const double* b, size_t n);
  double (*manhattan)(const double* a, const double* b, size_t n);
  double (*chebyshev)(const double* a, const double* b, size_t n);
  /// out[c] = SquaredEuclidean(point, candidate c) for c in [0, count),
  /// candidates stored dimension-major: candidate c's coordinate d is
  /// soa[d * stride + c] (stride >= count allows sub-blocks of a wider
  /// SoA matrix). Bit-identical to the pairwise scalar kernel per
  /// candidate.
  void (*squared_euclidean_to_many)(const double* point, const double* soa,
                                    size_t stride, size_t count, size_t dim,
                                    double* out);
};

/// The table production code uses; resolved once at first use (CPUID
/// best level, clamped down by DMT_KERNEL_LEVEL when set) and pinned for
/// the process lifetime.
const KernelOps& Ops();

/// Level of the pinned Ops() table.
KernelLevel ActiveLevel();

/// Best level this build + host supports (ignores DMT_KERNEL_LEVEL).
KernelLevel MaxSupportedLevel();

/// Direct access to one level's table for differential tests and
/// benches; nullptr when the level is not compiled in or the host CPU
/// lacks it.
const KernelOps* OpsForLevel(KernelLevel level);

/// "scalar" / "avx2" / "avx512".
const char* KernelLevelName(KernelLevel level);

/// Parses a DMT_KERNEL_LEVEL value; returns false on unknown names.
bool ParseKernelLevel(const char* name, KernelLevel* out);

// -- single-word signature helpers -----------------------------------
// 64-bit Bloom-style itemset signatures: hash every item to one bit.
// SignatureSubset(sig(A), sig(B)) is a necessary condition for A ⊆ B,
// so it is a safe O(1) gate in front of an exact containment scan.

inline uint64_t SignatureOfItem(uint32_t item) {
  return uint64_t{1} << (item & 63);
}

inline bool SignatureSubset(uint64_t sub, uint64_t super) {
  return (sub & ~super) == 0;
}

// -- SoA staging block for the batched distance kernel ----------------

/// Dimension-major copy of row-major points: data()[d * count + c] is
/// candidate c's coordinate d, 64-byte aligned for whole-line vector
/// loads. Rebuilding is O(count * dim); callers stage once per block of
/// queries (k-means rebuilds per iteration, kNN/DBSCAN once per fit).
class SoaBlock {
 public:
  void Assign(const double* row_major, size_t count, size_t dim) {
    count_ = count;
    dim_ = dim;
    data_.resize(count * dim);
    for (size_t c = 0; c < count; ++c) {
      const double* row = row_major + c * dim;
      for (size_t d = 0; d < dim; ++d) data_[d * count + c] = row[d];
    }
  }

  const double* data() const { return data_.data(); }
  size_t count() const { return count_; }
  size_t dim() const { return dim_; }
  bool empty() const { return data_.empty(); }

 private:
  AlignedVector<double> data_;
  size_t count_ = 0;
  size_t dim_ = 0;
};

}  // namespace dmt::core::kernels

#endif  // DMT_CORE_KERNELS_KERNELS_H_
