// Aligned storage support for the kernel layer: vector-width loads must
// never split a cache line, so containers feeding the SIMD kernels align
// their backing arrays to 64 bytes (one cache line, one AVX-512 vector).
#ifndef DMT_CORE_KERNELS_ALIGNED_H_
#define DMT_CORE_KERNELS_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace dmt::core::kernels {

/// Minimal C++17 aligned allocator. `Alignment` must be a power of two
/// and at least alignof(T).
template <typename T, size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must not weaken the type's natural alignment");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  bool operator==(const AlignedAllocator&) const { return true; }
};

/// One cache line: the alignment every kernel-facing array uses.
inline constexpr size_t kKernelAlignment = 64;

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kKernelAlignment>>;

}  // namespace dmt::core::kernels

#endif  // DMT_CORE_KERNELS_ALIGNED_H_
