// Scalar kernel table: the permanent differential baseline every other
// dispatch level must match bit-for-bit. Compiled with the project's
// base flags only (no -m arch extensions), so it runs on any host.
#include "core/kernels/kernels.h"

#define DMT_KERNEL_IMPL_NAMESPACE scalar_impl
#include "core/kernels/kernels_common.h"

namespace dmt::core::kernels::scalar_impl {

const KernelOps& Table() {
  static const KernelOps ops = {
      KernelLevel::kScalar,
      &PopcountWords,
      &IntersectionCountWords,
      &IntersectInplaceWords,
      &IntersectIntoWords,
      &ToIndicesWords,
      &MaskIsSubsetWords,
      &SquaredEuclideanSeq,
      &ManhattanSeq,
      &ChebyshevSeq,
      &SquaredEuclideanToManySeq,
  };
  return ops;
}

}  // namespace dmt::core::kernels::scalar_impl
