// AVX2 kernel table. Compiled with -mavx2 -mpopcnt -mbmi -mbmi2
// -ffp-contract=off; only built on x86-64 when the compiler supports
// those flags, and only selected when CPUID reports avx2+popcnt.
//
// Bit kernels use the PSHUFB nibble-lookup popcount (Muła's algorithm):
// per-byte counts via two 16-entry table shuffles, horizontally summed
// into 64-bit lanes with PSADBW. Word tails fall back to hardware
// POPCNT. Everything is integer arithmetic, so results are exact.
//
// Float kernels: chebyshev is a max-reduction (exact at any order);
// the batched distance kernel maps one candidate per lane so each lane
// replays the scalar sequence (sub, mul, add — no FMA). The pairwise
// sum-reduction kernels reuse the sequential scalar bodies unchanged:
// vectorizing them would reorder the adds and break the contract.
#include "core/kernels/kernels.h"

#include <immintrin.h>

#define DMT_KERNEL_IMPL_NAMESPACE avx2_impl
#include "core/kernels/kernels_common.h"

namespace dmt::core::kernels::avx2_impl {

namespace {

/// Per-byte popcount of a 256-bit vector.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

/// Sums the four 64-bit lanes of an accumulator.
inline size_t HorizontalSum(__m256i acc) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

inline __m256i LoadWords(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

}  // namespace

size_t PopcountAvx2(const uint64_t* words, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(PopcountBytes(LoadWords(words + i)), zero));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

size_t IntersectionCountAvx2(const uint64_t* a, const uint64_t* b,
                             size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i word = _mm256_and_si256(LoadWords(a + i), LoadWords(b + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytes(word), zero));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

size_t IntersectInplaceAvx2(uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i word = _mm256_and_si256(LoadWords(a + i), LoadWords(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), word);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytes(word), zero));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    a[i] &= b[i];
    total += std::popcount(a[i]);
  }
  return total;
}

size_t IntersectIntoAvx2(uint64_t* out, const uint64_t* a,
                         const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i word = _mm256_and_si256(LoadWords(a + i), LoadWords(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), word);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytes(word), zero));
  }
  size_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    out[i] = a[i] & b[i];
    total += std::popcount(out[i]);
  }
  return total;
}

bool MaskIsSubsetAvx2(const uint64_t* sub, const uint64_t* super,
                      size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // ~super & sub: any surviving bit is in sub but not super.
    __m256i stray =
        _mm256_andnot_si256(LoadWords(super + i), LoadWords(sub + i));
    if (!_mm256_testz_si256(stray, stray)) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

double ChebyshevAvx2(const double* a, const double* b, size_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d worst4 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    worst4 = _mm256_max_pd(worst4, _mm256_andnot_pd(sign_mask, diff));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, worst4);
  double worst = lanes[0];
  for (int lane = 1; lane < 4; ++lane) {
    if (lanes[lane] > worst) worst = lanes[lane];
  }
  for (; i < n; ++i) {
    double diff = std::fabs(a[i] - b[i]);
    if (diff > worst) worst = diff;
  }
  return worst;
}

void SquaredEuclideanToManyAvx2(const double* point, const double* soa,
                                size_t stride, size_t count, size_t dim,
                                double* out) {
  size_t c = 0;
  for (; c + 4 <= count; c += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      __m256d diff = _mm256_sub_pd(_mm256_set1_pd(point[d]),
                                   _mm256_loadu_pd(soa + d * stride + c));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + c, acc);
  }
  if (c < count) {
    // Masked tail: maskload reads (and maskstore writes) only the live
    // lanes, so the active lanes still replay the exact scalar op
    // sequence and small counts stay off the scalar path.
    alignas(32) int64_t lanes[4] = {0, 0, 0, 0};
    for (size_t lane = 0; lane < count - c; ++lane) lanes[lane] = -1;
    const __m256i tail =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      __m256d diff =
          _mm256_sub_pd(_mm256_set1_pd(point[d]),
                        _mm256_maskload_pd(soa + d * stride + c, tail));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_maskstore_pd(out + c, tail, acc);
  }
}

const KernelOps& Table() {
  static const KernelOps ops = {
      KernelLevel::kAvx2,
      &PopcountAvx2,
      &IntersectionCountAvx2,
      &IntersectInplaceAvx2,
      &IntersectIntoAvx2,
      &ToIndicesWords,
      &MaskIsSubsetAvx2,
      &SquaredEuclideanSeq,
      &ManhattanSeq,
      &ChebyshevAvx2,
      &SquaredEuclideanToManyAvx2,
  };
  return ops;
}

}  // namespace dmt::core::kernels::avx2_impl
