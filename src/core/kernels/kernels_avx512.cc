// AVX-512 kernel table. Compiled with -mavx512f -mavx512bw -mavx512vl
// -mavx512vpopcntdq -ffp-contract=off; selected only when CPUID reports
// all four features (VPOPCNTDQ is the one that matters: native per-lane
// 64-bit popcount, Ice Lake and later).
#include "core/kernels/kernels.h"

#include <immintrin.h>

#define DMT_KERNEL_IMPL_NAMESPACE avx512_impl
#include "core/kernels/kernels_common.h"

namespace dmt::core::kernels::avx512_impl {

namespace {

inline __m512i LoadWords(const uint64_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

}  // namespace

size_t PopcountAvx512(const uint64_t* words, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(LoadWords(words + i)));
  }
  size_t total = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

size_t IntersectionCountAvx512(const uint64_t* a, const uint64_t* b,
                               size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i word = _mm512_and_si512(LoadWords(a + i), LoadWords(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(word));
  }
  size_t total = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

size_t IntersectInplaceAvx512(uint64_t* a, const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i word = _mm512_and_si512(LoadWords(a + i), LoadWords(b + i));
    _mm512_storeu_si512(reinterpret_cast<void*>(a + i), word);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(word));
  }
  size_t total = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    a[i] &= b[i];
    total += std::popcount(a[i]);
  }
  return total;
}

size_t IntersectIntoAvx512(uint64_t* out, const uint64_t* a,
                           const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i word = _mm512_and_si512(LoadWords(a + i), LoadWords(b + i));
    _mm512_storeu_si512(reinterpret_cast<void*>(out + i), word);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(word));
  }
  size_t total = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    out[i] = a[i] & b[i];
    total += std::popcount(out[i]);
  }
  return total;
}

bool MaskIsSubsetAvx512(const uint64_t* sub, const uint64_t* super,
                        size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // ~super & sub: any surviving bit is in sub but not super.
    __m512i stray =
        _mm512_andnot_si512(LoadWords(super + i), LoadWords(sub + i));
    if (_mm512_test_epi64_mask(stray, stray) != 0) return false;
  }
  for (; i < n; ++i) {
    if ((sub[i] & ~super[i]) != 0) return false;
  }
  return true;
}

double ChebyshevAvx512(const double* a, const double* b, size_t n) {
  __m512d worst8 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d diff =
        _mm512_sub_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    worst8 = _mm512_max_pd(worst8, _mm512_abs_pd(diff));
  }
  double worst = _mm512_reduce_max_pd(worst8);
  for (; i < n; ++i) {
    double diff = std::fabs(a[i] - b[i]);
    if (diff > worst) worst = diff;
  }
  return worst;
}

void SquaredEuclideanToManyAvx512(const double* point, const double* soa,
                                  size_t stride, size_t count, size_t dim,
                                  double* out) {
  size_t c = 0;
  for (; c + 8 <= count; c += 8) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      __m512d diff = _mm512_sub_pd(_mm512_set1_pd(point[d]),
                                   _mm512_loadu_pd(soa + d * stride + c));
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    _mm512_storeu_pd(out + c, acc);
  }
  if (c < count) {
    // Masked tail: inactive lanes load as zero and are never stored, so
    // the active lanes still replay the exact scalar op sequence. Keeps
    // small-count calls (k-means with k % 8 != 0) off the scalar path.
    const __mmask8 tail =
        static_cast<__mmask8>((1u << (count - c)) - 1u);
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      __m512d diff =
          _mm512_sub_pd(_mm512_set1_pd(point[d]),
                        _mm512_maskz_loadu_pd(tail, soa + d * stride + c));
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    _mm512_mask_storeu_pd(out + c, tail, acc);
  }
}

const KernelOps& Table() {
  static const KernelOps ops = {
      KernelLevel::kAvx512,
      &PopcountAvx512,
      &IntersectionCountAvx512,
      &IntersectInplaceAvx512,
      &IntersectIntoAvx512,
      &ToIndicesWords,
      &MaskIsSubsetAvx512,
      &SquaredEuclideanSeq,
      &ManhattanSeq,
      &ChebyshevAvx512,
      &SquaredEuclideanToManyAvx512,
  };
  return ops;
}

}  // namespace dmt::core::kernels::avx512_impl
