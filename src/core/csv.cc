#include "core/csv.h"

#include <fstream>
#include <sstream>

#include "core/string_util.h"

namespace dmt::core {
namespace {

bool FieldNeedsQuoting(std::string_view field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendQuoted(std::string& out, std::string_view field) {
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> current_row;
  std::string current_field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&] {
    current_row.push_back(std::move(current_field));
    current_field.clear();
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(current_row));
    current_row.clear();
    row_has_content = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current_field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current_field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      row_has_content = true;
    } else if (c == options.delimiter) {
      end_field();
      row_has_content = true;
    } else if (c == '\r') {
      // Swallow; the '\n' (if any) terminates the row.
      if (i + 1 >= text.size() || text[i + 1] != '\n') end_row();
    } else if (c == '\n') {
      end_row();
    } else {
      current_field += c;
      row_has_content = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (row_has_content || !current_field.empty() || !current_row.empty()) {
    end_row();
  }

  CsvTable table;
  size_t first_data_row = 0;
  if (options.has_header) {
    if (rows.empty()) {
      return Status::InvalidArgument("CSV has a header option but no rows");
    }
    table.header = std::move(rows[0]);
    first_data_row = 1;
  }
  size_t expected_width =
      options.has_header
          ? table.header.size()
          : (rows.empty() ? 0 : rows[0].size());
  for (size_t i = first_data_row; i < rows.size(); ++i) {
    if (options.require_rectangular && rows[i].size() != expected_width) {
      return Status::InvalidArgument(StrFormat(
          "CSV row %zu has %zu fields, expected %zu", i, rows[i].size(),
          expected_width));
    }
    table.rows.push_back(std::move(rows[i]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("error while reading '" + path + "'");
  }
  return ParseCsv(buffer.str(), options);
}

std::string WriteCsv(const CsvTable& table, char delimiter) {
  std::string out;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += delimiter;
      if (FieldNeedsQuoting(row[i], delimiter)) {
        AppendQuoted(out, row[i]);
      } else {
        out += row[i];
      }
    }
    out += '\n';
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << WriteCsv(table, delimiter);
  out.flush();
  if (!out) {
    return Status::IOError("error while writing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace dmt::core
