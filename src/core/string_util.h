// Small string helpers shared across modules.
#ifndef DMT_CORE_STRING_UTIL_H_
#define DMT_CORE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace dmt::core {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins elements with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Locale-independent double parse of the full string.
Result<double> ParseDouble(std::string_view text);

/// Locale-independent non-negative integer parse of the full string.
Result<uint64_t> ParseUint(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dmt::core

#endif  // DMT_CORE_STRING_UTIL_H_
