// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges — the
// integrity check of the binary container format. Incremental: feed the
// previous return value back as `seed` to checksum discontiguous ranges.
#ifndef DMT_CORE_CRC32_H_
#define DMT_CORE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace dmt::core {

/// CRC-32 of `data`, continuing from `seed` (0 starts a fresh checksum).
uint32_t Crc32(std::span<const std::byte> data, uint32_t seed = 0);

/// Convenience overload for raw buffers.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace dmt::core

#endif  // DMT_CORE_CRC32_H_
