#include "core/transaction.h"

#include <algorithm>

#include "core/check.h"
#include "core/string_util.h"

namespace dmt::core {

void TransactionDatabase::Add(std::span<const ItemId> items) {
  std::vector<ItemId> sorted(items.begin(), items.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  items_.insert(items_.end(), sorted.begin(), sorted.end());
  offsets_.push_back(items_.size());
  if (!sorted.empty()) {
    item_universe_ =
        std::max(item_universe_, static_cast<size_t>(sorted.back()) + 1);
  }
}

std::span<const ItemId> TransactionDatabase::transaction(size_t t) const {
  DMT_CHECK_LT(t, size());
  return {items_.data() + offsets_[t],
          static_cast<size_t>(offsets_[t + 1] - offsets_[t])};
}

double TransactionDatabase::average_length() const {
  if (empty()) return 0.0;
  return static_cast<double>(items_.size()) / static_cast<double>(size());
}

std::vector<uint32_t> TransactionDatabase::ItemSupports() const {
  std::vector<uint32_t> supports(item_universe_, 0);
  for (size_t t = 0; t < size(); ++t) {
    for (ItemId item : transaction(t)) ++supports[item];
  }
  return supports;
}

std::string TransactionDatabase::ToBasketText() const {
  std::string out;
  for (size_t t = 0; t < size(); ++t) {
    auto items = transaction(t);
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ' ';
      out += std::to_string(items[i]);
    }
    out += '\n';
  }
  return out;
}

Result<TransactionDatabase> TransactionDatabase::FromBasketText(
    std::string_view text) {
  TransactionDatabase db;
  std::vector<ItemId> current;
  std::string token;
  auto flush_token = [&]() -> Status {
    if (token.empty()) return Status::OK();
    DMT_ASSIGN_OR_RETURN(uint64_t value, ParseUint(token));
    if (value > 0xffffffffULL) {
      return Status::OutOfRange("item id " + token + " exceeds 32 bits");
    }
    current.push_back(static_cast<ItemId>(value));
    token.clear();
    return Status::OK();
  };
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\r') {
      DMT_RETURN_NOT_OK(flush_token());
    } else if (c == '\n') {
      DMT_RETURN_NOT_OK(flush_token());
      db.Add(current);
      current.clear();
    } else {
      token += c;
    }
  }
  DMT_RETURN_NOT_OK(flush_token());
  if (!current.empty()) db.Add(current);
  return db;
}

Result<TransactionDatabase> TransactionDatabase::FromColumns(
    std::vector<uint64_t> offsets, std::vector<ItemId> items) {
  if (offsets.empty() || offsets.front() != 0) {
    return Status::Corruption(
        "transaction offsets must start with a 0 entry");
  }
  if (offsets.back() != items.size()) {
    return Status::Corruption(
        "last transaction offset " + std::to_string(offsets.back()) +
        " does not match item count " + std::to_string(items.size()));
  }
  size_t universe = 0;
  for (size_t t = 0; t + 1 < offsets.size(); ++t) {
    if (offsets[t] > offsets[t + 1]) {
      return Status::Corruption("transaction offsets decrease at entry " +
                                std::to_string(t + 1));
    }
    for (uint64_t i = offsets[t] + 1; i < offsets[t + 1]; ++i) {
      if (items[i - 1] >= items[i]) {
        return Status::Corruption(
            "transaction " + std::to_string(t) +
            " is not strictly increasing (items must be sorted and "
            "duplicate-free)");
      }
    }
    if (offsets[t] < offsets[t + 1]) {
      universe = std::max(
          universe, static_cast<size_t>(items[offsets[t + 1] - 1]) + 1);
    }
  }
  TransactionDatabase db;
  db.offsets_ = std::move(offsets);
  db.items_ = std::move(items);
  db.item_universe_ = universe;
  return db;
}

}  // namespace dmt::core
