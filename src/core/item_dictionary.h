// Bidirectional mapping between item names and dense integer ids.
#ifndef DMT_CORE_ITEM_DICTIONARY_H_
#define DMT_CORE_ITEM_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/status.h"

namespace dmt::core {

/// Dense id for an item in a transaction database.
using ItemId = uint32_t;

/// Interns item names to dense ids [0, size) and back.
class ItemDictionary {
 public:
  /// Returns the existing id for `name` or assigns the next dense id.
  ItemId GetOrAdd(std::string_view name);

  /// Looks up the id of an existing item.
  Result<ItemId> Find(std::string_view name) const;

  /// Name for a valid id; checks bounds.
  const std::string& Name(ItemId id) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ItemId> ids_;
};

}  // namespace dmt::core

#endif  // DMT_CORE_ITEM_DICTIONARY_H_
