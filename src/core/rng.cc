#include "core/rng.h"

#include <cmath>
#include <numeric>

namespace dmt::core {
namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  // xoshiro requires a nonzero state; SplitMix64 cannot emit four zero words
  // from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  DMT_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DMT_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit span
  return lo + static_cast<int64_t>(UniformU64(range));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Exponential(double mean) {
  DMT_CHECK_GT(mean, 0.0);
  // 1 - UniformDouble() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - UniformDouble());
}

uint64_t Rng::Poisson(double mean) {
  DMT_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    uint64_t count = 0;
    double product = UniformDouble();
    while (product > limit) {
      ++count;
      product *= UniformDouble();
    }
    return count;
  }
  // Normal approximation for large means; adequate for workload generation.
  double draw = Normal(mean, std::sqrt(mean));
  if (draw < 0.0) return 0;
  return static_cast<uint64_t>(std::llround(draw));
}

size_t Rng::Categorical(std::span<const double> weights) {
  DMT_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DMT_CHECK_GE(w, 0.0);
    total += w;
  }
  DMT_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // floating-point edge: return the last index
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DMT_CHECK_LE(k, n);
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformU64(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Split() {
  return Rng(NextU64());
}

}  // namespace dmt::core
