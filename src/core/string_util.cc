#include "core/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dmt::core {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  std::string buffer(Trim(text));
  if (buffer.empty()) {
    return Status::InvalidArgument("empty string is not a number");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) {
    return Status::InvalidArgument("cannot parse '" + buffer +
                                   "' as a double");
  }
  return value;
}

Result<uint64_t> ParseUint(std::string_view text) {
  std::string buffer(Trim(text));
  if (buffer.empty() || buffer[0] == '-') {
    return Status::InvalidArgument("cannot parse '" + buffer +
                                   "' as an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) {
    return Status::InvalidArgument("cannot parse '" + buffer +
                                   "' as an unsigned integer");
  }
  return static_cast<uint64_t>(value);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace dmt::core
