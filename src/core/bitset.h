// Dynamically sized bitset with fast intersection counting, used for
// vertical (tidset) itemset mining.
#ifndef DMT_CORE_BITSET_H_
#define DMT_CORE_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmt::core {

/// Fixed-size-after-construction bitset over 64-bit words.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// All bits cleared.
  explicit DynamicBitset(size_t num_bits);

  size_t size() const { return num_bits_; }

  void Set(size_t bit);
  void Clear(size_t bit);
  bool Test(size_t bit) const;

  /// Number of set bits.
  size_t Count() const;

  /// this &= other. Sizes must match.
  void IntersectWith(const DynamicBitset& other);

  /// popcount(this & other) without materializing the intersection.
  size_t IntersectionCount(const DynamicBitset& other) const;

  /// Returns this & other.
  DynamicBitset Intersect(const DynamicBitset& other) const;

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToIndices() const;

  bool operator==(const DynamicBitset& other) const = default;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dmt::core

#endif  // DMT_CORE_BITSET_H_
