// Dynamically sized bitset with fast intersection counting, used for
// vertical (tidset) itemset mining. All whole-array operations route
// through the runtime-dispatched SIMD kernel layer (core/kernels); the
// word storage is 64-byte aligned so vector loads never split a cache
// line.
#ifndef DMT_CORE_BITSET_H_
#define DMT_CORE_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/kernels/aligned.h"

namespace dmt::core {

/// Fixed-size-after-construction bitset over 64-bit words. Maintains a
/// running population count (updated by Set/Clear in O(1) and by the
/// fused intersection kernels for free), so Count() is O(1) and
/// ToIndices() sizes its output without a popcount sweep.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// All bits cleared.
  explicit DynamicBitset(size_t num_bits);

  size_t size() const { return num_bits_; }

  void Set(size_t bit);
  void Clear(size_t bit);
  bool Test(size_t bit) const;

  /// Number of set bits (O(1): the count is maintained, not recomputed).
  size_t Count() const { return count_; }

  /// this &= other. Sizes must match.
  void IntersectWith(const DynamicBitset& other);

  /// popcount(this & other) without materializing the intersection.
  size_t IntersectionCount(const DynamicBitset& other) const;

  /// Returns this & other.
  DynamicBitset Intersect(const DynamicBitset& other) const;

  /// True when every set bit of this is also set in other. Sizes must
  /// match.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// Indices of all set bits, ascending. Single sweep: the output is
  /// sized from the running count, not a separate popcount pass.
  std::vector<uint32_t> ToIndices() const;

  bool operator==(const DynamicBitset& other) const = default;

 private:
  size_t num_bits_ = 0;
  size_t count_ = 0;
  kernels::AlignedVector<uint64_t> words_;
};

}  // namespace dmt::core

#endif  // DMT_CORE_BITSET_H_
