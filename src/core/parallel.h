// Shared opt-in parallel execution context. Every parallel algorithm in the
// library follows one convention: its options struct carries a
// `num_threads` field where 0 (or 1) means "run serially on the calling
// thread" and n >= 2 means "run the hot loops on an n-worker ThreadPool".
// ParallelContext owns the pool behind that knob so each algorithm opts in
// with one line.
//
// Determinism contract: parallel and serial runs of the same algorithm must
// produce bit-identical results. Chunk boundaries depend only on the range
// size and worker count, never on scheduling; per-chunk buffers are merged
// in ascending chunk order after the pool's Wait() barrier; floating-point
// reductions stay on the serial thread in index order.
#ifndef DMT_CORE_PARALLEL_H_
#define DMT_CORE_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/thread_pool.h"

namespace dmt::core {

/// Owns pool creation for algorithms with a `num_threads` knob. Construct
/// one per algorithm invocation; a serial context (num_threads <= 1) never
/// spawns threads, so the serial path keeps its exact pre-parallel
/// behavior.
class ParallelContext {
 public:
  explicit ParallelContext(size_t num_threads) {
    if (num_threads > 1) pool_ = std::make_unique<ThreadPool>(num_threads);
  }

  /// True when a pool exists (num_threads >= 2).
  bool parallel() const { return pool_ != nullptr; }

  /// The pool, or nullptr in serial mode (the null-pool convention of
  /// ParallelForChunks).
  ThreadPool* pool() const { return pool_.get(); }

  /// Number of chunks ForEachChunk splits a range of size n into: 0 for an
  /// empty range, 1 in serial mode, otherwise at most twice the worker
  /// count (which bounds the memory spent on per-chunk merge buffers).
  size_t NumChunks(size_t n) const;

  /// Runs body(chunk, chunk_begin, chunk_end) over a fixed partition of
  /// [0, n) into NumChunks(n) contiguous chunks and blocks until every
  /// chunk finished. Chunk bodies may run concurrently and must only write
  /// chunk-owned state.
  void ForEachChunk(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& body) const;

 private:
  std::unique_ptr<ThreadPool> pool_;
};

/// Accumulates per-chunk support counters into `totals` in ascending chunk
/// order (the fixed merge order of the determinism contract). Every partial
/// must have totals.size() entries.
void MergeCounts(const std::vector<std::vector<uint32_t>>& partials,
                 std::span<uint32_t> totals);

/// Partitioned counting: runs count_range(begin, end, buffer) over chunks
/// of [0, n), giving each chunk a private zero-initialized buffer of
/// counts.size() entries, then merges the buffers into `counts` in chunk
/// order. The serial context counts straight into `counts` with no copies,
/// preserving the single-threaded code path exactly.
void CountPartitioned(
    const ParallelContext& ctx, size_t n, std::span<uint32_t> counts,
    const std::function<void(size_t, size_t, std::span<uint32_t>)>&
        count_range);

}  // namespace dmt::core

#endif  // DMT_CORE_PARALLEL_H_
