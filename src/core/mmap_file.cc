#include "core/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace dmt::core {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
    data_ = nullptr;
  }
  size_ = 0;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("cannot open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IOError(Errno("cannot stat", path));
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError("not a regular file: '" + path + "'");
  }
  MappedFile file;
  file.path_ = path;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status status = Status::IOError(Errno("cannot mmap", path));
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<const std::byte*>(addr);
  }
  // The mapping keeps the pages alive; the descriptor is not needed.
  ::close(fd);
  return file;
}

Status WriteFileBytes(const std::string& path,
                      std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot create '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IOError("short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Status::IOError(Errno("cannot rename into", path));
    std::remove(tmp.c_str());
    return status;
  }
  return Status::OK();
}

Result<std::string> ReadFileString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed on '" + path + "'");
  return buffer.str();
}

}  // namespace dmt::core
