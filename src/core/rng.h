// Deterministic, portable random number generation.
//
// Every stochastic component in dmt takes an explicit 64-bit seed and uses
// this engine, so identical seeds produce identical results on every
// platform. std::<distribution> types are deliberately avoided in
// result-bearing paths because the standard does not pin down their
// algorithms; the samplers here are fully specified.
#ifndef DMT_CORE_RNG_H_
#define DMT_CORE_RNG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/check.h"

namespace dmt::core {

/// SplitMix64 step: used for seeding and as a cheap standalone mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with portable samplers on top.
///
/// Not thread-safe; create one Rng per thread (Split() derives independent
/// streams deterministically).
class Rng {
 public:
  /// Seeds the four-word state by running SplitMix64 over `seed`.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound), bias-free via rejection. bound > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Exponential deviate with the given mean (mean > 0).
  double Exponential(double mean);

  /// Poisson deviate. Knuth's method for small means, normal approximation
  /// (clamped at zero) for mean >= 30.
  uint64_t Poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    if (values.size() < 2) return;
    for (size_t i = values.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (reservoir when k << n is not
  /// needed at our scales; partial Fisher–Yates). Returned in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent deterministic child stream.
  Rng Split();

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace dmt::core

#endif  // DMT_CORE_RNG_H_
