// Online statistics (Welford) and small numeric helpers.
#ifndef DMT_CORE_STATS_H_
#define DMT_CORE_STATS_H_

#include <cmath>
#include <cstdint>
#include <span>

#include "core/check.h"

namespace dmt::core {

/// Numerically stable single-pass accumulator of mean and variance.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  /// Merges another accumulator (parallel Welford / Chan's formula).
  void Merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    uint64_t combined = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double combined_mean =
        mean_ + delta * static_cast<double>(other.count_) /
                    static_cast<double>(combined);
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) /
                           static_cast<double>(combined);
    mean_ = combined_mean;
    count_ = combined;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Population variance (divides by n).
  double variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  /// Sample variance (divides by n-1); 0 when fewer than two observations.
  double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a span; 0 when empty.
inline double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// Binary entropy-style log2 that maps 0 to 0 (for impurity computations).
inline double XLog2X(double p) {
  DMT_DCHECK(p >= 0.0);
  return p > 0.0 ? p * std::log2(p) : 0.0;
}

}  // namespace dmt::core

#endif  // DMT_CORE_STATS_H_
