// Minimal RFC-4180-style CSV reading and writing.
#ifndef DMT_CORE_CSV_H_
#define DMT_CORE_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace dmt::core {

/// Parsed CSV content: optional header row plus data rows of string fields.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// When true, every row must have the same field count as the first.
  bool require_rectangular = true;
};

/// Parses CSV text. Handles quoted fields, embedded delimiters/newlines,
/// doubled quotes, and CRLF line endings.
Result<CsvTable> ParseCsv(std::string_view text,
                          const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Serializes a table to CSV text, quoting fields as needed.
std::string WriteCsv(const CsvTable& table, char delimiter = ',');

/// Writes a table to a file.
Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    char delimiter = ',');

}  // namespace dmt::core

#endif  // DMT_CORE_CSV_H_
