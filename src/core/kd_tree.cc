#include "core/kd_tree.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/distance.h"

namespace dmt::core {

KdTree::KdTree(const PointSet& points, size_t leaf_size)
    : points_(points), leaf_size_(std::max<size_t>(1, leaf_size)) {
  indices_.resize(points_.size());
  std::iota(indices_.begin(), indices_.end(), 0u);
  if (!points_.empty()) BuildNode(0, points_.size());
}

uint32_t KdTree::BuildNode(size_t begin, size_t end) {
  uint32_t node_index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= leaf_size_) {
    Node& node = nodes_[node_index];
    node.is_leaf = true;
    node.begin = static_cast<uint32_t>(begin);
    node.end = static_cast<uint32_t>(end);
    return node_index;
  }
  // Split on the dimension with the widest spread among these points.
  const size_t dim = points_.dim();
  size_t best_axis = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dim; ++d) {
    double lo = points_.point(indices_[begin])[d];
    double hi = lo;
    for (size_t i = begin + 1; i < end; ++i) {
      double v = points_.point(indices_[i])[d];
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = d;
    }
  }
  if (best_spread <= 0.0) {
    // All points identical: keep as a (possibly large) leaf.
    Node& node = nodes_[node_index];
    node.is_leaf = true;
    node.begin = static_cast<uint32_t>(begin);
    node.end = static_cast<uint32_t>(end);
    return node_index;
  }
  size_t mid = begin + (end - begin) / 2;
  std::nth_element(indices_.begin() + static_cast<std::ptrdiff_t>(begin),
                   indices_.begin() + static_cast<std::ptrdiff_t>(mid),
                   indices_.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](uint32_t a, uint32_t b) {
                     return points_.point(a)[best_axis] <
                            points_.point(b)[best_axis];
                   });
  double split_value = points_.point(indices_[mid])[best_axis];
  uint32_t left = BuildNode(begin, mid);
  uint32_t right = BuildNode(mid, end);
  Node& node = nodes_[node_index];
  node.is_leaf = false;
  node.axis = static_cast<uint32_t>(best_axis);
  node.split = split_value;
  node.left = left;
  node.right = right;
  return node_index;
}

std::vector<std::pair<double, uint32_t>> KdTree::KNearest(
    std::span<const double> query, size_t k) const {
  DMT_CHECK_EQ(query.size(), points_.dim());
  std::vector<std::pair<double, uint32_t>> heap;  // max-heap on distance
  if (k == 0 || points_.empty()) return heap;
  heap.reserve(k + 1);
  SearchKNearest(0, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end());
  return heap;
}

void KdTree::SearchKNearest(
    uint32_t node_index, std::span<const double> query, size_t k,
    std::vector<std::pair<double, uint32_t>>* heap) const {
  const Node& node = nodes_[node_index];
  if (node.is_leaf) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      uint32_t point_index = indices_[i];
      double d = SquaredEuclideanDistance(query,
                                          points_.point(point_index));
      if (heap->size() < k) {
        heap->emplace_back(d, point_index);
        std::push_heap(heap->begin(), heap->end());
      } else if (d < heap->front().first) {
        std::pop_heap(heap->begin(), heap->end());
        heap->back() = {d, point_index};
        std::push_heap(heap->begin(), heap->end());
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  uint32_t near_child = diff <= 0.0 ? node.left : node.right;
  uint32_t far_child = diff <= 0.0 ? node.right : node.left;
  SearchKNearest(near_child, query, k, heap);
  // Visit the far side only if the splitting plane is closer than the
  // current k-th distance (or we have fewer than k yet).
  if (heap->size() < k || diff * diff < heap->front().first) {
    SearchKNearest(far_child, query, k, heap);
  }
}

std::vector<uint32_t> KdTree::RadiusSearch(std::span<const double> query,
                                           double radius) const {
  DMT_CHECK_EQ(query.size(), points_.dim());
  std::vector<uint32_t> out;
  if (points_.empty() || radius < 0.0) return out;
  SearchRadius(0, query, radius * radius, &out);
  std::sort(out.begin(), out.end());
  return out;
}

void KdTree::SearchRadius(uint32_t node_index,
                          std::span<const double> query, double radius_sq,
                          std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_index];
  if (node.is_leaf) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      uint32_t point_index = indices_[i];
      if (SquaredEuclideanDistance(query, points_.point(point_index)) <=
          radius_sq) {
        out->push_back(point_index);
      }
    }
    return;
  }
  double diff = query[node.axis] - node.split;
  uint32_t near_child = diff <= 0.0 ? node.left : node.right;
  uint32_t far_child = diff <= 0.0 ? node.right : node.left;
  SearchRadius(near_child, query, radius_sq, out);
  if (diff * diff <= radius_sq) SearchRadius(far_child, query, radius_sq, out);
}

}  // namespace dmt::core
