#include "core/bitset.h"

#include "core/check.h"
#include "core/kernels/kernels.h"

namespace dmt::core {

DynamicBitset::DynamicBitset(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

void DynamicBitset::Set(size_t bit) {
  DMT_DCHECK(bit < num_bits_);
  uint64_t& word = words_[bit >> 6];
  const uint64_t mask = uint64_t{1} << (bit & 63);
  count_ += (word & mask) == 0;
  word |= mask;
}

void DynamicBitset::Clear(size_t bit) {
  DMT_DCHECK(bit < num_bits_);
  uint64_t& word = words_[bit >> 6];
  const uint64_t mask = uint64_t{1} << (bit & 63);
  count_ -= (word & mask) != 0;
  word &= ~mask;
}

bool DynamicBitset::Test(size_t bit) const {
  DMT_DCHECK(bit < num_bits_);
  return (words_[bit >> 6] >> (bit & 63)) & 1;
}

void DynamicBitset::IntersectWith(const DynamicBitset& other) {
  DMT_CHECK_EQ(num_bits_, other.num_bits_);
  count_ = kernels::Ops().intersect_inplace(words_.data(),
                                            other.words_.data(),
                                            words_.size());
}

size_t DynamicBitset::IntersectionCount(const DynamicBitset& other) const {
  DMT_CHECK_EQ(num_bits_, other.num_bits_);
  return kernels::Ops().intersection_count(words_.data(),
                                           other.words_.data(),
                                           words_.size());
}

DynamicBitset DynamicBitset::Intersect(const DynamicBitset& other) const {
  DMT_CHECK_EQ(num_bits_, other.num_bits_);
  DynamicBitset out(num_bits_);
  out.count_ = kernels::Ops().intersect_into(
      out.words_.data(), words_.data(), other.words_.data(), words_.size());
  return out;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  DMT_CHECK_EQ(num_bits_, other.num_bits_);
  return kernels::Ops().mask_is_subset(words_.data(), other.words_.data(),
                                       words_.size());
}

std::vector<uint32_t> DynamicBitset::ToIndices() const {
  // Exact-size allocation from the running count, then one extraction
  // sweep through raw storage — no popcount pre-pass, no push_back
  // growth checks.
  std::vector<uint32_t> indices(count_);
  const size_t written =
      kernels::Ops().to_indices(words_.data(), words_.size(),
                                indices.data());
  DMT_DCHECK(written == count_);
  (void)written;
  return indices;
}

}  // namespace dmt::core
