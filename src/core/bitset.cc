#include "core/bitset.h"

#include <bit>

#include "core/check.h"

namespace dmt::core {

DynamicBitset::DynamicBitset(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

void DynamicBitset::Set(size_t bit) {
  DMT_DCHECK(bit < num_bits_);
  words_[bit >> 6] |= uint64_t{1} << (bit & 63);
}

void DynamicBitset::Clear(size_t bit) {
  DMT_DCHECK(bit < num_bits_);
  words_[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
}

bool DynamicBitset::Test(size_t bit) const {
  DMT_DCHECK(bit < num_bits_);
  return (words_[bit >> 6] >> (bit & 63)) & 1;
}

size_t DynamicBitset::Count() const {
  size_t total = 0;
  for (uint64_t word : words_) total += std::popcount(word);
  return total;
}

void DynamicBitset::IntersectWith(const DynamicBitset& other) {
  DMT_CHECK_EQ(num_bits_, other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

size_t DynamicBitset::IntersectionCount(const DynamicBitset& other) const {
  DMT_CHECK_EQ(num_bits_, other.num_bits_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & other.words_[i]);
  }
  return total;
}

DynamicBitset DynamicBitset::Intersect(const DynamicBitset& other) const {
  DMT_CHECK_EQ(num_bits_, other.num_bits_);
  DynamicBitset out(num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  return out;
}

std::vector<uint32_t> DynamicBitset::ToIndices() const {
  std::vector<uint32_t> indices;
  indices.reserve(Count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      indices.push_back(static_cast<uint32_t>(w * 64 + bit));
      word &= word - 1;
    }
  }
  return indices;
}

}  // namespace dmt::core
