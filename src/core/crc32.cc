#include "core/crc32.h"

#include <array>

namespace dmt::core {

namespace {

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

uint32_t Crc32(std::span<const std::byte> data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (std::byte b : data) {
    crc = (crc >> 8) ^
          kCrcTable[(crc ^ static_cast<uint32_t>(b)) & 0xFFu];
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  return Crc32(
      std::span<const std::byte>(static_cast<const std::byte*>(data), size),
      seed);
}

}  // namespace dmt::core
