// Status / Result error-handling primitives, modeled on the Arrow/RocksDB
// idiom: fallible operations return a Status (or Result<T>), never throw.
#ifndef DMT_CORE_STATUS_H_
#define DMT_CORE_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace dmt::core {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kInternal,
  /// Stored data failed an integrity check (bad magic, CRC mismatch,
  /// truncated or out-of-bounds sections). Distinct from kIOError, which
  /// covers the OS refusing to read/write at all.
  kCorruption,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus a contextual message.
///
/// Cheap to copy when OK (no allocation); error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result aborts the process (programming
/// error); check ok() or use ValueOr().
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void AbortWithStatus(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::AbortWithStatus(status_);
}

/// Propagates a non-OK Status to the caller.
#define DMT_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::dmt::core::Status _dmt_status = (expr);   \
    if (!_dmt_status.ok()) return _dmt_status;  \
  } while (false)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define DMT_ASSIGN_OR_RETURN(lhs, expr)                      \
  DMT_ASSIGN_OR_RETURN_IMPL_(                                \
      DMT_STATUS_CONCAT_(_dmt_result, __LINE__), lhs, expr)

#define DMT_STATUS_CONCAT_INNER_(a, b) a##b
#define DMT_STATUS_CONCAT_(a, b) DMT_STATUS_CONCAT_INNER_(a, b)
#define DMT_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value();

}  // namespace dmt::core

#endif  // DMT_CORE_STATUS_H_
