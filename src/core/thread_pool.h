// Fixed-size worker pool with a blocking Wait() barrier.
#ifndef DMT_CORE_THREAD_POOL_H_
#define DMT_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dmt::core {

/// Simple FIFO thread pool. Tasks must not throw.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_tasks_ = 0;
  bool shutting_down_ = false;
};

/// Splits [begin, end) into contiguous chunks and runs `body(chunk_begin,
/// chunk_end)` across the pool; blocks until complete. A null pool runs
/// serially.
void ParallelForChunks(
    ThreadPool* pool, size_t begin, size_t end,
    const std::function<void(size_t, size_t)>& body);

}  // namespace dmt::core

#endif  // DMT_CORE_THREAD_POOL_H_
