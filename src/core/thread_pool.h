// Fixed-size worker pool with a blocking Wait() barrier.
#ifndef DMT_CORE_THREAD_POOL_H_
#define DMT_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dmt::core {

/// Simple FIFO thread pool. Tasks must not throw.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Safe to call from any thread,
  /// including from inside a running task (Wait() then also covers the
  /// nested task, because the parent is still active when it enqueues).
  /// Submitting to a pool whose destructor has begun is a programming
  /// error and aborts via DMT_CHECK; because the destructor joins all
  /// workers, reaching that check from outside means the caller is racing
  /// a destroyed pool.
  void Submit(std::function<void()> task);

  /// Single-task variant returning a future for the task's result — the
  /// submission API of request/batch pipelines (serve's micro-batching
  /// queue), where the submitter needs completion signalling per task
  /// rather than a whole-pool Wait() barrier. Shares the FIFO queue with
  /// Submit(), so SubmitTask work and ParallelForChunks work interleave
  /// safely on one pool and Wait() covers SubmitTask work too. Tasks must
  /// not throw (pool contract; packaged_task would defer the exception
  /// into the future, hiding it from callers that never get()).
  template <typename F>
  auto SubmitTask(F&& fn)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

  /// Blocks until the pool is idle: the queue is empty and no task is
  /// running. Tasks submitted concurrently with a Wait() in progress (by
  /// other threads or by running tasks) extend that Wait(); a Submit that
  /// happens after Wait() observed the pool idle is covered by the next
  /// Wait() instead. Must not be called from inside a task — the calling
  /// task counts as active, so it would deadlock.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_tasks_ = 0;
  bool shutting_down_ = false;
};

/// Splits [begin, end) into contiguous chunks and runs `body(chunk_begin,
/// chunk_end)` across the pool; blocks until complete. A null pool runs
/// serially.
void ParallelForChunks(
    ThreadPool* pool, size_t begin, size_t end,
    const std::function<void(size_t, size_t)>& body);

}  // namespace dmt::core

#endif  // DMT_CORE_THREAD_POOL_H_
