// Transaction (market-basket) database in a compact CSR layout.
#ifndef DMT_CORE_TRANSACTION_H_
#define DMT_CORE_TRANSACTION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/item_dictionary.h"
#include "core/status.h"

namespace dmt::core {

/// Immutable-after-append set of transactions; each transaction is a sorted,
/// duplicate-free list of item ids. Stored CSR-style (one offsets array, one
/// flat items array) for cache-friendly scans — the dominant access pattern
/// of every frequent-itemset miner.
class TransactionDatabase {
 public:
  TransactionDatabase() { offsets_.push_back(0); }

  /// Appends a transaction; items are copied, sorted, and de-duplicated.
  void Add(std::span<const ItemId> items);

  /// Number of transactions.
  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Sorted, duplicate-free items of transaction `t`.
  std::span<const ItemId> transaction(size_t t) const;

  /// Total number of item occurrences across all transactions.
  size_t total_items() const { return items_.size(); }

  /// One past the largest item id present (0 when empty).
  size_t item_universe() const { return item_universe_; }

  /// Average transaction length (0 when empty).
  double average_length() const;

  /// Per-item occurrence counts, indexed by item id up to item_universe().
  std::vector<uint32_t> ItemSupports() const;

  /// Serializes to the conventional "basket file" text form: one transaction
  /// per line, space-separated item ids.
  std::string ToBasketText() const;

  /// Parses the basket text form produced by ToBasketText().
  static Result<TransactionDatabase> FromBasketText(std::string_view text);

  /// Adopts a pre-built CSR layout (the binary-container load path).
  /// Validates the structural invariants Add() establishes — offsets start
  /// at 0, grow monotonically, end at items.size(), and every transaction
  /// is strictly increasing — and returns Corruption when they fail, so a
  /// malformed file can never produce a database that violates miner
  /// preconditions.
  static Result<TransactionDatabase> FromColumns(
      std::vector<uint64_t> offsets, std::vector<ItemId> items);

  /// The raw CSR arrays (offsets has size()+1 entries, the serialized
  /// form of the database).
  std::span<const uint64_t> offsets() const { return offsets_; }
  std::span<const ItemId> items() const { return items_; }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<ItemId> items_;
  size_t item_universe_ = 0;
};

}  // namespace dmt::core

#endif  // DMT_CORE_TRANSACTION_H_
