#include "core/status.h"

#include <cstdlib>

#include "obs/log.h"

namespace dmt::core {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void AbortWithStatus(const Status& status) {
  obs::Log(obs::LogSeverity::kFatal, "Result accessed with error status: %s",
           status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace dmt::core
