// Column-oriented labelled tabular dataset for classification algorithms.
#ifndef DMT_CORE_DATASET_H_
#define DMT_CORE_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/point_set.h"
#include "core/status.h"

namespace dmt::core {

/// Kind of a feature column.
enum class AttributeType { kNumeric, kCategorical };

/// Schema entry for one attribute.
struct AttributeInfo {
  std::string name;
  AttributeType type = AttributeType::kNumeric;
  /// Category names, only for kCategorical; codes index into this.
  std::vector<std::string> categories;

  size_t num_categories() const { return categories.size(); }
};

/// Immutable labelled dataset: typed feature columns plus a class label per
/// row. Column-oriented so split-finding in trees scans contiguously.
class Dataset {
 public:
  Dataset() = default;

  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return attributes_.size(); }
  size_t num_classes() const { return class_names_.size(); }

  const AttributeInfo& attribute(size_t a) const;
  const std::vector<std::string>& class_names() const { return class_names_; }
  const std::string& class_name(uint32_t c) const;

  /// Value accessors; the attribute must have the matching type.
  double Numeric(size_t row, size_t attribute) const;
  uint32_t Categorical(size_t row, size_t attribute) const;

  /// Whole-column accessors for scan-heavy algorithms.
  std::span<const double> NumericColumn(size_t attribute) const;
  std::span<const uint32_t> CategoricalColumn(size_t attribute) const;

  uint32_t Label(size_t row) const;
  std::span<const uint32_t> labels() const { return labels_; }

  /// Per-class row counts.
  std::vector<size_t> ClassCounts() const;

  /// Copies the selected rows into a new dataset with the same schema.
  Dataset Subset(std::span<const size_t> rows) const;

  /// Converts features to a dense point matrix. Categorical attributes are
  /// one-hot encoded when `one_hot_categoricals`, otherwise rejected.
  Result<PointSet> ToPointSet(bool one_hot_categoricals = true) const;

 private:
  friend class DatasetBuilder;

  struct Column {
    std::vector<double> numeric;
    std::vector<uint32_t> categorical;
  };

  size_t num_rows_ = 0;
  std::vector<AttributeInfo> attributes_;
  std::vector<Column> columns_;
  std::vector<uint32_t> labels_;
  std::vector<std::string> class_names_;
};

/// Assembles a Dataset column by column, validating shape at Build().
class DatasetBuilder {
 public:
  /// Adds a numeric feature column.
  DatasetBuilder& AddNumericColumn(std::string name,
                                   std::vector<double> values);

  /// Adds a categorical feature column; every code must index `categories`.
  DatasetBuilder& AddCategoricalColumn(std::string name,
                                       std::vector<uint32_t> codes,
                                       std::vector<std::string> categories);

  /// Sets the label column; every code must index `class_names`.
  DatasetBuilder& SetLabels(std::vector<uint32_t> labels,
                            std::vector<std::string> class_names);

  /// Validates column lengths and code ranges and produces the dataset.
  Result<Dataset> Build();

 private:
  Dataset dataset_;
  bool has_labels_ = false;
};

/// Builds a dataset from a parsed CSV table. The column named
/// `label_column` becomes the class label; every other column is numeric if
/// all its values parse as doubles, otherwise categorical (dictionary-encoded
/// in first-appearance order).
Result<Dataset> DatasetFromCsv(const CsvTable& table,
                               const std::string& label_column);

}  // namespace dmt::core

#endif  // DMT_CORE_DATASET_H_
