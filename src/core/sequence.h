// Customer-sequence database for sequential pattern mining.
#ifndef DMT_CORE_SEQUENCE_H_
#define DMT_CORE_SEQUENCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/item_dictionary.h"
#include "core/status.h"

namespace dmt::core {

/// A sequence is an ordered list of elements; each element (one customer
/// transaction) is a sorted, duplicate-free itemset.
struct Sequence {
  std::vector<std::vector<ItemId>> elements;

  size_t size() const { return elements.size(); }
  bool empty() const { return elements.empty(); }

  /// Total number of items across all elements (the sequence "length" in the
  /// Agrawal–Srikant sense).
  size_t TotalItems() const;

  /// True when `other` is contained in this sequence: each element of
  /// `other` is a subset of a distinct element of this sequence, in order.
  bool Contains(const Sequence& other) const;

  /// 64-bit Bloom signature of the item multiset: the OR of
  /// kernels::SignatureOfItem over every item. If `a.Contains(b)` then
  /// SignatureSubset(b.ItemSignature(), a.ItemSignature()) — so a failed
  /// signature test refutes containment without walking the elements.
  uint64_t ItemSignature() const;

  bool operator==(const Sequence& other) const = default;
};

/// Set of customer sequences (double-CSR layout).
class SequenceDatabase {
 public:
  /// Appends one customer's sequence; element itemsets are sorted and
  /// de-duplicated, empty elements dropped.
  void Add(const Sequence& sequence);

  size_t size() const { return sequences_.size(); }
  bool empty() const { return sequences_.empty(); }

  const Sequence& sequence(size_t i) const;

  /// One past the largest item id present (0 when empty).
  size_t item_universe() const { return item_universe_; }

  /// Average number of elements per sequence.
  double average_elements() const;

 private:
  std::vector<Sequence> sequences_;
  size_t item_universe_ = 0;
};

}  // namespace dmt::core

#endif  // DMT_CORE_SEQUENCE_H_
