// Distance functions over dense double vectors. These sequential forms
// are the bit-exactness reference; the hot many-candidates paths
// (k-means assignment, brute kNN/DBSCAN scans) stage candidates
// dimension-major and call the batched kernel in
// core/kernels/kernels.h, which reproduces these sums bit for bit with
// one candidate per vector lane.
#ifndef DMT_CORE_DISTANCE_H_
#define DMT_CORE_DISTANCE_H_

#include <cmath>
#include <span>

#include "core/check.h"

namespace dmt::core {

/// Squared Euclidean distance (the workhorse of k-means and kNN: monotone in
/// the true distance, no sqrt).
inline double SquaredEuclideanDistance(std::span<const double> a,
                                       std::span<const double> b) {
  DMT_DCHECK(a.size() == b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    total += diff * diff;
  }
  return total;
}

inline double EuclideanDistance(std::span<const double> a,
                                std::span<const double> b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

inline double ManhattanDistance(std::span<const double> a,
                                std::span<const double> b) {
  DMT_DCHECK(a.size() == b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::fabs(a[i] - b[i]);
  return total;
}

inline double ChebyshevDistance(std::span<const double> a,
                                std::span<const double> b) {
  DMT_DCHECK(a.size() == b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = std::fabs(a[i] - b[i]);
    if (diff > worst) worst = diff;
  }
  return worst;
}

}  // namespace dmt::core

#endif  // DMT_CORE_DISTANCE_H_
