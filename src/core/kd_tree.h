// kd-tree over a PointSet for k-nearest-neighbour and radius queries.
#ifndef DMT_CORE_KD_TREE_H_
#define DMT_CORE_KD_TREE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/point_set.h"

namespace dmt::core {

/// Static kd-tree. The indexed PointSet must outlive the tree and must not
/// change. Splits on the widest-spread dimension at the median.
class KdTree {
 public:
  /// Builds the index; `leaf_size` points or fewer stop the recursion.
  explicit KdTree(const PointSet& points, size_t leaf_size = 16);

  /// The k nearest points to `query` as (squared distance, point index),
  /// ascending by distance (ties by index order encountered). Returns fewer
  /// than k when the set is smaller.
  std::vector<std::pair<double, uint32_t>> KNearest(
      std::span<const double> query, size_t k) const;

  /// Indices of all points within `radius` (inclusive) of `query`,
  /// ascending.
  std::vector<uint32_t> RadiusSearch(std::span<const double> query,
                                     double radius) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Internal: split dimension/value and children. Leaf: [begin, end) into
    // indices_.
    uint32_t left = 0;
    uint32_t right = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t axis = 0;
    double split = 0.0;
    bool is_leaf = true;
  };

  uint32_t BuildNode(size_t begin, size_t end);
  void SearchKNearest(uint32_t node_index, std::span<const double> query,
                      size_t k,
                      std::vector<std::pair<double, uint32_t>>* heap) const;
  void SearchRadius(uint32_t node_index, std::span<const double> query,
                    double radius_sq, std::vector<uint32_t>* out) const;

  const PointSet& points_;
  size_t leaf_size_;
  std::vector<uint32_t> indices_;
  std::vector<Node> nodes_;
};

}  // namespace dmt::core

#endif  // DMT_CORE_KD_TREE_H_
