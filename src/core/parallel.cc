#include "core/parallel.h"

#include <algorithm>

#include "core/check.h"

namespace dmt::core {

size_t ParallelContext::NumChunks(size_t n) const {
  if (n == 0) return 0;
  if (pool_ == nullptr) return 1;
  return std::min(n, pool_->num_threads() * 2);
}

void ParallelContext::ForEachChunk(
    size_t n,
    const std::function<void(size_t, size_t, size_t)>& body) const {
  const size_t chunks = NumChunks(n);
  if (chunks == 0) return;
  if (chunks == 1) {
    body(0, 0, n);
    return;
  }
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    pool_->Submit([&body, c, begin, end] { body(c, begin, end); });
  }
  pool_->Wait();
}

void MergeCounts(const std::vector<std::vector<uint32_t>>& partials,
                 std::span<uint32_t> totals) {
  for (const auto& partial : partials) {
    DMT_CHECK_EQ(partial.size(), totals.size());
    for (size_t i = 0; i < totals.size(); ++i) totals[i] += partial[i];
  }
}

void CountPartitioned(
    const ParallelContext& ctx, size_t n, std::span<uint32_t> counts,
    const std::function<void(size_t, size_t, std::span<uint32_t>)>&
        count_range) {
  if (!ctx.parallel() || n == 0) {
    count_range(0, n, counts);
    return;
  }
  std::vector<std::vector<uint32_t>> partials(
      ctx.NumChunks(n), std::vector<uint32_t>(counts.size(), 0));
  ctx.ForEachChunk(n, [&](size_t chunk, size_t begin, size_t end) {
    count_range(begin, end, partials[chunk]);
  });
  MergeCounts(partials, counts);
}

}  // namespace dmt::core
