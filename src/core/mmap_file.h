// Read-only memory-mapped files plus the small write helpers the binary
// container format builds on. All operations report failures through
// core::Status — a malformed or unreadable file must never crash the
// library.
#ifndef DMT_CORE_MMAP_FILE_H_
#define DMT_CORE_MMAP_FILE_H_

#include <cstddef>
#include <span>
#include <string>
#include <utility>

#include "core/status.h"

namespace dmt::core {

/// RAII read-only mapping of a whole file. Move-only; the mapping is
/// released on destruction. A default-constructed instance maps nothing.
/// Empty files are valid (size() == 0, data() == nullptr) — mmap of a
/// zero-length range is not attempted.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. IOError when the file cannot be opened,
  /// stat'ed, or mapped.
  static Result<MappedFile> Open(const std::string& path);

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  std::span<const std::byte> bytes() const { return {data_, size_}; }
  const std::string& path() const { return path_; }

 private:
  void Reset();

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

/// Writes `bytes` to `path`, replacing any existing file. The write goes
/// through a same-directory temporary that is renamed into place, so
/// readers never observe a half-written container.
Status WriteFileBytes(const std::string& path,
                      std::span<const std::byte> bytes);

/// Reads a whole file into a string. IOError on open/read failure.
Result<std::string> ReadFileString(const std::string& path);

}  // namespace dmt::core

#endif  // DMT_CORE_MMAP_FILE_H_
