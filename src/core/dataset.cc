#include "core/dataset.h"

#include <algorithm>
#include <unordered_map>

#include "core/check.h"
#include "core/string_util.h"

namespace dmt::core {

const AttributeInfo& Dataset::attribute(size_t a) const {
  DMT_CHECK_LT(a, attributes_.size());
  return attributes_[a];
}

const std::string& Dataset::class_name(uint32_t c) const {
  DMT_CHECK_LT(c, class_names_.size());
  return class_names_[c];
}

double Dataset::Numeric(size_t row, size_t attribute_index) const {
  DMT_DCHECK(row < num_rows_);
  DMT_DCHECK(attributes_[attribute_index].type == AttributeType::kNumeric);
  return columns_[attribute_index].numeric[row];
}

uint32_t Dataset::Categorical(size_t row, size_t attribute_index) const {
  DMT_DCHECK(row < num_rows_);
  DMT_DCHECK(attributes_[attribute_index].type ==
             AttributeType::kCategorical);
  return columns_[attribute_index].categorical[row];
}

std::span<const double> Dataset::NumericColumn(size_t attribute_index) const {
  DMT_CHECK_LT(attribute_index, attributes_.size());
  DMT_CHECK(attributes_[attribute_index].type == AttributeType::kNumeric);
  return columns_[attribute_index].numeric;
}

std::span<const uint32_t> Dataset::CategoricalColumn(
    size_t attribute_index) const {
  DMT_CHECK_LT(attribute_index, attributes_.size());
  DMT_CHECK(attributes_[attribute_index].type == AttributeType::kCategorical);
  return columns_[attribute_index].categorical;
}

uint32_t Dataset::Label(size_t row) const {
  DMT_DCHECK(row < num_rows_);
  return labels_[row];
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(num_classes(), 0);
  for (uint32_t label : labels_) ++counts[label];
  return counts;
}

Dataset Dataset::Subset(std::span<const size_t> rows) const {
  Dataset out;
  out.attributes_ = attributes_;
  out.class_names_ = class_names_;
  out.num_rows_ = rows.size();
  out.columns_.resize(columns_.size());
  for (size_t a = 0; a < columns_.size(); ++a) {
    if (attributes_[a].type == AttributeType::kNumeric) {
      out.columns_[a].numeric.reserve(rows.size());
      for (size_t row : rows) {
        DMT_CHECK_LT(row, num_rows_);
        out.columns_[a].numeric.push_back(columns_[a].numeric[row]);
      }
    } else {
      out.columns_[a].categorical.reserve(rows.size());
      for (size_t row : rows) {
        DMT_CHECK_LT(row, num_rows_);
        out.columns_[a].categorical.push_back(columns_[a].categorical[row]);
      }
    }
  }
  out.labels_.reserve(rows.size());
  for (size_t row : rows) out.labels_.push_back(labels_[row]);
  return out;
}

Result<PointSet> Dataset::ToPointSet(bool one_hot_categoricals) const {
  size_t dim = 0;
  for (const auto& attr : attributes_) {
    if (attr.type == AttributeType::kNumeric) {
      ++dim;
    } else if (one_hot_categoricals) {
      dim += attr.num_categories();
    } else {
      return Status::InvalidArgument(
          "categorical attribute '" + attr.name +
          "' cannot be converted without one-hot encoding");
    }
  }
  if (dim == 0) {
    return Status::InvalidArgument("dataset has no feature columns");
  }
  PointSet points(dim);
  std::vector<double> row_buffer(dim);
  for (size_t row = 0; row < num_rows_; ++row) {
    size_t d = 0;
    for (size_t a = 0; a < attributes_.size(); ++a) {
      if (attributes_[a].type == AttributeType::kNumeric) {
        row_buffer[d++] = columns_[a].numeric[row];
      } else {
        for (size_t c = 0; c < attributes_[a].num_categories(); ++c) {
          row_buffer[d++] =
              columns_[a].categorical[row] == c ? 1.0 : 0.0;
        }
      }
    }
    points.Add(row_buffer);
  }
  return points;
}

DatasetBuilder& DatasetBuilder::AddNumericColumn(std::string name,
                                                 std::vector<double> values) {
  AttributeInfo info;
  info.name = std::move(name);
  info.type = AttributeType::kNumeric;
  dataset_.attributes_.push_back(std::move(info));
  Dataset::Column column;
  column.numeric = std::move(values);
  dataset_.columns_.push_back(std::move(column));
  return *this;
}

DatasetBuilder& DatasetBuilder::AddCategoricalColumn(
    std::string name, std::vector<uint32_t> codes,
    std::vector<std::string> categories) {
  AttributeInfo info;
  info.name = std::move(name);
  info.type = AttributeType::kCategorical;
  info.categories = std::move(categories);
  dataset_.attributes_.push_back(std::move(info));
  Dataset::Column column;
  column.categorical = std::move(codes);
  dataset_.columns_.push_back(std::move(column));
  return *this;
}

DatasetBuilder& DatasetBuilder::SetLabels(
    std::vector<uint32_t> labels, std::vector<std::string> class_names) {
  dataset_.labels_ = std::move(labels);
  dataset_.class_names_ = std::move(class_names);
  has_labels_ = true;
  return *this;
}

Result<Dataset> DatasetBuilder::Build() {
  if (!has_labels_) {
    return Status::FailedPrecondition("dataset labels were never set");
  }
  size_t rows = dataset_.labels_.size();
  for (size_t a = 0; a < dataset_.attributes_.size(); ++a) {
    const auto& attr = dataset_.attributes_[a];
    const auto& column = dataset_.columns_[a];
    size_t column_rows = attr.type == AttributeType::kNumeric
                             ? column.numeric.size()
                             : column.categorical.size();
    if (column_rows != rows) {
      return Status::InvalidArgument(StrFormat(
          "column '%s' has %zu rows but labels have %zu",
          attr.name.c_str(), column_rows, rows));
    }
    if (attr.type == AttributeType::kCategorical) {
      for (uint32_t code : column.categorical) {
        if (code >= attr.num_categories()) {
          return Status::OutOfRange(StrFormat(
              "category code %u out of range for column '%s' (%zu "
              "categories)",
              code, attr.name.c_str(), attr.num_categories()));
        }
      }
    }
  }
  for (uint32_t label : dataset_.labels_) {
    if (label >= dataset_.class_names_.size()) {
      return Status::OutOfRange(
          StrFormat("label code %u out of range (%zu classes)", label,
                    dataset_.class_names_.size()));
    }
  }
  dataset_.num_rows_ = rows;
  return std::move(dataset_);
}

Result<Dataset> DatasetFromCsv(const CsvTable& table,
                               const std::string& label_column) {
  if (table.header.empty()) {
    return Status::InvalidArgument("CSV table has no header row");
  }
  size_t label_index = table.header.size();
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (table.header[i] == label_column) {
      label_index = i;
      break;
    }
  }
  if (label_index == table.header.size()) {
    return Status::NotFound("label column '" + label_column +
                            "' not found in CSV header");
  }
  const size_t rows = table.rows.size();
  DatasetBuilder builder;
  for (size_t col = 0; col < table.header.size(); ++col) {
    if (col == label_index) continue;
    // Numeric if every value parses as a double.
    bool numeric = true;
    std::vector<double> values;
    values.reserve(rows);
    for (const auto& row : table.rows) {
      auto parsed = ParseDouble(row[col]);
      if (!parsed.ok()) {
        numeric = false;
        break;
      }
      values.push_back(*parsed);
    }
    if (numeric && rows > 0) {
      builder.AddNumericColumn(table.header[col], std::move(values));
    } else {
      std::vector<std::string> categories;
      std::unordered_map<std::string, uint32_t> index;
      std::vector<uint32_t> codes;
      codes.reserve(rows);
      for (const auto& row : table.rows) {
        auto [it, inserted] = index.try_emplace(
            row[col], static_cast<uint32_t>(categories.size()));
        if (inserted) categories.push_back(row[col]);
        codes.push_back(it->second);
      }
      builder.AddCategoricalColumn(table.header[col], std::move(codes),
                                   std::move(categories));
    }
  }
  std::vector<std::string> class_names;
  std::unordered_map<std::string, uint32_t> class_index;
  std::vector<uint32_t> labels;
  labels.reserve(rows);
  for (const auto& row : table.rows) {
    auto [it, inserted] = class_index.try_emplace(
        row[label_index], static_cast<uint32_t>(class_names.size()));
    if (inserted) class_names.push_back(row[label_index]);
    labels.push_back(it->second);
  }
  builder.SetLabels(std::move(labels), std::move(class_names));
  return builder.Build();
}

}  // namespace dmt::core
