#include "core/item_dictionary.h"

#include "core/check.h"

namespace dmt::core {

ItemId ItemDictionary::GetOrAdd(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  ItemId id = static_cast<ItemId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Result<ItemId> ItemDictionary::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("item '" + std::string(name) +
                            "' is not in the dictionary");
  }
  return it->second;
}

const std::string& ItemDictionary::Name(ItemId id) const {
  DMT_CHECK_LT(id, names_.size());
  return names_[id];
}

}  // namespace dmt::core
