// Wall-clock timing helper for benchmarks and progress reporting.
#ifndef DMT_CORE_TIMER_H_
#define DMT_CORE_TIMER_H_

#include <chrono>

namespace dmt::core {

/// Monotonic stopwatch started at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dmt::core

#endif  // DMT_CORE_TIMER_H_
