// Wall-clock and CPU-time stopwatches for benchmarks, trace spans, and
// progress reporting.
#ifndef DMT_CORE_TIMER_H_
#define DMT_CORE_TIMER_H_

#include <chrono>
#include <ctime>

namespace dmt::core {

/// Monotonic stopwatch started at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch (user + system, summed over all threads).
/// Together with WallTimer this separates "time spent" from "work done":
/// a span whose CPU time far exceeds its wall time ran parallel; one
/// whose wall time far exceeds its CPU time was blocked.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Now(); }

  /// Elapsed process CPU seconds since construction or the last Reset().
  double ElapsedSeconds() const { return Now() - start_; }

  /// Elapsed process CPU milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Current process CPU time in seconds, from clock_gettime's
  /// per-process CPU clock where available, else std::clock (whose
  /// CLOCKS_PER_SEC granularity is much coarser but portable).
  static double Now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) /
           static_cast<double>(CLOCKS_PER_SEC);
  }

 private:
  double start_;
};

}  // namespace dmt::core

#endif  // DMT_CORE_TIMER_H_
