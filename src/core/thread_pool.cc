#include "core/thread_pool.h"

#include <algorithm>

#include "core/check.h"

namespace dmt::core {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DMT_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Submitting to a shutting-down pool would either lose the task or
    // race the worker joins; fail loudly instead (see header contract).
    DMT_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) all_idle_.notify_all();
    }
  }
}

void ParallelForChunks(ThreadPool* pool, size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  if (pool == nullptr || pool->num_threads() == 1) {
    body(begin, end);
    return;
  }
  size_t range = end - begin;
  size_t chunks = std::min(range, pool->num_threads() * 4);
  size_t chunk_size = (range + chunks - 1) / chunks;
  for (size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += chunk_size) {
    size_t chunk_end = std::min(end, chunk_begin + chunk_size);
    pool->Submit([=] { body(chunk_begin, chunk_end); });
  }
  pool->Wait();
}

}  // namespace dmt::core
