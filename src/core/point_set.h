// Dense row-major point matrix used by clustering and nearest-neighbour
// algorithms.
#ifndef DMT_CORE_POINT_SET_H_
#define DMT_CORE_POINT_SET_H_

#include <span>
#include <vector>

#include "core/status.h"

namespace dmt::core {

/// n points of fixed dimensionality, stored contiguously row-major.
class PointSet {
 public:
  PointSet() = default;

  /// Empty set of `dim`-dimensional points.
  explicit PointSet(size_t dim) : dim_(dim) {}

  /// Takes ownership of pre-built row-major data; data.size() must be a
  /// multiple of dim.
  static Result<PointSet> FromFlat(size_t dim, std::vector<double> data);

  /// Appends one point; size must equal dim().
  void Add(std::span<const double> point);

  size_t size() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  size_t dim() const { return dim_; }
  bool empty() const { return data_.empty(); }

  std::span<const double> point(size_t i) const;
  std::span<double> mutable_point(size_t i);

  const std::vector<double>& data() const { return data_; }

  /// Copies the selected rows into a new PointSet.
  PointSet Subset(std::span<const size_t> rows) const;

  /// Per-dimension min/max over all points. Requires a non-empty set.
  void Bounds(std::vector<double>* mins, std::vector<double>* maxs) const;

  /// Standardizes every dimension to zero mean / unit variance in place
  /// (dimensions with zero variance are left centered).
  void Standardize();

 private:
  size_t dim_ = 0;
  std::vector<double> data_;
};

}  // namespace dmt::core

#endif  // DMT_CORE_POINT_SET_H_
