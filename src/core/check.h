// Invariant-checking macros for programming errors (never for user input —
// use Status for that). DMT_CHECK is always on; DMT_DCHECK only in debug.
#ifndef DMT_CORE_CHECK_H_
#define DMT_CORE_CHECK_H_

#include <cstdlib>

#include "obs/log.h"

namespace dmt::core::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  obs::Log(obs::LogSeverity::kFatal, "CHECK failed: %s at %s:%d", expr,
           file, line);
  std::abort();
}

}  // namespace dmt::core::internal

#define DMT_CHECK(cond)                                           \
  do {                                                            \
    if (!(cond)) {                                                \
      ::dmt::core::internal::CheckFailed(#cond, __FILE__,         \
                                         __LINE__);               \
    }                                                             \
  } while (false)

#define DMT_CHECK_LT(a, b) DMT_CHECK((a) < (b))
#define DMT_CHECK_LE(a, b) DMT_CHECK((a) <= (b))
#define DMT_CHECK_GT(a, b) DMT_CHECK((a) > (b))
#define DMT_CHECK_GE(a, b) DMT_CHECK((a) >= (b))
#define DMT_CHECK_EQ(a, b) DMT_CHECK((a) == (b))
#define DMT_CHECK_NE(a, b) DMT_CHECK((a) != (b))

#ifdef NDEBUG
#define DMT_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define DMT_DCHECK(cond) DMT_CHECK(cond)
#endif

#endif  // DMT_CORE_CHECK_H_
