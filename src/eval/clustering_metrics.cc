#include "eval/clustering_metrics.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "core/status.h"

namespace dmt::eval {

using core::Result;
using core::Status;

namespace {

/// Contingency table between two labelings, with dense remapping.
struct Contingency {
  std::vector<std::vector<uint64_t>> table;  // [truth][predicted]
  std::vector<uint64_t> truth_sizes;
  std::vector<uint64_t> predicted_sizes;
  uint64_t n = 0;
};

Result<Contingency> BuildContingency(std::span<const uint32_t> truth,
                                     std::span<const uint32_t> predicted) {
  if (truth.size() != predicted.size()) {
    return Status::InvalidArgument("label vector sizes differ");
  }
  if (truth.empty()) {
    return Status::InvalidArgument("cannot evaluate empty labelings");
  }
  std::unordered_map<uint32_t, uint32_t> truth_ids, predicted_ids;
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    auto [t_it, t_new] = truth_ids.try_emplace(
        truth[i], static_cast<uint32_t>(truth_ids.size()));
    auto [p_it, p_new] = predicted_ids.try_emplace(
        predicted[i], static_cast<uint32_t>(predicted_ids.size()));
    pairs.emplace_back(t_it->second, p_it->second);
  }
  Contingency c;
  c.n = truth.size();
  c.table.assign(truth_ids.size(),
                 std::vector<uint64_t>(predicted_ids.size(), 0));
  c.truth_sizes.assign(truth_ids.size(), 0);
  c.predicted_sizes.assign(predicted_ids.size(), 0);
  for (auto [t, p] : pairs) {
    ++c.table[t][p];
    ++c.truth_sizes[t];
    ++c.predicted_sizes[p];
  }
  return c;
}

double Choose2(uint64_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

}  // namespace

Result<double> AdjustedRandIndex(std::span<const uint32_t> truth,
                                 std::span<const uint32_t> predicted) {
  DMT_ASSIGN_OR_RETURN(Contingency c, BuildContingency(truth, predicted));
  double sum_cells = 0.0;
  for (const auto& row : c.table) {
    for (uint64_t cell : row) sum_cells += Choose2(cell);
  }
  double sum_truth = 0.0;
  for (uint64_t size : c.truth_sizes) sum_truth += Choose2(size);
  double sum_predicted = 0.0;
  for (uint64_t size : c.predicted_sizes) sum_predicted += Choose2(size);
  double total_pairs = Choose2(c.n);
  double expected = sum_truth * sum_predicted / total_pairs;
  double maximum = 0.5 * (sum_truth + sum_predicted);
  if (maximum == expected) {
    // Both partitions are trivial (all singletons or one block): define
    // agreement as perfect.
    return 1.0;
  }
  return (sum_cells - expected) / (maximum - expected);
}

Result<double> NormalizedMutualInformation(
    std::span<const uint32_t> truth, std::span<const uint32_t> predicted) {
  DMT_ASSIGN_OR_RETURN(Contingency c, BuildContingency(truth, predicted));
  const double n = static_cast<double>(c.n);
  double mutual_information = 0.0;
  for (size_t t = 0; t < c.table.size(); ++t) {
    for (size_t p = 0; p < c.table[t].size(); ++p) {
      if (c.table[t][p] == 0) continue;
      double joint = static_cast<double>(c.table[t][p]) / n;
      double marginal_product =
          (static_cast<double>(c.truth_sizes[t]) / n) *
          (static_cast<double>(c.predicted_sizes[p]) / n);
      mutual_information += joint * std::log(joint / marginal_product);
    }
  }
  auto entropy = [n](const std::vector<uint64_t>& sizes) {
    double h = 0.0;
    for (uint64_t size : sizes) {
      if (size == 0) continue;
      double p = static_cast<double>(size) / n;
      h -= p * std::log(p);
    }
    return h;
  };
  double h_truth = entropy(c.truth_sizes);
  double h_predicted = entropy(c.predicted_sizes);
  double mean_entropy = 0.5 * (h_truth + h_predicted);
  if (mean_entropy <= 0.0) {
    // Both partitions constant: identical by construction.
    return 1.0;
  }
  double nmi = mutual_information / mean_entropy;
  // Clamp floating noise.
  if (nmi < 0.0) return 0.0;
  if (nmi > 1.0) return 1.0;
  return nmi;
}

Result<double> MeanSilhouette(const core::PointSet& points,
                              std::span<const uint32_t> assignments) {
  const size_t n = points.size();
  if (n != assignments.size()) {
    return Status::InvalidArgument(
        "assignments must match the number of points");
  }
  if (n == 0) {
    return Status::InvalidArgument("cannot score an empty point set");
  }
  if (n > 20000) {
    return Status::InvalidArgument(
        "MeanSilhouette is O(n^2) and limited to 20000 points");
  }
  // Dense cluster ids and sizes.
  std::unordered_map<uint32_t, uint32_t> id_map;
  std::vector<uint32_t> dense(n);
  for (size_t i = 0; i < n; ++i) {
    auto [it, inserted] =
        id_map.try_emplace(assignments[i],
                           static_cast<uint32_t>(id_map.size()));
    dense[i] = it->second;
  }
  const size_t k = id_map.size();
  if (k < 2) {
    return Status::InvalidArgument(
        "silhouette requires at least two clusters");
  }
  std::vector<size_t> cluster_size(k, 0);
  for (uint32_t c : dense) ++cluster_size[c];

  double total = 0.0;
  std::vector<double> sum_to_cluster(k);
  for (size_t i = 0; i < n; ++i) {
    if (cluster_size[dense[i]] == 1) continue;  // scores 0
    std::fill(sum_to_cluster.begin(), sum_to_cluster.end(), 0.0);
    auto p = points.point(i);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double diff_sq = 0.0;
      auto q = points.point(j);
      for (size_t d = 0; d < p.size(); ++d) {
        double diff = p[d] - q[d];
        diff_sq += diff * diff;
      }
      sum_to_cluster[dense[j]] += std::sqrt(diff_sq);
    }
    double a = sum_to_cluster[dense[i]] /
               static_cast<double>(cluster_size[dense[i]] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (c == dense[i] || cluster_size[c] == 0) continue;
      b = std::min(b, sum_to_cluster[c] /
                          static_cast<double>(cluster_size[c]));
    }
    double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

Result<double> Purity(std::span<const uint32_t> truth,
                      std::span<const uint32_t> predicted) {
  DMT_ASSIGN_OR_RETURN(Contingency c, BuildContingency(truth, predicted));
  uint64_t majority_total = 0;
  for (size_t p = 0; p < c.predicted_sizes.size(); ++p) {
    uint64_t best = 0;
    for (size_t t = 0; t < c.table.size(); ++t) {
      best = std::max(best, c.table[t][p]);
    }
    majority_total += best;
  }
  return static_cast<double>(majority_total) / static_cast<double>(c.n);
}

}  // namespace dmt::eval
