// Classification evaluation: confusion matrix, accuracy, per-class and
// macro precision/recall/F1.
#ifndef DMT_EVAL_METRICS_H_
#define DMT_EVAL_METRICS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"

namespace dmt::eval {

/// Confusion matrix over `num_classes` classes; cell (t, p) counts rows with
/// true class t predicted as p.
class ConfusionMatrix {
 public:
  /// Builds from parallel truth/prediction vectors. Labels must be
  /// < num_classes.
  static core::Result<ConfusionMatrix> FromPredictions(
      size_t num_classes, std::span<const uint32_t> truth,
      std::span<const uint32_t> predicted);

  size_t num_classes() const { return num_classes_; }
  uint64_t cell(uint32_t true_class, uint32_t predicted_class) const;
  uint64_t total() const { return total_; }

  double Accuracy() const;
  /// Precision of one class: TP / (TP + FP); 0 when never predicted.
  double Precision(uint32_t c) const;
  /// Recall of one class: TP / (TP + FN); 0 when absent from the truth.
  double Recall(uint32_t c) const;
  /// Harmonic mean of precision and recall; 0 when both vanish.
  double F1(uint32_t c) const;
  /// Unweighted averages over classes.
  double MacroPrecision() const;
  double MacroRecall() const;
  double MacroF1() const;

  /// Fixed-width text rendering (rows = truth, columns = predictions).
  std::string ToString() const;

 private:
  ConfusionMatrix(size_t num_classes)
      : num_classes_(num_classes), cells_(num_classes * num_classes, 0) {}

  size_t num_classes_;
  std::vector<uint64_t> cells_;
  uint64_t total_ = 0;
};

/// Fraction of positions where the two label vectors agree (sizes must
/// match; empty input fails).
core::Result<double> Accuracy(std::span<const uint32_t> truth,
                              std::span<const uint32_t> predicted);

}  // namespace dmt::eval

#endif  // DMT_EVAL_METRICS_H_
