#include "eval/cross_validation.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"
#include "core/string_util.h"

namespace dmt::eval {

using core::Result;
using core::Rng;
using core::Status;

Result<Split> TrainTestSplit(size_t num_rows, double test_fraction,
                             uint64_t seed) {
  if (num_rows < 2) {
    return Status::InvalidArgument("need at least two rows to split");
  }
  if (!(test_fraction > 0.0) || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  Rng rng(seed);
  std::vector<size_t> order(num_rows);
  for (size_t i = 0; i < num_rows; ++i) order[i] = i;
  rng.Shuffle(order);
  size_t test_size = std::max<size_t>(
      1, static_cast<size_t>(std::llround(
             test_fraction * static_cast<double>(num_rows))));
  test_size = std::min(test_size, num_rows - 1);
  Split split;
  split.test.assign(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(test_size));
  split.train.assign(order.begin() + static_cast<std::ptrdiff_t>(test_size),
                     order.end());
  std::sort(split.test.begin(), split.test.end());
  std::sort(split.train.begin(), split.train.end());
  return split;
}

Result<Split> StratifiedTrainTestSplit(std::span<const uint32_t> labels,
                                       double test_fraction,
                                       uint64_t seed) {
  if (labels.size() < 2) {
    return Status::InvalidArgument("need at least two rows to split");
  }
  if (!(test_fraction > 0.0) || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  Rng rng(seed);
  uint32_t num_classes = 0;
  for (uint32_t label : labels) num_classes = std::max(num_classes, label);
  ++num_classes;
  std::vector<std::vector<size_t>> by_class(num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }
  Split split;
  for (auto& rows : by_class) {
    if (rows.empty()) continue;
    rng.Shuffle(rows);
    size_t test_size = static_cast<size_t>(std::llround(
        test_fraction * static_cast<double>(rows.size())));
    test_size = std::min(test_size, rows.size() - 1);
    for (size_t i = 0; i < rows.size(); ++i) {
      (i < test_size ? split.test : split.train).push_back(rows[i]);
    }
  }
  if (split.test.empty() || split.train.empty()) {
    return Status::InvalidArgument(
        "stratified split produced an empty side; adjust test_fraction");
  }
  std::sort(split.test.begin(), split.test.end());
  std::sort(split.train.begin(), split.train.end());
  return split;
}

Result<std::vector<Split>> StratifiedKFold(std::span<const uint32_t> labels,
                                           size_t folds, uint64_t seed) {
  if (folds < 2) return Status::InvalidArgument("folds must be >= 2");
  if (labels.size() < folds) {
    return Status::InvalidArgument(core::StrFormat(
        "cannot make %zu folds from %zu rows", folds, labels.size()));
  }
  Rng rng(seed);
  uint32_t num_classes = 0;
  for (uint32_t label : labels) num_classes = std::max(num_classes, label);
  ++num_classes;
  std::vector<std::vector<size_t>> by_class(num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }
  // Deal each class's shuffled rows round-robin across folds.
  std::vector<std::vector<size_t>> fold_rows(folds);
  size_t deal = 0;
  for (auto& rows : by_class) {
    rng.Shuffle(rows);
    for (size_t row : rows) {
      fold_rows[deal % folds].push_back(row);
      ++deal;
    }
  }
  std::vector<Split> splits(folds);
  for (size_t f = 0; f < folds; ++f) {
    for (size_t other = 0; other < folds; ++other) {
      auto& side = other == f ? splits[f].test : splits[f].train;
      side.insert(side.end(), fold_rows[other].begin(),
                  fold_rows[other].end());
    }
    if (splits[f].test.empty()) {
      return Status::InvalidArgument(
          "a fold came out empty; reduce the number of folds");
    }
    std::sort(splits[f].test.begin(), splits[f].test.end());
    std::sort(splits[f].train.begin(), splits[f].train.end());
  }
  return splits;
}

void MaterializeSplit(const core::Dataset& data, const Split& split,
                      core::Dataset* train, core::Dataset* test) {
  *train = data.Subset(split.train);
  *test = data.Subset(split.test);
}

}  // namespace dmt::eval
