#include "eval/metrics.h"

#include "core/string_util.h"

namespace dmt::eval {

using core::Result;
using core::Status;

Result<ConfusionMatrix> ConfusionMatrix::FromPredictions(
    size_t num_classes, std::span<const uint32_t> truth,
    std::span<const uint32_t> predicted) {
  if (truth.size() != predicted.size()) {
    return Status::InvalidArgument(core::StrFormat(
        "truth has %zu labels but predictions have %zu", truth.size(),
        predicted.size()));
  }
  if (truth.empty()) {
    return Status::InvalidArgument("cannot evaluate zero predictions");
  }
  if (num_classes == 0) {
    return Status::InvalidArgument("num_classes must be > 0");
  }
  ConfusionMatrix matrix(num_classes);
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] >= num_classes || predicted[i] >= num_classes) {
      return Status::OutOfRange("label exceeds num_classes");
    }
    ++matrix.cells_[truth[i] * num_classes + predicted[i]];
  }
  matrix.total_ = truth.size();
  return matrix;
}

uint64_t ConfusionMatrix::cell(uint32_t true_class,
                               uint32_t predicted_class) const {
  return cells_[true_class * num_classes_ + predicted_class];
}

double ConfusionMatrix::Accuracy() const {
  uint64_t correct = 0;
  for (uint32_t c = 0; c < num_classes_; ++c) correct += cell(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(uint32_t c) const {
  uint64_t predicted_c = 0;
  for (uint32_t t = 0; t < num_classes_; ++t) predicted_c += cell(t, c);
  if (predicted_c == 0) return 0.0;
  return static_cast<double>(cell(c, c)) / static_cast<double>(predicted_c);
}

double ConfusionMatrix::Recall(uint32_t c) const {
  uint64_t actual_c = 0;
  for (uint32_t p = 0; p < num_classes_; ++p) actual_c += cell(c, p);
  if (actual_c == 0) return 0.0;
  return static_cast<double>(cell(c, c)) / static_cast<double>(actual_c);
}

double ConfusionMatrix::F1(uint32_t c) const {
  double precision = Precision(c);
  double recall = Recall(c);
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

double ConfusionMatrix::MacroPrecision() const {
  double total = 0.0;
  for (uint32_t c = 0; c < num_classes_; ++c) total += Precision(c);
  return total / static_cast<double>(num_classes_);
}

double ConfusionMatrix::MacroRecall() const {
  double total = 0.0;
  for (uint32_t c = 0; c < num_classes_; ++c) total += Recall(c);
  return total / static_cast<double>(num_classes_);
}

double ConfusionMatrix::MacroF1() const {
  double total = 0.0;
  for (uint32_t c = 0; c < num_classes_; ++c) total += F1(c);
  return total / static_cast<double>(num_classes_);
}

std::string ConfusionMatrix::ToString() const {
  std::string out = "true\\pred";
  for (uint32_t p = 0; p < num_classes_; ++p) {
    out += core::StrFormat("%10u", p);
  }
  out += '\n';
  for (uint32_t t = 0; t < num_classes_; ++t) {
    out += core::StrFormat("%9u", t);
    for (uint32_t p = 0; p < num_classes_; ++p) {
      out += core::StrFormat("%10llu",
                             static_cast<unsigned long long>(cell(t, p)));
    }
    out += '\n';
  }
  return out;
}

Result<double> Accuracy(std::span<const uint32_t> truth,
                        std::span<const uint32_t> predicted) {
  if (truth.size() != predicted.size()) {
    return Status::InvalidArgument("label vector sizes differ");
  }
  if (truth.empty()) {
    return Status::InvalidArgument("cannot evaluate zero predictions");
  }
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace dmt::eval
