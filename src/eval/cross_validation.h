// Data-splitting utilities: train/test split and (stratified) k-fold
// cross-validation.
#ifndef DMT_EVAL_CROSS_VALIDATION_H_
#define DMT_EVAL_CROSS_VALIDATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"

namespace dmt::eval {

/// Row indices of one train/test partition.
struct Split {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Random split with `test_fraction` of rows held out. Deterministic in
/// seed.
core::Result<Split> TrainTestSplit(size_t num_rows, double test_fraction,
                                   uint64_t seed);

/// Stratified split: each class contributes ~test_fraction of its rows.
core::Result<Split> StratifiedTrainTestSplit(
    std::span<const uint32_t> labels, double test_fraction, uint64_t seed);

/// K folds with (approximately) class-balanced test sets; every row appears
/// in exactly one test set.
core::Result<std::vector<Split>> StratifiedKFold(
    std::span<const uint32_t> labels, size_t folds, uint64_t seed);

/// Convenience: materializes the train/test datasets of a split.
void MaterializeSplit(const core::Dataset& data, const Split& split,
                      core::Dataset* train, core::Dataset* test);

}  // namespace dmt::eval

#endif  // DMT_EVAL_CROSS_VALIDATION_H_
