// External clustering-quality measures against ground-truth labels:
// adjusted Rand index, normalized mutual information, purity.
#ifndef DMT_EVAL_CLUSTERING_METRICS_H_
#define DMT_EVAL_CLUSTERING_METRICS_H_

#include <cstdint>
#include <span>

#include "core/point_set.h"
#include "core/status.h"

namespace dmt::eval {

/// Adjusted Rand index in [-1, 1]; 1 = identical partitions, ~0 = random
/// agreement. Label values need not be dense.
core::Result<double> AdjustedRandIndex(std::span<const uint32_t> truth,
                                       std::span<const uint32_t> predicted);

/// Normalized mutual information in [0, 1] (normalized by the arithmetic
/// mean of the entropies; 1 when either partition is constant and they
/// agree, 0 when independent).
core::Result<double> NormalizedMutualInformation(
    std::span<const uint32_t> truth, std::span<const uint32_t> predicted);

/// Purity in (0, 1]: fraction of points in the majority true class of their
/// predicted cluster.
core::Result<double> Purity(std::span<const uint32_t> truth,
                            std::span<const uint32_t> predicted);

/// Mean silhouette coefficient in [-1, 1] (internal quality: no ground
/// truth needed). O(n^2); limited to 20000 points. Requires at least two
/// clusters; singleton-cluster points score 0 by convention.
core::Result<double> MeanSilhouette(const core::PointSet& points,
                                    std::span<const uint32_t> assignments);

}  // namespace dmt::eval

#endif  // DMT_EVAL_CLUSTERING_METRICS_H_
