// Daemon front-ends over a Server: frame transport on raw fds, a stream
// loop (stdin/pipe mode), an AF_UNIX socket listener with one reader
// thread per connection, and the text script/query format used by
// tools/dmtd.cc and the check.sh smoke tier.
//
// Robustness stance: a malformed request *body* produces an error
// response and the daemon keeps serving — the frame boundary is intact.
// A malformed frame *header* (bad magic or an oversized declared length)
// means the byte stream itself can no longer be framed; the daemon sends
// one final error response and closes that stream only, never the
// process (tests/serve/protocol_test.cc holds decode to the first half;
// the stream loops implement the second).
#ifndef DMT_SERVE_DAEMON_H_
#define DMT_SERVE_DAEMON_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace dmt::serve {

/// Periodic registry export for scrapers: renders the full metrics
/// registry (counters, gauges, histograms) in Prometheus text format to
/// `path` once at start, every `interval_ms` thereafter, and one final
/// time at destruction — so even a short script run leaves a complete
/// dump behind. Writes go through core::WriteFileBytes (same-directory
/// temp + rename), so scrapers never read a torn file. Used by
/// `dmtd --metrics-path`.
class MetricsDumper {
 public:
  MetricsDumper(std::string path, uint32_t interval_ms);
  /// Stops the timer thread and writes the final dump.
  ~MetricsDumper();

  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

  /// Renders and writes one dump now. Logs (and keeps running) on write
  /// failure — metrics export must never take the daemon down.
  void DumpOnce();

 private:
  void Loop();

  std::string path_;
  uint32_t interval_ms_;
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

/// Reads one length-prefixed frame with the given magic from `fd`.
/// Returns an empty vector on clean EOF (no bytes read), IOError on a
/// read failure or mid-frame EOF, Corruption on a bad header.
core::Result<std::vector<std::byte>> ReadFrame(int fd, uint32_t magic);

/// Writes the whole buffer, retrying short writes.
core::Status WriteAll(int fd, std::span<const std::byte> bytes);

/// Serves frames from `in_fd`, writing responses to `out_fd`, until EOF.
/// Requests flow through a BatchQueue, so responses may be written out
/// of request order (match by id). On a framing error, writes one error
/// response and returns its status; on EOF returns OK.
core::Status ServeStream(Server* server, int in_fd, int out_fd);

/// Binds an AF_UNIX socket at `path` (unlinking any stale file first)
/// and serves connections, each on its own reader thread, all feeding
/// one shared BatchQueue. Returns after `max_connections` connections
/// have been accepted and fully served (0 = serve forever).
core::Status ServeSocket(Server* server, const std::string& path,
                         size_t max_connections);

/// Parses one text query line into a request (the script/client format):
///   classify tree|knn|nb <v1> <v2> ...
///   cluster <v1> <v2> ...
///   rules <top_k> <item1> <item2> ...
///   stats
/// Blank lines and lines starting with '#' yield NotFound ("skip").
core::Result<Request> ParseScriptLine(const std::string& line,
                                      uint64_t id);

/// One-line text rendering of a response, stable for smoke-test greps:
///   id=<id> error <message>
///   id=<id> labels <l...>
///   id=<id> clusters <c>(dist=<d>) ...
///   id=<id> rules <n> [<rule>:<conf>:<lift>=>{items}] ...
///   id=<id> stats <json>
std::string FormatResponse(const Response& response);

}  // namespace dmt::serve

#endif  // DMT_SERVE_DAEMON_H_
