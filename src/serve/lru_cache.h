// Sharded LRU cache for hot recommendation queries: canonicalized basket
// bytes -> the basket's RuleHit list. Sharding bounds lock contention
// (each key hashes to one shard with its own mutex and LRU list); the
// capacity is split evenly across shards, so a shard evicts independently
// once its slice fills.
//
// Correctness stance: a hit must be indistinguishable from a recompute.
// The server asserts this when `verify_cache_hits` is set — every hit is
// recomputed and the encoded bytes compared — rather than assuming it
// (see tests/serve/serving_diff_test.cc for the cross-config version).
#ifndef DMT_SERVE_LRU_CACHE_H_
#define DMT_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/check.h"
#include "serve/protocol.h"

namespace dmt::serve {

/// LRU map from canonical basket bytes to rule hits, sharded by key hash.
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `num_shards` (each shard holds at least one entry). Requires
  /// capacity >= 1 — a capacity of zero means "no cache", which the
  /// server expresses by not constructing one.
  ShardedLruCache(size_t capacity, size_t num_shards)
      : shards_(num_shards > 0 ? num_shards : 1) {
    DMT_CHECK_GT(capacity, 0u);
    per_shard_capacity_ = capacity / shards_.size();
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached hits and refreshes the entry's recency, or
  /// nullopt on a miss. Does not bump any counters — the server owns
  /// hit/miss accounting so the totals stay deterministic (lookups happen
  /// in request order on the orchestrating thread in the sync path).
  std::optional<std::vector<RuleHit>> Get(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }

  /// Inserts (or refreshes) an entry, evicting the shard's least recently
  /// used entry when its slice is full. Returns the number of evictions
  /// (0 or 1) so the caller can account for them.
  size_t Put(const std::string& key, std::vector<RuleHit> hits) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(hits);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return 0;
    }
    size_t evicted = 0;
    if (shard.lru.size() >= per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evicted = 1;
    }
    shard.lru.emplace_front(key, std::move(hits));
    shard.index.emplace(key, shard.lru.begin());
    return evicted;
  }

  /// Total entries across all shards (takes every shard lock; test/stats
  /// use, not a hot path).
  size_t Size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.lru.size();
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }
  size_t per_shard_capacity() const { return per_shard_capacity_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used. Entries are (key, hits).
    std::list<std::pair<std::string, std::vector<RuleHit>>> lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::vector<RuleHit>>>::iterator>
        index;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  size_t per_shard_capacity_ = 0;
};

}  // namespace dmt::serve

#endif  // DMT_SERVE_LRU_CACHE_H_
