// Wire protocol of the dmtd model-serving daemon: length-prefixed binary
// frames over a byte stream (unix socket, pipe, or an in-memory span).
//
// Frame layout (little-endian, like the io container):
//
//   ┌──────────────────────────────────────────────┐
//   │ u32 magic  ("DMTQ" requests, "DMTR" replies) │
//   │ u32 body length (<= kMaxFrameBody)           │
//   ├──────────────────────────────────────────────┤
//   │ body: u64 request id, u8 type, payload       │
//   └──────────────────────────────────────────────┘
//
// Every request carries a client-chosen id that the response echoes, so
// pipelined requests on one connection can complete out of order. All
// query types are batch-shaped (`count` records/baskets per request);
// count == 1 is the point query. Decoding reuses io::ByteReader, so a
// truncated or lying body yields a descriptive core::Status::Corruption —
// the server turns that into an error *response*, never a crash or a dead
// daemon (tests/serve/protocol_test.cc walks every truncation length).
#ifndef DMT_SERVE_PROTOCOL_H_
#define DMT_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"

namespace dmt::serve {

/// First four frame bytes: "DMTQ" for requests, "DMTR" for responses.
inline constexpr uint32_t kRequestMagic = 0x51544D44u;   // 'D','M','T','Q'
inline constexpr uint32_t kResponseMagic = 0x52544D44u;  // 'D','M','T','R'

/// Frame header: magic + body length.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Body-size cap; a declared length above this is rejected before any
/// allocation, so a corrupt length cannot balloon memory.
inline constexpr uint32_t kMaxFrameBody = 1u << 24;  // 16 MiB

/// Caps on decoded quantities (defense against lying counts that pass the
/// byte-level bounds checks).
inline constexpr uint32_t kMaxRecordsPerRequest = 1u << 16;
inline constexpr uint32_t kMaxRecordDim = 1u << 12;
inline constexpr uint32_t kMaxBasketItems = 1u << 20;
inline constexpr uint32_t kMaxTopK = 1u << 12;

enum class RequestType : uint8_t {
  /// Classify `count` records of `dim` features with one model.
  kClassify = 1,
  /// Assign `count` points of `dim` coordinates to their nearest k-means
  /// center.
  kAssignCluster = 2,
  /// Top-k association-rule recommendations for `count` baskets.
  kRecommend = 3,
  /// Serving counters as a JSON object (health/monitoring hook).
  kStats = 4,
};

enum class ClassifyModel : uint8_t {
  kTree = 0,
  kKnn = 1,
  kNaiveBayes = 2,
};

/// Decoded request. `values` is row-major count x dim for kClassify /
/// kAssignCluster; `baskets` holds raw (possibly unsorted) item lists for
/// kRecommend — the server canonicalizes.
struct Request {
  uint64_t id = 0;
  RequestType type = RequestType::kStats;
  ClassifyModel model = ClassifyModel::kTree;  // kClassify only
  uint32_t count = 0;
  uint32_t dim = 0;
  std::vector<double> values;
  uint32_t top_k = 0;  // kRecommend only
  std::vector<std::vector<uint32_t>> baskets;
};

/// One recommended rule for one basket.
struct RuleHit {
  uint32_t rule_index = 0;
  double confidence = 0.0;
  double lift = 0.0;
  std::vector<uint32_t> consequent;

  bool operator==(const RuleHit&) const = default;
};

/// Decoded response. `status` is 0 for success, otherwise the numeric
/// core::StatusCode of the failure with `error` holding the message.
struct Response {
  uint64_t id = 0;
  uint8_t status = 0;
  std::string error;
  RequestType type = RequestType::kStats;
  std::vector<uint32_t> labels;                         // kClassify
  std::vector<uint32_t> clusters;                       // kAssignCluster
  std::vector<double> cluster_dist_sq;                  // kAssignCluster
  std::vector<std::vector<RuleHit>> recommendations;    // kRecommend
  std::string stats_json;                               // kStats
};

/// Serializes a request/response into a complete frame (header + body).
std::vector<std::byte> EncodeRequestFrame(const Request& request);
std::vector<std::byte> EncodeResponseFrame(const Response& response);

/// Parses a complete frame. Returns Corruption with a descriptive message
/// on any malformed byte: short header, wrong magic, header/body length
/// mismatch, unknown type, out-of-cap counts, truncated payload, or
/// trailing garbage.
core::Result<Request> DecodeRequestFrame(std::span<const std::byte> frame);
core::Result<Response> DecodeResponseFrame(
    std::span<const std::byte> frame);

/// Validates a frame header and returns the declared body length.
/// `expected_magic` is kRequestMagic or kResponseMagic.
core::Result<uint32_t> CheckFrameHeader(std::span<const std::byte> header,
                                        uint32_t expected_magic);

/// Builds the error response for a failed request. `id` is 0 when the
/// failure happened before the id could be parsed.
Response MakeErrorResponse(uint64_t id, const core::Status& status);

/// Encodes one basket's rule-hit list — the unit the serving LRU cache
/// stores, so a cache hit splices bit-identical bytes into the response.
void EncodeRuleHits(const std::vector<RuleHit>& hits,
                    std::vector<std::byte>* out);

}  // namespace dmt::serve

#endif  // DMT_SERVE_PROTOCOL_H_
