// Request evaluation engine of the serving daemon: decodes frames,
// validates them against the loaded ModelBundle, evaluates micro-batches,
// and encodes responses. The perf idea is that a batch is the unit of
// staging — all classify records in a batch become one Dataset per model
// (one PredictAll call), every nearest-center query runs through the
// batched squared_euclidean_to_many kernel against the centers SoA staged
// at load, and all baskets in a batch share one DynamicBitset for the
// rule-containment scans.
//
// Determinism contract (served by tests/serve/serving_diff_test.cc): for
// a fixed frame sequence, HandleFrames() produces bit-identical response
// bytes and identical serve/* counter totals at every batch_size and
// num_threads, with the single exception of the batch-shape counters
// (serve/batches, serve/batch_bucket_*), which intentionally describe
// the batching itself. The argument:
//  - each response depends only on its own request and the immutable
//    bundle; batches partition requests in arrival order, so grouping
//    cannot change any per-request result;
//  - work counters (records/points/baskets/rules) are tallied per batch
//    and folded in batch order on the orchestrating thread;
//  - cache lookups all happen sequentially in request order on the
//    orchestrating thread *before* any batch is evaluated, and misses
//    are inserted in request order *after* every batch completed — so
//    hit/miss/insertion/eviction totals cannot depend on batch shape or
//    worker scheduling. (The async BatchQueue path trades this for
//    latency: it looks up at drain time, so its cache counters are
//    timing-dependent; its responses are still bit-identical.)
#ifndef DMT_SERVE_SERVER_H_
#define DMT_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/bitset.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "serve/lru_cache.h"
#include "serve/model_bundle.h"
#include "serve/protocol.h"

namespace dmt::serve {

/// Serving knobs.
struct ServeOptions {
  /// Upper bound on requests evaluated as one pool task.
  uint32_t batch_size = 32;
  /// Async path only: a partial batch is flushed after this long.
  uint32_t batch_timeout_us = 200;
  /// Worker threads for batch evaluation; 0 or 1 = evaluate on the
  /// calling thread (the library-wide convention).
  size_t num_threads = 0;
  /// Total rule-cache entries; 0 disables the cache.
  size_t cache_capacity = 0;
  size_t cache_shards = 8;
  /// Debug mode: recompute every cache hit and abort on any mismatch —
  /// the "asserted, not assumed" half of the cache contract.
  bool verify_cache_hits = false;
  /// Per-request latency telemetry: stage/total latency histograms,
  /// per-request trace spans (under DMT_TRACE), and the slow-query log.
  /// Responses are bit-identical with it on or off; off removes every
  /// clock read from the hot path (the EXT-12 overhead bound measures
  /// on vs off). Deterministic work-shape histograms (serve/hist/*) are
  /// part of the counter contract and record regardless.
  bool latency_telemetry = true;
  /// Emit a structured obs::Log warning for any request whose total
  /// latency reaches this many microseconds; 0 disables. Requires
  /// latency_telemetry.
  uint64_t slow_query_us = 0;

  core::Status Validate() const;
};

/// One decoded request staged for batch evaluation. Public only for the
/// BatchQueue, which drives the same prepare/evaluate/insert phases on
/// its own schedule.
struct PreparedRequest {
  Request request;
  /// Set when decode/validation failed; `encoded` already holds the
  /// error frame and the request skips evaluation.
  bool failed = false;
  /// The final response frame (filled at prepare time on failure,
  /// otherwise by EvaluateBatch).
  std::vector<std::byte> encoded;
  /// Kept after evaluation so cache insertion can reuse computed hits.
  Response response;

  // kRecommend staging: canonicalized (sorted, duplicate-free) baskets,
  // their cache keys, and any cached hits found at lookup time.
  std::vector<std::vector<uint32_t>> canonical_baskets;
  std::vector<std::string> cache_keys;
  std::vector<std::optional<std::vector<RuleHit>>> cached_hits;

  // Latency-telemetry stamps (zero and unused when the option is off).
  // All times are microseconds since the trace epoch, so the per-request
  // span lands on the same timebase as every obs::Span.
  double start_ts_us = 0.0;  ///< Submit (async) or Prepare (sync) time.
  double prepare_us = 0.0;   ///< Decode + validate + canonicalize.
  double queue_us = 0.0;     ///< Async path: submit -> drain wait.
  double eval_us = 0.0;      ///< Owning batch's evaluation time.
  uint64_t batch_id = 0;     ///< Process-wide batch sequence number.
  uint32_t batch_requests = 0;  ///< Size of the owning batch.
};

class Server {
 public:
  /// `bundle` must outlive the server (shared ownership). Aborts on
  /// invalid options (programming error; daemons validate flags first).
  Server(std::shared_ptr<const ModelBundle> bundle, ServeOptions options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Convenience single-frame path: HandleFrames on a batch of one.
  std::vector<std::byte> HandleFrame(std::span<const std::byte> frame);

  /// Deterministic micro-batched path: partitions `frames` into batches
  /// of at most batch_size in order, evaluates batches (concurrently
  /// when num_threads >= 2), and returns one response frame per input
  /// frame, in input order. Malformed frames yield error responses in
  /// their slot; this function never fails.
  std::vector<std::vector<std::byte>> HandleFrames(
      const std::vector<std::vector<std::byte>>& frames);

  // -- phase API (used by HandleFrames and the async BatchQueue) -------

  /// Decode + validate one frame; bumps serve/requests (and serve/errors
  /// on failure). Call sequentially in arrival order.
  PreparedRequest Prepare(std::span<const std::byte> frame);

  /// Cache lookups for a prepared kRecommend request, in basket order;
  /// bumps lookup/hit/miss counters. Call sequentially in arrival order.
  void LookupCache(PreparedRequest* prepared);

  /// Evaluates one batch (at most batch_size non-failed requests):
  /// fills each request's response + encoded frame. Thread-safe against
  /// other EvaluateBatch calls; bumps no global counters — work tallies
  /// (including per-basket scan counts for the deterministic histograms
  /// and the batch's evaluation time) are returned for ordered folding.
  struct BatchTally {
    uint64_t records_classified = 0;
    uint64_t points_assigned = 0;
    uint64_t baskets_scored = 0;
    uint64_t rules_scanned = 0;
    /// Rules scanned per scored basket, in basket order — folded into
    /// the serve/hist/rules_scanned histogram.
    std::vector<uint32_t> basket_rule_scans;
    /// Batch evaluation wall time (latency telemetry only; 0 otherwise).
    double eval_us = 0.0;
  };
  BatchTally EvaluateBatch(std::span<PreparedRequest*> batch) const;

  /// Folds a batch's tally into the registry counters and histograms.
  /// Call in batch order from one thread for deterministic
  /// interleaving-free totals (atomic adds make any order race-free and
  /// total-preserving).
  void FoldTally(const BatchTally& tally);

  /// Inserts the request's computed (missed) baskets into the cache in
  /// basket order; bumps insertion/eviction counters.
  void InsertCacheMisses(const PreparedRequest& prepared);

  /// Bumps the batch-shape counters for one batch and stamps the batch
  /// id / size onto its requests for the per-request telemetry.
  void CountBatch(std::span<PreparedRequest*> batch);

  /// Telemetry clock: microseconds since the trace epoch, or 0 when
  /// latency telemetry is off (so callers may stamp unconditionally).
  double TelemetryNowUs() const;

  /// Async path: credits the submit -> drain wait to the queue-wait
  /// histogram and extends the request's lifetime stamp back to
  /// `submit_ts_us` so total latency includes the queue.
  void RecordQueueWait(PreparedRequest* prepared, double submit_ts_us);

  /// Finalizes one request's telemetry once its response frame is ready:
  /// total + per-type latency histograms, the per-request trace span
  /// (request id, batch id, cache hit/miss as args), and the slow-query
  /// log. No-op when latency telemetry is off.
  void RecordRequestDone(PreparedRequest* prepared);

  /// Current serving stats as a JSON object (bundle inventory, options,
  /// serve/* counter totals, cache size).
  std::string StatsJson() const;

  const ServeOptions& options() const { return options_; }
  const ModelBundle& bundle() const { return *bundle_; }
  /// nullptr when evaluation is serial.
  core::ThreadPool* pool() { return pool_.get(); }
  bool cache_enabled() const { return cache_ != nullptr; }

 private:
  core::Status ValidateRequest(const Request& request) const;
  PreparedRequest PrepareImpl(std::span<const std::byte> frame);
  void EvaluateClassifyGroup(std::span<PreparedRequest*> group,
                             BatchTally* tally) const;
  void EvaluateCluster(PreparedRequest* prepared, BatchTally* tally) const;
  void EvaluateRecommendGroup(std::span<PreparedRequest*> group,
                              BatchTally* tally) const;
  std::vector<RuleHit> ScoreBasket(const std::vector<uint32_t>& basket,
                                   uint64_t basket_signature,
                                   const core::DynamicBitset& bits,
                                   uint32_t top_k,
                                   uint64_t* rules_scanned) const;

  std::shared_ptr<const ModelBundle> bundle_;
  ServeOptions options_;
  std::unique_ptr<core::ThreadPool> pool_;
  std::unique_ptr<ShardedLruCache> cache_;

  obs::Counter requests_;
  obs::Counter errors_;
  obs::Counter records_classified_;
  obs::Counter points_assigned_;
  obs::Counter baskets_scored_;
  obs::Counter rules_scanned_;
  obs::Counter batches_;
  obs::Counter cache_lookups_;
  obs::Counter cache_hits_;
  obs::Counter cache_misses_;
  obs::Counter cache_insertions_;
  obs::Counter cache_evictions_;
  /// Power-of-two batch-size histogram: bucket_counters_[i] counts
  /// batches with 2^(i-1) < size <= 2^i.
  std::vector<obs::Counter> bucket_counters_;

  // Deterministic work-shape histograms (part of the counter contract:
  // bit-identical at every batch size × thread count × telemetry
  // setting).
  obs::Histogram hist_basket_items_;
  obs::Histogram hist_rules_scanned_;
  // Latency histograms (latency_telemetry only; wall-time valued, so
  // only their _count is deterministic).
  obs::Histogram lat_total_;
  obs::Histogram lat_prepare_;
  obs::Histogram lat_queue_;
  obs::Histogram lat_eval_;
  obs::Histogram lat_classify_;
  obs::Histogram lat_cluster_;
  obs::Histogram lat_recommend_;
  obs::Histogram lat_stats_;

  /// Process-wide batch sequence for trace/span correlation; never
  /// reset (ids only need to be unique, not dense).
  std::atomic<uint64_t> next_batch_id_{1};
};

}  // namespace dmt::serve

#endif  // DMT_SERVE_SERVER_H_
