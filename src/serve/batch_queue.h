// Micro-batching request queue — the latency/throughput trade at the
// heart of the daemon. Submit() enqueues a raw request frame plus a
// completion callback; a single accumulator thread drains up to
// batch_size pending frames (or whatever arrived within batch_timeout_us
// of the oldest pending frame) and hands the whole batch to the server as
// ONE unit: prepare + cache lookups on the accumulator thread (in drain
// order), evaluation as one task on the server's thread pool (inline when
// the server is serial). Parallelism comes from concurrent *batches* in
// flight, never from splitting a batch, so batching cannot change any
// response (serving_diff_test.cc holds the sync path to that bit-for-bit;
// the async path shares every evaluation code path).
//
// Unlike Server::HandleFrames, cache lookups happen at drain time, so
// hit/miss counters here depend on arrival timing — by design; the
// deterministic counter contract belongs to the sync path.
#ifndef DMT_SERVE_BATCH_QUEUE_H_
#define DMT_SERVE_BATCH_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.h"

namespace dmt::serve {

/// Asynchronous front door to a Server. Thread-safe Submit from any
/// number of connection threads. Must be destroyed before the Server it
/// wraps; the destructor drains every pending request first.
class BatchQueue {
 public:
  /// Called with the encoded response frame when the request completes.
  /// Runs on a pool worker (or the accumulator thread when the server is
  /// serial); implementations must be thread-safe and must not block for
  /// long — they hold a batch slot.
  using ResponseCallback = std::function<void(std::vector<std::byte>)>;

  explicit BatchQueue(Server* server);
  ~BatchQueue();

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Enqueues one request frame. The callback fires exactly once, even
  /// for malformed frames (they complete with an error response).
  void Submit(std::vector<std::byte> frame, ResponseCallback callback);

  /// Blocks until every request submitted before this call has had its
  /// callback invoked.
  void Flush();

 private:
  struct Item {
    std::vector<std::byte> frame;
    ResponseCallback callback;
    /// Telemetry stamp taken at Submit(); 0 when telemetry is off. The
    /// drain credits submit -> prepare to the queue-wait histogram.
    double submit_ts_us = 0.0;
  };

  void DrainLoop();
  /// Pops up to batch_size items (holding the lock), returns them.
  std::vector<Item> TakeBatch(std::unique_lock<std::mutex>* lock);
  void RunBatch(std::vector<Item> items);

  Server* server_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<Item> queue_;
  size_t batches_in_flight_ = 0;
  bool stopping_ = false;
  std::thread drainer_;
};

}  // namespace dmt::serve

#endif  // DMT_SERVE_BATCH_QUEUE_H_
