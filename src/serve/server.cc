#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <utility>

#include "core/check.h"
#include "core/string_util.h"
#include "obs/expose.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace dmt::serve {

using core::Result;
using core::Status;

Status ServeOptions::Validate() const {
  if (batch_size == 0 || batch_size > 4096) {
    return Status::InvalidArgument(
        core::StrFormat("batch_size %u out of range [1, 4096]", batch_size));
  }
  if (cache_shards == 0) {
    return Status::InvalidArgument("cache_shards must be >= 1");
  }
  if (verify_cache_hits && cache_capacity == 0) {
    return Status::InvalidArgument(
        "verify_cache_hits requires a cache (cache_capacity > 0)");
  }
  if (slow_query_us > 0 && !latency_telemetry) {
    return Status::InvalidArgument(
        "slow_query_us requires latency_telemetry");
  }
  return Status::OK();
}

namespace {

/// Telemetry timebase: microseconds since the trace epoch, shared with
/// obs::Span so per-request spans align with phase spans.
double NowUs() { return obs::TraceSink::Global().EpochSeconds() * 1e6; }

uint64_t ToMicros(double us) {
  return us <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(us));
}

const char* TypeName(RequestType type) {
  switch (type) {
    case RequestType::kClassify: return "classify";
    case RequestType::kAssignCluster: return "cluster";
    case RequestType::kRecommend: return "recommend";
    case RequestType::kStats: return "stats";
  }
  return "unknown";
}

}  // namespace

Server::Server(std::shared_ptr<const ModelBundle> bundle,
               ServeOptions options)
    : bundle_(std::move(bundle)), options_(options) {
  DMT_CHECK(bundle_ != nullptr);
  DMT_CHECK(options_.Validate().ok());
  if (options_.num_threads >= 2) {
    pool_ = std::make_unique<core::ThreadPool>(options_.num_threads);
  }
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ShardedLruCache>(options_.cache_capacity,
                                               options_.cache_shards);
  }
  requests_ = obs::Counter("serve/requests");
  errors_ = obs::Counter("serve/errors");
  records_classified_ = obs::Counter("serve/records_classified");
  points_assigned_ = obs::Counter("serve/points_assigned");
  baskets_scored_ = obs::Counter("serve/baskets_scored");
  rules_scanned_ = obs::Counter("serve/rules_scanned");
  batches_ = obs::Counter("serve/batches");
  cache_lookups_ = obs::Counter("serve/cache_lookups");
  cache_hits_ = obs::Counter("serve/cache_hits");
  cache_misses_ = obs::Counter("serve/cache_misses");
  cache_insertions_ = obs::Counter("serve/cache_insertions");
  cache_evictions_ = obs::Counter("serve/cache_evictions");
  size_t buckets = 0;
  while ((1u << buckets) < options_.batch_size) ++buckets;
  bucket_counters_.reserve(buckets + 1);
  for (size_t i = 0; i <= buckets; ++i) {
    bucket_counters_.emplace_back(
        core::StrFormat("serve/batch_bucket_%u", 1u << i));
  }
  hist_basket_items_ = obs::Histogram("serve/hist/basket_items");
  hist_rules_scanned_ = obs::Histogram("serve/hist/rules_scanned");
  lat_total_ = obs::Histogram("serve/latency/total_us");
  lat_prepare_ = obs::Histogram("serve/latency/prepare_us");
  lat_queue_ = obs::Histogram("serve/latency/queue_us");
  lat_eval_ = obs::Histogram("serve/latency/eval_us");
  lat_classify_ = obs::Histogram("serve/latency/classify_us");
  lat_cluster_ = obs::Histogram("serve/latency/cluster_us");
  lat_recommend_ = obs::Histogram("serve/latency/recommend_us");
  lat_stats_ = obs::Histogram("serve/latency/stats_us");
}

Status Server::ValidateRequest(const Request& request) const {
  switch (request.type) {
    case RequestType::kClassify: {
      if (request.model == ClassifyModel::kTree && !bundle_->has_tree()) {
        return Status::FailedPrecondition(
            "no decision tree loaded in this bundle");
      }
      if (request.model != ClassifyModel::kTree && !bundle_->has_train()) {
        return Status::FailedPrecondition(
            "kNN/naive-Bayes need a bundled training dataset");
      }
      const std::vector<core::AttributeInfo>& schema = bundle_->schema();
      if (schema.empty()) {
        return Status::FailedPrecondition(
            "bundle has no classification schema");
      }
      if (request.dim != schema.size()) {
        return Status::InvalidArgument(core::StrFormat(
            "record dim %u does not match the serving schema (%zu "
            "attributes)",
            request.dim, schema.size()));
      }
      // Multiway tree splits index children by category code, so a code
      // must be valid for both the serving schema and (for tree queries)
      // the tree's captured dictionaries.
      size_t tree_attributes = schema.size();
      const std::vector<std::vector<std::string>>* tree_categories =
          nullptr;
      if (request.model == ClassifyModel::kTree) {
        tree_categories =
            &tree::internal::TreeAccess::AttributeCategories(
                bundle_->tree());
        tree_attributes = tree_categories->size();
        if (tree_attributes != schema.size()) {
          return Status::FailedPrecondition(core::StrFormat(
              "tree was trained on %zu attributes but the serving schema "
              "has %zu",
              tree_attributes, schema.size()));
        }
      }
      for (size_t a = 0; a < schema.size(); ++a) {
        if (schema[a].type != core::AttributeType::kCategorical) continue;
        size_t limit = schema[a].num_categories();
        if (tree_categories != nullptr && !(*tree_categories)[a].empty()) {
          limit = std::min(limit, (*tree_categories)[a].size());
        }
        for (uint32_t r = 0; r < request.count; ++r) {
          double v = request.values[size_t{r} * request.dim + a];
          if (!(v >= 0) || v != std::floor(v) ||
              v >= static_cast<double>(limit)) {
            return Status::InvalidArgument(core::StrFormat(
                "record %u attribute %zu (\"%s\"): %g is not a valid "
                "category code (expected an integer in [0, %zu))",
                r, a, schema[a].name.c_str(), v, limit));
          }
        }
      }
      return Status::OK();
    }
    case RequestType::kAssignCluster: {
      if (!bundle_->has_kmeans()) {
        return Status::FailedPrecondition(
            "no k-means model loaded in this bundle");
      }
      if (request.dim != bundle_->centers_soa().dim()) {
        return Status::InvalidArgument(core::StrFormat(
            "point dim %u does not match the model dim %zu", request.dim,
            bundle_->centers_soa().dim()));
      }
      return Status::OK();
    }
    case RequestType::kRecommend:
      if (!bundle_->has_rules()) {
        return Status::FailedPrecondition(
            "no rule set loaded in this bundle");
      }
      return Status::OK();
    case RequestType::kStats:
      return Status::OK();
  }
  return Status::Internal("unreachable request type");
}

PreparedRequest Server::Prepare(std::span<const std::byte> frame) {
  if (!options_.latency_telemetry) return PrepareImpl(frame);
  const double t0 = NowUs();
  PreparedRequest prepared = PrepareImpl(frame);
  prepared.start_ts_us = t0;
  prepared.prepare_us = NowUs() - t0;
  lat_prepare_.Record(ToMicros(prepared.prepare_us));
  return prepared;
}

PreparedRequest Server::PrepareImpl(std::span<const std::byte> frame) {
  requests_.Increment();
  PreparedRequest prepared;
  Result<Request> decoded = DecodeRequestFrame(frame);
  if (!decoded.ok()) {
    errors_.Increment();
    prepared.failed = true;
    prepared.encoded =
        EncodeResponseFrame(MakeErrorResponse(0, decoded.status()));
    return prepared;
  }
  prepared.request = std::move(decoded).value();
  Status valid = ValidateRequest(prepared.request);
  if (!valid.ok()) {
    errors_.Increment();
    prepared.failed = true;
    prepared.encoded = EncodeResponseFrame(
        MakeErrorResponse(prepared.request.id, valid));
    return prepared;
  }
  if (prepared.request.type == RequestType::kRecommend) {
    prepared.canonical_baskets.reserve(prepared.request.baskets.size());
    for (const std::vector<uint32_t>& basket : prepared.request.baskets) {
      std::vector<uint32_t> canonical = basket;
      std::sort(canonical.begin(), canonical.end());
      canonical.erase(std::unique(canonical.begin(), canonical.end()),
                      canonical.end());
      // Work-shape histogram: a pure function of the request stream, so
      // part of the deterministic counter contract (recorded with
      // telemetry on or off).
      hist_basket_items_.Record(canonical.size());
      prepared.canonical_baskets.push_back(std::move(canonical));
    }
    prepared.cached_hits.assign(prepared.canonical_baskets.size(),
                                std::nullopt);
    if (cache_ != nullptr) {
      prepared.cache_keys.reserve(prepared.canonical_baskets.size());
      for (const std::vector<uint32_t>& canonical :
           prepared.canonical_baskets) {
        // Key = raw little-endian item ids + top_k: two baskets collide
        // iff they are the same canonical query.
        std::string key;
        key.reserve(canonical.size() * sizeof(uint32_t) +
                    sizeof(uint32_t));
        for (uint32_t item : canonical) {
          key.append(reinterpret_cast<const char*>(&item), sizeof(item));
        }
        uint32_t top_k = prepared.request.top_k;
        key.append(reinterpret_cast<const char*>(&top_k), sizeof(top_k));
        prepared.cache_keys.push_back(std::move(key));
      }
    }
  }
  return prepared;
}

void Server::LookupCache(PreparedRequest* prepared) {
  if (cache_ == nullptr || prepared->failed ||
      prepared->request.type != RequestType::kRecommend) {
    return;
  }
  for (size_t b = 0; b < prepared->cache_keys.size(); ++b) {
    cache_lookups_.Increment();
    std::optional<std::vector<RuleHit>> hit =
        cache_->Get(prepared->cache_keys[b]);
    if (hit.has_value()) {
      cache_hits_.Increment();
      prepared->cached_hits[b] = std::move(*hit);
    } else {
      cache_misses_.Increment();
    }
  }
}

void Server::EvaluateClassifyGroup(std::span<PreparedRequest*> group,
                                   BatchTally* tally) const {
  const std::vector<core::AttributeInfo>& schema = bundle_->schema();
  size_t total_rows = 0;
  for (PreparedRequest* p : group) total_rows += p->request.count;

  core::DatasetBuilder builder;
  for (size_t a = 0; a < schema.size(); ++a) {
    if (schema[a].type == core::AttributeType::kNumeric) {
      std::vector<double> column;
      column.reserve(total_rows);
      for (PreparedRequest* p : group) {
        for (uint32_t r = 0; r < p->request.count; ++r) {
          column.push_back(
              p->request.values[size_t{r} * p->request.dim + a]);
        }
      }
      builder.AddNumericColumn(schema[a].name, std::move(column));
    } else {
      std::vector<uint32_t> codes;
      codes.reserve(total_rows);
      for (PreparedRequest* p : group) {
        for (uint32_t r = 0; r < p->request.count; ++r) {
          codes.push_back(static_cast<uint32_t>(
              p->request.values[size_t{r} * p->request.dim + a]));
        }
      }
      builder.AddCategoricalColumn(schema[a].name, std::move(codes),
                                   schema[a].categories);
    }
  }
  // Test labels are required by the builder but ignored by prediction.
  builder.SetLabels(std::vector<uint32_t>(total_rows, 0), {"?"});
  Result<core::Dataset> built = builder.Build();
  const ClassifyModel model = group.front()->request.model;
  Result<std::vector<uint32_t>> predicted =
      !built.ok() ? Result<std::vector<uint32_t>>(built.status())
      : model == ClassifyModel::kTree
          ? Result<std::vector<uint32_t>>(
                bundle_->tree().PredictAll(built.value()))
      : model == ClassifyModel::kKnn
          ? bundle_->knn().PredictAll(built.value())
          : bundle_->naive_bayes().PredictAll(built.value());
  if (!predicted.ok()) {
    // Defensive: validation should have caught anything that gets here.
    for (PreparedRequest* p : group) {
      p->failed = true;
      p->encoded = EncodeResponseFrame(
          MakeErrorResponse(p->request.id, predicted.status()));
    }
    return;
  }
  const std::vector<uint32_t>& labels = predicted.value();
  size_t cursor = 0;
  for (PreparedRequest* p : group) {
    p->response.labels.assign(labels.begin() + cursor,
                              labels.begin() + cursor + p->request.count);
    cursor += p->request.count;
  }
  tally->records_classified += total_rows;
}

void Server::EvaluateCluster(PreparedRequest* prepared,
                             BatchTally* tally) const {
  const core::kernels::SoaBlock& soa = bundle_->centers_soa();
  const size_t k = soa.count();
  const size_t dim = soa.dim();
  const core::kernels::KernelOps& ops = core::kernels::Ops();
  std::vector<double> distances(k);
  prepared->response.clusters.reserve(prepared->request.count);
  prepared->response.cluster_dist_sq.reserve(prepared->request.count);
  for (uint32_t i = 0; i < prepared->request.count; ++i) {
    const double* point = prepared->request.values.data() + size_t{i} * dim;
    ops.squared_euclidean_to_many(point, soa.data(), k, k, dim,
                                  distances.data());
    // Strict < keeps the first of tied centers, matching the k-means
    // assignment convention.
    size_t best = 0;
    for (size_t c = 1; c < k; ++c) {
      if (distances[c] < distances[best]) best = c;
    }
    prepared->response.clusters.push_back(static_cast<uint32_t>(best));
    prepared->response.cluster_dist_sq.push_back(distances[best]);
  }
  tally->points_assigned += prepared->request.count;
}

std::vector<RuleHit> Server::ScoreBasket(
    const std::vector<uint32_t>& basket, uint64_t basket_signature,
    const core::DynamicBitset& bits, uint32_t top_k,
    uint64_t* rules_scanned) const {
  const std::vector<assoc::AssociationRule>& rules = bundle_->rules();
  const std::vector<StagedRule>& staged = bundle_->staged_rules();
  std::vector<RuleHit> hits;
  // Rules are stored sorted by descending confidence then lift, so the
  // first top_k matches are the answer and the scan can stop early.
  for (size_t i = 0; i < rules.size(); ++i) {
    ++*rules_scanned;
    if (!core::kernels::SignatureSubset(staged[i].antecedent_signature,
                                        basket_signature)) {
      continue;
    }
    const assoc::AssociationRule& rule = rules[i];
    bool contained = true;
    for (uint32_t item : rule.antecedent) {
      if (!bits.Test(item)) {
        contained = false;
        break;
      }
    }
    if (!contained) continue;
    // Skip rules whose consequent the basket already contains — they
    // recommend nothing new.
    if (core::kernels::SignatureSubset(staged[i].consequent_signature,
                                       basket_signature)) {
      bool already_has = true;
      for (uint32_t item : rule.consequent) {
        if (!bits.Test(item)) {
          already_has = false;
          break;
        }
      }
      if (already_has) continue;
    }
    RuleHit hit;
    hit.rule_index = static_cast<uint32_t>(i);
    hit.confidence = rule.confidence;
    hit.lift = rule.lift;
    hit.consequent = rule.consequent;
    hits.push_back(std::move(hit));
    if (hits.size() == top_k) break;
  }
  (void)basket;
  return hits;
}

void Server::EvaluateRecommendGroup(std::span<PreparedRequest*> group,
                                    BatchTally* tally) const {
  // One shared bitset per batch, sized for the rule universe and every
  // basket in the group; baskets set and clear their own bits.
  uint32_t max_item = bundle_->max_rule_item();
  for (PreparedRequest* p : group) {
    for (const std::vector<uint32_t>& basket : p->canonical_baskets) {
      if (!basket.empty()) max_item = std::max(max_item, basket.back());
    }
  }
  core::DynamicBitset bits(size_t{max_item} + 1);
  for (PreparedRequest* p : group) {
    p->response.recommendations.reserve(p->canonical_baskets.size());
    for (size_t b = 0; b < p->canonical_baskets.size(); ++b) {
      const std::vector<uint32_t>& basket = p->canonical_baskets[b];
      const bool have_cached =
          b < p->cached_hits.size() && p->cached_hits[b].has_value();
      if (have_cached && !options_.verify_cache_hits) {
        p->response.recommendations.push_back(*p->cached_hits[b]);
        continue;
      }
      uint64_t signature = 0;
      for (uint32_t item : basket) {
        bits.Set(item);
        signature |= core::kernels::SignatureOfItem(item);
      }
      const uint64_t scanned_before = tally->rules_scanned;
      std::vector<RuleHit> hits = ScoreBasket(
          basket, signature, bits, p->request.top_k, &tally->rules_scanned);
      ++tally->baskets_scored;
      tally->basket_rule_scans.push_back(
          static_cast<uint32_t>(tally->rules_scanned - scanned_before));
      for (uint32_t item : basket) bits.Clear(item);
      if (have_cached) {
        // The cache contract, asserted: a hit must be bit-identical to
        // the recompute.
        std::vector<std::byte> cached_bytes, fresh_bytes;
        EncodeRuleHits(*p->cached_hits[b], &cached_bytes);
        EncodeRuleHits(hits, &fresh_bytes);
        DMT_CHECK(cached_bytes == fresh_bytes);
      }
      p->response.recommendations.push_back(std::move(hits));
    }
  }
}

Server::BatchTally Server::EvaluateBatch(
    std::span<PreparedRequest*> batch) const {
  obs::Span span("serve/batch");
  span.AddArg("requests", batch.size());
  const double eval_start = options_.latency_telemetry ? NowUs() : 0.0;
  BatchTally tally;

  std::vector<PreparedRequest*> by_model[3];
  std::vector<PreparedRequest*> recommend;
  for (PreparedRequest* p : batch) {
    if (p->failed) continue;
    p->response.id = p->request.id;
    p->response.type = p->request.type;
    p->response.status = 0;
    switch (p->request.type) {
      case RequestType::kClassify:
        by_model[static_cast<size_t>(p->request.model)].push_back(p);
        break;
      case RequestType::kAssignCluster:
        EvaluateCluster(p, &tally);
        break;
      case RequestType::kRecommend:
        recommend.push_back(p);
        break;
      case RequestType::kStats:
        p->response.stats_json = StatsJson();
        break;
    }
  }
  for (auto& group : by_model) {
    if (!group.empty()) {
      EvaluateClassifyGroup(std::span<PreparedRequest*>(group), &tally);
    }
  }
  if (!recommend.empty()) {
    EvaluateRecommendGroup(std::span<PreparedRequest*>(recommend), &tally);
  }
  for (PreparedRequest* p : batch) {
    if (p->failed) continue;
    p->encoded = EncodeResponseFrame(p->response);
  }
  if (options_.latency_telemetry) {
    tally.eval_us = NowUs() - eval_start;
    for (PreparedRequest* p : batch) p->eval_us = tally.eval_us;
  }
  return tally;
}

void Server::FoldTally(const BatchTally& tally) {
  records_classified_.Add(tally.records_classified);
  points_assigned_.Add(tally.points_assigned);
  baskets_scored_.Add(tally.baskets_scored);
  rules_scanned_.Add(tally.rules_scanned);
  // Per-basket scan counts fold here, in batch order on the folding
  // thread, keeping histograms under the same single-writer discipline
  // as the counters.
  for (uint32_t scans : tally.basket_rule_scans) {
    hist_rules_scanned_.Record(scans);
  }
  if (options_.latency_telemetry) {
    lat_eval_.Record(ToMicros(tally.eval_us));
  }
}

void Server::InsertCacheMisses(const PreparedRequest& prepared) {
  if (cache_ == nullptr || prepared.failed ||
      prepared.request.type != RequestType::kRecommend) {
    return;
  }
  for (size_t b = 0; b < prepared.cache_keys.size(); ++b) {
    if (prepared.cached_hits[b].has_value()) continue;
    cache_evictions_.Add(cache_->Put(prepared.cache_keys[b],
                                     prepared.response.recommendations[b]));
    cache_insertions_.Increment();
  }
}

void Server::CountBatch(std::span<PreparedRequest*> batch) {
  const size_t size = batch.size();
  batches_.Increment();
  size_t bucket = 0;
  while ((size_t{1} << bucket) < size &&
         bucket + 1 < bucket_counters_.size()) {
    ++bucket;
  }
  bucket_counters_[bucket].Increment();
  if (options_.latency_telemetry) {
    const uint64_t id =
        next_batch_id_.fetch_add(1, std::memory_order_relaxed);
    for (PreparedRequest* p : batch) {
      p->batch_id = id;
      p->batch_requests = static_cast<uint32_t>(size);
    }
  }
}

double Server::TelemetryNowUs() const {
  return options_.latency_telemetry ? NowUs() : 0.0;
}

void Server::RecordQueueWait(PreparedRequest* prepared,
                             double submit_ts_us) {
  if (!options_.latency_telemetry) return;
  prepared->queue_us = prepared->start_ts_us - submit_ts_us;
  prepared->start_ts_us = submit_ts_us;
  lat_queue_.Record(ToMicros(prepared->queue_us));
}

void Server::RecordRequestDone(PreparedRequest* prepared) {
  if (!options_.latency_telemetry) return;
  const double total = NowUs() - prepared->start_ts_us;
  const uint64_t total_us = ToMicros(total);
  lat_total_.Record(total_us);
  const RequestType type = prepared->request.type;
  switch (type) {
    case RequestType::kClassify: lat_classify_.Record(total_us); break;
    case RequestType::kAssignCluster: lat_cluster_.Record(total_us); break;
    case RequestType::kRecommend: lat_recommend_.Record(total_us); break;
    case RequestType::kStats: lat_stats_.Record(total_us); break;
  }
  uint64_t cache_hits = 0;
  for (const auto& hit : prepared->cached_hits) {
    if (hit.has_value()) ++cache_hits;
  }
  obs::TraceSink& sink = obs::TraceSink::Global();
  if (sink.enabled()) {
    std::vector<std::pair<std::string, uint64_t>> args;
    args.emplace_back("request_id", prepared->request.id);
    args.emplace_back("batch_id", prepared->batch_id);
    args.emplace_back("batch_requests", prepared->batch_requests);
    args.emplace_back("queue_us", ToMicros(prepared->queue_us));
    args.emplace_back("prepare_us", ToMicros(prepared->prepare_us));
    args.emplace_back("eval_us", ToMicros(prepared->eval_us));
    if (type == RequestType::kRecommend) {
      args.emplace_back("cache_hits", cache_hits);
      args.emplace_back("cache_misses",
                        prepared->cached_hits.size() - cache_hits);
    }
    if (prepared->failed) args.emplace_back("error", 1);
    sink.RecordManual("serve/request", prepared->start_ts_us, total,
                      std::move(args));
  }
  if (options_.slow_query_us > 0 && total_us >= options_.slow_query_us) {
    obs::Log(obs::LogSeverity::kWarning,
             "slow query: id=%llu type=%s batch=%llu/%u queue=%lluus "
             "prepare=%lluus eval=%lluus total=%lluus",
             static_cast<unsigned long long>(prepared->request.id),
             TypeName(type),
             static_cast<unsigned long long>(prepared->batch_id),
             prepared->batch_requests,
             static_cast<unsigned long long>(ToMicros(prepared->queue_us)),
             static_cast<unsigned long long>(
                 ToMicros(prepared->prepare_us)),
             static_cast<unsigned long long>(ToMicros(prepared->eval_us)),
             static_cast<unsigned long long>(total_us));
  }
}

std::vector<std::byte> Server::HandleFrame(
    std::span<const std::byte> frame) {
  std::vector<std::vector<std::byte>> frames;
  frames.emplace_back(frame.begin(), frame.end());
  return std::move(HandleFrames(frames)[0]);
}

std::vector<std::vector<std::byte>> Server::HandleFrames(
    const std::vector<std::vector<std::byte>>& frames) {
  obs::Span span("serve/handle_frames");
  span.AddArg("frames", frames.size());

  std::vector<PreparedRequest> prepared;
  prepared.reserve(frames.size());
  for (const std::vector<std::byte>& frame : frames) {
    prepared.push_back(Prepare(frame));
  }
  // All cache lookups happen here, sequentially in request order, before
  // any batch runs — the determinism half of the cache design.
  for (PreparedRequest& p : prepared) LookupCache(&p);

  std::vector<std::vector<PreparedRequest*>> batches;
  for (PreparedRequest& p : prepared) {
    if (p.failed) continue;
    if (batches.empty() || batches.back().size() >= options_.batch_size) {
      batches.emplace_back();
    }
    batches.back().push_back(&p);
  }
  for (auto& batch : batches) CountBatch(std::span(batch));

  if (pool_ != nullptr && batches.size() > 1) {
    std::vector<std::future<BatchTally>> futures;
    futures.reserve(batches.size());
    for (auto& batch : batches) {
      futures.push_back(pool_->SubmitTask(
          [this, &batch] { return EvaluateBatch(std::span(batch)); }));
    }
    // Fold in batch order: totals are order-invariant, but keeping the
    // fold sequenced documents (and TSan-checks) the single-writer rule.
    for (std::future<BatchTally>& f : futures) FoldTally(f.get());
  } else {
    for (auto& batch : batches) {
      FoldTally(EvaluateBatch(std::span(batch)));
    }
  }
  // Misses enter the cache only now, in request order, after every batch
  // completed — batch shape cannot affect what later lookups see.
  for (const PreparedRequest& p : prepared) InsertCacheMisses(p);
  for (PreparedRequest& p : prepared) RecordRequestDone(&p);

  std::vector<std::vector<std::byte>> responses;
  responses.reserve(prepared.size());
  for (PreparedRequest& p : prepared) {
    responses.push_back(std::move(p.encoded));
  }
  return responses;
}

std::string Server::StatsJson() const {
  std::string json = "{";
  json += core::StrFormat("\"bundle\":\"%s\"", bundle_->Describe().c_str());
  json += core::StrFormat(",\"batch_size\":%u", options_.batch_size);
  json += core::StrFormat(",\"num_threads\":%zu", options_.num_threads);
  json += core::StrFormat(",\"cache_capacity\":%zu",
                          options_.cache_capacity);
  json += core::StrFormat(
      ",\"cache_entries\":%zu",
      cache_ != nullptr ? cache_->Size() : size_t{0});
  json += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] :
       obs::Registry::Global().CounterSnapshot()) {
    if (name.rfind("serve/", 0) != 0) continue;
    if (!first) json += ",";
    first = false;
    json += core::StrFormat("\"%s\":%llu", name.c_str(),
                            static_cast<unsigned long long>(value));
  }
  json += "},\"registry\":";
  json += obs::RenderJsonSnapshot();
  json += "}";
  return json;
}

}  // namespace dmt::serve
