#include "serve/model_bundle.h"

#include <algorithm>
#include <utility>

#include "core/string_util.h"
#include "io/serialize.h"
#include "obs/trace.h"

namespace dmt::serve {

using core::Result;
using core::Status;

Result<std::shared_ptr<const ModelBundle>> ModelBundle::Load(
    const ModelPaths& paths) {
  obs::Span span("serve/bundle/load");
  auto bundle = std::shared_ptr<ModelBundle>(new ModelBundle());
  if (!paths.tree.empty()) {
    DMT_ASSIGN_OR_RETURN(bundle->tree_, io::LoadDecisionTree(paths.tree));
  }
  if (!paths.train.empty()) {
    DMT_ASSIGN_OR_RETURN(bundle->train_, io::LoadDataset(paths.train));
  }
  if (!paths.kmeans.empty()) {
    DMT_ASSIGN_OR_RETURN(bundle->kmeans_, io::LoadKMeansModel(paths.kmeans));
  }
  if (!paths.rules.empty()) {
    DMT_ASSIGN_OR_RETURN(bundle->rules_, io::LoadRuleSet(paths.rules));
  }
  DMT_RETURN_NOT_OK(bundle->FinishInit());
  span.AddArg("tree", bundle->tree_.has_value() ? 1 : 0);
  span.AddArg("train_rows",
              bundle->train_.has_value() ? bundle->train_->num_rows() : 0);
  span.AddArg("kmeans", bundle->kmeans_.has_value() ? 1 : 0);
  span.AddArg("rules",
              bundle->rules_.has_value() ? bundle->rules_->size() : 0);
  return std::shared_ptr<const ModelBundle>(std::move(bundle));
}

Result<std::shared_ptr<const ModelBundle>> ModelBundle::FromParts(
    std::optional<tree::DecisionTree> tree,
    std::optional<core::Dataset> train,
    std::optional<cluster::ClusteringResult> kmeans,
    std::optional<std::vector<assoc::AssociationRule>> rules) {
  auto bundle = std::shared_ptr<ModelBundle>(new ModelBundle());
  bundle->tree_ = std::move(tree);
  bundle->train_ = std::move(train);
  bundle->kmeans_ = std::move(kmeans);
  bundle->rules_ = std::move(rules);
  DMT_RETURN_NOT_OK(bundle->FinishInit());
  return std::shared_ptr<const ModelBundle>(std::move(bundle));
}

Status ModelBundle::FinishInit() {
  // Serving schema: training data is authoritative; a tree alone still
  // yields a usable schema from its captured names (an attribute is
  // categorical iff it captured category names).
  if (train_.has_value()) {
    schema_.reserve(train_->num_attributes());
    for (size_t a = 0; a < train_->num_attributes(); ++a) {
      schema_.push_back(train_->attribute(a));
    }
  } else if (tree_.has_value()) {
    const auto& names = tree::internal::TreeAccess::AttributeNames(*tree_);
    const auto& categories =
        tree::internal::TreeAccess::AttributeCategories(*tree_);
    schema_.reserve(names.size());
    for (size_t a = 0; a < names.size(); ++a) {
      core::AttributeInfo info;
      info.name = names[a];
      if (a < categories.size() && !categories[a].empty()) {
        info.type = core::AttributeType::kCategorical;
        info.categories = categories[a];
      }
      schema_.push_back(std::move(info));
    }
  }

  if (train_.has_value()) {
    if (train_->num_rows() == 0) {
      return Status::InvalidArgument(
          "serving bundle: training dataset is empty");
    }
    // Brute-force search stages the training points as an SoA block, so
    // every serving query runs through the batched distance kernel.
    classify::KnnOptions knn_options;
    knn_options.search = classify::KnnOptions::Search::kBruteForce;
    knn_options.k = std::min<size_t>(5, train_->num_rows());
    knn_ = std::make_unique<classify::KnnClassifier>(knn_options);
    DMT_RETURN_NOT_OK(knn_->Fit(*train_));
    nb_ = std::make_unique<classify::NaiveBayesClassifier>();
    DMT_RETURN_NOT_OK(nb_->Fit(*train_));
  }

  if (kmeans_.has_value()) {
    const core::PointSet& centers = kmeans_->centers;
    if (centers.empty()) {
      return Status::InvalidArgument(
          "serving bundle: k-means model has no centers");
    }
    centers_soa_.Assign(centers.data().data(), centers.size(),
                        centers.dim());
  }

  if (rules_.has_value()) {
    staged_rules_.reserve(rules_->size());
    for (const assoc::AssociationRule& rule : *rules_) {
      StagedRule staged;
      for (uint32_t item : rule.antecedent) {
        staged.antecedent_signature |=
            core::kernels::SignatureOfItem(item);
        staged.max_item = std::max(staged.max_item, item);
      }
      for (uint32_t item : rule.consequent) {
        staged.consequent_signature |=
            core::kernels::SignatureOfItem(item);
        staged.max_item = std::max(staged.max_item, item);
      }
      max_rule_item_ = std::max(max_rule_item_, staged.max_item);
      staged_rules_.push_back(staged);
    }
  }
  return Status::OK();
}

std::string ModelBundle::Describe() const {
  std::string out = "tree=";
  out += tree_.has_value()
             ? core::StrFormat("%zu-node", tree_->num_nodes())
             : "no";
  out += " train=";
  out += train_.has_value()
             ? core::StrFormat("%zux%zu", train_->num_rows(),
                               train_->num_attributes())
             : "no";
  out += " kmeans=";
  out += kmeans_.has_value()
             ? core::StrFormat("k%zu-d%zu", kmeans_->centers.size(),
                               kmeans_->centers.dim())
             : "no";
  out += " rules=";
  out += rules_.has_value() ? core::StrFormat("%zu", rules_->size()) : "no";
  return out;
}

}  // namespace dmt::serve
