#include "serve/batch_queue.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <utility>

#include "core/check.h"

namespace dmt::serve {

BatchQueue::BatchQueue(Server* server) : server_(server) {
  DMT_CHECK(server_ != nullptr);
  drainer_ = std::thread([this] { DrainLoop(); });
}

BatchQueue::~BatchQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  drainer_.join();
  // The drainer exits only once the queue is empty, but batches it handed
  // to the pool may still be running; their tasks reference this object.
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return batches_in_flight_ == 0; });
}

void BatchQueue::Submit(std::vector<std::byte> frame,
                        ResponseCallback callback) {
  const double submit_ts = server_->TelemetryNowUs();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DMT_CHECK(!stopping_);
    queue_.push_back(
        Item{std::move(frame), std::move(callback), submit_ts});
  }
  work_available_.notify_one();
}

void BatchQueue::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] {
    return queue_.empty() && batches_in_flight_ == 0;
  });
}

std::vector<BatchQueue::Item> BatchQueue::TakeBatch(
    std::unique_lock<std::mutex>* lock) {
  const size_t take =
      std::min<size_t>(queue_.size(), server_->options().batch_size);
  std::vector<Item> items;
  items.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    items.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (!items.empty()) ++batches_in_flight_;
  (void)lock;
  return items;
}

void BatchQueue::DrainLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Let a batch fill: wait out the timeout window (measured from the
    // oldest pending frame, i.e. now) unless it fills first or we are
    // shutting down (then latency no longer matters, only draining).
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(server_->options().batch_timeout_us);
    while (!stopping_ &&
           queue_.size() < server_->options().batch_size &&
           work_available_.wait_until(lock, deadline) !=
               std::cv_status::timeout) {
    }
    std::vector<Item> items = TakeBatch(&lock);
    lock.unlock();
    if (!items.empty()) RunBatch(std::move(items));
  }
}

void BatchQueue::RunBatch(std::vector<Item> items) {
  // Prepare + cache lookups stay on the accumulator thread, in drain
  // order (single-writer on the lookup counters; insertions happen in
  // the evaluation task under the cache's shard locks).
  auto batch = std::make_shared<std::vector<PreparedRequest>>();
  auto callbacks = std::make_shared<std::vector<ResponseCallback>>();
  batch->reserve(items.size());
  callbacks->reserve(items.size());
  for (Item& item : items) {
    batch->push_back(server_->Prepare(item.frame));
    server_->RecordQueueWait(&batch->back(), item.submit_ts_us);
    callbacks->push_back(std::move(item.callback));
  }
  for (PreparedRequest& p : *batch) server_->LookupCache(&p);
  {
    std::vector<PreparedRequest*> pointers;
    pointers.reserve(batch->size());
    for (PreparedRequest& p : *batch) pointers.push_back(&p);
    server_->CountBatch(std::span<PreparedRequest*>(pointers));
  }

  auto evaluate = [this, batch, callbacks] {
    std::vector<PreparedRequest*> pointers;
    pointers.reserve(batch->size());
    for (PreparedRequest& p : *batch) pointers.push_back(&p);
    server_->FoldTally(
        server_->EvaluateBatch(std::span<PreparedRequest*>(pointers)));
    for (const PreparedRequest& p : *batch) server_->InsertCacheMisses(p);
    for (size_t i = 0; i < batch->size(); ++i) {
      server_->RecordRequestDone(&(*batch)[i]);
      (*callbacks)[i](std::move((*batch)[i].encoded));
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --batches_in_flight_;
    }
    all_done_.notify_all();
  };
  if (server_->pool() != nullptr) {
    // Fire-and-forget: completion is tracked by batches_in_flight_, not
    // the future.
    server_->pool()->Submit(evaluate);
  } else {
    evaluate();
  }
}

}  // namespace dmt::serve
