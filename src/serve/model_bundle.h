// The read-only model state a serving process holds: trained artifacts
// loaded from PR-6 DMTBIN01 containers (or handed over in-process for
// tests/benches), plus everything precomputed once at load so per-batch
// work touches only staged data:
//
//   - k-means centers staged dimension-major (SoaBlock) so nearest-center
//     assignment hits the batched squared_euclidean_to_many kernel
//   - per-rule 64-bit antecedent/consequent Bloom signatures gating the
//     exact bitset containment scan
//   - the serving schema (AttributeInfo per feature) for assembling
//     request records into Datasets with the training schema
//   - fitted kNN (brute-force mode => SoA distance kernel per query) and
//     naive-Bayes classifiers over the bundled training dataset
//
// A bundle is immutable after Load()/FromParts() and shared by every
// serving thread without locks.
#ifndef DMT_SERVE_MODEL_BUNDLE_H_
#define DMT_SERVE_MODEL_BUNDLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assoc/rules.h"
#include "classify/knn.h"
#include "classify/naive_bayes.h"
#include "cluster/kmeans.h"
#include "core/dataset.h"
#include "core/kernels/kernels.h"
#include "core/status.h"
#include "tree/decision_tree.h"

namespace dmt::serve {

/// Container paths for Load(). Empty entries are simply absent from the
/// bundle: a daemon serving only rules needs only `rules`. Requests
/// against an absent artifact get a FailedPrecondition error response.
struct ModelPaths {
  std::string tree;    // WriteDecisionTree container
  std::string train;   // WriteDataset container (kNN/NB training data)
  std::string kmeans;  // WriteKMeansModel container
  std::string rules;   // WriteRuleSet container
};

/// Per-rule data staged for the recommendation scan.
struct StagedRule {
  uint64_t antecedent_signature = 0;
  uint64_t consequent_signature = 0;
  /// Largest item id in antecedent ∪ consequent (bitset sizing guard).
  uint32_t max_item = 0;
};

class ModelBundle {
 public:
  /// Loads every non-empty path. Fails with the loader's error if any
  /// named container is missing or corrupt (partial bundles are
  /// expressed by empty paths, not by ignoring errors).
  static core::Result<std::shared_ptr<const ModelBundle>> Load(
      const ModelPaths& paths);

  /// Builds a bundle from in-process objects (tests, benches). Any part
  /// may be nullopt.
  static core::Result<std::shared_ptr<const ModelBundle>> FromParts(
      std::optional<tree::DecisionTree> tree,
      std::optional<core::Dataset> train,
      std::optional<cluster::ClusteringResult> kmeans,
      std::optional<std::vector<assoc::AssociationRule>> rules);

  bool has_tree() const { return tree_.has_value(); }
  bool has_train() const { return train_.has_value(); }
  bool has_kmeans() const { return kmeans_.has_value(); }
  bool has_rules() const { return rules_.has_value(); }

  const tree::DecisionTree& tree() const { return *tree_; }
  const core::Dataset& train() const { return *train_; }
  const cluster::ClusteringResult& kmeans() const { return *kmeans_; }
  const std::vector<assoc::AssociationRule>& rules() const {
    return *rules_;
  }

  const classify::KnnClassifier& knn() const { return *knn_; }
  const classify::NaiveBayesClassifier& naive_bayes() const { return *nb_; }

  /// Serving schema for classify requests: the training dataset's
  /// attributes when present, otherwise derived from the tree's captured
  /// names/categories. Empty when neither is loaded.
  const std::vector<core::AttributeInfo>& schema() const { return schema_; }

  /// Centers staged dimension-major for squared_euclidean_to_many.
  const core::kernels::SoaBlock& centers_soa() const { return centers_soa_; }

  const std::vector<StagedRule>& staged_rules() const {
    return staged_rules_;
  }
  /// Largest item id across all rules (sizes the shared per-batch bitset;
  /// 0 when there are no rules).
  uint32_t max_rule_item() const { return max_rule_item_; }

  /// One-line inventory for logs/stats ("tree=yes train=12x9 ...").
  std::string Describe() const;

 private:
  ModelBundle() = default;

  core::Status FinishInit();

  std::optional<tree::DecisionTree> tree_;
  std::optional<core::Dataset> train_;
  std::optional<cluster::ClusteringResult> kmeans_;
  std::optional<std::vector<assoc::AssociationRule>> rules_;

  std::unique_ptr<classify::KnnClassifier> knn_;
  std::unique_ptr<classify::NaiveBayesClassifier> nb_;
  std::vector<core::AttributeInfo> schema_;
  core::kernels::SoaBlock centers_soa_;
  std::vector<StagedRule> staged_rules_;
  uint32_t max_rule_item_ = 0;
};

}  // namespace dmt::serve

#endif  // DMT_SERVE_MODEL_BUNDLE_H_
