#include "serve/daemon.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>

#include "core/mmap_file.h"
#include "core/string_util.h"
#include "obs/expose.h"
#include "obs/log.h"
#include "serve/batch_queue.h"

namespace dmt::serve {

using core::Result;
using core::Status;

MetricsDumper::MetricsDumper(std::string path, uint32_t interval_ms)
    : path_(std::move(path)),
      interval_ms_(interval_ms > 0 ? interval_ms : 1) {
  DumpOnce();
  thread_ = std::thread([this] { Loop(); });
}

MetricsDumper::~MetricsDumper() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  DumpOnce();
}

void MetricsDumper::DumpOnce() {
  const std::string text = obs::RenderPrometheusText();
  Status written = core::WriteFileBytes(
      path_,
      std::as_bytes(std::span<const char>(text.data(), text.size())));
  if (!written.ok()) {
    obs::Log(obs::LogSeverity::kWarning, "metrics dump to %s failed: %s",
             path_.c_str(), written.ToString().c_str());
  }
}

void MetricsDumper::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                          [this] { return stopping_; })) {
      return;  // final dump happens after join, from the destructor
    }
    lock.unlock();
    DumpOnce();
    lock.lock();
  }
}

namespace {

/// read() that retries EINTR; returns bytes read (0 = EOF).
Result<size_t> ReadSome(int fd, std::byte* out, size_t size) {
  for (;;) {
    ssize_t n = ::read(fd, out, size);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Status::IOError(
        core::StrFormat("read failed: %s", std::strerror(errno)));
  }
}

/// Reads exactly `size` bytes. `eof_ok` permits EOF at offset 0 (signalled
/// by returning false); EOF mid-buffer is always an error.
Result<bool> ReadExact(int fd, std::byte* out, size_t size, bool eof_ok) {
  size_t done = 0;
  while (done < size) {
    DMT_ASSIGN_OR_RETURN(size_t n, ReadSome(fd, out + done, size - done));
    if (n == 0) {
      if (done == 0 && eof_ok) return false;
      return Status::IOError(core::StrFormat(
          "unexpected EOF after %zu of %zu frame byte(s)", done, size));
    }
    done += n;
  }
  return true;
}

}  // namespace

Result<std::vector<std::byte>> ReadFrame(int fd, uint32_t magic) {
  std::vector<std::byte> frame(kFrameHeaderBytes);
  DMT_ASSIGN_OR_RETURN(
      bool got_header,
      ReadExact(fd, frame.data(), kFrameHeaderBytes, /*eof_ok=*/true));
  if (!got_header) return std::vector<std::byte>{};  // clean EOF
  DMT_ASSIGN_OR_RETURN(uint32_t body_length,
                       CheckFrameHeader(frame, magic));
  frame.resize(kFrameHeaderBytes + body_length);
  DMT_ASSIGN_OR_RETURN(
      bool got_body,
      ReadExact(fd, frame.data() + kFrameHeaderBytes, body_length,
                /*eof_ok=*/false));
  (void)got_body;
  return frame;
}

Status WriteAll(int fd, std::span<const std::byte> bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          core::StrFormat("write failed: %s", std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

/// Shared write-side state of one response stream: responses complete on
/// worker threads, so writes serialize on a mutex.
struct ResponseWriter {
  explicit ResponseWriter(int out_fd) : fd(out_fd) {}

  void Write(std::span<const std::byte> frame) {
    std::lock_guard<std::mutex> lock(mutex);
    if (dead) return;
    Status status = WriteAll(fd, frame);
    if (!status.ok()) {
      // A write error (client hung up) kills the stream, not the daemon.
      dead = true;
      obs::Log(obs::LogSeverity::kWarning, "response write: %s",
               status.ToString().c_str());
    }
  }

  int fd;
  std::mutex mutex;
  bool dead = false;
};

/// Reads request frames from in_fd into `queue` until EOF or a framing
/// error; responses go to `writer`. Returns OK on EOF.
Status PumpRequests(BatchQueue* queue, int in_fd,
                    std::shared_ptr<ResponseWriter> writer) {
  for (;;) {
    Result<std::vector<std::byte>> frame = ReadFrame(in_fd, kRequestMagic);
    if (!frame.ok()) {
      // The stream cannot be re-framed; answer once and stop reading.
      writer->Write(EncodeResponseFrame(
          MakeErrorResponse(0, frame.status())));
      return frame.status();
    }
    if (frame.value().empty()) return Status::OK();  // EOF
    queue->Submit(std::move(frame).value(),
                  [writer](std::vector<std::byte> response) {
                    writer->Write(response);
                  });
  }
}

}  // namespace

Status ServeStream(Server* server, int in_fd, int out_fd) {
  BatchQueue queue(server);
  auto writer = std::make_shared<ResponseWriter>(out_fd);
  Status status = PumpRequests(&queue, in_fd, writer);
  queue.Flush();
  return status;
}

Status ServeSocket(Server* server, const std::string& path,
                   size_t max_connections) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        core::StrFormat("socket path too long (%zu bytes)", path.size()));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IOError(
        core::StrFormat("socket: %s", std::strerror(errno)));
  }
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 64) != 0) {
    Status status = Status::IOError(core::StrFormat(
        "bind/listen %s: %s", path.c_str(), std::strerror(errno)));
    ::close(listener);
    return status;
  }
  obs::Log(obs::LogSeverity::kInfo, "dmtd listening on %s", path.c_str());

  BatchQueue queue(server);
  std::vector<std::thread> readers;
  size_t accepted = 0;
  while (max_connections == 0 || accepted < max_connections) {
    int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      ::close(listener);
      for (std::thread& t : readers) t.join();
      return Status::IOError(
          core::StrFormat("accept: %s", std::strerror(errno)));
    }
    ++accepted;
    readers.emplace_back([&queue, conn] {
      auto writer = std::make_shared<ResponseWriter>(conn);
      (void)PumpRequests(&queue, conn, writer);
      // All of this connection's responses must be written before the
      // fd closes; Flush also covers other connections' requests, which
      // is harmless (a small latency tax on close).
      queue.Flush();
      ::close(conn);
    });
  }
  ::close(listener);
  for (std::thread& t : readers) t.join();
  return Status::OK();
}

Result<Request> ParseScriptLine(const std::string& line, uint64_t id) {
  std::string_view trimmed = core::Trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    return Status::NotFound("skip");
  }
  std::vector<std::string> tokens;
  for (const std::string& token :
       core::Split(std::string(trimmed), ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  Request request;
  request.id = id;
  const std::string& verb = tokens.front();
  if (verb == "stats") {
    request.type = RequestType::kStats;
    return request;
  }
  if (verb == "classify") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument(
          "classify needs a model and at least one value");
    }
    request.type = RequestType::kClassify;
    if (tokens[1] == "tree") {
      request.model = ClassifyModel::kTree;
    } else if (tokens[1] == "knn") {
      request.model = ClassifyModel::kKnn;
    } else if (tokens[1] == "nb") {
      request.model = ClassifyModel::kNaiveBayes;
    } else {
      return Status::InvalidArgument(
          core::StrFormat("unknown model \"%s\"", tokens[1].c_str()));
    }
    for (size_t i = 2; i < tokens.size(); ++i) {
      DMT_ASSIGN_OR_RETURN(double v, core::ParseDouble(tokens[i]));
      request.values.push_back(v);
    }
    request.count = 1;
    request.dim = static_cast<uint32_t>(request.values.size());
    return request;
  }
  if (verb == "cluster") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("cluster needs at least one value");
    }
    request.type = RequestType::kAssignCluster;
    for (size_t i = 1; i < tokens.size(); ++i) {
      DMT_ASSIGN_OR_RETURN(double v, core::ParseDouble(tokens[i]));
      request.values.push_back(v);
    }
    request.count = 1;
    request.dim = static_cast<uint32_t>(request.values.size());
    return request;
  }
  if (verb == "rules") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("rules needs a top_k");
    }
    request.type = RequestType::kRecommend;
    DMT_ASSIGN_OR_RETURN(uint64_t top_k, core::ParseUint(tokens[1]));
    request.top_k = static_cast<uint32_t>(top_k);
    std::vector<uint32_t> basket;
    for (size_t i = 2; i < tokens.size(); ++i) {
      DMT_ASSIGN_OR_RETURN(uint64_t item, core::ParseUint(tokens[i]));
      basket.push_back(static_cast<uint32_t>(item));
    }
    request.count = 1;
    request.baskets.push_back(std::move(basket));
    return request;
  }
  return Status::InvalidArgument(
      core::StrFormat("unknown query verb \"%s\"", verb.c_str()));
}

std::string FormatResponse(const Response& response) {
  std::string out = core::StrFormat(
      "id=%llu", static_cast<unsigned long long>(response.id));
  if (response.status != 0) {
    out += " error ";
    out += response.error;
    return out;
  }
  switch (response.type) {
    case RequestType::kClassify:
      out += " labels";
      for (uint32_t label : response.labels) {
        out += core::StrFormat(" %u", label);
      }
      break;
    case RequestType::kAssignCluster:
      out += " clusters";
      for (size_t i = 0; i < response.clusters.size(); ++i) {
        out += core::StrFormat(" %u(dist=%.6g)", response.clusters[i],
                               response.cluster_dist_sq[i]);
      }
      break;
    case RequestType::kRecommend:
      for (const std::vector<RuleHit>& hits : response.recommendations) {
        out += core::StrFormat(" rules %zu", hits.size());
        for (const RuleHit& hit : hits) {
          out += core::StrFormat(" [%u:%.4f:%.4f=>{", hit.rule_index,
                                 hit.confidence, hit.lift);
          for (size_t i = 0; i < hit.consequent.size(); ++i) {
            out += core::StrFormat(i == 0 ? "%u" : ",%u",
                                   hit.consequent[i]);
          }
          out += "}]";
        }
      }
      break;
    case RequestType::kStats:
      out += " stats ";
      out += response.stats_json;
      break;
  }
  return out;
}

}  // namespace dmt::serve
