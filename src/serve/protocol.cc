#include "serve/protocol.h"

#include <cstring>

#include "core/string_util.h"
#include "io/bytes.h"

namespace dmt::serve {

using core::Result;
using core::Status;
using io::ByteReader;
using io::ByteWriter;

namespace {

/// Stamps the frame header in front of a finished body.
std::vector<std::byte> FinishFrame(uint32_t magic, const ByteWriter& body) {
  ByteWriter header;
  header.PutU32(magic);
  header.PutU32(static_cast<uint32_t>(body.bytes().size()));
  std::vector<std::byte> frame(header.bytes().begin(), header.bytes().end());
  frame.insert(frame.end(), body.bytes().begin(), body.bytes().end());
  return frame;
}

Status BadCount(const char* what, uint64_t got, uint64_t cap) {
  return Status::Corruption(core::StrFormat(
      "request: %s %llu out of range [1, %llu]", what,
      static_cast<unsigned long long>(got),
      static_cast<unsigned long long>(cap)));
}

}  // namespace

std::vector<std::byte> EncodeRequestFrame(const Request& request) {
  ByteWriter body;
  body.PutU64(request.id);
  body.PutU8(static_cast<uint8_t>(request.type));
  switch (request.type) {
    case RequestType::kClassify:
      body.PutU8(static_cast<uint8_t>(request.model));
      body.PutU32(request.count);
      body.PutU32(request.dim);
      body.PutArray(std::span<const double>(request.values));
      break;
    case RequestType::kAssignCluster:
      body.PutU32(request.count);
      body.PutU32(request.dim);
      body.PutArray(std::span<const double>(request.values));
      break;
    case RequestType::kRecommend:
      body.PutU32(request.top_k);
      body.PutU32(request.count);
      for (const auto& basket : request.baskets) {
        body.PutArray(std::span<const uint32_t>(basket));
      }
      break;
    case RequestType::kStats:
      break;
  }
  return FinishFrame(kRequestMagic, body);
}

void EncodeRuleHits(const std::vector<RuleHit>& hits,
                    std::vector<std::byte>* out) {
  ByteWriter chunk;
  chunk.PutU32(static_cast<uint32_t>(hits.size()));
  for (const RuleHit& hit : hits) {
    chunk.PutU32(hit.rule_index);
    chunk.PutF64(hit.confidence);
    chunk.PutF64(hit.lift);
    chunk.PutArray(std::span<const uint32_t>(hit.consequent));
  }
  out->insert(out->end(), chunk.bytes().begin(), chunk.bytes().end());
}

std::vector<std::byte> EncodeResponseFrame(const Response& response) {
  ByteWriter body;
  body.PutU64(response.id);
  body.PutU8(static_cast<uint8_t>(response.type));
  body.PutU8(response.status);
  if (response.status != 0) {
    body.PutString(response.error);
    return FinishFrame(kResponseMagic, body);
  }
  switch (response.type) {
    case RequestType::kClassify:
      body.PutArray(std::span<const uint32_t>(response.labels));
      break;
    case RequestType::kAssignCluster:
      body.PutArray(std::span<const uint32_t>(response.clusters));
      body.PutArray(std::span<const double>(response.cluster_dist_sq));
      break;
    case RequestType::kRecommend: {
      body.PutU32(static_cast<uint32_t>(response.recommendations.size()));
      std::vector<std::byte> chunks;
      for (const auto& hits : response.recommendations) {
        EncodeRuleHits(hits, &chunks);
      }
      body.PutRaw(chunks.data(), chunks.size());
      break;
    }
    case RequestType::kStats:
      body.PutString(response.stats_json);
      break;
  }
  return FinishFrame(kResponseMagic, body);
}

Result<uint32_t> CheckFrameHeader(std::span<const std::byte> header,
                                  uint32_t expected_magic) {
  if (header.size() < kFrameHeaderBytes) {
    return Status::Corruption(core::StrFormat(
        "frame: %zu byte(s) is shorter than the %zu-byte header",
        header.size(), kFrameHeaderBytes));
  }
  uint32_t magic = 0;
  uint32_t length = 0;
  std::memcpy(&magic, header.data(), sizeof(magic));
  std::memcpy(&length, header.data() + sizeof(magic), sizeof(length));
  if (magic != expected_magic) {
    return Status::Corruption(core::StrFormat(
        "frame: bad magic 0x%08x (expected 0x%08x)", magic, expected_magic));
  }
  if (length > kMaxFrameBody) {
    return Status::Corruption(core::StrFormat(
        "frame: declared body length %u exceeds the %u-byte cap", length,
        kMaxFrameBody));
  }
  return length;
}

namespace {

/// Shared prologue of both frame decoders.
Result<std::span<const std::byte>> FrameBody(
    std::span<const std::byte> frame, uint32_t expected_magic) {
  DMT_ASSIGN_OR_RETURN(uint32_t length,
                       CheckFrameHeader(frame, expected_magic));
  std::span<const std::byte> body = frame.subspan(kFrameHeaderBytes);
  if (body.size() != length) {
    return Status::Corruption(core::StrFormat(
        "frame: header declares %u body byte(s) but %zu are present",
        length, body.size()));
  }
  return body;
}

}  // namespace

Result<Request> DecodeRequestFrame(std::span<const std::byte> frame) {
  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> body,
                       FrameBody(frame, kRequestMagic));
  ByteReader reader(body, "request");
  Request request;
  DMT_ASSIGN_OR_RETURN(request.id, reader.ReadU64());
  DMT_ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
  switch (type) {
    case static_cast<uint8_t>(RequestType::kClassify): {
      request.type = RequestType::kClassify;
      DMT_ASSIGN_OR_RETURN(uint8_t model, reader.ReadU8());
      if (model > static_cast<uint8_t>(ClassifyModel::kNaiveBayes)) {
        return Status::Corruption(
            core::StrFormat("request: unknown classify model %u", model));
      }
      request.model = static_cast<ClassifyModel>(model);
      DMT_ASSIGN_OR_RETURN(request.count, reader.ReadU32());
      DMT_ASSIGN_OR_RETURN(request.dim, reader.ReadU32());
      if (request.count == 0 || request.count > kMaxRecordsPerRequest) {
        return BadCount("record count", request.count,
                        kMaxRecordsPerRequest);
      }
      if (request.dim == 0 || request.dim > kMaxRecordDim) {
        return BadCount("record dim", request.dim, kMaxRecordDim);
      }
      const uint64_t expected =
          static_cast<uint64_t>(request.count) * request.dim;
      DMT_ASSIGN_OR_RETURN(request.values,
                           reader.ReadArray<double>(expected));
      if (request.values.size() != expected) {
        return Status::Corruption(core::StrFormat(
            "request: %zu value(s) for %u record(s) of dim %u",
            request.values.size(), request.count, request.dim));
      }
      break;
    }
    case static_cast<uint8_t>(RequestType::kAssignCluster): {
      request.type = RequestType::kAssignCluster;
      DMT_ASSIGN_OR_RETURN(request.count, reader.ReadU32());
      DMT_ASSIGN_OR_RETURN(request.dim, reader.ReadU32());
      if (request.count == 0 || request.count > kMaxRecordsPerRequest) {
        return BadCount("point count", request.count,
                        kMaxRecordsPerRequest);
      }
      if (request.dim == 0 || request.dim > kMaxRecordDim) {
        return BadCount("point dim", request.dim, kMaxRecordDim);
      }
      const uint64_t expected =
          static_cast<uint64_t>(request.count) * request.dim;
      DMT_ASSIGN_OR_RETURN(request.values,
                           reader.ReadArray<double>(expected));
      if (request.values.size() != expected) {
        return Status::Corruption(core::StrFormat(
            "request: %zu value(s) for %u point(s) of dim %u",
            request.values.size(), request.count, request.dim));
      }
      break;
    }
    case static_cast<uint8_t>(RequestType::kRecommend): {
      request.type = RequestType::kRecommend;
      DMT_ASSIGN_OR_RETURN(request.top_k, reader.ReadU32());
      DMT_ASSIGN_OR_RETURN(request.count, reader.ReadU32());
      if (request.top_k == 0 || request.top_k > kMaxTopK) {
        return BadCount("top_k", request.top_k, kMaxTopK);
      }
      if (request.count == 0 || request.count > kMaxRecordsPerRequest) {
        return BadCount("basket count", request.count,
                        kMaxRecordsPerRequest);
      }
      request.baskets.reserve(request.count);
      for (uint32_t b = 0; b < request.count; ++b) {
        DMT_ASSIGN_OR_RETURN(std::vector<uint32_t> basket,
                             reader.ReadArray<uint32_t>(kMaxBasketItems));
        request.baskets.push_back(std::move(basket));
      }
      break;
    }
    case static_cast<uint8_t>(RequestType::kStats):
      request.type = RequestType::kStats;
      break;
    default:
      return Status::Corruption(
          core::StrFormat("request: unknown type %u", type));
  }
  DMT_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

Result<Response> DecodeResponseFrame(std::span<const std::byte> frame) {
  DMT_ASSIGN_OR_RETURN(std::span<const std::byte> body,
                       FrameBody(frame, kResponseMagic));
  ByteReader reader(body, "response");
  Response response;
  DMT_ASSIGN_OR_RETURN(response.id, reader.ReadU64());
  DMT_ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
  DMT_ASSIGN_OR_RETURN(response.status, reader.ReadU8());
  if (response.status != 0) {
    // Error responses may carry any type byte (the failure can predate
    // type parsing); only the message matters.
    response.type = static_cast<RequestType>(type);
    DMT_ASSIGN_OR_RETURN(response.error, reader.ReadString());
    DMT_RETURN_NOT_OK(reader.ExpectEnd());
    return response;
  }
  switch (type) {
    case static_cast<uint8_t>(RequestType::kClassify): {
      response.type = RequestType::kClassify;
      DMT_ASSIGN_OR_RETURN(
          response.labels,
          reader.ReadArray<uint32_t>(kMaxRecordsPerRequest));
      break;
    }
    case static_cast<uint8_t>(RequestType::kAssignCluster): {
      response.type = RequestType::kAssignCluster;
      DMT_ASSIGN_OR_RETURN(
          response.clusters,
          reader.ReadArray<uint32_t>(kMaxRecordsPerRequest));
      DMT_ASSIGN_OR_RETURN(
          response.cluster_dist_sq,
          reader.ReadArray<double>(kMaxRecordsPerRequest));
      if (response.clusters.size() != response.cluster_dist_sq.size()) {
        return Status::Corruption(
            "response: cluster/distance arrays disagree in length");
      }
      break;
    }
    case static_cast<uint8_t>(RequestType::kRecommend): {
      response.type = RequestType::kRecommend;
      DMT_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
      if (count > kMaxRecordsPerRequest) {
        return BadCount("basket count", count, kMaxRecordsPerRequest);
      }
      response.recommendations.resize(count);
      for (uint32_t b = 0; b < count; ++b) {
        DMT_ASSIGN_OR_RETURN(uint32_t hits, reader.ReadU32());
        if (hits > kMaxTopK) return BadCount("hit count", hits, kMaxTopK);
        response.recommendations[b].resize(hits);
        for (uint32_t h = 0; h < hits; ++h) {
          RuleHit& hit = response.recommendations[b][h];
          DMT_ASSIGN_OR_RETURN(hit.rule_index, reader.ReadU32());
          DMT_ASSIGN_OR_RETURN(hit.confidence, reader.ReadF64());
          DMT_ASSIGN_OR_RETURN(hit.lift, reader.ReadF64());
          DMT_ASSIGN_OR_RETURN(
              hit.consequent,
              reader.ReadArray<uint32_t>(kMaxBasketItems));
        }
      }
      break;
    }
    case static_cast<uint8_t>(RequestType::kStats): {
      response.type = RequestType::kStats;
      DMT_ASSIGN_OR_RETURN(response.stats_json, reader.ReadString());
      break;
    }
    default:
      return Status::Corruption(
          core::StrFormat("response: unknown type %u", type));
  }
  DMT_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

Response MakeErrorResponse(uint64_t id, const core::Status& status) {
  Response response;
  response.id = id;
  response.status = static_cast<uint8_t>(status.code());
  response.error = status.ToString();
  return response;
}

}  // namespace dmt::serve
