// Out-of-core frequent-itemset mining over on-disk partitions — the
// two-phase partitioned algorithm of Savasere, Omiecinski & Navathe
// (VLDB'95), run against io/ container files produced by
// io::WritePartitions.
//
// Phase 1 maps one partition at a time (io::MappedTransactionDatabase)
// and mines it in memory at the fractional threshold, so peak RAM is one
// partition plus the candidate union. Any itemset globally frequent at
// min_support s is locally frequent in at least one partition at s
// (if count(X) >= ceil(s*N) then some partition has count_p(X) >=
// s*n_p, hence count_p(X) >= ceil(s*n_p) since counts are integral), so
// the union of local results is a superset of the global answer — no
// false negatives. Phase 2 streams every partition once more through the
// mapping and counts the union exactly (hash trees, one per itemset
// size), then keeps itemsets with global support >= AbsoluteMinSupport
// over N = sum of partition sizes. Exact counting makes the result —
// itemsets and supports after SortCanonical — bit-identical to the
// in-memory miners at every partition count and thread count.
//
// `passes` reports the phase-2 census (per size: candidates in the
// union, survivors); the phase-1 work counters of the local mines are
// summed into the result, and `partitions_mined` / `bytes_mapped` record
// the out-of-core footprint. All counters are invariant across
// num_threads (the local mines honor the determinism contract and the
// counting pass uses core::CountPartitioned).
//
// The entry points are declared here with the other miners but live in
// the io library (io/out_of_core.cc) because they drive the container
// loaders: link dmt_io to use them.
#ifndef DMT_ASSOC_OUT_OF_CORE_H_
#define DMT_ASSOC_OUT_OF_CORE_H_

#include <span>
#include <string>

#include "assoc/apriori.h"
#include "assoc/fp_growth.h"
#include "assoc/itemset.h"
#include "core/status.h"

namespace dmt::assoc {

/// Partitioned Apriori: each partition is mined by MineApriori, the
/// union is counted exactly with the same hash-tree machinery.
core::Result<MiningResult> MineAprioriPartitioned(
    std::span<const std::string> partition_paths, const MiningParams& params,
    const AprioriOptions& options = {});

/// Disk-projected FP-Growth: each partition is projected into memory and
/// mined by MineFpGrowth; the union is counted exactly by hash trees.
core::Result<MiningResult> MineFpGrowthDiskProjected(
    std::span<const std::string> partition_paths, const MiningParams& params,
    const FpGrowthOptions& options = {});

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_OUT_OF_CORE_H_
