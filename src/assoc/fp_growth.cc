#include "assoc/fp_growth.h"

#include <algorithm>

#include "core/check.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::assoc {

using core::ItemId;
using core::Result;
using core::TransactionDatabase;

namespace {

/// FP-tree node; nodes live in one flat arena, links are indices. Nodes
/// carry the *header position* of their item (the item itself is
/// header[pos].item), so conditional-base recounting and position
/// remapping index flat arrays instead of hash maps.
struct FpNode {
  uint32_t pos = 0;
  uint32_t count = 0;
  uint32_t parent = kNull;
  uint32_t node_link = kNull;  // next node carrying the same item
  // (pos, node index) pairs; branching factors are small, linear search.
  std::vector<std::pair<uint32_t, uint32_t>> children;

  static constexpr uint32_t kNull = 0xffffffffu;
};

struct HeaderEntry {
  ItemId item = 0;
  uint32_t total_count = 0;
  uint32_t link_head = FpNode::kNull;
};

/// An FP-tree: arena of nodes plus a header table ordered by descending
/// total count (the construction order of the tree paths).
struct FpTree {
  std::vector<FpNode> nodes;  // nodes[0] is the root
  std::vector<HeaderEntry> header;

  FpTree() { nodes.emplace_back(); }

  uint32_t AddChild(uint32_t parent, uint32_t pos) {
    for (auto& [child_pos, child_index] : nodes[parent].children) {
      if (child_pos == pos) return child_index;
    }
    uint32_t index = static_cast<uint32_t>(nodes.size());
    FpNode node;
    node.pos = pos;
    node.parent = parent;
    nodes.push_back(node);
    nodes[parent].children.emplace_back(pos, index);
    return index;
  }

  /// Inserts one (already ordered, filtered) path with a count, wiring
  /// node links through `link_tail` (per header position).
  void InsertPath(std::span<const uint32_t> header_positions, uint32_t count,
                  std::vector<uint32_t>* link_tails) {
    uint32_t current = 0;
    for (uint32_t pos : header_positions) {
      uint32_t before = static_cast<uint32_t>(nodes.size());
      uint32_t child = AddChild(current, pos);
      if (child >= before) {
        // Fresh node: append to the item's node-link chain.
        if ((*link_tails)[pos] == FpNode::kNull) {
          header[pos].link_head = child;
        } else {
          nodes[(*link_tails)[pos]].node_link = child;
        }
        (*link_tails)[pos] = child;
      }
      nodes[child].count += count;
      current = child;
    }
  }

  /// True when the tree consists of a single chain below the root.
  bool IsSinglePath() const {
    uint32_t current = 0;
    while (true) {
      const auto& children = nodes[current].children;
      if (children.empty()) return true;
      if (children.size() > 1) return false;
      current = children[0].second;
    }
  }
};

/// One weighted path of a conditional pattern base, as positions into the
/// parent tree's header (root-to-node order after the reverse).
struct WeightedPath {
  std::vector<uint32_t> positions;
  uint32_t count = 0;
};

class FpMiner {
 public:
  FpMiner(uint32_t min_count, size_t max_size, bool single_path_opt,
          MiningResult* result)
      : min_count_(min_count),
        max_size_(max_size),
        single_path_opt_(single_path_opt),
        result_(result) {}

  /// Mines every header entry of `tree` with the given suffix, from least
  /// to most frequent (bottom-up).
  void Mine(const FpTree& tree, const Itemset& suffix) {
    for (size_t h = tree.header.size(); h-- > 0;) {
      MineEntry(tree, h, suffix);
    }
  }

  /// Mines one header entry: emits its pattern, projects its conditional
  /// pattern base, and recurses into the conditional tree. Entries are
  /// independent of each other, which is what makes the top level a task
  /// range for MinePartitioned.
  void MineEntry(const FpTree& tree, size_t h, const Itemset& suffix) {
    const HeaderEntry& entry = tree.header[h];
    Itemset pattern = suffix;
    pattern.insert(
        std::lower_bound(pattern.begin(), pattern.end(), entry.item),
        entry.item);
    Emit(pattern, entry.total_count);
    if (max_size_ != 0 && pattern.size() >= max_size_) return;

    // Conditional pattern base: prefix paths of every node of this item,
    // recorded as positions into `tree`'s header.
    std::vector<WeightedPath> base;
    for (uint32_t node = entry.link_head; node != FpNode::kNull;
         node = tree.nodes[node].node_link) {
      WeightedPath path;
      path.count = tree.nodes[node].count;
      for (uint32_t up = tree.nodes[node].parent; up != 0;
           up = tree.nodes[up].parent) {
        path.positions.push_back(tree.nodes[up].pos);
      }
      if (path.positions.empty()) continue;
      std::reverse(path.positions.begin(), path.positions.end());
      base.push_back(std::move(path));
    }
    if (base.empty()) return;
    FpTree conditional = BuildConditionalTree(base, tree);
    if (conditional.header.empty()) return;
    if (single_path_opt_ && conditional.IsSinglePath()) {
      EmitSinglePathCombinations(conditional, pattern);
    } else {
      Mine(conditional, pattern);
    }
  }

  /// Emits every combination of the single path's items (support = the
  /// count of the deepest selected node — counts are non-increasing down
  /// the path, so each node's count is the support of any combination
  /// whose deepest member it is).
  void EmitSinglePathCombinations(const FpTree& tree, const Itemset& suffix) {
    std::vector<std::pair<ItemId, uint32_t>> path;  // (item, count)
    uint32_t current = 0;
    while (!tree.nodes[current].children.empty()) {
      current = tree.nodes[current].children[0].second;
      path.emplace_back(tree.header[tree.nodes[current].pos].item,
                        tree.nodes[current].count);
    }
    if (path.size() > 30) {
      // Too many combinations to enumerate directly; recurse instead.
      Mine(tree, suffix);
      return;
    }
    const size_t n = path.size();
    Itemset items;
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      // The deepest selected node bounds the combination's support.
      uint32_t support = 0;
      items = suffix;
      for (size_t bit = 0; bit < n; ++bit) {
        if (mask & (1u << bit)) {
          items.insert(
              std::lower_bound(items.begin(), items.end(), path[bit].first),
              path[bit].first);
          support = path[bit].second;
        }
      }
      if (max_size_ != 0 && items.size() > max_size_) continue;
      Emit(items, support);
    }
  }

  /// Builds the top-level tree from the database.
  static FpTree BuildRootTree(const TransactionDatabase& db,
                              uint32_t min_count, size_t* num_frequent) {
    FpTree tree;
    std::vector<uint32_t> supports = db.ItemSupports();
    // Header: frequent items by descending count, ties by ascending id.
    for (ItemId item = 0; item < supports.size(); ++item) {
      if (supports[item] >= min_count) {
        tree.header.push_back({item, supports[item], FpNode::kNull});
      }
    }
    std::stable_sort(tree.header.begin(), tree.header.end(),
                     [](const HeaderEntry& a, const HeaderEntry& b) {
                       return a.total_count > b.total_count;
                     });
    *num_frequent = tree.header.size();
    std::vector<uint32_t> item_to_pos(supports.size(), FpNode::kNull);
    for (uint32_t pos = 0; pos < tree.header.size(); ++pos) {
      item_to_pos[tree.header[pos].item] = pos;
    }
    std::vector<uint32_t> link_tails(tree.header.size(), FpNode::kNull);
    std::vector<uint32_t> positions;
    for (size_t t = 0; t < db.size(); ++t) {
      positions.clear();
      for (ItemId item : db.transaction(t)) {
        if (item_to_pos[item] != FpNode::kNull) {
          positions.push_back(item_to_pos[item]);
        }
      }
      std::sort(positions.begin(), positions.end());
      tree.InsertPath(positions, 1, &link_tails);
    }
    return tree;
  }

 private:
  void Emit(const Itemset& items, uint32_t support) {
    result_->itemsets.push_back({items, support});
  }

  /// Projects a conditional tree from `base`. Every position in `base`
  /// indexes `parent`'s header, so the recount and the parent-to-child
  /// position remap are flat arrays over the parent header size.
  FpTree BuildConditionalTree(const std::vector<WeightedPath>& base,
                              const FpTree& parent) {
    const size_t parent_size = parent.header.size();
    base_counts_.assign(parent_size, 0);
    for (const auto& path : base) {
      for (uint32_t pos : path.positions) base_counts_[pos] += path.count;
    }
    // Surviving (parent position, count) pairs, ordered by descending
    // count with ties by ascending item id.
    std::vector<std::pair<uint32_t, uint32_t>> kept;
    for (uint32_t pos = 0; pos < parent_size; ++pos) {
      if (base_counts_[pos] >= min_count_) {
        kept.emplace_back(pos, base_counts_[pos]);
      }
    }
    std::sort(kept.begin(), kept.end(),
              [&parent](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return parent.header[a.first].item <
                       parent.header[b.first].item;
              });
    FpTree tree;
    pos_map_.assign(parent_size, FpNode::kNull);
    for (uint32_t pos = 0; pos < kept.size(); ++pos) {
      tree.header.push_back(
          {parent.header[kept[pos].first].item, kept[pos].second,
           FpNode::kNull});
      pos_map_[kept[pos].first] = pos;
    }
    ++result_->conditional_trees_built;
    if (tree.header.empty()) return tree;
    std::vector<uint32_t> link_tails(tree.header.size(), FpNode::kNull);
    std::vector<uint32_t> positions;
    for (const auto& path : base) {
      positions.clear();
      for (uint32_t pos : path.positions) {
        if (pos_map_[pos] != FpNode::kNull) {
          positions.push_back(pos_map_[pos]);
        }
      }
      std::sort(positions.begin(), positions.end());
      tree.InsertPath(positions, path.count, &link_tails);
    }
    result_->fp_nodes_allocated += tree.nodes.size() - 1;
    return tree;
  }

  uint32_t min_count_;
  size_t max_size_;
  bool single_path_opt_;
  MiningResult* result_;
  // Flat per-parent-header scratch, reused across BuildConditionalTree
  // calls (each call completes before its tree is recursed into).
  std::vector<uint32_t> base_counts_;
  std::vector<uint32_t> pos_map_;
};

}  // namespace

Result<MiningResult> MineFpGrowth(const TransactionDatabase& db,
                                  const MiningParams& params,
                                  const FpGrowthOptions& options) {
  DMT_RETURN_NOT_OK(params.Validate());
  const uint32_t min_count = AbsoluteMinSupport(db, params.min_support);
  const core::ParallelContext ctx(params.num_threads);

  obs::Counter trees_counter("assoc/fp_growth/conditional_trees_built");
  obs::Counter nodes_counter("assoc/fp_growth/fp_nodes_allocated");
  const obs::CounterDelta trees_delta(trees_counter);
  const obs::CounterDelta nodes_delta(nodes_counter);
  obs::Span mine_span("assoc/fp_growth/mine");
  mine_span.AttachCounter(trees_counter);
  mine_span.AttachCounter(nodes_counter);

  MiningResult result;
  size_t num_frequent_items = 0;
  FpTree root = [&] {
    obs::Span build_span("assoc/fp_growth/build_tree");
    return FpMiner::BuildRootTree(db, min_count, &num_frequent_items);
  }();
  result.fp_nodes_allocated += root.nodes.size() - 1;
  if (!root.header.empty()) {
    obs::Span grow_span("assoc/fp_growth/grow");
    if (options.single_path_optimization && root.IsSinglePath()) {
      // Degenerate database: the whole tree is one chain, so every
      // frequent itemset is a combination of the chain's items.
      FpMiner miner(min_count, params.max_itemset_size,
                    options.single_path_optimization, &result);
      miner.EmitSinglePathCombinations(root, {});
    } else {
      // Top-level projection decomposition: each header entry's
      // conditional tree is mined independently, in the serial bottom-up
      // order (task i handles entry n-1-i), chunked contiguously with
      // per-chunk result scratch merged in chunk order.
      const size_t n = root.header.size();
      MinePartitioned(
          ctx, n, &result,
          [&](size_t begin, size_t end, MiningResult* out) {
            FpMiner miner(min_count, params.max_itemset_size,
                          options.single_path_optimization, out);
            for (size_t i = begin; i < end; ++i) {
              miner.MineEntry(root, n - 1 - i, {});
            }
          });
    }
  }
  // Publish the chunk-order-merged tallies and re-read the public fields
  // through the registry, which is the source of truth for work counters.
  trees_counter.Add(result.conditional_trees_built);
  nodes_counter.Add(result.fp_nodes_allocated);
  result.conditional_trees_built = trees_delta.Value();
  result.fp_nodes_allocated = nodes_delta.Value();
  SortCanonical(&result.itemsets);

  // Reconstruct per-size pass stats (pattern growth has no candidates
  // beyond the itemsets it actually examines).
  size_t max_size = 0;
  for (const auto& itemset : result.itemsets) {
    max_size = std::max(max_size, itemset.items.size());
  }
  result.passes.push_back({1, db.item_universe(), num_frequent_items});
  for (size_t k = 2; k <= max_size; ++k) {
    size_t count = result.CountOfSize(k);
    result.passes.push_back({k, count, count});
  }
  return result;
}

}  // namespace dmt::assoc
