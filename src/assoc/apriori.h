// Apriori and AprioriTid frequent-itemset miners (Agrawal & Srikant,
// VLDB'94).
#ifndef DMT_ASSOC_APRIORI_H_
#define DMT_ASSOC_APRIORI_H_

#include "assoc/itemset.h"
#include "core/status.h"
#include "core/transaction.h"

namespace dmt::assoc {

/// Tuning knobs for Apriori.
struct AprioriOptions {
  /// How candidate supports are counted each pass.
  enum class CountingMethod {
    /// Hash tree over candidates; each transaction walks only reachable
    /// branches (the paper's method).
    kHashTree,
    /// Enumerate every k-subset of each transaction and probe a hash map of
    /// candidates (AIS-style baseline; explodes for long transactions —
    /// kept for the ablation benchmark).
    kSubsetLookup,
  };
  CountingMethod counting = CountingMethod::kHashTree;
  /// Hash width of interior nodes. Wide tables keep the depth-k leaves
  /// small when many candidates share hash paths (pass 2 has |L1|^2/2
  /// candidates but only k = 2 routing items).
  size_t hash_tree_fanout = 128;
  size_t hash_tree_leaf_size = 16;

  core::Status Validate() const;
};

/// Mines all frequent itemsets with level-wise candidate generation.
core::Result<MiningResult> MineApriori(const core::TransactionDatabase& db,
                                       const MiningParams& params,
                                       const AprioriOptions& options = {});

/// AprioriTid: identical candidate generation, but after pass 1 supports are
/// counted against per-transaction candidate-id lists instead of the raw
/// database; transactions containing no candidates drop out of later passes.
core::Result<MiningResult> MineAprioriTid(const core::TransactionDatabase& db,
                                          const MiningParams& params);

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_APRIORI_H_
