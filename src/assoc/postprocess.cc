#include "assoc/postprocess.h"

#include <cmath>
#include <unordered_map>

namespace dmt::assoc {
namespace {

/// Marks, for every itemset, whether some (k+1)-superset in `all` satisfies
/// `disqualifies(subset_support, superset_support)`. Checking immediate
/// supersets suffices: for "frequent superset exists" the collection is
/// downward closed, and for "equal-support superset exists" support
/// monotonicity makes any distant equal-support superset imply an
/// intermediate one.
template <typename Predicate>
std::vector<FrequentItemset> FilterByImmediateSupersets(
    const std::vector<FrequentItemset>& all, const Predicate& disqualifies) {
  std::unordered_map<Itemset, size_t, ItemsetHash> index;
  index.reserve(all.size());
  for (size_t i = 0; i < all.size(); ++i) index.emplace(all[i].items, i);

  std::vector<bool> dropped(all.size(), false);
  Itemset subset;
  for (const auto& super : all) {
    if (super.items.size() < 2) continue;
    for (size_t drop = 0; drop < super.items.size(); ++drop) {
      subset.clear();
      for (size_t p = 0; p < super.items.size(); ++p) {
        if (p != drop) subset.push_back(super.items[p]);
      }
      auto it = index.find(subset);
      if (it != index.end() &&
          disqualifies(all[it->second].support, super.support)) {
        dropped[it->second] = true;
      }
    }
  }
  std::vector<FrequentItemset> kept;
  for (size_t i = 0; i < all.size(); ++i) {
    if (!dropped[i]) kept.push_back(all[i]);
  }
  SortCanonical(&kept);
  return kept;
}

}  // namespace

std::vector<FrequentItemset> FilterMaximal(
    const std::vector<FrequentItemset>& all) {
  return FilterByImmediateSupersets(
      all, [](uint32_t, uint32_t) { return true; });
}

std::vector<FrequentItemset> FilterClosed(
    const std::vector<FrequentItemset>& all) {
  return FilterByImmediateSupersets(
      all, [](uint32_t subset_support, uint32_t superset_support) {
        return subset_support == superset_support;
      });
}

core::Status InterestParams::Validate() const {
  if (std::isnan(min_lift) || std::isnan(min_conviction) ||
      std::isnan(min_leverage)) {
    return core::Status::InvalidArgument(
        "interestingness thresholds must not be NaN (NaN passes every "
        "comparison and silently disables the filter)");
  }
  if (min_lift < 0.0 || min_conviction < 0.0) {
    return core::Status::InvalidArgument(
        "min_lift and min_conviction must be >= 0");
  }
  return core::Status::OK();
}

core::Result<std::vector<AssociationRule>> FilterInteresting(
    std::vector<AssociationRule> rules, const InterestParams& params) {
  DMT_RETURN_NOT_OK(params.Validate());
  std::erase_if(rules, [&](const AssociationRule& rule) {
    return rule.lift + 1e-12 < params.min_lift ||
           rule.conviction + 1e-12 < params.min_conviction ||
           rule.leverage + 1e-12 < params.min_leverage;
  });
  return rules;
}

}  // namespace dmt::assoc
