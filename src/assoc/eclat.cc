#include "assoc/eclat.h"

#include <algorithm>
#include <utility>

#include "core/bitset.h"
#include "core/check.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::assoc {

using core::DynamicBitset;
using core::ItemId;
using core::Result;
using core::TransactionDatabase;

namespace {

/// Sorted-vector tidset intersection.
std::vector<uint32_t> IntersectTids(const std::vector<uint32_t>& a,
                                    const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

template <typename Tidset>
struct ClassMember {
  ItemId item;
  Tidset tids;
  uint32_t support;
};

/// Depth-first walk below one member of an equivalence class (all itemsets
/// sharing `prefix`): emits prefix + members[i].item, then extends it with
/// every later member via a tidset intersection. `probe(a, b)` returns
/// {support, tidset}; a representation may leave the tidset empty for
/// candidates below min_count (they are discarded without ever
/// materializing an intersection). Members are ordered by item id and the
/// recursion visits them in order, so output is deterministic.
template <typename Tidset, typename ProbeFn>
void WalkMember(const Itemset& prefix,
                const std::vector<ClassMember<Tidset>>& members, size_t i,
                uint32_t min_count, size_t max_size, const ProbeFn& probe,
                MiningResult* result, size_t depth) {
  if (result->passes.size() < depth + 1) {
    result->passes.push_back({depth + 1, 0, 0});
  }
  Itemset items = prefix;
  items.push_back(members[i].item);
  result->itemsets.push_back({items, members[i].support});
  ++result->passes[depth].frequent;
  if (max_size != 0 && items.size() >= max_size) return;
  std::vector<ClassMember<Tidset>> extensions;
  for (size_t j = i + 1; j < members.size(); ++j) {
    // This intersection proposes a (depth+2)-item candidate.
    if (result->passes.size() < depth + 2) {
      result->passes.push_back({depth + 2, 0, 0});
    }
    ++result->passes[depth + 1].candidates;
    ++result->tidset_intersections;
    auto [support, shared] = probe(members[i].tids, members[j].tids);
    if (support >= min_count) {
      extensions.push_back({members[j].item, std::move(shared), support});
    }
  }
  for (size_t e = 0; e < extensions.size(); ++e) {
    WalkMember(items, extensions, e, min_count, max_size, probe, result,
               depth + 1);
  }
}

/// Walks the root equivalence classes. Root members only read each
/// other's tidsets, so MinePartitioned mines contiguous chunks of the
/// root range into per-chunk scratch merged in ascending order — the
/// serial left-to-right root order, at any thread count.
template <typename Tidset, typename ProbeFn>
void WalkRoots(const core::ParallelContext& ctx,
               const std::vector<ClassMember<Tidset>>& roots,
               uint32_t min_count, size_t max_size, const ProbeFn& probe,
               MiningResult* result) {
  MinePartitioned(ctx, roots.size(), result,
                  [&](size_t begin, size_t end, MiningResult* out) {
                    for (size_t i = begin; i < end; ++i) {
                      WalkMember({}, roots, i, min_count, max_size, probe,
                                 out, 0);
                    }
                  });
}

}  // namespace

Result<MiningResult> MineEclat(const TransactionDatabase& db,
                               const MiningParams& params,
                               const EclatOptions& options) {
  DMT_RETURN_NOT_OK(params.Validate());
  const uint32_t min_count = AbsoluteMinSupport(db, params.min_support);
  const core::ParallelContext ctx(params.num_threads);

  obs::Counter intersections_counter("assoc/eclat/tidset_intersections");
  const obs::CounterDelta intersections_delta(intersections_counter);
  obs::Span mine_span("assoc/eclat/mine");
  mine_span.AttachCounter(intersections_counter);

  MiningResult result;
  result.passes.push_back({1, db.item_universe(), 0});

  std::vector<uint32_t> supports = db.ItemSupports();

  if (options.representation == EclatOptions::TidsetRepr::kSortedVectors) {
    std::vector<ClassMember<std::vector<uint32_t>>> roots;
    for (ItemId item = 0; item < supports.size(); ++item) {
      if (supports[item] >= min_count) {
        roots.push_back({item, {}, supports[item]});
        roots.back().tids.reserve(supports[item]);
      }
    }
    std::vector<uint32_t> item_to_root(supports.size(), UINT32_MAX);
    for (uint32_t r = 0; r < roots.size(); ++r) {
      item_to_root[roots[r].item] = r;
    }
    for (size_t t = 0; t < db.size(); ++t) {
      for (ItemId item : db.transaction(t)) {
        if (item_to_root[item] != UINT32_MAX) {
          roots[item_to_root[item]].tids.push_back(
              static_cast<uint32_t>(t));
        }
      }
    }
    result.passes[0].frequent = 0;  // filled by the walk at depth 0
    auto probe = [](const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b) {
      std::vector<uint32_t> shared = IntersectTids(a, b);
      uint32_t support = static_cast<uint32_t>(shared.size());
      return std::pair(support, std::move(shared));
    };
    WalkRoots<std::vector<uint32_t>>(ctx, roots, min_count,
                                     params.max_itemset_size, probe,
                                     &result);
  } else {
    std::vector<ClassMember<DynamicBitset>> roots;
    for (ItemId item = 0; item < supports.size(); ++item) {
      if (supports[item] >= min_count) {
        roots.push_back({item, DynamicBitset(db.size()), supports[item]});
      }
    }
    std::vector<uint32_t> item_to_root(supports.size(), UINT32_MAX);
    for (uint32_t r = 0; r < roots.size(); ++r) {
      item_to_root[roots[r].item] = r;
    }
    for (size_t t = 0; t < db.size(); ++t) {
      for (ItemId item : db.transaction(t)) {
        if (item_to_root[item] != UINT32_MAX) {
          roots[item_to_root[item]].tids.Set(t);
        }
      }
    }
    // Probe support with a popcount pass first; only survivors pay for a
    // materialized intersection, so rejected candidates allocate nothing.
    auto probe = [min_count](const DynamicBitset& a,
                             const DynamicBitset& b) {
      uint32_t support = static_cast<uint32_t>(a.IntersectionCount(b));
      if (support < min_count) return std::pair(support, DynamicBitset());
      return std::pair(support, a.Intersect(b));
    };
    WalkRoots<DynamicBitset>(ctx, roots, min_count, params.max_itemset_size,
                             probe, &result);
  }
  // Depth d of the walk emits (d+1)-itemsets; relabel passes accordingly
  // and drop the placeholder first entry.
  for (size_t d = 0; d < result.passes.size(); ++d) {
    result.passes[d].pass = d + 1;
  }
  result.passes[0].candidates = db.item_universe();
  // Publish the chunk-order-merged tally and re-read the public field
  // through the registry, which is the source of truth for work counters.
  intersections_counter.Add(result.tidset_intersections);
  result.tidset_intersections = intersections_delta.Value();
  SortCanonical(&result.itemsets);
  return result;
}

}  // namespace dmt::assoc
