// Eclat frequent-itemset miner (Zaki et al., KDD'97): vertical layout —
// each itemset carries the set of transaction ids containing it; supports
// come from tidset intersections in a depth-first equivalence-class walk.
// `MiningParams::num_threads` walks the root equivalence classes on a
// thread pool under the deterministic chunk-merge contract of
// core::ParallelContext: any thread count reproduces the serial output bit
// for bit, including pass stats and the tidset_intersections work counter.
#ifndef DMT_ASSOC_ECLAT_H_
#define DMT_ASSOC_ECLAT_H_

#include "assoc/itemset.h"
#include "core/status.h"
#include "core/transaction.h"

namespace dmt::assoc {

/// Tuning knobs for Eclat.
struct EclatOptions {
  /// Tidset representation: sorted id vectors (good for sparse data) or
  /// fixed-width bitsets (good for dense data).
  enum class TidsetRepr { kSortedVectors, kBitsets };
  TidsetRepr representation = TidsetRepr::kSortedVectors;
};

/// Mines all frequent itemsets by depth-first tidset intersection.
core::Result<MiningResult> MineEclat(const core::TransactionDatabase& db,
                                     const MiningParams& params,
                                     const EclatOptions& options = {});

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_ECLAT_H_
