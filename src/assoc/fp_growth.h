// FP-Growth frequent-itemset miner (Han, Pei & Yin, SIGMOD 2000): compresses
// the database into a prefix tree (FP-tree) ordered by descending item
// frequency, then mines it recursively via conditional pattern bases —
// no candidate generation. `MiningParams::num_threads` mines the top-level
// conditional trees (one task per header entry) on a thread pool under the
// deterministic chunk-merge contract of core::ParallelContext: any thread
// count reproduces the serial output bit for bit, including pass stats and
// the conditional_trees_built / fp_nodes_allocated work counters.
#ifndef DMT_ASSOC_FP_GROWTH_H_
#define DMT_ASSOC_FP_GROWTH_H_

#include "assoc/itemset.h"
#include "core/status.h"
#include "core/transaction.h"

namespace dmt::assoc {

/// Tuning knobs for FP-Growth.
struct FpGrowthOptions {
  /// When a conditional tree degenerates to a single path, emit all item
  /// combinations on the path directly instead of recursing (the paper's
  /// key optimization). Paths longer than 30 recurse regardless.
  bool single_path_optimization = true;
};

/// Mines all frequent itemsets by pattern growth.
core::Result<MiningResult> MineFpGrowth(const core::TransactionDatabase& db,
                                        const MiningParams& params,
                                        const FpGrowthOptions& options = {});

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_FP_GROWTH_H_
