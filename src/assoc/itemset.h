// Common types shared by all frequent-itemset miners.
#ifndef DMT_ASSOC_ITEMSET_H_
#define DMT_ASSOC_ITEMSET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/item_dictionary.h"
#include "core/status.h"
#include "core/transaction.h"

namespace dmt::assoc {

/// A sorted, duplicate-free itemset.
using Itemset = std::vector<core::ItemId>;

/// FNV-1a style hash for itemsets, usable as an unordered_map hasher.
struct ItemsetHash {
  size_t operator()(const Itemset& items) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (core::ItemId item : items) {
      h ^= item;
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// A frequent itemset together with its absolute support count.
struct FrequentItemset {
  Itemset items;
  uint32_t support = 0;

  bool operator==(const FrequentItemset& other) const = default;
};

/// Per-pass bookkeeping, matching the candidate/frequent census tables of
/// the Apriori paper.
struct PassStats {
  /// Itemset size handled by this pass (k).
  size_t pass = 0;
  /// Candidates generated (for pattern-growth miners: itemsets examined).
  size_t candidates = 0;
  /// Candidates that turned out frequent.
  size_t frequent = 0;
};

/// Output of a frequent-itemset miner.
struct MiningResult {
  /// All frequent itemsets in canonical order (see SortCanonical).
  std::vector<FrequentItemset> itemsets;
  /// One entry per pass / recursion depth.
  std::vector<PassStats> passes;

  /// Number of frequent itemsets of the given size.
  size_t CountOfSize(size_t k) const;
};

/// Support threshold and mining limits.
struct MiningParams {
  /// Minimum support as a fraction of |D|, in (0, 1].
  double min_support = 0.01;
  /// Largest itemset size to mine; 0 means unlimited.
  size_t max_itemset_size = 0;
  /// Worker threads for support counting; 0 or 1 = serial. Honored by
  /// MineApriori and MineAprioriTid (other miners run serially); parallel
  /// runs produce bit-identical results to serial runs.
  size_t num_threads = 0;

  core::Status Validate() const;
};

/// Converts the fractional threshold to an absolute count (at least 1),
/// rounding up so that support/|D| >= min_support holds exactly.
uint32_t AbsoluteMinSupport(const core::TransactionDatabase& db,
                            double min_support);

/// Sorts itemsets canonically: by size, then lexicographically by items.
/// Every miner returns this order so results are directly comparable.
void SortCanonical(std::vector<FrequentItemset>* itemsets);

/// True if `subset` ⊆ `superset` (both sorted).
bool IsSubsetOf(std::span<const core::ItemId> subset,
                std::span<const core::ItemId> superset);

/// Human-readable "{a, b, c} (support=n)" using the dictionary when given.
std::string FormatItemset(const FrequentItemset& itemset,
                          const core::ItemDictionary* dictionary = nullptr);

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_ITEMSET_H_
