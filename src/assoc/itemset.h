// Common types shared by all frequent-itemset miners.
#ifndef DMT_ASSOC_ITEMSET_H_
#define DMT_ASSOC_ITEMSET_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/item_dictionary.h"
#include "core/parallel.h"
#include "core/status.h"
#include "core/transaction.h"

namespace dmt::assoc {

/// A sorted, duplicate-free itemset.
using Itemset = std::vector<core::ItemId>;

/// FNV-1a style hash for itemsets, usable as an unordered_map hasher.
struct ItemsetHash {
  size_t operator()(const Itemset& items) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (core::ItemId item : items) {
      h ^= item;
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// A frequent itemset together with its absolute support count.
struct FrequentItemset {
  Itemset items;
  uint32_t support = 0;

  bool operator==(const FrequentItemset& other) const = default;
};

/// Per-pass bookkeeping, matching the candidate/frequent census tables of
/// the Apriori paper.
struct PassStats {
  /// Itemset size handled by this pass (k).
  size_t pass = 0;
  /// Candidates generated (for pattern-growth miners: itemsets examined).
  size_t candidates = 0;
  /// Candidates that turned out frequent.
  size_t frequent = 0;
};

/// Output of a frequent-itemset miner.
struct MiningResult {
  /// All frequent itemsets in canonical order (see SortCanonical).
  std::vector<FrequentItemset> itemsets;
  /// One entry per pass / recursion depth.
  std::vector<PassStats> passes;

  /// Pattern-growth work counters, the association analogue of
  /// `ClusteringResult::distance_computations` / `TreeBuildStats::
  /// split_scan_rows`: algorithm-intrinsic effort tallies, invariant
  /// across thread counts (per-chunk tallies merged in chunk order).
  /// Conditional FP-trees constructed (FP-Growth; 0 for other miners).
  uint64_t conditional_trees_built = 0;
  /// FP-tree nodes allocated across the root and all conditional trees,
  /// excluding each tree's root sentinel (FP-Growth).
  uint64_t fp_nodes_allocated = 0;
  /// Tidset intersections probed, materialized or not (Eclat).
  uint64_t tidset_intersections = 0;
  /// On-disk partitions mined by the out-of-core miners (io library; 0
  /// for the in-memory miners). Invariant across thread counts.
  uint64_t partitions_mined = 0;
  /// Container bytes mapped while mining out of core (0 in memory).
  uint64_t bytes_mapped = 0;

  /// Number of frequent itemsets of the given size.
  size_t CountOfSize(size_t k) const;
};

/// Support threshold and mining limits.
struct MiningParams {
  /// Minimum support as a fraction of |D|, in (0, 1].
  double min_support = 0.01;
  /// Largest itemset size to mine; 0 means unlimited.
  size_t max_itemset_size = 0;
  /// Worker threads; 0 or 1 = serial. Honored by all four miners —
  /// MineApriori / MineAprioriTid (support counting), MineFpGrowth
  /// (top-level conditional-tree projection), MineEclat (root
  /// equivalence classes) — and by MineWithSampling's verification scan.
  /// Parallel runs produce bit-identical results to serial runs,
  /// including pass stats and work counters.
  size_t num_threads = 0;

  core::Status Validate() const;
};

/// Converts the fractional threshold to an absolute count (at least 1),
/// rounding up so that support/|D| >= min_support holds exactly.
uint32_t AbsoluteMinSupport(const core::TransactionDatabase& db,
                            double min_support);

/// Sorts itemsets canonically: by size, then lexicographically by items.
/// Every miner returns this order so results are directly comparable.
void SortCanonical(std::vector<FrequentItemset>* itemsets);

/// Deterministic task-parallel mining driver (the pattern-growth analogue
/// of core::CountPartitioned): runs mine_range(begin, end, out) over a
/// fixed partition of the task range [0, n) into contiguous chunks, giving
/// each chunk a private MiningResult scratch, then merges the chunks into
/// `result` in ascending chunk order — itemsets are concatenated, per-depth
/// pass stats and the work counters are summed. A serial context mines
/// straight into `result` with no copies, so with chunk boundaries fixed by
/// (n, num_threads) alone, any thread count reproduces the serial itemset
/// order bit for bit *before* the final SortCanonical.
void MinePartitioned(
    const core::ParallelContext& ctx, size_t n, MiningResult* result,
    const std::function<void(size_t, size_t, MiningResult*)>& mine_range);

/// True if `subset` ⊆ `superset` (both sorted).
bool IsSubsetOf(std::span<const core::ItemId> subset,
                std::span<const core::ItemId> superset);

/// Human-readable "{a, b, c} (support=n)" using the dictionary when given.
std::string FormatItemset(const FrequentItemset& itemset,
                          const core::ItemDictionary* dictionary = nullptr);

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_ITEMSET_H_
