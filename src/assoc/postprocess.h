// Post-filters over mined collections: maximal and closed itemsets, and
// the interestingness filter over generated rules.
#ifndef DMT_ASSOC_POSTPROCESS_H_
#define DMT_ASSOC_POSTPROCESS_H_

#include <vector>

#include "assoc/itemset.h"
#include "assoc/rules.h"
#include "core/status.h"

namespace dmt::assoc {

/// Keeps itemsets with no frequent proper superset. Input must be the
/// complete frequent collection (as returned by any miner); output is in
/// canonical order.
std::vector<FrequentItemset> FilterMaximal(
    const std::vector<FrequentItemset>& all);

/// Keeps itemsets with no proper superset of equal support. Input must be
/// the complete frequent collection; output is in canonical order.
std::vector<FrequentItemset> FilterClosed(
    const std::vector<FrequentItemset>& all);

/// Interestingness thresholds applied after rule generation. All three
/// measures are already computed on every AssociationRule; this filter
/// keeps rules meeting every bound, with the same accept-lenient +1e-12
/// epsilon convention as the generation-time confidence/lift bars.
/// Validate() rejects NaN bounds (NaN would silently disable a filter).
struct InterestParams {
  /// Minimum lift (0 keeps everything: lift is non-negative).
  double min_lift = 0.0;
  /// Minimum conviction (0 keeps everything).
  double min_conviction = 0.0;
  /// Minimum leverage. Leverage lives in [-0.25, 0.25], so the default
  /// of -1 keeps everything; 0 keeps positively-correlated rules only.
  double min_leverage = -1.0;

  core::Status Validate() const;
};

/// Keeps rules meeting every InterestParams bound, preserving order.
core::Result<std::vector<AssociationRule>> FilterInteresting(
    std::vector<AssociationRule> rules, const InterestParams& params);

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_POSTPROCESS_H_
