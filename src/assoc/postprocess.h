// Post-filters over the full frequent-itemset collection: maximal and
// closed itemsets.
#ifndef DMT_ASSOC_POSTPROCESS_H_
#define DMT_ASSOC_POSTPROCESS_H_

#include <vector>

#include "assoc/itemset.h"

namespace dmt::assoc {

/// Keeps itemsets with no frequent proper superset. Input must be the
/// complete frequent collection (as returned by any miner); output is in
/// canonical order.
std::vector<FrequentItemset> FilterMaximal(
    const std::vector<FrequentItemset>& all);

/// Keeps itemsets with no proper superset of equal support. Input must be
/// the complete frequent collection; output is in canonical order.
std::vector<FrequentItemset> FilterClosed(
    const std::vector<FrequentItemset>& all);

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_POSTPROCESS_H_
