#include "assoc/candidate_gen.h"

#include <algorithm>
#include <unordered_set>

#include "core/check.h"

namespace dmt::assoc {

CandidateGenResult GenerateCandidates(
    const std::vector<Itemset>& prev_frequent, bool record_parents) {
  CandidateGenResult result;
  if (prev_frequent.empty()) return result;
  const size_t prev_size = prev_frequent[0].size();
  DMT_CHECK_GE(prev_size, 1u);

  std::unordered_set<Itemset, ItemsetHash> frequent_set(
      prev_frequent.begin(), prev_frequent.end());

  Itemset candidate(prev_size + 1);
  Itemset subset(prev_size);
  for (size_t i = 0; i < prev_frequent.size(); ++i) {
    const Itemset& a = prev_frequent[i];
    DMT_DCHECK(a.size() == prev_size);
    for (size_t j = i + 1; j < prev_frequent.size(); ++j) {
      const Itemset& b = prev_frequent[j];
      // Lexicographic order means all joinable partners (equal first k-2
      // items) are adjacent; stop at the first mismatching prefix.
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
      // a and b share the first k-2 items and a.back() < b.back().
      std::copy(a.begin(), a.end(), candidate.begin());
      candidate.back() = b.back();

      // Prune: every (k-1)-subset must be frequent. Dropping the last or
      // second-to-last item yields a and b themselves; test the rest.
      bool all_frequent = true;
      for (size_t drop = 0; drop + 2 < candidate.size() && all_frequent;
           ++drop) {
        subset.clear();
        for (size_t p = 0; p < candidate.size(); ++p) {
          if (p != drop) subset.push_back(candidate[p]);
        }
        all_frequent = frequent_set.contains(subset);
      }
      if (!all_frequent) continue;

      result.candidates.push_back(candidate);
      if (record_parents) {
        result.parents.emplace_back(static_cast<uint32_t>(i),
                                    static_cast<uint32_t>(j));
      }
    }
  }
  return result;
}

}  // namespace dmt::assoc
