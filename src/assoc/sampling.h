// Sampling-based frequent-itemset mining (Toivonen, VLDB'96): mine a
// random sample at a lowered threshold, then verify the sample-frequent
// collection plus its negative border against the full database in one
// scan. If no border set turns out frequent, the result is exact; border
// misses trigger a (reported) fallback to a full mine.
#ifndef DMT_ASSOC_SAMPLING_H_
#define DMT_ASSOC_SAMPLING_H_

#include "assoc/itemset.h"
#include "core/status.h"
#include "core/transaction.h"

namespace dmt::assoc {

/// Tuning knobs for sampling-based mining.
struct SamplingOptions {
  /// Fraction of transactions drawn into the sample (Bernoulli, in (0, 1)).
  double sample_fraction = 0.1;
  /// The sample is mined at threshold_scaling * min_support to lower the
  /// chance of border misses (the paper's "lowered frequency threshold").
  double threshold_scaling = 0.8;
  uint64_t seed = 1;

  core::Status Validate() const;
};

/// Diagnostics of one sampling run.
struct SamplingStats {
  size_t sample_size = 0;
  /// Sample-frequent itemsets plus negative-border sets verified against
  /// the full database.
  size_t candidates_checked = 0;
  /// Negative-border sets that turned out globally frequent (0 = the
  /// one-scan result is provably complete).
  size_t border_misses = 0;
  /// True when misses forced a full FP-Growth fallback.
  bool fell_back = false;
};

/// Mines all frequent itemsets of `db`. Always exact: when the negative
/// border check fails, the function transparently falls back to a full
/// mine and records it in `stats`. Under a `max_itemset_size` cap, border
/// sets larger than the cap are excluded before miss accounting (they
/// cannot contribute to the capped result, nor can their supersets).
/// `MiningParams::num_threads` is honored by both the verification scan
/// and the FP-Growth mines.
core::Result<MiningResult> MineWithSampling(
    const core::TransactionDatabase& db, const MiningParams& params,
    const SamplingOptions& options = {}, SamplingStats* stats = nullptr);

/// The negative border of a (downward-closed) frequent collection: every
/// itemset that is not in the collection but whose proper subsets all are.
/// `item_universe` bounds the singleton layer. Exposed for tests and for
/// the streaming miner's window verification (assoc/streaming.h).
std::vector<Itemset> NegativeBorder(
    const std::vector<FrequentItemset>& frequent, size_t item_universe);

/// Exact supports of arbitrary itemsets against `db` in one logical scan:
/// one hash tree per size layer, each counted across `ctx` under the
/// deterministic chunk-merge contract. Shared by the sampling verifier
/// and the streaming miner's negative-border verification.
std::vector<uint32_t> CountExactSupports(const core::TransactionDatabase& db,
                                         const std::vector<Itemset>& itemsets,
                                         const core::ParallelContext& ctx);

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_SAMPLING_H_
