#include "assoc/apriori.h"

#include <algorithm>
#include <unordered_map>

#include "assoc/candidate_gen.h"
#include "assoc/hash_tree.h"
#include "core/check.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::assoc {

using core::Result;
using core::Status;
using core::TransactionDatabase;

Status AprioriOptions::Validate() const {
  if (hash_tree_fanout < 2) {
    return Status::InvalidArgument("hash_tree_fanout must be >= 2");
  }
  if (hash_tree_leaf_size < 1) {
    return Status::InvalidArgument("hash_tree_leaf_size must be >= 1");
  }
  return Status::OK();
}

namespace {

/// Pass 1 shared by both algorithms: frequent single items, lexicographic.
std::vector<FrequentItemset> FrequentSingles(const TransactionDatabase& db,
                                             uint32_t min_count,
                                             size_t* num_candidates) {
  std::vector<uint32_t> supports = db.ItemSupports();
  *num_candidates = supports.size();
  std::vector<FrequentItemset> frequent;
  for (core::ItemId item = 0; item < supports.size(); ++item) {
    if (supports[item] >= min_count) {
      frequent.push_back({{item}, supports[item]});
    }
  }
  return frequent;
}

/// Extracts just the itemsets of a frequent layer (for candidate gen).
std::vector<Itemset> ItemsetsOf(const std::vector<FrequentItemset>& layer) {
  std::vector<Itemset> out;
  out.reserve(layer.size());
  for (const auto& f : layer) out.push_back(f.items);
  return out;
}

/// Enumerates the k-subsets of `transaction` and probes `index`, adding hits
/// to `counts` (the kSubsetLookup ablation baseline).
void CountBySubsetLookup(
    std::span<const core::ItemId> transaction, size_t k,
    const std::unordered_map<Itemset, uint32_t, ItemsetHash>& index,
    std::span<uint32_t> counts) {
  if (transaction.size() < k) return;
  Itemset subset;
  subset.reserve(k);
  // Iterative combination enumeration over positions.
  std::vector<size_t> positions(k);
  for (size_t i = 0; i < k; ++i) positions[i] = i;
  for (;;) {
    subset.clear();
    for (size_t pos : positions) subset.push_back(transaction[pos]);
    auto it = index.find(subset);
    if (it != index.end()) ++counts[it->second];
    // Advance to the next combination.
    size_t level = k;
    while (level > 0) {
      --level;
      if (positions[level] + (k - level) < transaction.size()) {
        ++positions[level];
        for (size_t next = level + 1; next < k; ++next) {
          positions[next] = positions[next - 1] + 1;
        }
        break;
      }
      if (level == 0) return;
    }
  }
}

}  // namespace

Result<MiningResult> MineApriori(const TransactionDatabase& db,
                                 const MiningParams& params,
                                 const AprioriOptions& options) {
  DMT_RETURN_NOT_OK(params.Validate());
  DMT_RETURN_NOT_OK(options.Validate());
  const uint32_t min_count = AbsoluteMinSupport(db, params.min_support);
  const core::ParallelContext ctx(params.num_threads);

  obs::Counter candidates_counter("assoc/apriori/candidates");
  obs::Counter frequent_counter("assoc/apriori/frequent");
  obs::Counter passes_counter("assoc/apriori/passes");
  obs::Span mine_span("assoc/apriori/mine");
  mine_span.AttachCounter(candidates_counter);
  mine_span.AttachCounter(frequent_counter);
  mine_span.AttachCounter(passes_counter);

  MiningResult result;
  size_t num_singles = 0;
  std::vector<FrequentItemset> layer =
      FrequentSingles(db, min_count, &num_singles);
  result.passes.push_back({1, num_singles, layer.size()});
  candidates_counter.Add(num_singles);
  frequent_counter.Add(layer.size());
  passes_counter.Increment();
  result.itemsets = layer;

  for (size_t k = 2; !layer.empty(); ++k) {
    if (params.max_itemset_size != 0 && k > params.max_itemset_size) break;
    obs::Span pass_span("assoc/apriori/pass");
    pass_span.AddArg("k", k);
    CandidateGenResult gen = GenerateCandidates(ItemsetsOf(layer));
    if (gen.candidates.empty()) {
      result.passes.push_back({k, 0, 0});
      passes_counter.Increment();
      break;
    }
    std::vector<uint32_t> counts(gen.candidates.size(), 0);
    if (options.counting == AprioriOptions::CountingMethod::kHashTree) {
      obs::Span count_span("assoc/apriori/pass/count");
      HashTree tree(gen.candidates, k, options.hash_tree_fanout,
                    options.hash_tree_leaf_size);
      tree.CountDatabase(db, counts, ctx);
    } else {
      obs::Span count_span("assoc/apriori/pass/count");
      std::unordered_map<Itemset, uint32_t, ItemsetHash> index;
      index.reserve(gen.candidates.size());
      for (uint32_t c = 0; c < gen.candidates.size(); ++c) {
        index.emplace(gen.candidates[c], c);
      }
      core::CountPartitioned(
          ctx, db.size(), counts,
          [&](size_t begin, size_t end, std::span<uint32_t> local) {
            for (size_t t = begin; t < end; ++t) {
              CountBySubsetLookup(db.transaction(t), k, index, local);
            }
          });
    }
    std::vector<FrequentItemset> next_layer;
    for (uint32_t c = 0; c < gen.candidates.size(); ++c) {
      if (counts[c] >= min_count) {
        next_layer.push_back({std::move(gen.candidates[c]), counts[c]});
      }
    }
    result.passes.push_back({k, gen.candidates.size(), next_layer.size()});
    candidates_counter.Add(gen.candidates.size());
    frequent_counter.Add(next_layer.size());
    passes_counter.Increment();
    result.itemsets.insert(result.itemsets.end(), next_layer.begin(),
                           next_layer.end());
    layer = std::move(next_layer);
  }
  SortCanonical(&result.itemsets);
  return result;
}

Result<MiningResult> MineAprioriTid(const TransactionDatabase& db,
                                    const MiningParams& params) {
  DMT_RETURN_NOT_OK(params.Validate());
  const uint32_t min_count = AbsoluteMinSupport(db, params.min_support);
  const core::ParallelContext ctx(params.num_threads);

  obs::Counter candidates_counter("assoc/apriori_tid/candidates");
  obs::Counter frequent_counter("assoc/apriori_tid/frequent");
  obs::Counter passes_counter("assoc/apriori_tid/passes");
  obs::Span mine_span("assoc/apriori_tid/mine");
  mine_span.AttachCounter(candidates_counter);
  mine_span.AttachCounter(frequent_counter);
  mine_span.AttachCounter(passes_counter);

  MiningResult result;
  size_t num_singles = 0;
  std::vector<FrequentItemset> layer =
      FrequentSingles(db, min_count, &num_singles);
  result.passes.push_back({1, num_singles, layer.size()});
  candidates_counter.Add(num_singles);
  frequent_counter.Add(layer.size());
  passes_counter.Increment();
  result.itemsets = layer;

  // Per-transaction lists of *frequent* (k-1)-itemset indices. For k=2 the
  // entry is the transaction itself restricted to frequent items, remapped
  // to indices into `layer`.
  std::vector<std::vector<uint32_t>> entries(db.size());
  {
    // item id -> index in layer (frequent singles are sorted by item id).
    std::unordered_map<core::ItemId, uint32_t> single_index;
    for (uint32_t i = 0; i < layer.size(); ++i) {
      single_index.emplace(layer[i].items[0], i);
    }
    for (size_t t = 0; t < db.size(); ++t) {
      for (core::ItemId item : db.transaction(t)) {
        auto it = single_index.find(item);
        if (it != single_index.end()) entries[t].push_back(it->second);
      }
    }
  }

  for (size_t k = 2; !layer.empty(); ++k) {
    if (params.max_itemset_size != 0 && k > params.max_itemset_size) break;
    obs::Span pass_span("assoc/apriori_tid/pass");
    pass_span.AddArg("k", k);
    CandidateGenResult gen =
        GenerateCandidates(ItemsetsOf(layer), /*record_parents=*/true);
    if (gen.candidates.empty()) {
      result.passes.push_back({k, 0, 0});
      passes_counter.Increment();
      break;
    }
    // Group candidates by their first parent for set-oriented counting.
    std::vector<std::vector<uint32_t>> candidates_by_parent1(layer.size());
    for (uint32_t c = 0; c < gen.candidates.size(); ++c) {
      candidates_by_parent1[gen.parents[c].first].push_back(c);
    }

    std::vector<uint32_t> counts(gen.candidates.size(), 0);
    std::vector<std::vector<uint32_t>> next_entries(db.size());
    // Each chunk owns a stamp array marking which frequent (k-1) ids the
    // current transaction contains, and writes only its own transactions'
    // next_entries slots.
    core::CountPartitioned(
        ctx, db.size(), counts,
        [&](size_t begin, size_t end, std::span<uint32_t> local) {
          std::vector<uint32_t> present_stamp(layer.size(), 0);
          uint32_t serial = 0;
          for (size_t t = begin; t < end; ++t) {
            const auto& entry = entries[t];
            if (entry.size() < 2) continue;
            ++serial;
            for (uint32_t id : entry) present_stamp[id] = serial;
            for (uint32_t id : entry) {
              for (uint32_t c : candidates_by_parent1[id]) {
                if (present_stamp[gen.parents[c].second] == serial) {
                  ++local[c];
                  next_entries[t].push_back(c);
                }
              }
            }
          }
        });

    std::vector<FrequentItemset> next_layer;
    // Remap candidate ids to next-layer (frequent) ids.
    std::vector<uint32_t> candidate_to_frequent(gen.candidates.size(),
                                                UINT32_MAX);
    for (uint32_t c = 0; c < gen.candidates.size(); ++c) {
      if (counts[c] >= min_count) {
        candidate_to_frequent[c] = static_cast<uint32_t>(next_layer.size());
        next_layer.push_back({std::move(gen.candidates[c]), counts[c]});
      }
    }
    result.passes.push_back({k, gen.candidates.size(), next_layer.size()});
    candidates_counter.Add(gen.candidates.size());
    frequent_counter.Add(next_layer.size());
    passes_counter.Increment();
    result.itemsets.insert(result.itemsets.end(), next_layer.begin(),
                           next_layer.end());

    for (size_t t = 0; t < db.size(); ++t) {
      std::vector<uint32_t> remapped;
      remapped.reserve(next_entries[t].size());
      for (uint32_t c : next_entries[t]) {
        if (candidate_to_frequent[c] != UINT32_MAX) {
          remapped.push_back(candidate_to_frequent[c]);
        }
      }
      entries[t] = std::move(remapped);
    }
    layer = std::move(next_layer);
  }
  SortCanonical(&result.itemsets);
  return result;
}

}  // namespace dmt::assoc
