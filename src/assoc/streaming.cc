#include "assoc/streaming.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "assoc/fp_growth.h"
#include "assoc/sampling.h"
#include "core/check.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::assoc {

using core::Result;
using core::Status;
using core::TransactionDatabase;

Status StreamingParams::Validate() const {
  if (std::isnan(min_support) || std::isnan(error)) {
    return Status::InvalidArgument(
        "streaming thresholds must not be NaN (NaN passes every "
        "comparison and silently disables the filter)");
  }
  if (!(min_support > 0.0) || min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  if (error < 0.0 || error >= min_support) {
    return Status::InvalidArgument(
        "error must be in [0, min_support); 0 selects min_support / 10");
  }
  if (window_batches == 0) {
    return Status::InvalidArgument("window_batches must be >= 1");
  }
  return Status::OK();
}

Result<StreamingMiner> StreamingMiner::Create(const StreamingParams& params) {
  DMT_RETURN_NOT_OK(params.Validate());
  return StreamingMiner(params);
}

Status StreamingMiner::AddBatch(const TransactionDatabase& batch) {
  if (batch.empty()) return Status::OK();
  obs::Span span("assoc/streaming/add_batch");
  // The one and only mine of this batch: ε-frequent itemsets with exact
  // batch counts. Anything below the ε bar contributes at most ε·|batch|
  // missed occurrences to the window estimate — the per-batch slice of
  // the Lossy Counting error bound.
  MiningParams batch_params;
  batch_params.min_support = params_.EffectiveError();
  batch_params.max_itemset_size = params_.max_itemset_size;
  batch_params.num_threads = params_.num_threads;
  DMT_ASSIGN_OR_RETURN(MiningResult mined,
                       MineFpGrowth(batch, batch_params));
  window_.push_back({batch, std::move(mined.itemsets)});
  if (window_.size() > params_.window_batches) window_.pop_front();
  ++batches_seen_;
  span.AddArg("batch_transactions", batch.size());
  return Status::OK();
}

std::vector<FrequentItemset> StreamingMiner::ApproximateCounts() const {
  std::unordered_map<Itemset, uint64_t, ItemsetHash> merged;
  for (const WindowBatch& batch : window_) {
    for (const FrequentItemset& itemset : batch.summary) {
      merged[itemset.items] += itemset.support;
    }
  }
  std::vector<FrequentItemset> out;
  out.reserve(merged.size());
  for (auto& [items, count] : merged) {
    out.push_back({items, static_cast<uint32_t>(count)});
  }
  SortCanonical(&out);
  return out;
}

TransactionDatabase StreamingMiner::WindowTransactions() const {
  TransactionDatabase out;
  for (const WindowBatch& batch : window_) {
    for (size_t t = 0; t < batch.transactions.size(); ++t) {
      out.Add(batch.transactions.transaction(t));
    }
  }
  return out;
}

size_t StreamingMiner::window_transactions() const {
  size_t total = 0;
  for (const WindowBatch& batch : window_) total += batch.transactions.size();
  return total;
}

Result<MiningResult> StreamingMiner::MineWindow(
    StreamingWindowStats* stats) const {
  StreamingWindowStats local_stats;
  StreamingWindowStats* out_stats = stats != nullptr ? stats : &local_stats;
  *out_stats = StreamingWindowStats{};
  if (window_.empty()) return MiningResult{};

  obs::Span span("assoc/streaming/mine_window");
  obs::Counter candidates_counter("assoc/streaming/candidates_checked");
  obs::Counter misses_counter("assoc/streaming/border_misses");
  obs::Counter fallbacks_counter("assoc/streaming/fallbacks");
  span.AttachCounter(candidates_counter);
  span.AttachCounter(misses_counter);

  const TransactionDatabase window_db = WindowTransactions();
  const size_t n = window_db.size();
  out_stats->window_transactions = n;
  const core::ParallelContext ctx(params_.num_threads);

  // Candidate bar: estimates are underestimates by at most ε·N, so
  // querying at ceil(s·N) - floor(ε·N) can never miss a truly frequent
  // itemset. Integer arithmetic keeps the bar (and thus the candidate
  // set) bit-identical at every thread count.
  const uint32_t exact_min = AbsoluteMinSupport(window_db, params_.min_support);
  const auto slack = static_cast<uint32_t>(
      params_.EffectiveError() * static_cast<double>(n));
  const uint32_t candidate_min = exact_min > slack ? exact_min - slack : 1;

  std::vector<FrequentItemset> summary = ApproximateCounts();
  out_stats->summary_itemsets = summary.size();
  std::vector<FrequentItemset> candidate_collection;
  std::vector<Itemset> candidates;
  for (FrequentItemset& itemset : summary) {
    if (itemset.support < candidate_min) continue;
    candidates.push_back(itemset.items);
    candidate_collection.push_back(std::move(itemset));
  }
  out_stats->summary_candidates = candidates.size();
  const size_t num_summary_candidates = candidates.size();

  // Negative border over the candidate collection (downward-closed:
  // per-batch summaries are complete mines, and batch counts are
  // anti-monotone, so every subset of a candidate is a candidate). A
  // frequent border set means the summary bar hid a frequent itemset
  // whose supersets were never estimated — the exactness escape hatch.
  std::vector<Itemset> border =
      NegativeBorder(candidate_collection, window_db.item_universe());
  for (Itemset& border_set : border) {
    // As in sampling: border sets beyond the size cap cannot contribute
    // to the capped result, so they must not count as misses either.
    if (params_.max_itemset_size != 0 &&
        border_set.size() > params_.max_itemset_size) {
      continue;
    }
    candidates.push_back(std::move(border_set));
  }
  out_stats->candidates_checked = candidates.size();
  candidates_counter.Add(candidates.size());

  const std::vector<uint32_t> supports = [&] {
    obs::Span verify_span("assoc/streaming/verify");
    return CountExactSupports(window_db, candidates, ctx);
  }();

  MiningResult result;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (supports[i] < exact_min) continue;
    if (i >= num_summary_candidates) {
      ++out_stats->border_misses;
      misses_counter.Increment();
      continue;
    }
    result.itemsets.push_back({candidates[i], supports[i]});
  }
  if (out_stats->border_misses > 0) {
    out_stats->fell_back = true;
    fallbacks_counter.Increment();
    MiningParams full_params;
    full_params.min_support = params_.min_support;
    full_params.max_itemset_size = params_.max_itemset_size;
    full_params.num_threads = params_.num_threads;
    return MineFpGrowth(window_db, full_params);
  }
  SortCanonical(&result.itemsets);
  size_t max_size = 0;
  for (const FrequentItemset& itemset : result.itemsets) {
    max_size = std::max(max_size, itemset.items.size());
  }
  for (size_t k = 1; k <= max_size; ++k) {
    result.passes.push_back(
        {k, result.CountOfSize(k), result.CountOfSize(k)});
  }
  return result;
}

}  // namespace dmt::assoc
