#include "assoc/rules.h"

#include <algorithm>
#include <unordered_map>

#include "assoc/candidate_gen.h"
#include "core/check.h"
#include "core/string_util.h"

namespace dmt::assoc {

using core::Result;
using core::Status;

Status RuleParams::Validate() const {
  if (!(min_confidence > 0.0) || min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in (0, 1]");
  }
  if (min_lift < 0.0) {
    return Status::InvalidArgument("min_lift must be >= 0");
  }
  return Status::OK();
}

namespace {

using SupportIndex = std::unordered_map<Itemset, uint32_t, ItemsetHash>;

double Conviction(double consequent_support_fraction, double confidence) {
  double denominator = 1.0 - confidence;
  if (denominator <= 1e-12) return 1e12;
  return (1.0 - consequent_support_fraction) / denominator;
}

Itemset Difference(const Itemset& from, const Itemset& remove) {
  Itemset out;
  out.reserve(from.size() - remove.size());
  std::set_difference(from.begin(), from.end(), remove.begin(), remove.end(),
                      std::back_inserter(out));
  return out;
}

/// ap-genrules: given the itemset and a layer of m-item consequents that
/// already passed the confidence bar, grow (m+1)-item consequents.
void GrowConsequents(const FrequentItemset& itemset,
                     const SupportIndex& supports, const RuleParams& params,
                     double num_transactions,
                     std::vector<Itemset> consequent_layer,
                     std::vector<AssociationRule>* rules) {
  while (!consequent_layer.empty() &&
         consequent_layer[0].size() + 1 < itemset.items.size()) {
    CandidateGenResult gen = GenerateCandidates(consequent_layer);
    std::vector<Itemset> next_layer;
    for (auto& consequent : gen.candidates) {
      Itemset antecedent = Difference(itemset.items, consequent);
      auto antecedent_it = supports.find(antecedent);
      DMT_CHECK(antecedent_it != supports.end());
      double confidence = static_cast<double>(itemset.support) /
                          static_cast<double>(antecedent_it->second);
      if (confidence + 1e-12 < params.min_confidence) continue;
      auto consequent_it = supports.find(consequent);
      DMT_CHECK(consequent_it != supports.end());
      double lift = confidence /
                    (static_cast<double>(consequent_it->second) /
                     num_transactions);
      if (lift + 1e-12 >= params.min_lift) {
        double consequent_fraction =
            static_cast<double>(consequent_it->second) / num_transactions;
        rules->push_back({std::move(antecedent), consequent,
                          itemset.support,
                          static_cast<double>(itemset.support) /
                              num_transactions,
                          confidence, lift,
                          Conviction(consequent_fraction, confidence)});
      }
      next_layer.push_back(std::move(consequent));
    }
    consequent_layer = std::move(next_layer);
  }
}

}  // namespace

Result<std::vector<AssociationRule>> GenerateRules(
    const MiningResult& mining, size_t num_transactions,
    const RuleParams& params) {
  DMT_RETURN_NOT_OK(params.Validate());
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be > 0");
  }
  const double n = static_cast<double>(num_transactions);

  SupportIndex supports;
  supports.reserve(mining.itemsets.size());
  for (const auto& itemset : mining.itemsets) {
    supports.emplace(itemset.items, itemset.support);
  }

  std::vector<AssociationRule> rules;
  for (const auto& itemset : mining.itemsets) {
    if (itemset.items.size() < 2) continue;
    // Seed layer: single-item consequents that pass the confidence bar
    // (confidence is anti-monotone in the consequent, so failures prune).
    std::vector<Itemset> seed_layer;
    for (core::ItemId item : itemset.items) {
      Itemset consequent{item};
      Itemset antecedent = Difference(itemset.items, consequent);
      auto antecedent_it = supports.find(antecedent);
      DMT_CHECK(antecedent_it != supports.end());
      double confidence = static_cast<double>(itemset.support) /
                          static_cast<double>(antecedent_it->second);
      if (confidence + 1e-12 < params.min_confidence) continue;
      auto consequent_it = supports.find(consequent);
      DMT_CHECK(consequent_it != supports.end());
      double lift =
          confidence /
          (static_cast<double>(consequent_it->second) / n);
      if (lift + 1e-12 >= params.min_lift) {
        double consequent_fraction =
            static_cast<double>(consequent_it->second) / n;
        rules.push_back({std::move(antecedent), consequent, itemset.support,
                         static_cast<double>(itemset.support) / n,
                         confidence, lift,
                         Conviction(consequent_fraction, confidence)});
      }
      seed_layer.push_back(std::move(consequent));
    }
    GrowConsequents(itemset, supports, params, n, std::move(seed_layer),
                    &rules);
  }

  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.lift != b.lift) return a.lift > b.lift;
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

std::string FormatRule(const AssociationRule& rule,
                       const core::ItemDictionary* dictionary) {
  auto format_side = [&](const Itemset& items) {
    std::string out = "{";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      if (dictionary != nullptr) {
        out += dictionary->Name(items[i]);
      } else {
        out += std::to_string(items[i]);
      }
    }
    out += "}";
    return out;
  };
  return core::StrFormat(
      "%s => %s (supp=%.4f, conf=%.3f, lift=%.2f)",
      format_side(rule.antecedent).c_str(),
      format_side(rule.consequent).c_str(), rule.support, rule.confidence,
      rule.lift);
}

}  // namespace dmt::assoc
