#include "assoc/rules.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "assoc/candidate_gen.h"
#include "core/check.h"
#include "core/string_util.h"

namespace dmt::assoc {

using core::Result;
using core::Status;

Status RuleParams::Validate() const {
  if (std::isnan(min_confidence) || std::isnan(min_lift)) {
    return Status::InvalidArgument(
        "rule thresholds must not be NaN (NaN passes every comparison "
        "and silently disables the filter)");
  }
  if (!(min_confidence > 0.0) || min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in (0, 1]");
  }
  if (min_lift < 0.0) {
    return Status::InvalidArgument("min_lift must be >= 0");
  }
  return Status::OK();
}

namespace {

using SupportIndex = std::unordered_map<Itemset, uint32_t, ItemsetHash>;

double Conviction(double consequent_support_fraction, double confidence) {
  double denominator = 1.0 - confidence;
  if (denominator <= 1e-12) return 1e12;
  return (1.0 - consequent_support_fraction) / denominator;
}

Itemset Difference(const Itemset& from, const Itemset& remove) {
  Itemset out;
  out.reserve(from.size() - remove.size());
  std::set_difference(from.begin(), from.end(), remove.begin(), remove.end(),
                      std::back_inserter(out));
  return out;
}

/// The single rule-emission path shared by the seed layer and the grown
/// layers, so measure definitions (confidence/lift/conviction/leverage)
/// and the accept-lenient +1e-12 epsilon convention cannot drift between
/// the two. Returns true when the consequent passes the confidence bar
/// (and therefore stays in the layer for apriori-style growth — the lift
/// filter gates emission only, never pruning, because lift is not
/// anti-monotone in the consequent).
bool EmitRuleIfPassing(const FrequentItemset& itemset,
                       const SupportIndex& supports,
                       const RuleParams& params, double num_transactions,
                       const Itemset& consequent,
                       std::vector<AssociationRule>* rules) {
  Itemset antecedent = Difference(itemset.items, consequent);
  auto antecedent_it = supports.find(antecedent);
  DMT_CHECK(antecedent_it != supports.end());
  double confidence = static_cast<double>(itemset.support) /
                      static_cast<double>(antecedent_it->second);
  if (confidence + 1e-12 < params.min_confidence) return false;
  auto consequent_it = supports.find(consequent);
  DMT_CHECK(consequent_it != supports.end());
  double consequent_fraction =
      static_cast<double>(consequent_it->second) / num_transactions;
  double lift = confidence / consequent_fraction;
  if (lift + 1e-12 >= params.min_lift) {
    double rule_support =
        static_cast<double>(itemset.support) / num_transactions;
    double antecedent_fraction =
        static_cast<double>(antecedent_it->second) / num_transactions;
    rules->push_back({std::move(antecedent), consequent, itemset.support,
                      rule_support, confidence, lift,
                      Conviction(consequent_fraction, confidence),
                      rule_support - antecedent_fraction *
                                         consequent_fraction});
  }
  return true;
}

/// ap-genrules: given the itemset and a layer of m-item consequents that
/// already passed the confidence bar, grow (m+1)-item consequents.
void GrowConsequents(const FrequentItemset& itemset,
                     const SupportIndex& supports, const RuleParams& params,
                     double num_transactions,
                     std::vector<Itemset> consequent_layer,
                     std::vector<AssociationRule>* rules) {
  while (!consequent_layer.empty() &&
         consequent_layer[0].size() + 1 < itemset.items.size()) {
    CandidateGenResult gen = GenerateCandidates(consequent_layer);
    std::vector<Itemset> next_layer;
    for (auto& consequent : gen.candidates) {
      if (!EmitRuleIfPassing(itemset, supports, params, num_transactions,
                             consequent, rules)) {
        continue;
      }
      next_layer.push_back(std::move(consequent));
    }
    consequent_layer = std::move(next_layer);
  }
}

}  // namespace

Result<std::vector<AssociationRule>> GenerateRules(
    const MiningResult& mining, size_t num_transactions,
    const RuleParams& params) {
  DMT_RETURN_NOT_OK(params.Validate());
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be > 0");
  }
  const double n = static_cast<double>(num_transactions);

  SupportIndex supports;
  supports.reserve(mining.itemsets.size());
  for (const auto& itemset : mining.itemsets) {
    supports.emplace(itemset.items, itemset.support);
  }

  std::vector<AssociationRule> rules;
  for (const auto& itemset : mining.itemsets) {
    if (itemset.items.size() < 2) continue;
    // Seed layer: single-item consequents that pass the confidence bar
    // (confidence is anti-monotone in the consequent, so failures prune).
    std::vector<Itemset> seed_layer;
    for (core::ItemId item : itemset.items) {
      Itemset consequent{item};
      if (!EmitRuleIfPassing(itemset, supports, params, n, consequent,
                             &rules)) {
        continue;
      }
      seed_layer.push_back(std::move(consequent));
    }
    GrowConsequents(itemset, supports, params, n, std::move(seed_layer),
                    &rules);
  }

  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.lift != b.lift) return a.lift > b.lift;
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

std::string FormatRule(const AssociationRule& rule,
                       const core::ItemDictionary* dictionary) {
  auto format_side = [&](const Itemset& items) {
    std::string out = "{";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      if (dictionary != nullptr) {
        out += dictionary->Name(items[i]);
      } else {
        out += std::to_string(items[i]);
      }
    }
    out += "}";
    return out;
  };
  // Conviction is serialized and round-tripped through DMTBIN01
  // containers like the other measures, so the human-readable form prints
  // it (and leverage) too; the 1e12 cap marks an exact rule, rendered as
  // "inf" rather than a misleading finite number.
  std::string conviction = rule.conviction >= 1e12
                               ? "inf"
                               : core::StrFormat("%.2f", rule.conviction);
  return core::StrFormat(
      "%s => %s (supp=%.4f, conf=%.3f, lift=%.2f, conv=%s, lev=%.4f)",
      format_side(rule.antecedent).c_str(),
      format_side(rule.consequent).c_str(), rule.support, rule.confidence,
      rule.lift, conviction.c_str(), rule.leverage);
}

}  // namespace dmt::assoc
