// Sliding-window streaming frequent-itemset mining with Lossy
// Counting-style frequency estimation (Manku & Motwani, VLDB'02) verified
// by the exact miners.
//
// Transactions arrive in batches. Each batch is mined once, on arrival,
// at the error threshold ε (much lower than the support threshold s), and
// only that compact per-batch summary is kept for frequency estimation;
// the window holds the most recent `window_batches` batches. An itemset
// absent from a batch summary missed fewer than ε·|batch| occurrences
// there, so the summed estimate f satisfies the Lossy Counting bound
//
//     true_count - ε·N  <=  f  <=  true_count            (N = window size)
//
// and querying the summary at (s - ε)·N can never miss an itemset whose
// true window support reaches s·N — no false negatives above the support
// threshold, and a fortiori none above (s + ε)·N.
//
// MineWindow() turns the estimate into an exact answer the same way the
// sampling miner does (assoc/sampling.h): the summary's candidates plus
// their negative border are counted exactly against the retained window
// in one hash-tree scan; a frequent border set falls back to a full
// re-mine (reported in stats). Results are therefore always exactly the
// frequent itemsets of the current window, bit-identical at every thread
// count per the PR-1 determinism contract.
#ifndef DMT_ASSOC_STREAMING_H_
#define DMT_ASSOC_STREAMING_H_

#include <deque>
#include <vector>

#include "assoc/itemset.h"
#include "core/status.h"
#include "core/transaction.h"

namespace dmt::assoc {

/// Streaming thresholds. Validate() rejects NaN (NaN passes every range
/// check and would silently disable filtering).
struct StreamingParams {
  /// Support threshold s over the window, in (0, 1].
  double min_support = 0.01;
  /// Lossy Counting error bound ε, in (0, min_support); 0 selects the
  /// conventional ε = s/10.
  double error = 0.0;
  /// Sliding window = the most recent `window_batches` batches (>= 1).
  size_t window_batches = 8;
  /// Largest itemset size to mine; 0 means unlimited.
  size_t max_itemset_size = 0;
  /// Worker threads for batch mining, window verification, and fallback
  /// mining. Bit-identical results at every setting.
  size_t num_threads = 0;

  core::Status Validate() const;

  /// The effective ε (resolves the 0 default).
  double EffectiveError() const {
    return error > 0.0 ? error : min_support * 0.1;
  }
};

/// Diagnostics of one MineWindow() call.
struct StreamingWindowStats {
  /// Transactions in the current window.
  size_t window_transactions = 0;
  /// Distinct itemsets in the merged window summary.
  size_t summary_itemsets = 0;
  /// Summary candidates above the (s - ε) bar.
  size_t summary_candidates = 0;
  /// Candidates plus negative-border sets verified exactly.
  size_t candidates_checked = 0;
  /// Negative-border sets that turned out frequent (0 = the one-scan
  /// result is provably complete).
  size_t border_misses = 0;
  /// True when misses forced a full window re-mine.
  bool fell_back = false;
};

/// Sliding-window miner over an unbounded transaction feed.
class StreamingMiner {
 public:
  /// Validates `params` and builds an empty miner.
  static core::Result<StreamingMiner> Create(const StreamingParams& params);

  /// Ingests one batch: mines it at ε (the only time this batch is ever
  /// mined) and slides the window, evicting the oldest batch beyond
  /// `window_batches`. Empty batches are ignored.
  core::Status AddBatch(const core::TransactionDatabase& batch);

  /// Exact frequent itemsets of the current window at `min_support`.
  core::Result<MiningResult> MineWindow(
      StreamingWindowStats* stats = nullptr) const;

  /// The merged window summary in canonical order: per itemset, the
  /// summed per-batch counts f (the Lossy Counting underestimate).
  /// Exposed so tests can assert the error bound directly.
  std::vector<FrequentItemset> ApproximateCounts() const;

  /// Owning copy of the retained window (batch arrival order), the
  /// database MineWindow verifies against.
  core::TransactionDatabase WindowTransactions() const;

  /// Transactions currently in the window.
  size_t window_transactions() const;
  /// Batches ingested over the miner's lifetime (evicted ones included).
  size_t batches_seen() const { return batches_seen_; }
  const StreamingParams& params() const { return params_; }

 private:
  explicit StreamingMiner(const StreamingParams& params) : params_(params) {}

  struct WindowBatch {
    core::TransactionDatabase transactions;
    /// The batch's ε-frequent itemsets with exact batch counts.
    std::vector<FrequentItemset> summary;
  };

  StreamingParams params_;
  std::deque<WindowBatch> window_;
  size_t batches_seen_ = 0;
};

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_STREAMING_H_
