// Association rule generation from frequent itemsets (the ap-genrules
// procedure of VLDB'94 §3): consequents grow apriori-style, exploiting the
// anti-monotonicity of confidence in the consequent.
#ifndef DMT_ASSOC_RULES_H_
#define DMT_ASSOC_RULES_H_

#include <string>
#include <vector>

#include "assoc/itemset.h"
#include "core/status.h"

namespace dmt::assoc {

/// An association rule antecedent => consequent with its quality measures.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  /// Absolute support of antecedent ∪ consequent.
  uint32_t support_count = 0;
  /// Fractional support of antecedent ∪ consequent.
  double support = 0.0;
  /// supp(A ∪ C) / supp(A).
  double confidence = 0.0;
  /// confidence / supp(C): > 1 means positive correlation.
  double lift = 0.0;
  /// (1 - supp(C)) / (1 - confidence): how much more often the rule would
  /// have to be wrong if antecedent and consequent were independent.
  /// Infinity for exact (confidence = 1) rules; capped at 1e12.
  double conviction = 0.0;
  /// supp(A ∪ C) - supp(A) * supp(C) (Piatetsky-Shapiro): the fraction of
  /// transactions the rule covers beyond what independence predicts.
  /// Positive means positive correlation; bounded by [-0.25, 0.25].
  double leverage = 0.0;

  bool operator==(const AssociationRule& other) const {
    return antecedent == other.antecedent && consequent == other.consequent;
  }
};

/// Rule-generation thresholds. Validate() rejects NaN thresholds: NaN
/// compares false against every bound, so it would silently disable the
/// corresponding filter instead of failing loudly.
struct RuleParams {
  /// Minimum confidence in (0, 1].
  double min_confidence = 0.5;
  /// Minimum lift (0 disables the filter).
  double min_lift = 0.0;

  core::Status Validate() const;
};

/// Generates all rules meeting the thresholds from a mining result.
/// `num_transactions` is |D| of the mined database (for support/lift).
/// Rules come out sorted by descending confidence, then descending lift,
/// then canonically by antecedent/consequent.
core::Result<std::vector<AssociationRule>> GenerateRules(
    const MiningResult& mining, size_t num_transactions,
    const RuleParams& params);

/// Human-readable
/// "{a} => {b} (supp=…, conf=…, lift=…, conv=…, lev=…)".
/// All five serialized measures are printed; a conviction at the 1e12 cap
/// (exact rules) prints as "inf".
std::string FormatRule(const AssociationRule& rule,
                       const core::ItemDictionary* dictionary = nullptr);

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_RULES_H_
