// Quantitative association rules (Srikant & Agrawal, SIGMOD'96) over
// numeric Dataset columns: each numeric attribute is equi-depth
// discretized into base intervals, adjacent intervals are additionally
// merged into ranges (capped by a support budget) so that rules over
// coarser value ranges are not lost to over-partitioning — the paper's
// partial-completeness argument — and each row becomes one transaction of
// interval/category items. The existing TransactionDatabase miners run
// unchanged on the quantized database; itemsets mixing two intervals of
// the same attribute (a base interval plus a range containing it) are
// pruned before rule generation, and the generated rules pass through the
// leverage/conviction interestingness post-filter (assoc/postprocess.h).
#ifndef DMT_ASSOC_QUANTITATIVE_H_
#define DMT_ASSOC_QUANTITATIVE_H_

#include <string>
#include <vector>

#include "assoc/itemset.h"
#include "assoc/rules.h"
#include "core/dataset.h"
#include "core/status.h"
#include "core/transaction.h"

namespace dmt::assoc {

/// One quantized item: a categorical value or a numeric interval (a run
/// of one or more adjacent base intervals) of one Dataset attribute.
struct QuantItem {
  /// Dataset column this item describes.
  uint32_t attribute = 0;
  bool is_categorical = false;
  /// Category code, when categorical.
  uint32_t category = 0;
  /// Closed value interval [lo, hi] (actual data min/max), when numeric.
  double lo = 0.0;
  double hi = 0.0;
  /// Inclusive run of base (equi-depth) intervals this item covers;
  /// first_bin == last_bin for a base interval. Zero for categorical.
  uint32_t first_bin = 0;
  uint32_t last_bin = 0;
  /// Human-readable label, e.g. "age in [23, 29]" or "married = yes".
  std::string label;

  bool operator==(const QuantItem& other) const = default;
};

/// Discretization + mining + rule thresholds. Validate() rejects NaN for
/// every threshold (NaN passes both sides of a range check and would
/// silently disable filtering).
struct QuantParams {
  /// Minimum fractional support of the mined itemsets, in (0, 1].
  double min_support = 0.05;
  /// Base equi-depth intervals per numeric attribute (>= 1). Fewer come
  /// out when the column has fewer distinct cut values.
  size_t num_bins = 8;
  /// Merged interval runs are emitted while their combined fractional
  /// support stays <= this cap, in (0, 1]; 1 admits every run. The cap is
  /// the paper's max_support knob: it bounds how coarse a range may get
  /// before it is trivially frequent and uninteresting.
  double max_merge_support = 0.5;
  /// Rule thresholds (see RuleParams).
  double min_confidence = 0.5;
  double min_lift = 0.0;
  /// Interestingness post-filter bounds (see InterestParams).
  double min_conviction = 0.0;
  double min_leverage = -1.0;
  /// Largest itemset size to mine; 0 means unlimited.
  size_t max_itemset_size = 0;
  /// Worker threads, forwarded to the underlying miner.
  size_t num_threads = 0;

  core::Status Validate() const;
};

/// Which frequent-itemset miner runs on the quantized database. All four
/// produce bit-identical quantitative rules (differential-tested).
enum class QuantMiner { kApriori, kAprioriTid, kFpGrowth, kEclat };

/// A Dataset mapped onto the transaction/miner stack.
struct QuantizedDataset {
  /// One transaction per dataset row: the row's category items plus, for
  /// each numeric attribute, its base interval and every emitted merged
  /// run containing it.
  core::TransactionDatabase transactions;
  /// Item id -> descriptor (ids are dense, 0..items.size()-1).
  std::vector<QuantItem> items;
  /// Base intervals actually produced per attribute (after dropping
  /// empty/duplicate cut bins); 0 for categorical attributes.
  std::vector<uint32_t> bins_per_attribute;
  /// Partial-completeness level K guaranteed by the discretization for
  /// rules over single base-interval runs: K = 1 + 2m / (n * minsup)
  /// with m numeric attributes and n the smallest per-attribute interval
  /// count (Srikant & Agrawal §4; 1 when no numeric attributes). Smaller
  /// is better: any rule on the raw values has a quantized generalization
  /// whose support is within a factor K.
  double partial_completeness = 1.0;

  /// Descriptor of an item id, or nullptr when out of range.
  const QuantItem* Item(core::ItemId id) const {
    return id < items.size() ? &items[id] : nullptr;
  }
};

/// Discretizes every attribute of `dataset` into interval/category items.
/// Deterministic in (dataset, params); labels come from the schema.
core::Result<QuantizedDataset> QuantizeDataset(const core::Dataset& dataset,
                                               const QuantParams& params);

/// Quantitative rules plus the metadata needed to interpret and
/// serialize them (io::WriteQuantRuleSet round-trips this struct).
struct QuantRuleSet {
  /// Item id -> descriptor for every id referenced by `rules`.
  std::vector<QuantItem> items;
  /// Rules over quantized item ids, sorted as GenerateRules sorts.
  std::vector<AssociationRule> rules;
  double partial_completeness = 1.0;
  /// Frequent itemsets mined on the quantized database.
  size_t itemsets_mined = 0;
  /// Itemsets surviving the same-attribute prune (rule-generation input).
  size_t itemsets_attribute_distinct = 0;
};

/// End-to-end quantitative mining: quantize, mine with `miner`, prune
/// itemsets containing two intervals of one attribute, generate rules,
/// apply the interestingness post-filter.
core::Result<QuantRuleSet> MineQuantitativeRules(
    const core::Dataset& dataset, const QuantParams& params,
    QuantMiner miner = QuantMiner::kFpGrowth);

/// Keeps itemsets whose items all describe distinct attributes. The
/// result stays downward-closed (subsets of attribute-distinct sets are
/// attribute-distinct), so rule generation's support lookups stay total.
std::vector<FrequentItemset> FilterAttributeDistinct(
    const std::vector<FrequentItemset>& itemsets,
    const std::vector<QuantItem>& items);

/// Human-readable quantitative rule, e.g.
/// "age in [23, 29] and married = yes => cars in [2, 3] (supp=…, …)".
std::string FormatQuantRule(const AssociationRule& rule,
                            const std::vector<QuantItem>& items);

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_QUANTITATIVE_H_
