// Apriori candidate generation: join L_{k-1} with itself, then prune by the
// downward-closure property (every (k-1)-subset must be frequent).
#ifndef DMT_ASSOC_CANDIDATE_GEN_H_
#define DMT_ASSOC_CANDIDATE_GEN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "assoc/itemset.h"

namespace dmt::assoc {

/// Candidates of size k generated from the frequent (k-1)-itemsets, plus
/// (optionally) the indices of the two joined parents in `prev_frequent`
/// (used by AprioriTid's set-oriented counting).
struct CandidateGenResult {
  std::vector<Itemset> candidates;
  /// parents[i] = (a, b): candidates[i] = prev_frequent[a] ∪
  /// prev_frequent[b]; the parents share all but their last item. Empty
  /// unless requested.
  std::vector<std::pair<uint32_t, uint32_t>> parents;
};

/// `prev_frequent` must be lexicographically sorted itemsets of equal size
/// k-1 (k >= 2). Candidates come out lexicographically sorted.
CandidateGenResult GenerateCandidates(
    const std::vector<Itemset>& prev_frequent, bool record_parents = false);

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_CANDIDATE_GEN_H_
