#include "assoc/itemset.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace dmt::assoc {

size_t MiningResult::CountOfSize(size_t k) const {
  size_t count = 0;
  for (const auto& itemset : itemsets) {
    if (itemset.items.size() == k) ++count;
  }
  return count;
}

core::Status MiningParams::Validate() const {
  if (!(min_support > 0.0) || min_support > 1.0) {
    return core::Status::InvalidArgument(
        "min_support must be in (0, 1]");
  }
  return core::Status::OK();
}

uint32_t AbsoluteMinSupport(const core::TransactionDatabase& db,
                            double min_support) {
  double exact = min_support * static_cast<double>(db.size());
  auto count = static_cast<uint64_t>(std::ceil(exact - 1e-9));
  if (count < 1) count = 1;
  return static_cast<uint32_t>(count);
}

void MinePartitioned(
    const core::ParallelContext& ctx, size_t n, MiningResult* result,
    const std::function<void(size_t, size_t, MiningResult*)>& mine_range) {
  if (!ctx.parallel() || n == 0) {
    mine_range(0, n, result);
    return;
  }
  std::vector<MiningResult> partials(ctx.NumChunks(n));
  ctx.ForEachChunk(n, [&](size_t chunk, size_t begin, size_t end) {
    mine_range(begin, end, &partials[chunk]);
  });
  for (const MiningResult& partial : partials) {
    result->itemsets.insert(result->itemsets.end(),
                            partial.itemsets.begin(),
                            partial.itemsets.end());
    for (size_t d = 0; d < partial.passes.size(); ++d) {
      if (result->passes.size() <= d) {
        result->passes.push_back({partial.passes[d].pass, 0, 0});
      }
      result->passes[d].candidates += partial.passes[d].candidates;
      result->passes[d].frequent += partial.passes[d].frequent;
    }
    result->conditional_trees_built += partial.conditional_trees_built;
    result->fp_nodes_allocated += partial.fp_nodes_allocated;
    result->tidset_intersections += partial.tidset_intersections;
    result->partitions_mined += partial.partitions_mined;
    result->bytes_mapped += partial.bytes_mapped;
  }
}

void SortCanonical(std::vector<FrequentItemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
}

bool IsSubsetOf(std::span<const core::ItemId> subset,
                std::span<const core::ItemId> superset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

std::string FormatItemset(const FrequentItemset& itemset,
                          const core::ItemDictionary* dictionary) {
  std::string out = "{";
  for (size_t i = 0; i < itemset.items.size(); ++i) {
    if (i > 0) out += ", ";
    if (dictionary != nullptr) {
      out += dictionary->Name(itemset.items[i]);
    } else {
      out += std::to_string(itemset.items[i]);
    }
  }
  out += "} (support=" + std::to_string(itemset.support) + ")";
  return out;
}

}  // namespace dmt::assoc
