#include "assoc/hash_tree.h"

#include "core/check.h"

namespace dmt::assoc {

HashTree::HashTree(const std::vector<Itemset>& candidates, size_t k,
                   size_t fanout, size_t max_leaf_size)
    : candidates_(candidates),
      k_(k),
      fanout_(fanout),
      max_leaf_size_(max_leaf_size),
      root_(std::make_unique<Node>()) {
  DMT_CHECK_GE(k, 1u);
  DMT_CHECK_GE(fanout, 2u);
  DMT_CHECK_GE(max_leaf_size, 1u);
  for (uint32_t id = 0; id < candidates_.size(); ++id) {
    DMT_CHECK_EQ(candidates_[id].size(), k_);
    Insert(root_.get(), 0, id);
  }
}

void HashTree::Insert(Node* node, size_t depth, uint32_t candidate_id) {
  while (!node->is_leaf) {
    size_t bucket = Bucket(candidates_[candidate_id][depth]);
    node = node->children[bucket].get();
    ++depth;
  }
  node->candidate_ids.push_back(candidate_id);
  // Split overfull leaves unless we've already consumed all k items on the
  // path (identical hash paths can't be separated further).
  if (node->candidate_ids.size() > max_leaf_size_ && depth < k_) {
    SplitLeaf(node, depth);
  }
}

void HashTree::SplitLeaf(Node* node, size_t depth) {
  std::vector<uint32_t> ids = std::move(node->candidate_ids);
  node->candidate_ids.clear();
  node->is_leaf = false;
  node->children.resize(fanout_);
  for (auto& child : node->children) {
    child = std::make_unique<Node>();
    ++num_nodes_;
  }
  for (uint32_t id : ids) {
    Insert(node->children[Bucket(candidates_[id][depth])].get(), depth + 1,
           id);
  }
}

void HashTree::CountTransaction(std::span<const core::ItemId> transaction,
                                CountingState& state,
                                std::span<uint32_t> counts) const {
  DMT_DCHECK(counts.size() == candidates_.size());
  DMT_DCHECK(state.stamps_.size() == candidates_.size());
  if (transaction.size() < k_) return;
  ++state.serial_;
  if (state.serial_ == 0) {
    // Serial wrapped; reset stamps so no stale stamp matches.
    std::fill(state.stamps_.begin(), state.stamps_.end(), 0);
    state.serial_ = 1;
  }
  Descend(root_.get(), 0, transaction, 0, state, counts);
}

void HashTree::CountDatabase(const core::TransactionDatabase& db,
                             std::span<uint32_t> counts) const {
  CountingState state(candidates_.size());
  for (size_t t = 0; t < db.size(); ++t) {
    CountTransaction(db.transaction(t), state, counts);
  }
}

void HashTree::CountDatabase(const core::TransactionDatabase& db,
                             std::span<uint32_t> counts,
                             const core::ParallelContext& ctx) const {
  if (!ctx.parallel()) {
    CountDatabase(db, counts);
    return;
  }
  core::CountPartitioned(
      ctx, db.size(), counts,
      [&](size_t begin, size_t end, std::span<uint32_t> local) {
        CountingState state(candidates_.size());
        for (size_t t = begin; t < end; ++t) {
          CountTransaction(db.transaction(t), state, local);
        }
      });
}

void HashTree::Descend(const Node* node, size_t depth,
                       std::span<const core::ItemId> transaction,
                       size_t start, CountingState& state,
                       std::span<uint32_t> counts) const {
  if (node->is_leaf) {
    // Verify containment of each stored candidate. The path pins down only
    // hash buckets, not exact items, so a subset check is still required;
    // the stamp guarantees each candidate is examined once per transaction.
    for (uint32_t id : node->candidate_ids) {
      if (state.stamps_[id] == state.serial_) continue;
      state.stamps_[id] = state.serial_;
      if (IsSubsetOf(candidates_[id], transaction)) ++counts[id];
    }
    return;
  }
  // Try every remaining transaction item as the depth-th candidate item,
  // leaving at least k - depth - 1 items after it.
  size_t needed_after = k_ - depth - 1;
  for (size_t i = start; i + needed_after < transaction.size(); ++i) {
    const Node* child = node->children[Bucket(transaction[i])].get();
    Descend(child, depth + 1, transaction, i + 1, state, counts);
  }
}

}  // namespace dmt::assoc
