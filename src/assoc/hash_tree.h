// Hash tree for candidate itemset counting — the central data structure of
// the Apriori algorithm (VLDB'94 §2.1.2). Interior nodes hash on the item at
// the node's depth; leaves hold candidate ids. Counting a transaction
// descends only the branches reachable from its items, so each transaction
// touches a small fraction of the candidates.
#ifndef DMT_ASSOC_HASH_TREE_H_
#define DMT_ASSOC_HASH_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "assoc/itemset.h"
#include "core/parallel.h"
#include "core/transaction.h"

namespace dmt::assoc {

/// Hash tree over candidate k-itemsets (all candidates share one size k).
class HashTree {
 public:
  /// `candidates` must outlive the tree; all must have size `k` >= 1.
  /// `fanout` is the hash-table width of interior nodes; `max_leaf_size` is
  /// the number of candidates a leaf holds before splitting (leaves at depth
  /// k never split).
  HashTree(const std::vector<Itemset>& candidates, size_t k,
           size_t fanout = 128, size_t max_leaf_size = 16);

  /// Reusable per-call scratch state; lets one buffer serve a whole
  /// database scan without reallocation.
  class CountingState {
   public:
    explicit CountingState(size_t num_candidates)
        : stamps_(num_candidates, 0) {}

   private:
    friend class HashTree;
    std::vector<uint32_t> stamps_;
    uint32_t serial_ = 0;
  };

  /// Adds the candidates contained in `transaction` (sorted) to `counts`,
  /// exactly one increment per contained candidate (hash-bucket collisions
  /// can route the walk to a leaf several times; `state` deduplicates).
  /// counts.size() must equal the number of candidates.
  void CountTransaction(std::span<const core::ItemId> transaction,
                        CountingState& state,
                        std::span<uint32_t> counts) const;

  /// Counts every transaction of `db` into `counts`.
  void CountDatabase(const core::TransactionDatabase& db,
                     std::span<uint32_t> counts) const;

  /// Parallel variant: partitions the database across `ctx`, counting each
  /// chunk into a private buffer with its own CountingState, then merges
  /// buffers in chunk order. Bit-identical to the serial overload (counts
  /// are integers, so the merge order cannot change the result); a serial
  /// context delegates to it directly.
  void CountDatabase(const core::TransactionDatabase& db,
                     std::span<uint32_t> counts,
                     const core::ParallelContext& ctx) const;

  /// Number of nodes, for introspection/tests.
  size_t num_nodes() const { return num_nodes_; }

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<uint32_t> candidate_ids;           // leaf payload
    std::vector<std::unique_ptr<Node>> children;   // interior: size fanout
  };

  void Insert(Node* node, size_t depth, uint32_t candidate_id);
  void SplitLeaf(Node* node, size_t depth);
  void Descend(const Node* node, size_t depth,
               std::span<const core::ItemId> transaction, size_t start,
               CountingState& state, std::span<uint32_t> counts) const;

  size_t Bucket(core::ItemId item) const { return item % fanout_; }

  const std::vector<Itemset>& candidates_;
  size_t k_;
  size_t fanout_;
  size_t max_leaf_size_;
  size_t num_nodes_ = 1;
  std::unique_ptr<Node> root_;
};

}  // namespace dmt::assoc

#endif  // DMT_ASSOC_HASH_TREE_H_
