#include "assoc/sampling.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "assoc/candidate_gen.h"
#include "assoc/fp_growth.h"
#include "assoc/hash_tree.h"
#include "core/check.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::assoc {

using core::Result;
using core::Rng;
using core::Status;
using core::TransactionDatabase;

Status SamplingOptions::Validate() const {
  if (!(sample_fraction > 0.0) || sample_fraction >= 1.0) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1)");
  }
  if (!(threshold_scaling > 0.0) || threshold_scaling > 1.0) {
    return Status::InvalidArgument("threshold_scaling must be in (0, 1]");
  }
  return Status::OK();
}

std::vector<Itemset> NegativeBorder(
    const std::vector<FrequentItemset>& frequent, size_t item_universe) {
  std::unordered_set<Itemset, ItemsetHash> in_collection;
  std::map<size_t, std::vector<Itemset>> by_size;
  for (const auto& itemset : frequent) {
    in_collection.insert(itemset.items);
    by_size[itemset.items.size()].push_back(itemset.items);
  }
  std::vector<Itemset> border;
  // Singleton layer: every item absent from the collection.
  for (core::ItemId item = 0; item < item_universe; ++item) {
    if (!in_collection.contains(Itemset{item})) border.push_back({item});
  }
  // Layer k: apriori joins of the frequent (k-1)-layer that are not
  // themselves in the collection. The join's subset prune already demands
  // every (k-1)-subset be frequent, which is exactly the border condition.
  for (auto& [size, layer] : by_size) {
    std::sort(layer.begin(), layer.end());
    CandidateGenResult gen = GenerateCandidates(layer);
    for (auto& candidate : gen.candidates) {
      if (!in_collection.contains(candidate)) {
        border.push_back(std::move(candidate));
      }
    }
  }
  return border;
}

std::vector<uint32_t> CountExactSupports(const TransactionDatabase& db,
                                         const std::vector<Itemset>& itemsets,
                                         const core::ParallelContext& ctx) {
  std::vector<uint32_t> supports(itemsets.size(), 0);
  std::map<size_t, std::vector<uint32_t>> ids_by_size;
  for (uint32_t i = 0; i < itemsets.size(); ++i) {
    ids_by_size[itemsets[i].size()].push_back(i);
  }
  for (const auto& [size, ids] : ids_by_size) {
    if (size == 1) {
      auto item_supports = db.ItemSupports();
      for (uint32_t id : ids) {
        core::ItemId item = itemsets[id][0];
        supports[id] =
            item < item_supports.size() ? item_supports[item] : 0;
      }
      continue;
    }
    std::vector<Itemset> layer;
    layer.reserve(ids.size());
    for (uint32_t id : ids) layer.push_back(itemsets[id]);
    HashTree tree(layer, size);
    std::vector<uint32_t> counts(layer.size(), 0);
    tree.CountDatabase(db, counts, ctx);
    for (size_t slot = 0; slot < ids.size(); ++slot) {
      supports[ids[slot]] = counts[slot];
    }
  }
  return supports;
}

Result<MiningResult> MineWithSampling(const TransactionDatabase& db,
                                      const MiningParams& params,
                                      const SamplingOptions& options,
                                      SamplingStats* stats) {
  DMT_RETURN_NOT_OK(params.Validate());
  DMT_RETURN_NOT_OK(options.Validate());
  const core::ParallelContext ctx(params.num_threads);
  SamplingStats local_stats;
  SamplingStats* out_stats = stats != nullptr ? stats : &local_stats;
  *out_stats = SamplingStats{};

  obs::Counter candidates_counter("assoc/sampling/candidates_checked");
  obs::Counter misses_counter("assoc/sampling/border_misses");
  obs::Counter fallbacks_counter("assoc/sampling/fallbacks");
  obs::Span mine_span("assoc/sampling/mine");
  mine_span.AttachCounter(candidates_counter);
  mine_span.AttachCounter(misses_counter);

  // Draw the sample.
  Rng rng(options.seed);
  TransactionDatabase sample;
  {
    obs::Span sample_span("assoc/sampling/draw_sample");
    for (size_t t = 0; t < db.size(); ++t) {
      if (rng.Bernoulli(options.sample_fraction)) {
        sample.Add(db.transaction(t));
      }
    }
  }
  out_stats->sample_size = sample.size();
  if (sample.empty()) {
    // Degenerate sample: mine the full database directly.
    out_stats->fell_back = true;
    fallbacks_counter.Increment();
    return MineFpGrowth(db, params);
  }

  // Mine the sample at the lowered threshold.
  MiningParams sample_params = params;
  sample_params.min_support =
      std::max(1e-9, params.min_support * options.threshold_scaling);
  DMT_ASSIGN_OR_RETURN(MiningResult sample_result,
                       MineFpGrowth(sample, sample_params));

  // Verify sample-frequents plus the negative border on the full database.
  std::vector<Itemset> candidates;
  candidates.reserve(sample_result.itemsets.size());
  for (const auto& itemset : sample_result.itemsets) {
    candidates.push_back(itemset.items);
  }
  size_t num_sample_frequent = candidates.size();
  std::vector<Itemset> border =
      NegativeBorder(sample_result.itemsets, db.item_universe());
  for (auto& border_set : border) {
    // Border sets beyond the size cap cannot contribute to the capped
    // result, and neither can any superset — a frequent one is not a
    // miss, so filter *before* the miss accounting below or it would
    // force a pointless full-database remine.
    if (params.max_itemset_size != 0 &&
        border_set.size() > params.max_itemset_size) {
      continue;
    }
    candidates.push_back(std::move(border_set));
  }
  out_stats->candidates_checked = candidates.size();
  candidates_counter.Add(candidates.size());

  std::vector<uint32_t> supports = [&] {
    obs::Span verify_span("assoc/sampling/verify");
    return CountExactSupports(db, candidates, ctx);
  }();
  const uint32_t min_count = AbsoluteMinSupport(db, params.min_support);

  MiningResult result;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (supports[i] < min_count) continue;
    if (i >= num_sample_frequent) {
      // A frequent negative-border set: some superset may be frequent
      // too, so the one-scan result is not provably complete.
      ++out_stats->border_misses;
      misses_counter.Increment();
      continue;
    }
    result.itemsets.push_back({candidates[i], supports[i]});
  }
  if (out_stats->border_misses > 0) {
    // Some frequent itemset may lie beyond the verified candidates; redo
    // exactly (Toivonen's second pass, implemented as a full remine).
    out_stats->fell_back = true;
    fallbacks_counter.Increment();
    return MineFpGrowth(db, params);
  }
  SortCanonical(&result.itemsets);
  size_t max_size = 0;
  for (const auto& itemset : result.itemsets) {
    max_size = std::max(max_size, itemset.items.size());
  }
  for (size_t k = 1; k <= max_size; ++k) {
    result.passes.push_back({k, result.CountOfSize(k),
                             result.CountOfSize(k)});
  }
  return result;
}

}  // namespace dmt::assoc
