#include "assoc/quantitative.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "assoc/apriori.h"
#include "assoc/eclat.h"
#include "assoc/fp_growth.h"
#include "assoc/postprocess.h"
#include "core/check.h"
#include "core/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmt::assoc {

using core::Result;
using core::Status;

Status QuantParams::Validate() const {
  if (std::isnan(min_support) || std::isnan(max_merge_support)) {
    return Status::InvalidArgument(
        "quantitative thresholds must not be NaN (NaN passes every "
        "comparison and silently disables the filter)");
  }
  if (!(min_support > 0.0) || min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  if (num_bins == 0) {
    return Status::InvalidArgument("num_bins must be >= 1");
  }
  if (!(max_merge_support > 0.0) || max_merge_support > 1.0) {
    return Status::InvalidArgument("max_merge_support must be in (0, 1]");
  }
  RuleParams rule_params;
  rule_params.min_confidence = min_confidence;
  rule_params.min_lift = min_lift;
  DMT_RETURN_NOT_OK(rule_params.Validate());
  InterestParams interest;
  interest.min_lift = min_lift;
  interest.min_conviction = min_conviction;
  interest.min_leverage = min_leverage;
  return interest.Validate();
}

namespace {

std::string NumericLabel(const std::string& name, double lo, double hi) {
  return core::StrFormat("%s in [%.6g, %.6g]", name.c_str(), lo, hi);
}

/// Discretizes one numeric column: equi-depth cut points (deduplicated so
/// equal values always share a bin), dense renumbering of the non-empty
/// bins, then base items plus merged adjacent runs under the support cap.
/// Appends the new items and fills `covering[bin]` with every item id
/// whose run contains `bin`.
void QuantizeNumericColumn(std::span<const double> column,
                           const std::string& name, uint32_t attribute,
                           const QuantParams& params,
                           std::vector<QuantItem>* items,
                           std::vector<std::vector<core::ItemId>>* covering,
                           std::vector<uint32_t>* row_bins,
                           uint32_t* num_bins_out) {
  const size_t n = column.size();
  std::vector<double> sorted(column.begin(), column.end());
  std::sort(sorted.begin(), sorted.end());
  // Cut j sits at the equi-depth position j*n/B; duplicates collapse so a
  // value can never straddle two bins (ties break by value, not rank).
  std::vector<double> cuts;
  for (size_t j = 1; j < params.num_bins; ++j) {
    double cut = sorted[(j * n) / params.num_bins];
    if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
  }
  // Raw bin of v: values < cut[0] fall in bin 0, values in [cut[0],
  // cut[1]) in bin 1, etc. — a cut value opens its bin. Raw bins can come
  // out empty (duplicate-heavy columns); dense renumbering drops them.
  auto raw_bin = [&](double v) {
    return static_cast<size_t>(
        std::upper_bound(cuts.begin(), cuts.end(), v) - cuts.begin());
  };
  const size_t num_raw = cuts.size() + 1;
  std::vector<uint32_t> counts(num_raw, 0);
  std::vector<double> lo(num_raw, 0.0), hi(num_raw, 0.0);
  row_bins->resize(n);
  for (size_t r = 0; r < n; ++r) {
    size_t b = raw_bin(column[r]);
    if (counts[b] == 0) {
      lo[b] = hi[b] = column[r];
    } else {
      lo[b] = std::min(lo[b], column[r]);
      hi[b] = std::max(hi[b], column[r]);
    }
    ++counts[b];
    (*row_bins)[r] = static_cast<uint32_t>(b);
  }
  std::vector<uint32_t> dense(num_raw, 0);
  uint32_t num_dense = 0;
  for (size_t b = 0; b < num_raw; ++b) {
    if (counts[b] > 0) dense[b] = num_dense++;
  }
  for (size_t r = 0; r < n; ++r) (*row_bins)[r] = dense[(*row_bins)[r]];
  std::vector<uint32_t> dense_counts(num_dense, 0);
  std::vector<double> dense_lo(num_dense, 0.0), dense_hi(num_dense, 0.0);
  for (size_t b = 0; b < num_raw; ++b) {
    if (counts[b] == 0) continue;
    dense_counts[dense[b]] = counts[b];
    dense_lo[dense[b]] = lo[b];
    dense_hi[dense[b]] = hi[b];
  }
  *num_bins_out = num_dense;

  covering->assign(num_dense, {});
  // Base intervals first (run length 1), then merged runs ordered by
  // (first, last) — a fixed order so item ids are deterministic.
  for (uint32_t b = 0; b < num_dense; ++b) {
    auto id = static_cast<core::ItemId>(items->size());
    items->push_back({attribute, false, 0, dense_lo[b], dense_hi[b], b, b,
                      NumericLabel(name, dense_lo[b], dense_hi[b])});
    (*covering)[b].push_back(id);
  }
  // Runs of two or more adjacent intervals are admitted while their
  // combined count stays within the cap; counts only grow with run
  // length, so the first overflow ends the inner scan.
  const auto cap =
      static_cast<uint64_t>(params.max_merge_support * static_cast<double>(n));
  for (uint32_t first = 0; first + 1 < num_dense; ++first) {
    uint64_t total = dense_counts[first];
    for (uint32_t last = first + 1; last < num_dense; ++last) {
      total += dense_counts[last];
      if (total > cap) break;
      auto id = static_cast<core::ItemId>(items->size());
      items->push_back({attribute, false, 0, dense_lo[first],
                        dense_hi[last], first, last,
                        NumericLabel(name, dense_lo[first], dense_hi[last])});
      for (uint32_t b = first; b <= last; ++b) (*covering)[b].push_back(id);
    }
  }
}

}  // namespace

Result<QuantizedDataset> QuantizeDataset(const core::Dataset& dataset,
                                         const QuantParams& params) {
  DMT_RETURN_NOT_OK(params.Validate());
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("dataset has no rows");
  }
  if (dataset.num_attributes() == 0) {
    return Status::InvalidArgument("dataset has no attributes");
  }
  obs::Span span("assoc/quant/quantize");
  const size_t n = dataset.num_rows();

  QuantizedDataset out;
  std::vector<std::vector<core::ItemId>> row_items(n);
  size_t num_numeric = 0;
  uint32_t min_bins = 0;
  for (size_t a = 0; a < dataset.num_attributes(); ++a) {
    const core::AttributeInfo& info = dataset.attribute(a);
    if (info.type == core::AttributeType::kCategorical) {
      auto base = static_cast<core::ItemId>(out.items.size());
      for (uint32_t c = 0; c < info.num_categories(); ++c) {
        out.items.push_back({static_cast<uint32_t>(a), true, c, 0.0, 0.0, 0,
                             0,
                             info.name + " = " + info.categories[c]});
      }
      std::span<const uint32_t> codes = dataset.CategoricalColumn(a);
      for (size_t r = 0; r < n; ++r) {
        row_items[r].push_back(base + codes[r]);
      }
      out.bins_per_attribute.push_back(0);
      continue;
    }
    std::vector<std::vector<core::ItemId>> covering;
    std::vector<uint32_t> row_bins;
    uint32_t bins = 0;
    QuantizeNumericColumn(dataset.NumericColumn(a), info.name,
                          static_cast<uint32_t>(a), params, &out.items,
                          &covering, &row_bins, &bins);
    for (size_t r = 0; r < n; ++r) {
      const std::vector<core::ItemId>& ids = covering[row_bins[r]];
      row_items[r].insert(row_items[r].end(), ids.begin(), ids.end());
    }
    out.bins_per_attribute.push_back(bins);
    ++num_numeric;
    min_bins = num_numeric == 1 ? bins : std::min(min_bins, bins);
  }
  for (size_t r = 0; r < n; ++r) {
    out.transactions.Add(row_items[r]);
  }
  // Srikant & Agrawal §4: equi-depth partitioning into N intervals per
  // attribute guarantees partial completeness K = 1 + 2m/(N * minsup)
  // over the m quantitative attributes.
  out.partial_completeness =
      num_numeric == 0
          ? 1.0
          : 1.0 + (2.0 * static_cast<double>(num_numeric)) /
                      (static_cast<double>(min_bins) * params.min_support);
  obs::Counter items_counter("assoc/quant/interval_items");
  items_counter.Add(out.items.size());
  span.AddArg("items", out.items.size());
  return out;
}

std::vector<FrequentItemset> FilterAttributeDistinct(
    const std::vector<FrequentItemset>& itemsets,
    const std::vector<QuantItem>& items) {
  std::vector<FrequentItemset> kept;
  kept.reserve(itemsets.size());
  std::vector<uint32_t> attributes;
  for (const FrequentItemset& itemset : itemsets) {
    attributes.clear();
    for (core::ItemId id : itemset.items) {
      DMT_CHECK(id < items.size());
      attributes.push_back(items[id].attribute);
    }
    std::sort(attributes.begin(), attributes.end());
    if (std::adjacent_find(attributes.begin(), attributes.end()) ==
        attributes.end()) {
      kept.push_back(itemset);
    }
  }
  return kept;
}

Result<QuantRuleSet> MineQuantitativeRules(const core::Dataset& dataset,
                                           const QuantParams& params,
                                           QuantMiner miner) {
  DMT_ASSIGN_OR_RETURN(QuantizedDataset quantized,
                       QuantizeDataset(dataset, params));
  obs::Span span("assoc/quant/mine");
  MiningParams mining_params;
  mining_params.min_support = params.min_support;
  mining_params.max_itemset_size = params.max_itemset_size;
  mining_params.num_threads = params.num_threads;
  Result<MiningResult> mined = [&]() -> Result<MiningResult> {
    switch (miner) {
      case QuantMiner::kApriori:
        return MineApriori(quantized.transactions, mining_params);
      case QuantMiner::kAprioriTid:
        return MineAprioriTid(quantized.transactions, mining_params);
      case QuantMiner::kFpGrowth:
        return MineFpGrowth(quantized.transactions, mining_params);
      case QuantMiner::kEclat:
        return MineEclat(quantized.transactions, mining_params);
    }
    return Status::InvalidArgument("unknown QuantMiner");
  }();
  DMT_RETURN_NOT_OK(mined.status());

  // A base interval and a range containing it co-occur by construction,
  // so mixed same-attribute itemsets are frequent but vacuous ("age in
  // [20,29] => age in [20,39]"); prune them before rule generation.
  std::vector<FrequentItemset> distinct =
      FilterAttributeDistinct(mined->itemsets, quantized.items);

  MiningResult rule_input;
  rule_input.itemsets = distinct;
  RuleParams rule_params;
  rule_params.min_confidence = params.min_confidence;
  rule_params.min_lift = params.min_lift;
  DMT_ASSIGN_OR_RETURN(
      std::vector<AssociationRule> rules,
      GenerateRules(rule_input, dataset.num_rows(), rule_params));
  InterestParams interest;
  interest.min_conviction = params.min_conviction;
  interest.min_leverage = params.min_leverage;
  DMT_ASSIGN_OR_RETURN(rules,
                       FilterInteresting(std::move(rules), interest));

  QuantRuleSet out;
  out.items = std::move(quantized.items);
  out.rules = std::move(rules);
  out.partial_completeness = quantized.partial_completeness;
  out.itemsets_mined = mined->itemsets.size();
  out.itemsets_attribute_distinct = distinct.size();
  obs::Counter rules_counter("assoc/quant/rules");
  rules_counter.Add(out.rules.size());
  span.AddArg("rules", out.rules.size());
  return out;
}

std::string FormatQuantRule(const AssociationRule& rule,
                            const std::vector<QuantItem>& items) {
  auto format_side = [&](const Itemset& side) {
    std::string text;
    for (size_t i = 0; i < side.size(); ++i) {
      if (i > 0) text += " and ";
      DMT_CHECK(side[i] < items.size());
      text += items[side[i]].label;
    }
    return text;
  };
  std::string conviction = rule.conviction >= 1e12
                               ? "inf"
                               : core::StrFormat("%.2f", rule.conviction);
  return core::StrFormat(
      "%s => %s (supp=%.4f, conf=%.3f, lift=%.2f, conv=%s, lev=%.4f)",
      format_side(rule.antecedent).c_str(),
      format_side(rule.consequent).c_str(), rule.support, rule.confidence,
      rule.lift, conviction.c_str(), rule.leverage);
}

}  // namespace dmt::assoc
