# Empty compiler generated dependencies file for bench_classify_functions.
# This may be replaced when dependencies are built.
