file(REMOVE_RECURSE
  "CMakeFiles/bench_classify_functions.dir/bench_classify_functions.cc.o"
  "CMakeFiles/bench_classify_functions.dir/bench_classify_functions.cc.o.d"
  "bench_classify_functions"
  "bench_classify_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classify_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
