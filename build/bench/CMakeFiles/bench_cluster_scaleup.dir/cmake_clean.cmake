file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_scaleup.dir/bench_cluster_scaleup.cc.o"
  "CMakeFiles/bench_cluster_scaleup.dir/bench_cluster_scaleup.cc.o.d"
  "bench_cluster_scaleup"
  "bench_cluster_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
