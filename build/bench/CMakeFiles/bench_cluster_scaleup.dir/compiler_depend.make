# Empty compiler generated dependencies file for bench_cluster_scaleup.
# This may be replaced when dependencies are built.
