# Empty dependencies file for bench_tree_scaleup.
# This may be replaced when dependencies are built.
