file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_scaleup.dir/bench_tree_scaleup.cc.o"
  "CMakeFiles/bench_tree_scaleup.dir/bench_tree_scaleup.cc.o.d"
  "bench_tree_scaleup"
  "bench_tree_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
