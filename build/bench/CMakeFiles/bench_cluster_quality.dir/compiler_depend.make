# Empty compiler generated dependencies file for bench_cluster_quality.
# This may be replaced when dependencies are built.
