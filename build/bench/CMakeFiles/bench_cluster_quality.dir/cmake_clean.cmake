file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_quality.dir/bench_cluster_quality.cc.o"
  "CMakeFiles/bench_cluster_quality.dir/bench_cluster_quality.cc.o.d"
  "bench_cluster_quality"
  "bench_cluster_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
