file(REMOVE_RECURSE
  "CMakeFiles/bench_rulegen.dir/bench_rulegen.cc.o"
  "CMakeFiles/bench_rulegen.dir/bench_rulegen.cc.o.d"
  "bench_rulegen"
  "bench_rulegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rulegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
