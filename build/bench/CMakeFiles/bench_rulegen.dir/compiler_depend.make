# Empty compiler generated dependencies file for bench_rulegen.
# This may be replaced when dependencies are built.
