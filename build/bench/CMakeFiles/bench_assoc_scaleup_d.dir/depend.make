# Empty dependencies file for bench_assoc_scaleup_d.
# This may be replaced when dependencies are built.
