file(REMOVE_RECURSE
  "CMakeFiles/bench_assoc_scaleup_d.dir/bench_assoc_scaleup_d.cc.o"
  "CMakeFiles/bench_assoc_scaleup_d.dir/bench_assoc_scaleup_d.cc.o.d"
  "bench_assoc_scaleup_d"
  "bench_assoc_scaleup_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assoc_scaleup_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
