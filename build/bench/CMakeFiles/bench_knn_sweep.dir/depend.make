# Empty dependencies file for bench_knn_sweep.
# This may be replaced when dependencies are built.
