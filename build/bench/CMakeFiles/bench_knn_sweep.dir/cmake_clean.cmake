file(REMOVE_RECURSE
  "CMakeFiles/bench_knn_sweep.dir/bench_knn_sweep.cc.o"
  "CMakeFiles/bench_knn_sweep.dir/bench_knn_sweep.cc.o.d"
  "bench_knn_sweep"
  "bench_knn_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knn_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
