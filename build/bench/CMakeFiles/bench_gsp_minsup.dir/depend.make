# Empty dependencies file for bench_gsp_minsup.
# This may be replaced when dependencies are built.
