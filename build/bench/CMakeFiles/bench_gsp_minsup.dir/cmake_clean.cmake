file(REMOVE_RECURSE
  "CMakeFiles/bench_gsp_minsup.dir/bench_gsp_minsup.cc.o"
  "CMakeFiles/bench_gsp_minsup.dir/bench_gsp_minsup.cc.o.d"
  "bench_gsp_minsup"
  "bench_gsp_minsup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gsp_minsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
