# Empty dependencies file for bench_gsp_scaleup.
# This may be replaced when dependencies are built.
