file(REMOVE_RECURSE
  "CMakeFiles/bench_gsp_scaleup.dir/bench_gsp_scaleup.cc.o"
  "CMakeFiles/bench_gsp_scaleup.dir/bench_gsp_scaleup.cc.o.d"
  "bench_gsp_scaleup"
  "bench_gsp_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gsp_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
