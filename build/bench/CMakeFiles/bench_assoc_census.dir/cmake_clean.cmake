file(REMOVE_RECURSE
  "CMakeFiles/bench_assoc_census.dir/bench_assoc_census.cc.o"
  "CMakeFiles/bench_assoc_census.dir/bench_assoc_census.cc.o.d"
  "bench_assoc_census"
  "bench_assoc_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assoc_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
