# Empty dependencies file for bench_assoc_census.
# This may be replaced when dependencies are built.
