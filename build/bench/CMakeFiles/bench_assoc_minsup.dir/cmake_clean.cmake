file(REMOVE_RECURSE
  "CMakeFiles/bench_assoc_minsup.dir/bench_assoc_minsup.cc.o"
  "CMakeFiles/bench_assoc_minsup.dir/bench_assoc_minsup.cc.o.d"
  "bench_assoc_minsup"
  "bench_assoc_minsup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assoc_minsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
