# Empty dependencies file for bench_tseries.
# This may be replaced when dependencies are built.
