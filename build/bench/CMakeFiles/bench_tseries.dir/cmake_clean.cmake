file(REMOVE_RECURSE
  "CMakeFiles/bench_tseries.dir/bench_tseries.cc.o"
  "CMakeFiles/bench_tseries.dir/bench_tseries.cc.o.d"
  "bench_tseries"
  "bench_tseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
