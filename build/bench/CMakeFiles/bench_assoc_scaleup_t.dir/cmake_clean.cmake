file(REMOVE_RECURSE
  "CMakeFiles/bench_assoc_scaleup_t.dir/bench_assoc_scaleup_t.cc.o"
  "CMakeFiles/bench_assoc_scaleup_t.dir/bench_assoc_scaleup_t.cc.o.d"
  "bench_assoc_scaleup_t"
  "bench_assoc_scaleup_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assoc_scaleup_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
