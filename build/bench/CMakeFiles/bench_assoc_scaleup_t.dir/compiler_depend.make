# Empty compiler generated dependencies file for bench_assoc_scaleup_t.
# This may be replaced when dependencies are built.
