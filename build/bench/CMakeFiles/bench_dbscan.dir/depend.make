# Empty dependencies file for bench_dbscan.
# This may be replaced when dependencies are built.
