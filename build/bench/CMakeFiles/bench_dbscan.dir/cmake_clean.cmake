file(REMOVE_RECURSE
  "CMakeFiles/bench_dbscan.dir/bench_dbscan.cc.o"
  "CMakeFiles/bench_dbscan.dir/bench_dbscan.cc.o.d"
  "bench_dbscan"
  "bench_dbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
