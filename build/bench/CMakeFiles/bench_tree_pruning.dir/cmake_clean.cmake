file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_pruning.dir/bench_tree_pruning.cc.o"
  "CMakeFiles/bench_tree_pruning.dir/bench_tree_pruning.cc.o.d"
  "bench_tree_pruning"
  "bench_tree_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
