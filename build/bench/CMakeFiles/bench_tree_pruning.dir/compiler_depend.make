# Empty compiler generated dependencies file for bench_tree_pruning.
# This may be replaced when dependencies are built.
