# Empty dependencies file for bench_assoc_sampling.
# This may be replaced when dependencies are built.
