file(REMOVE_RECURSE
  "CMakeFiles/bench_assoc_sampling.dir/bench_assoc_sampling.cc.o"
  "CMakeFiles/bench_assoc_sampling.dir/bench_assoc_sampling.cc.o.d"
  "bench_assoc_sampling"
  "bench_assoc_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assoc_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
