
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/agrawal.cc" "src/gen/CMakeFiles/dmt_gen.dir/agrawal.cc.o" "gcc" "src/gen/CMakeFiles/dmt_gen.dir/agrawal.cc.o.d"
  "/root/repo/src/gen/mixture.cc" "src/gen/CMakeFiles/dmt_gen.dir/mixture.cc.o" "gcc" "src/gen/CMakeFiles/dmt_gen.dir/mixture.cc.o.d"
  "/root/repo/src/gen/quest.cc" "src/gen/CMakeFiles/dmt_gen.dir/quest.cc.o" "gcc" "src/gen/CMakeFiles/dmt_gen.dir/quest.cc.o.d"
  "/root/repo/src/gen/seqgen.cc" "src/gen/CMakeFiles/dmt_gen.dir/seqgen.cc.o" "gcc" "src/gen/CMakeFiles/dmt_gen.dir/seqgen.cc.o.d"
  "/root/repo/src/gen/timeseries.cc" "src/gen/CMakeFiles/dmt_gen.dir/timeseries.cc.o" "gcc" "src/gen/CMakeFiles/dmt_gen.dir/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
