# Empty compiler generated dependencies file for dmt_gen.
# This may be replaced when dependencies are built.
