file(REMOVE_RECURSE
  "libdmt_gen.a"
)
