file(REMOVE_RECURSE
  "CMakeFiles/dmt_gen.dir/agrawal.cc.o"
  "CMakeFiles/dmt_gen.dir/agrawal.cc.o.d"
  "CMakeFiles/dmt_gen.dir/mixture.cc.o"
  "CMakeFiles/dmt_gen.dir/mixture.cc.o.d"
  "CMakeFiles/dmt_gen.dir/quest.cc.o"
  "CMakeFiles/dmt_gen.dir/quest.cc.o.d"
  "CMakeFiles/dmt_gen.dir/seqgen.cc.o"
  "CMakeFiles/dmt_gen.dir/seqgen.cc.o.d"
  "CMakeFiles/dmt_gen.dir/timeseries.cc.o"
  "CMakeFiles/dmt_gen.dir/timeseries.cc.o.d"
  "libdmt_gen.a"
  "libdmt_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
