
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/clustering_metrics.cc" "src/eval/CMakeFiles/dmt_eval.dir/clustering_metrics.cc.o" "gcc" "src/eval/CMakeFiles/dmt_eval.dir/clustering_metrics.cc.o.d"
  "/root/repo/src/eval/cross_validation.cc" "src/eval/CMakeFiles/dmt_eval.dir/cross_validation.cc.o" "gcc" "src/eval/CMakeFiles/dmt_eval.dir/cross_validation.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/dmt_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/dmt_eval.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
