file(REMOVE_RECURSE
  "libdmt_eval.a"
)
