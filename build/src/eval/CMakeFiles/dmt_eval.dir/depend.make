# Empty dependencies file for dmt_eval.
# This may be replaced when dependencies are built.
