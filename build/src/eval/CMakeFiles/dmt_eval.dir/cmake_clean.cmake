file(REMOVE_RECURSE
  "CMakeFiles/dmt_eval.dir/clustering_metrics.cc.o"
  "CMakeFiles/dmt_eval.dir/clustering_metrics.cc.o.d"
  "CMakeFiles/dmt_eval.dir/cross_validation.cc.o"
  "CMakeFiles/dmt_eval.dir/cross_validation.cc.o.d"
  "CMakeFiles/dmt_eval.dir/metrics.cc.o"
  "CMakeFiles/dmt_eval.dir/metrics.cc.o.d"
  "libdmt_eval.a"
  "libdmt_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
