file(REMOVE_RECURSE
  "CMakeFiles/dmt_seq.dir/gsp.cc.o"
  "CMakeFiles/dmt_seq.dir/gsp.cc.o.d"
  "libdmt_seq.a"
  "libdmt_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
