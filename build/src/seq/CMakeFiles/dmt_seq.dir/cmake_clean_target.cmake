file(REMOVE_RECURSE
  "libdmt_seq.a"
)
