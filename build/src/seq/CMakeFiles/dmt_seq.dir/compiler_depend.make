# Empty compiler generated dependencies file for dmt_seq.
# This may be replaced when dependencies are built.
