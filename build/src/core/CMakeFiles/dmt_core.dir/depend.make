# Empty dependencies file for dmt_core.
# This may be replaced when dependencies are built.
