
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bitset.cc" "src/core/CMakeFiles/dmt_core.dir/bitset.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/bitset.cc.o.d"
  "/root/repo/src/core/csv.cc" "src/core/CMakeFiles/dmt_core.dir/csv.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/csv.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/core/CMakeFiles/dmt_core.dir/dataset.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/dataset.cc.o.d"
  "/root/repo/src/core/item_dictionary.cc" "src/core/CMakeFiles/dmt_core.dir/item_dictionary.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/item_dictionary.cc.o.d"
  "/root/repo/src/core/kd_tree.cc" "src/core/CMakeFiles/dmt_core.dir/kd_tree.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/kd_tree.cc.o.d"
  "/root/repo/src/core/point_set.cc" "src/core/CMakeFiles/dmt_core.dir/point_set.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/point_set.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/core/CMakeFiles/dmt_core.dir/rng.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/rng.cc.o.d"
  "/root/repo/src/core/sequence.cc" "src/core/CMakeFiles/dmt_core.dir/sequence.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/sequence.cc.o.d"
  "/root/repo/src/core/status.cc" "src/core/CMakeFiles/dmt_core.dir/status.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/status.cc.o.d"
  "/root/repo/src/core/string_util.cc" "src/core/CMakeFiles/dmt_core.dir/string_util.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/string_util.cc.o.d"
  "/root/repo/src/core/thread_pool.cc" "src/core/CMakeFiles/dmt_core.dir/thread_pool.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/thread_pool.cc.o.d"
  "/root/repo/src/core/transaction.cc" "src/core/CMakeFiles/dmt_core.dir/transaction.cc.o" "gcc" "src/core/CMakeFiles/dmt_core.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
