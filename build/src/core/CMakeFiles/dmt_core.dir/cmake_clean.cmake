file(REMOVE_RECURSE
  "CMakeFiles/dmt_core.dir/bitset.cc.o"
  "CMakeFiles/dmt_core.dir/bitset.cc.o.d"
  "CMakeFiles/dmt_core.dir/csv.cc.o"
  "CMakeFiles/dmt_core.dir/csv.cc.o.d"
  "CMakeFiles/dmt_core.dir/dataset.cc.o"
  "CMakeFiles/dmt_core.dir/dataset.cc.o.d"
  "CMakeFiles/dmt_core.dir/item_dictionary.cc.o"
  "CMakeFiles/dmt_core.dir/item_dictionary.cc.o.d"
  "CMakeFiles/dmt_core.dir/kd_tree.cc.o"
  "CMakeFiles/dmt_core.dir/kd_tree.cc.o.d"
  "CMakeFiles/dmt_core.dir/point_set.cc.o"
  "CMakeFiles/dmt_core.dir/point_set.cc.o.d"
  "CMakeFiles/dmt_core.dir/rng.cc.o"
  "CMakeFiles/dmt_core.dir/rng.cc.o.d"
  "CMakeFiles/dmt_core.dir/sequence.cc.o"
  "CMakeFiles/dmt_core.dir/sequence.cc.o.d"
  "CMakeFiles/dmt_core.dir/status.cc.o"
  "CMakeFiles/dmt_core.dir/status.cc.o.d"
  "CMakeFiles/dmt_core.dir/string_util.cc.o"
  "CMakeFiles/dmt_core.dir/string_util.cc.o.d"
  "CMakeFiles/dmt_core.dir/thread_pool.cc.o"
  "CMakeFiles/dmt_core.dir/thread_pool.cc.o.d"
  "CMakeFiles/dmt_core.dir/transaction.cc.o"
  "CMakeFiles/dmt_core.dir/transaction.cc.o.d"
  "libdmt_core.a"
  "libdmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
