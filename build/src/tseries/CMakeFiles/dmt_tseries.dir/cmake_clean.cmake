file(REMOVE_RECURSE
  "CMakeFiles/dmt_tseries.dir/dft.cc.o"
  "CMakeFiles/dmt_tseries.dir/dft.cc.o.d"
  "CMakeFiles/dmt_tseries.dir/similarity.cc.o"
  "CMakeFiles/dmt_tseries.dir/similarity.cc.o.d"
  "libdmt_tseries.a"
  "libdmt_tseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_tseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
