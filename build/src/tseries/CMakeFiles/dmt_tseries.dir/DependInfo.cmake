
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tseries/dft.cc" "src/tseries/CMakeFiles/dmt_tseries.dir/dft.cc.o" "gcc" "src/tseries/CMakeFiles/dmt_tseries.dir/dft.cc.o.d"
  "/root/repo/src/tseries/similarity.cc" "src/tseries/CMakeFiles/dmt_tseries.dir/similarity.cc.o" "gcc" "src/tseries/CMakeFiles/dmt_tseries.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
