file(REMOVE_RECURSE
  "libdmt_tseries.a"
)
