# Empty compiler generated dependencies file for dmt_tseries.
# This may be replaced when dependencies are built.
