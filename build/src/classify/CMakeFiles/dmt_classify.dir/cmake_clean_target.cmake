file(REMOVE_RECURSE
  "libdmt_classify.a"
)
