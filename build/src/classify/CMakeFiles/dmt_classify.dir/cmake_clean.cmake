file(REMOVE_RECURSE
  "CMakeFiles/dmt_classify.dir/knn.cc.o"
  "CMakeFiles/dmt_classify.dir/knn.cc.o.d"
  "CMakeFiles/dmt_classify.dir/naive_bayes.cc.o"
  "CMakeFiles/dmt_classify.dir/naive_bayes.cc.o.d"
  "CMakeFiles/dmt_classify.dir/one_r.cc.o"
  "CMakeFiles/dmt_classify.dir/one_r.cc.o.d"
  "libdmt_classify.a"
  "libdmt_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
