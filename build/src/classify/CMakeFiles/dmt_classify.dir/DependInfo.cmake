
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/knn.cc" "src/classify/CMakeFiles/dmt_classify.dir/knn.cc.o" "gcc" "src/classify/CMakeFiles/dmt_classify.dir/knn.cc.o.d"
  "/root/repo/src/classify/naive_bayes.cc" "src/classify/CMakeFiles/dmt_classify.dir/naive_bayes.cc.o" "gcc" "src/classify/CMakeFiles/dmt_classify.dir/naive_bayes.cc.o.d"
  "/root/repo/src/classify/one_r.cc" "src/classify/CMakeFiles/dmt_classify.dir/one_r.cc.o" "gcc" "src/classify/CMakeFiles/dmt_classify.dir/one_r.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
