# Empty compiler generated dependencies file for dmt_classify.
# This may be replaced when dependencies are built.
