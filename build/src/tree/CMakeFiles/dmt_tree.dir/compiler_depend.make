# Empty compiler generated dependencies file for dmt_tree.
# This may be replaced when dependencies are built.
