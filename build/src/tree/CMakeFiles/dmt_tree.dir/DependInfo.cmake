
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/builder.cc" "src/tree/CMakeFiles/dmt_tree.dir/builder.cc.o" "gcc" "src/tree/CMakeFiles/dmt_tree.dir/builder.cc.o.d"
  "/root/repo/src/tree/criteria.cc" "src/tree/CMakeFiles/dmt_tree.dir/criteria.cc.o" "gcc" "src/tree/CMakeFiles/dmt_tree.dir/criteria.cc.o.d"
  "/root/repo/src/tree/decision_tree.cc" "src/tree/CMakeFiles/dmt_tree.dir/decision_tree.cc.o" "gcc" "src/tree/CMakeFiles/dmt_tree.dir/decision_tree.cc.o.d"
  "/root/repo/src/tree/discretize.cc" "src/tree/CMakeFiles/dmt_tree.dir/discretize.cc.o" "gcc" "src/tree/CMakeFiles/dmt_tree.dir/discretize.cc.o.d"
  "/root/repo/src/tree/pruning.cc" "src/tree/CMakeFiles/dmt_tree.dir/pruning.cc.o" "gcc" "src/tree/CMakeFiles/dmt_tree.dir/pruning.cc.o.d"
  "/root/repo/src/tree/sliq.cc" "src/tree/CMakeFiles/dmt_tree.dir/sliq.cc.o" "gcc" "src/tree/CMakeFiles/dmt_tree.dir/sliq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
