file(REMOVE_RECURSE
  "CMakeFiles/dmt_tree.dir/builder.cc.o"
  "CMakeFiles/dmt_tree.dir/builder.cc.o.d"
  "CMakeFiles/dmt_tree.dir/criteria.cc.o"
  "CMakeFiles/dmt_tree.dir/criteria.cc.o.d"
  "CMakeFiles/dmt_tree.dir/decision_tree.cc.o"
  "CMakeFiles/dmt_tree.dir/decision_tree.cc.o.d"
  "CMakeFiles/dmt_tree.dir/discretize.cc.o"
  "CMakeFiles/dmt_tree.dir/discretize.cc.o.d"
  "CMakeFiles/dmt_tree.dir/pruning.cc.o"
  "CMakeFiles/dmt_tree.dir/pruning.cc.o.d"
  "CMakeFiles/dmt_tree.dir/sliq.cc.o"
  "CMakeFiles/dmt_tree.dir/sliq.cc.o.d"
  "libdmt_tree.a"
  "libdmt_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
