file(REMOVE_RECURSE
  "libdmt_tree.a"
)
