# Empty compiler generated dependencies file for dmt_cluster.
# This may be replaced when dependencies are built.
