
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/agglomerative.cc" "src/cluster/CMakeFiles/dmt_cluster.dir/agglomerative.cc.o" "gcc" "src/cluster/CMakeFiles/dmt_cluster.dir/agglomerative.cc.o.d"
  "/root/repo/src/cluster/birch.cc" "src/cluster/CMakeFiles/dmt_cluster.dir/birch.cc.o" "gcc" "src/cluster/CMakeFiles/dmt_cluster.dir/birch.cc.o.d"
  "/root/repo/src/cluster/clarans.cc" "src/cluster/CMakeFiles/dmt_cluster.dir/clarans.cc.o" "gcc" "src/cluster/CMakeFiles/dmt_cluster.dir/clarans.cc.o.d"
  "/root/repo/src/cluster/dbscan.cc" "src/cluster/CMakeFiles/dmt_cluster.dir/dbscan.cc.o" "gcc" "src/cluster/CMakeFiles/dmt_cluster.dir/dbscan.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/dmt_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/dmt_cluster.dir/kmeans.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
