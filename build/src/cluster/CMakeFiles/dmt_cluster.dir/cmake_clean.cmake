file(REMOVE_RECURSE
  "CMakeFiles/dmt_cluster.dir/agglomerative.cc.o"
  "CMakeFiles/dmt_cluster.dir/agglomerative.cc.o.d"
  "CMakeFiles/dmt_cluster.dir/birch.cc.o"
  "CMakeFiles/dmt_cluster.dir/birch.cc.o.d"
  "CMakeFiles/dmt_cluster.dir/clarans.cc.o"
  "CMakeFiles/dmt_cluster.dir/clarans.cc.o.d"
  "CMakeFiles/dmt_cluster.dir/dbscan.cc.o"
  "CMakeFiles/dmt_cluster.dir/dbscan.cc.o.d"
  "CMakeFiles/dmt_cluster.dir/kmeans.cc.o"
  "CMakeFiles/dmt_cluster.dir/kmeans.cc.o.d"
  "libdmt_cluster.a"
  "libdmt_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
