file(REMOVE_RECURSE
  "libdmt_cluster.a"
)
