file(REMOVE_RECURSE
  "libdmt_assoc.a"
)
