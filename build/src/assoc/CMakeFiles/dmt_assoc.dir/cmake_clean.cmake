file(REMOVE_RECURSE
  "CMakeFiles/dmt_assoc.dir/apriori.cc.o"
  "CMakeFiles/dmt_assoc.dir/apriori.cc.o.d"
  "CMakeFiles/dmt_assoc.dir/candidate_gen.cc.o"
  "CMakeFiles/dmt_assoc.dir/candidate_gen.cc.o.d"
  "CMakeFiles/dmt_assoc.dir/eclat.cc.o"
  "CMakeFiles/dmt_assoc.dir/eclat.cc.o.d"
  "CMakeFiles/dmt_assoc.dir/fp_growth.cc.o"
  "CMakeFiles/dmt_assoc.dir/fp_growth.cc.o.d"
  "CMakeFiles/dmt_assoc.dir/hash_tree.cc.o"
  "CMakeFiles/dmt_assoc.dir/hash_tree.cc.o.d"
  "CMakeFiles/dmt_assoc.dir/itemset.cc.o"
  "CMakeFiles/dmt_assoc.dir/itemset.cc.o.d"
  "CMakeFiles/dmt_assoc.dir/postprocess.cc.o"
  "CMakeFiles/dmt_assoc.dir/postprocess.cc.o.d"
  "CMakeFiles/dmt_assoc.dir/rules.cc.o"
  "CMakeFiles/dmt_assoc.dir/rules.cc.o.d"
  "CMakeFiles/dmt_assoc.dir/sampling.cc.o"
  "CMakeFiles/dmt_assoc.dir/sampling.cc.o.d"
  "libdmt_assoc.a"
  "libdmt_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmt_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
