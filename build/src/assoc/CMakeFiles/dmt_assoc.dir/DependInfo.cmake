
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assoc/apriori.cc" "src/assoc/CMakeFiles/dmt_assoc.dir/apriori.cc.o" "gcc" "src/assoc/CMakeFiles/dmt_assoc.dir/apriori.cc.o.d"
  "/root/repo/src/assoc/candidate_gen.cc" "src/assoc/CMakeFiles/dmt_assoc.dir/candidate_gen.cc.o" "gcc" "src/assoc/CMakeFiles/dmt_assoc.dir/candidate_gen.cc.o.d"
  "/root/repo/src/assoc/eclat.cc" "src/assoc/CMakeFiles/dmt_assoc.dir/eclat.cc.o" "gcc" "src/assoc/CMakeFiles/dmt_assoc.dir/eclat.cc.o.d"
  "/root/repo/src/assoc/fp_growth.cc" "src/assoc/CMakeFiles/dmt_assoc.dir/fp_growth.cc.o" "gcc" "src/assoc/CMakeFiles/dmt_assoc.dir/fp_growth.cc.o.d"
  "/root/repo/src/assoc/hash_tree.cc" "src/assoc/CMakeFiles/dmt_assoc.dir/hash_tree.cc.o" "gcc" "src/assoc/CMakeFiles/dmt_assoc.dir/hash_tree.cc.o.d"
  "/root/repo/src/assoc/itemset.cc" "src/assoc/CMakeFiles/dmt_assoc.dir/itemset.cc.o" "gcc" "src/assoc/CMakeFiles/dmt_assoc.dir/itemset.cc.o.d"
  "/root/repo/src/assoc/postprocess.cc" "src/assoc/CMakeFiles/dmt_assoc.dir/postprocess.cc.o" "gcc" "src/assoc/CMakeFiles/dmt_assoc.dir/postprocess.cc.o.d"
  "/root/repo/src/assoc/rules.cc" "src/assoc/CMakeFiles/dmt_assoc.dir/rules.cc.o" "gcc" "src/assoc/CMakeFiles/dmt_assoc.dir/rules.cc.o.d"
  "/root/repo/src/assoc/sampling.cc" "src/assoc/CMakeFiles/dmt_assoc.dir/sampling.cc.o" "gcc" "src/assoc/CMakeFiles/dmt_assoc.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
