# Empty compiler generated dependencies file for dmt_assoc.
# This may be replaced when dependencies are built.
