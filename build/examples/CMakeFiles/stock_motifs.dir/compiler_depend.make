# Empty compiler generated dependencies file for stock_motifs.
# This may be replaced when dependencies are built.
