file(REMOVE_RECURSE
  "CMakeFiles/stock_motifs.dir/stock_motifs.cpp.o"
  "CMakeFiles/stock_motifs.dir/stock_motifs.cpp.o.d"
  "stock_motifs"
  "stock_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
