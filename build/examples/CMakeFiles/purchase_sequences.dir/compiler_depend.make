# Empty compiler generated dependencies file for purchase_sequences.
# This may be replaced when dependencies are built.
