file(REMOVE_RECURSE
  "CMakeFiles/purchase_sequences.dir/purchase_sequences.cpp.o"
  "CMakeFiles/purchase_sequences.dir/purchase_sequences.cpp.o.d"
  "purchase_sequences"
  "purchase_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purchase_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
