file(REMOVE_RECURSE
  "CMakeFiles/loan_screening.dir/loan_screening.cpp.o"
  "CMakeFiles/loan_screening.dir/loan_screening.cpp.o.d"
  "loan_screening"
  "loan_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loan_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
