# Empty compiler generated dependencies file for loan_screening.
# This may be replaced when dependencies are built.
