# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("gen")
subdirs("assoc")
subdirs("seq")
subdirs("tree")
subdirs("classify")
subdirs("cluster")
subdirs("eval")
subdirs("tseries")
subdirs("integration")
