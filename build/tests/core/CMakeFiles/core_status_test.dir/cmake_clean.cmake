file(REMOVE_RECURSE
  "CMakeFiles/core_status_test.dir/status_test.cc.o"
  "CMakeFiles/core_status_test.dir/status_test.cc.o.d"
  "core_status_test"
  "core_status_test.pdb"
  "core_status_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
