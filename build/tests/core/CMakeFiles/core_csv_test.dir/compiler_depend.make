# Empty compiler generated dependencies file for core_csv_test.
# This may be replaced when dependencies are built.
