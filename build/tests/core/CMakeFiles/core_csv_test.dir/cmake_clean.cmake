file(REMOVE_RECURSE
  "CMakeFiles/core_csv_test.dir/csv_test.cc.o"
  "CMakeFiles/core_csv_test.dir/csv_test.cc.o.d"
  "core_csv_test"
  "core_csv_test.pdb"
  "core_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
