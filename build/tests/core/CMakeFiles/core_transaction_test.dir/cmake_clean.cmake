file(REMOVE_RECURSE
  "CMakeFiles/core_transaction_test.dir/transaction_test.cc.o"
  "CMakeFiles/core_transaction_test.dir/transaction_test.cc.o.d"
  "core_transaction_test"
  "core_transaction_test.pdb"
  "core_transaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_transaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
