# Empty dependencies file for core_transaction_test.
# This may be replaced when dependencies are built.
