file(REMOVE_RECURSE
  "CMakeFiles/assoc_rules_test.dir/rules_test.cc.o"
  "CMakeFiles/assoc_rules_test.dir/rules_test.cc.o.d"
  "assoc_rules_test"
  "assoc_rules_test.pdb"
  "assoc_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
