file(REMOVE_RECURSE
  "CMakeFiles/assoc_hash_tree_param_test.dir/hash_tree_param_test.cc.o"
  "CMakeFiles/assoc_hash_tree_param_test.dir/hash_tree_param_test.cc.o.d"
  "assoc_hash_tree_param_test"
  "assoc_hash_tree_param_test.pdb"
  "assoc_hash_tree_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_hash_tree_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
