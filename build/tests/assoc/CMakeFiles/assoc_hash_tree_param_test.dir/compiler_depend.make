# Empty compiler generated dependencies file for assoc_hash_tree_param_test.
# This may be replaced when dependencies are built.
