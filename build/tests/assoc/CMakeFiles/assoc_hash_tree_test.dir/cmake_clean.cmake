file(REMOVE_RECURSE
  "CMakeFiles/assoc_hash_tree_test.dir/hash_tree_test.cc.o"
  "CMakeFiles/assoc_hash_tree_test.dir/hash_tree_test.cc.o.d"
  "assoc_hash_tree_test"
  "assoc_hash_tree_test.pdb"
  "assoc_hash_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_hash_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
