# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for assoc_hash_tree_test.
