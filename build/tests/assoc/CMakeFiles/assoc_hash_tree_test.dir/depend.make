# Empty dependencies file for assoc_hash_tree_test.
# This may be replaced when dependencies are built.
