file(REMOVE_RECURSE
  "CMakeFiles/assoc_postprocess_test.dir/postprocess_test.cc.o"
  "CMakeFiles/assoc_postprocess_test.dir/postprocess_test.cc.o.d"
  "assoc_postprocess_test"
  "assoc_postprocess_test.pdb"
  "assoc_postprocess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_postprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
