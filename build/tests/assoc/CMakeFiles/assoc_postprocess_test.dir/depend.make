# Empty dependencies file for assoc_postprocess_test.
# This may be replaced when dependencies are built.
