# Empty dependencies file for assoc_miners_test.
# This may be replaced when dependencies are built.
