file(REMOVE_RECURSE
  "CMakeFiles/assoc_miners_test.dir/miners_test.cc.o"
  "CMakeFiles/assoc_miners_test.dir/miners_test.cc.o.d"
  "assoc_miners_test"
  "assoc_miners_test.pdb"
  "assoc_miners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_miners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
