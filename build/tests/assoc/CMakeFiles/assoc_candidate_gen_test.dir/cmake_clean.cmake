file(REMOVE_RECURSE
  "CMakeFiles/assoc_candidate_gen_test.dir/candidate_gen_test.cc.o"
  "CMakeFiles/assoc_candidate_gen_test.dir/candidate_gen_test.cc.o.d"
  "assoc_candidate_gen_test"
  "assoc_candidate_gen_test.pdb"
  "assoc_candidate_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_candidate_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
