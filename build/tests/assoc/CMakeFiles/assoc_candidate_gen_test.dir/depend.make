# Empty dependencies file for assoc_candidate_gen_test.
# This may be replaced when dependencies are built.
