# Empty dependencies file for assoc_sampling_test.
# This may be replaced when dependencies are built.
