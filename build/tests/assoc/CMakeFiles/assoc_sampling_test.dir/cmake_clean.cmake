file(REMOVE_RECURSE
  "CMakeFiles/assoc_sampling_test.dir/sampling_test.cc.o"
  "CMakeFiles/assoc_sampling_test.dir/sampling_test.cc.o.d"
  "assoc_sampling_test"
  "assoc_sampling_test.pdb"
  "assoc_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
