file(REMOVE_RECURSE
  "CMakeFiles/assoc_itemset_test.dir/itemset_test.cc.o"
  "CMakeFiles/assoc_itemset_test.dir/itemset_test.cc.o.d"
  "assoc_itemset_test"
  "assoc_itemset_test.pdb"
  "assoc_itemset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_itemset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
