# CMake generated Testfile for 
# Source directory: /root/repo/tests/assoc
# Build directory: /root/repo/build/tests/assoc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/assoc/assoc_itemset_test[1]_include.cmake")
include("/root/repo/build/tests/assoc/assoc_candidate_gen_test[1]_include.cmake")
include("/root/repo/build/tests/assoc/assoc_hash_tree_test[1]_include.cmake")
include("/root/repo/build/tests/assoc/assoc_miners_test[1]_include.cmake")
include("/root/repo/build/tests/assoc/assoc_rules_test[1]_include.cmake")
include("/root/repo/build/tests/assoc/assoc_postprocess_test[1]_include.cmake")
include("/root/repo/build/tests/assoc/assoc_sampling_test[1]_include.cmake")
include("/root/repo/build/tests/assoc/assoc_hash_tree_param_test[1]_include.cmake")
