# Empty dependencies file for gen_mixture_test.
# This may be replaced when dependencies are built.
