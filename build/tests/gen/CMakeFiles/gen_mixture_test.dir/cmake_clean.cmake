file(REMOVE_RECURSE
  "CMakeFiles/gen_mixture_test.dir/mixture_test.cc.o"
  "CMakeFiles/gen_mixture_test.dir/mixture_test.cc.o.d"
  "gen_mixture_test"
  "gen_mixture_test.pdb"
  "gen_mixture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_mixture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
