# Empty dependencies file for gen_agrawal_test.
# This may be replaced when dependencies are built.
