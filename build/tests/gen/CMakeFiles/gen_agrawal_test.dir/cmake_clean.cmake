file(REMOVE_RECURSE
  "CMakeFiles/gen_agrawal_test.dir/agrawal_test.cc.o"
  "CMakeFiles/gen_agrawal_test.dir/agrawal_test.cc.o.d"
  "gen_agrawal_test"
  "gen_agrawal_test.pdb"
  "gen_agrawal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_agrawal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
