file(REMOVE_RECURSE
  "CMakeFiles/gen_quest_test.dir/quest_test.cc.o"
  "CMakeFiles/gen_quest_test.dir/quest_test.cc.o.d"
  "gen_quest_test"
  "gen_quest_test.pdb"
  "gen_quest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_quest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
