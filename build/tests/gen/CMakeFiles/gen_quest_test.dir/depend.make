# Empty dependencies file for gen_quest_test.
# This may be replaced when dependencies are built.
