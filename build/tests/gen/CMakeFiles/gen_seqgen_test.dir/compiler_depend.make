# Empty compiler generated dependencies file for gen_seqgen_test.
# This may be replaced when dependencies are built.
