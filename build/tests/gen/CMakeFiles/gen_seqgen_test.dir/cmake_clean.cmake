file(REMOVE_RECURSE
  "CMakeFiles/gen_seqgen_test.dir/seqgen_test.cc.o"
  "CMakeFiles/gen_seqgen_test.dir/seqgen_test.cc.o.d"
  "gen_seqgen_test"
  "gen_seqgen_test.pdb"
  "gen_seqgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_seqgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
