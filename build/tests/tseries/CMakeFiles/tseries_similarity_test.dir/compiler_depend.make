# Empty compiler generated dependencies file for tseries_similarity_test.
# This may be replaced when dependencies are built.
