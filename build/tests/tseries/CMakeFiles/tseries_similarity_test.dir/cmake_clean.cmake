file(REMOVE_RECURSE
  "CMakeFiles/tseries_similarity_test.dir/similarity_test.cc.o"
  "CMakeFiles/tseries_similarity_test.dir/similarity_test.cc.o.d"
  "tseries_similarity_test"
  "tseries_similarity_test.pdb"
  "tseries_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tseries_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
