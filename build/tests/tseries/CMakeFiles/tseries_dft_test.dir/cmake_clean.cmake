file(REMOVE_RECURSE
  "CMakeFiles/tseries_dft_test.dir/dft_test.cc.o"
  "CMakeFiles/tseries_dft_test.dir/dft_test.cc.o.d"
  "tseries_dft_test"
  "tseries_dft_test.pdb"
  "tseries_dft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tseries_dft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
