# Empty compiler generated dependencies file for tseries_dft_test.
# This may be replaced when dependencies are built.
