# CMake generated Testfile for 
# Source directory: /root/repo/tests/tseries
# Build directory: /root/repo/build/tests/tseries
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tseries/tseries_dft_test[1]_include.cmake")
include("/root/repo/build/tests/tseries/tseries_similarity_test[1]_include.cmake")
