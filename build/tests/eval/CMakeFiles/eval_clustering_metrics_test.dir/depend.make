# Empty dependencies file for eval_clustering_metrics_test.
# This may be replaced when dependencies are built.
