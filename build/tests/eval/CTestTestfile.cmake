# CMake generated Testfile for 
# Source directory: /root/repo/tests/eval
# Build directory: /root/repo/build/tests/eval
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/eval/eval_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/eval/eval_clustering_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/eval/eval_cross_validation_test[1]_include.cmake")
