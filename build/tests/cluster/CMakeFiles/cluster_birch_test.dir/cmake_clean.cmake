file(REMOVE_RECURSE
  "CMakeFiles/cluster_birch_test.dir/birch_test.cc.o"
  "CMakeFiles/cluster_birch_test.dir/birch_test.cc.o.d"
  "cluster_birch_test"
  "cluster_birch_test.pdb"
  "cluster_birch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_birch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
