# Empty dependencies file for cluster_recovery_property_test.
# This may be replaced when dependencies are built.
