file(REMOVE_RECURSE
  "CMakeFiles/cluster_agglomerative_test.dir/agglomerative_test.cc.o"
  "CMakeFiles/cluster_agglomerative_test.dir/agglomerative_test.cc.o.d"
  "cluster_agglomerative_test"
  "cluster_agglomerative_test.pdb"
  "cluster_agglomerative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_agglomerative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
