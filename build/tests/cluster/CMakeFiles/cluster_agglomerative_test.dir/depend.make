# Empty dependencies file for cluster_agglomerative_test.
# This may be replaced when dependencies are built.
