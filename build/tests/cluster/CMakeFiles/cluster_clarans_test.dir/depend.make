# Empty dependencies file for cluster_clarans_test.
# This may be replaced when dependencies are built.
