file(REMOVE_RECURSE
  "CMakeFiles/cluster_clarans_test.dir/clarans_test.cc.o"
  "CMakeFiles/cluster_clarans_test.dir/clarans_test.cc.o.d"
  "cluster_clarans_test"
  "cluster_clarans_test.pdb"
  "cluster_clarans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_clarans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
