# CMake generated Testfile for 
# Source directory: /root/repo/tests/cluster
# Build directory: /root/repo/build/tests/cluster
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cluster/cluster_kmeans_test[1]_include.cmake")
include("/root/repo/build/tests/cluster/cluster_birch_test[1]_include.cmake")
include("/root/repo/build/tests/cluster/cluster_dbscan_test[1]_include.cmake")
include("/root/repo/build/tests/cluster/cluster_agglomerative_test[1]_include.cmake")
include("/root/repo/build/tests/cluster/cluster_clarans_test[1]_include.cmake")
include("/root/repo/build/tests/cluster/cluster_recovery_property_test[1]_include.cmake")
