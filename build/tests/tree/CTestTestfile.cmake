# CMake generated Testfile for 
# Source directory: /root/repo/tests/tree
# Build directory: /root/repo/build/tests/tree
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tree/tree_criteria_test[1]_include.cmake")
include("/root/repo/build/tests/tree/tree_builder_test[1]_include.cmake")
include("/root/repo/build/tests/tree/tree_pruning_test[1]_include.cmake")
include("/root/repo/build/tests/tree/tree_discretize_test[1]_include.cmake")
include("/root/repo/build/tests/tree/tree_sliq_test[1]_include.cmake")
include("/root/repo/build/tests/tree/tree_builder_property_test[1]_include.cmake")
