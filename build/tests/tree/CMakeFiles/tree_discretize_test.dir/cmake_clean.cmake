file(REMOVE_RECURSE
  "CMakeFiles/tree_discretize_test.dir/discretize_test.cc.o"
  "CMakeFiles/tree_discretize_test.dir/discretize_test.cc.o.d"
  "tree_discretize_test"
  "tree_discretize_test.pdb"
  "tree_discretize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_discretize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
