# Empty dependencies file for tree_discretize_test.
# This may be replaced when dependencies are built.
