# Empty compiler generated dependencies file for tree_builder_test.
# This may be replaced when dependencies are built.
