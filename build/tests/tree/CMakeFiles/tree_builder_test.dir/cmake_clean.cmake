file(REMOVE_RECURSE
  "CMakeFiles/tree_builder_test.dir/builder_test.cc.o"
  "CMakeFiles/tree_builder_test.dir/builder_test.cc.o.d"
  "tree_builder_test"
  "tree_builder_test.pdb"
  "tree_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
