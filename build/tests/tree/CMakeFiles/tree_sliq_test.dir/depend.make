# Empty dependencies file for tree_sliq_test.
# This may be replaced when dependencies are built.
