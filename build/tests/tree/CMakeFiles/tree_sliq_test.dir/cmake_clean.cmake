file(REMOVE_RECURSE
  "CMakeFiles/tree_sliq_test.dir/sliq_test.cc.o"
  "CMakeFiles/tree_sliq_test.dir/sliq_test.cc.o.d"
  "tree_sliq_test"
  "tree_sliq_test.pdb"
  "tree_sliq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_sliq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
