# Empty compiler generated dependencies file for tree_builder_property_test.
# This may be replaced when dependencies are built.
