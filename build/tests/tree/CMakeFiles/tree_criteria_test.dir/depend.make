# Empty dependencies file for tree_criteria_test.
# This may be replaced when dependencies are built.
