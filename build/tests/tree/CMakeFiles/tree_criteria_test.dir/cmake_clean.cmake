file(REMOVE_RECURSE
  "CMakeFiles/tree_criteria_test.dir/criteria_test.cc.o"
  "CMakeFiles/tree_criteria_test.dir/criteria_test.cc.o.d"
  "tree_criteria_test"
  "tree_criteria_test.pdb"
  "tree_criteria_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_criteria_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
