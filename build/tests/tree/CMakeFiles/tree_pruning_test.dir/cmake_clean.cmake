file(REMOVE_RECURSE
  "CMakeFiles/tree_pruning_test.dir/pruning_test.cc.o"
  "CMakeFiles/tree_pruning_test.dir/pruning_test.cc.o.d"
  "tree_pruning_test"
  "tree_pruning_test.pdb"
  "tree_pruning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
