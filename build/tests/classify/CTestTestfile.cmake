# CMake generated Testfile for 
# Source directory: /root/repo/tests/classify
# Build directory: /root/repo/build/tests/classify
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/classify/classify_naive_bayes_test[1]_include.cmake")
include("/root/repo/build/tests/classify/classify_knn_test[1]_include.cmake")
include("/root/repo/build/tests/classify/classify_kd_tree_test[1]_include.cmake")
include("/root/repo/build/tests/classify/classify_one_r_test[1]_include.cmake")
