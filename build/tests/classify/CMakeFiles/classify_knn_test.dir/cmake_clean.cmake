file(REMOVE_RECURSE
  "CMakeFiles/classify_knn_test.dir/knn_test.cc.o"
  "CMakeFiles/classify_knn_test.dir/knn_test.cc.o.d"
  "classify_knn_test"
  "classify_knn_test.pdb"
  "classify_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
