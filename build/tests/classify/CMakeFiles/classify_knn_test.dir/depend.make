# Empty dependencies file for classify_knn_test.
# This may be replaced when dependencies are built.
