file(REMOVE_RECURSE
  "CMakeFiles/classify_naive_bayes_test.dir/naive_bayes_test.cc.o"
  "CMakeFiles/classify_naive_bayes_test.dir/naive_bayes_test.cc.o.d"
  "classify_naive_bayes_test"
  "classify_naive_bayes_test.pdb"
  "classify_naive_bayes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_naive_bayes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
